# Empty dependencies file for sm_survey.
# This may be replaced when dependencies are built.
