file(REMOVE_RECURSE
  "CMakeFiles/sm_survey.dir/sm_survey.cpp.o"
  "CMakeFiles/sm_survey.dir/sm_survey.cpp.o.d"
  "sm_survey"
  "sm_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
