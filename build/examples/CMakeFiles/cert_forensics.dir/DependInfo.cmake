
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cert_forensics.cpp" "examples/CMakeFiles/cert_forensics.dir/cert_forensics.cpp.o" "gcc" "examples/CMakeFiles/cert_forensics.dir/cert_forensics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracking/CMakeFiles/sm_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/linking/CMakeFiles/sm_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/simworld/CMakeFiles/sm_simworld.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/sm_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/sm_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/sm_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/sm_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/sm_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
