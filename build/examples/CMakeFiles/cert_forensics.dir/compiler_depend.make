# Empty compiler generated dependencies file for cert_forensics.
# This may be replaced when dependencies are built.
