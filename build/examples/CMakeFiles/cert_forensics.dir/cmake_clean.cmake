file(REMOVE_RECURSE
  "CMakeFiles/cert_forensics.dir/cert_forensics.cpp.o"
  "CMakeFiles/cert_forensics.dir/cert_forensics.cpp.o.d"
  "cert_forensics"
  "cert_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cert_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
