# Empty compiler generated dependencies file for device_tracking.
# This may be replaced when dependencies are built.
