file(REMOVE_RECURSE
  "CMakeFiles/device_tracking.dir/device_tracking.cpp.o"
  "CMakeFiles/device_tracking.dir/device_tracking.cpp.o.d"
  "device_tracking"
  "device_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
