# Empty compiler generated dependencies file for reassignment_atlas.
# This may be replaced when dependencies are built.
