file(REMOVE_RECURSE
  "CMakeFiles/reassignment_atlas.dir/reassignment_atlas.cpp.o"
  "CMakeFiles/reassignment_atlas.dir/reassignment_atlas.cpp.o.d"
  "reassignment_atlas"
  "reassignment_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassignment_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
