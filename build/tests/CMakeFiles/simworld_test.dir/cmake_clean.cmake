file(REMOVE_RECURSE
  "CMakeFiles/simworld_test.dir/simworld_test.cpp.o"
  "CMakeFiles/simworld_test.dir/simworld_test.cpp.o.d"
  "simworld_test"
  "simworld_test.pdb"
  "simworld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simworld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
