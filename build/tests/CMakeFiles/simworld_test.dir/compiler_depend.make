# Empty compiler generated dependencies file for simworld_test.
# This may be replaced when dependencies are built.
