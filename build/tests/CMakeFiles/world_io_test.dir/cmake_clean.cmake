file(REMOVE_RECURSE
  "CMakeFiles/world_io_test.dir/world_io_test.cpp.o"
  "CMakeFiles/world_io_test.dir/world_io_test.cpp.o.d"
  "world_io_test"
  "world_io_test.pdb"
  "world_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
