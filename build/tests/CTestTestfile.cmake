# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/asn1_test[1]_include.cmake")
include("/root/repo/build/tests/x509_test[1]_include.cmake")
include("/root/repo/build/tests/pki_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/simworld_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/linking_test[1]_include.cmake")
include("/root/repo/build/tests/tracking_test[1]_include.cmake")
include("/root/repo/build/tests/archive_io_test[1]_include.cmake")
include("/root/repo/build/tests/world_io_test[1]_include.cmake")
include("/root/repo/build/tests/pem_test[1]_include.cmake")
include("/root/repo/build/tests/lint_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/crl_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
add_test(paper_shapes_test "/root/repo/build/tests/paper_shapes_test")
set_tests_properties(paper_shapes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
