file(REMOVE_RECURSE
  "libsm_util.a"
)
