file(REMOVE_RECURSE
  "CMakeFiles/sm_util.dir/datetime.cpp.o"
  "CMakeFiles/sm_util.dir/datetime.cpp.o.d"
  "CMakeFiles/sm_util.dir/hex.cpp.o"
  "CMakeFiles/sm_util.dir/hex.cpp.o.d"
  "CMakeFiles/sm_util.dir/md5.cpp.o"
  "CMakeFiles/sm_util.dir/md5.cpp.o.d"
  "CMakeFiles/sm_util.dir/sha1.cpp.o"
  "CMakeFiles/sm_util.dir/sha1.cpp.o.d"
  "CMakeFiles/sm_util.dir/sha256.cpp.o"
  "CMakeFiles/sm_util.dir/sha256.cpp.o.d"
  "CMakeFiles/sm_util.dir/stats.cpp.o"
  "CMakeFiles/sm_util.dir/stats.cpp.o.d"
  "libsm_util.a"
  "libsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
