file(REMOVE_RECURSE
  "libsm_simworld.a"
)
