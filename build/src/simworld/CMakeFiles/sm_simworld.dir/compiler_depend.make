# Empty compiler generated dependencies file for sm_simworld.
# This may be replaced when dependencies are built.
