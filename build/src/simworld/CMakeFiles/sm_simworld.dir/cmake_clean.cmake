file(REMOVE_RECURSE
  "CMakeFiles/sm_simworld.dir/isp.cpp.o"
  "CMakeFiles/sm_simworld.dir/isp.cpp.o.d"
  "CMakeFiles/sm_simworld.dir/vendor.cpp.o"
  "CMakeFiles/sm_simworld.dir/vendor.cpp.o.d"
  "CMakeFiles/sm_simworld.dir/world.cpp.o"
  "CMakeFiles/sm_simworld.dir/world.cpp.o.d"
  "CMakeFiles/sm_simworld.dir/world_io.cpp.o"
  "CMakeFiles/sm_simworld.dir/world_io.cpp.o.d"
  "libsm_simworld.a"
  "libsm_simworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_simworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
