file(REMOVE_RECURSE
  "CMakeFiles/sm_pki.dir/crl_store.cpp.o"
  "CMakeFiles/sm_pki.dir/crl_store.cpp.o.d"
  "CMakeFiles/sm_pki.dir/lint.cpp.o"
  "CMakeFiles/sm_pki.dir/lint.cpp.o.d"
  "CMakeFiles/sm_pki.dir/root_store.cpp.o"
  "CMakeFiles/sm_pki.dir/root_store.cpp.o.d"
  "CMakeFiles/sm_pki.dir/verifier.cpp.o"
  "CMakeFiles/sm_pki.dir/verifier.cpp.o.d"
  "libsm_pki.a"
  "libsm_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
