file(REMOVE_RECURSE
  "libsm_pki.a"
)
