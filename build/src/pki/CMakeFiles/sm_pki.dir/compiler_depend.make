# Empty compiler generated dependencies file for sm_pki.
# This may be replaced when dependencies are built.
