file(REMOVE_RECURSE
  "libsm_x509.a"
)
