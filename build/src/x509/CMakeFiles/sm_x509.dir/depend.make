# Empty dependencies file for sm_x509.
# This may be replaced when dependencies are built.
