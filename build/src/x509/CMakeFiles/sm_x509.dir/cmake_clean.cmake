file(REMOVE_RECURSE
  "CMakeFiles/sm_x509.dir/builder.cpp.o"
  "CMakeFiles/sm_x509.dir/builder.cpp.o.d"
  "CMakeFiles/sm_x509.dir/certificate.cpp.o"
  "CMakeFiles/sm_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/sm_x509.dir/crl.cpp.o"
  "CMakeFiles/sm_x509.dir/crl.cpp.o.d"
  "CMakeFiles/sm_x509.dir/general_name.cpp.o"
  "CMakeFiles/sm_x509.dir/general_name.cpp.o.d"
  "CMakeFiles/sm_x509.dir/name.cpp.o"
  "CMakeFiles/sm_x509.dir/name.cpp.o.d"
  "CMakeFiles/sm_x509.dir/pem.cpp.o"
  "CMakeFiles/sm_x509.dir/pem.cpp.o.d"
  "libsm_x509.a"
  "libsm_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
