file(REMOVE_RECURSE
  "libsm_net.a"
)
