file(REMOVE_RECURSE
  "CMakeFiles/sm_net.dir/as_database.cpp.o"
  "CMakeFiles/sm_net.dir/as_database.cpp.o.d"
  "CMakeFiles/sm_net.dir/ipv4.cpp.o"
  "CMakeFiles/sm_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/sm_net.dir/route_table.cpp.o"
  "CMakeFiles/sm_net.dir/route_table.cpp.o.d"
  "libsm_net.a"
  "libsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
