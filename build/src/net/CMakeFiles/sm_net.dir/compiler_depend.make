# Empty compiler generated dependencies file for sm_net.
# This may be replaced when dependencies are built.
