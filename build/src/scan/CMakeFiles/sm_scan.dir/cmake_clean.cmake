file(REMOVE_RECURSE
  "CMakeFiles/sm_scan.dir/archive.cpp.o"
  "CMakeFiles/sm_scan.dir/archive.cpp.o.d"
  "CMakeFiles/sm_scan.dir/archive_io.cpp.o"
  "CMakeFiles/sm_scan.dir/archive_io.cpp.o.d"
  "CMakeFiles/sm_scan.dir/cert_record.cpp.o"
  "CMakeFiles/sm_scan.dir/cert_record.cpp.o.d"
  "CMakeFiles/sm_scan.dir/permutation.cpp.o"
  "CMakeFiles/sm_scan.dir/permutation.cpp.o.d"
  "CMakeFiles/sm_scan.dir/prefix_set.cpp.o"
  "CMakeFiles/sm_scan.dir/prefix_set.cpp.o.d"
  "CMakeFiles/sm_scan.dir/schedule.cpp.o"
  "CMakeFiles/sm_scan.dir/schedule.cpp.o.d"
  "libsm_scan.a"
  "libsm_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
