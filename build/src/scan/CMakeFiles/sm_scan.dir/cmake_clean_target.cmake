file(REMOVE_RECURSE
  "libsm_scan.a"
)
