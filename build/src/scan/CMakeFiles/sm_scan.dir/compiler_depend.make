# Empty compiler generated dependencies file for sm_scan.
# This may be replaced when dependencies are built.
