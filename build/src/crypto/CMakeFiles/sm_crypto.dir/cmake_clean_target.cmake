file(REMOVE_RECURSE
  "libsm_crypto.a"
)
