
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/sm_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/sm_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/signature.cpp" "src/crypto/CMakeFiles/sm_crypto.dir/signature.cpp.o" "gcc" "src/crypto/CMakeFiles/sm_crypto.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bignum/CMakeFiles/sm_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
