# Empty compiler generated dependencies file for sm_crypto.
# This may be replaced when dependencies are built.
