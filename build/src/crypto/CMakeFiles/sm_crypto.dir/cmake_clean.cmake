file(REMOVE_RECURSE
  "CMakeFiles/sm_crypto.dir/rsa.cpp.o"
  "CMakeFiles/sm_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/sm_crypto.dir/signature.cpp.o"
  "CMakeFiles/sm_crypto.dir/signature.cpp.o.d"
  "libsm_crypto.a"
  "libsm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
