# Empty dependencies file for sm_asn1.
# This may be replaced when dependencies are built.
