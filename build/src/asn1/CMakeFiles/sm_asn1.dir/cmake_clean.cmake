file(REMOVE_RECURSE
  "CMakeFiles/sm_asn1.dir/der_reader.cpp.o"
  "CMakeFiles/sm_asn1.dir/der_reader.cpp.o.d"
  "CMakeFiles/sm_asn1.dir/der_writer.cpp.o"
  "CMakeFiles/sm_asn1.dir/der_writer.cpp.o.d"
  "CMakeFiles/sm_asn1.dir/oid.cpp.o"
  "CMakeFiles/sm_asn1.dir/oid.cpp.o.d"
  "CMakeFiles/sm_asn1.dir/print.cpp.o"
  "CMakeFiles/sm_asn1.dir/print.cpp.o.d"
  "libsm_asn1.a"
  "libsm_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
