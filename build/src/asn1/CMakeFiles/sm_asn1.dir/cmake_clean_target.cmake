file(REMOVE_RECURSE
  "libsm_asn1.a"
)
