file(REMOVE_RECURSE
  "CMakeFiles/sm_report.dir/report.cpp.o"
  "CMakeFiles/sm_report.dir/report.cpp.o.d"
  "libsm_report.a"
  "libsm_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
