file(REMOVE_RECURSE
  "libsm_report.a"
)
