# Empty dependencies file for sm_report.
# This may be replaced when dependencies are built.
