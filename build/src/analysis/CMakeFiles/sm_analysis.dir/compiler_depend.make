# Empty compiler generated dependencies file for sm_analysis.
# This may be replaced when dependencies are built.
