file(REMOVE_RECURSE
  "CMakeFiles/sm_analysis.dir/dataset.cpp.o"
  "CMakeFiles/sm_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/sm_analysis.dir/discrepancy.cpp.o"
  "CMakeFiles/sm_analysis.dir/discrepancy.cpp.o.d"
  "CMakeFiles/sm_analysis.dir/diversity.cpp.o"
  "CMakeFiles/sm_analysis.dir/diversity.cpp.o.d"
  "CMakeFiles/sm_analysis.dir/longevity.cpp.o"
  "CMakeFiles/sm_analysis.dir/longevity.cpp.o.d"
  "libsm_analysis.a"
  "libsm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
