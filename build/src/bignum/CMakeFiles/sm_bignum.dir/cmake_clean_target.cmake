file(REMOVE_RECURSE
  "libsm_bignum.a"
)
