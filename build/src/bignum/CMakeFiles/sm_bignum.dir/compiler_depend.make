# Empty compiler generated dependencies file for sm_bignum.
# This may be replaced when dependencies are built.
