file(REMOVE_RECURSE
  "CMakeFiles/sm_bignum.dir/biguint.cpp.o"
  "CMakeFiles/sm_bignum.dir/biguint.cpp.o.d"
  "CMakeFiles/sm_bignum.dir/prime.cpp.o"
  "CMakeFiles/sm_bignum.dir/prime.cpp.o.d"
  "libsm_bignum.a"
  "libsm_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
