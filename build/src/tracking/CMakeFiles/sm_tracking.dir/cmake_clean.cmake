file(REMOVE_RECURSE
  "CMakeFiles/sm_tracking.dir/tracker.cpp.o"
  "CMakeFiles/sm_tracking.dir/tracker.cpp.o.d"
  "libsm_tracking.a"
  "libsm_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
