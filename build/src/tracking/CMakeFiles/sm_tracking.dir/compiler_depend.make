# Empty compiler generated dependencies file for sm_tracking.
# This may be replaced when dependencies are built.
