file(REMOVE_RECURSE
  "libsm_tracking.a"
)
