file(REMOVE_RECURSE
  "CMakeFiles/sm_linking.dir/feature.cpp.o"
  "CMakeFiles/sm_linking.dir/feature.cpp.o.d"
  "CMakeFiles/sm_linking.dir/linker.cpp.o"
  "CMakeFiles/sm_linking.dir/linker.cpp.o.d"
  "libsm_linking.a"
  "libsm_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
