# Empty dependencies file for sm_linking.
# This may be replaced when dependencies are built.
