file(REMOVE_RECURSE
  "libsm_linking.a"
)
