# Empty dependencies file for bench_tab5_feature_uniqueness.
# This may be replaced when dependencies are built.
