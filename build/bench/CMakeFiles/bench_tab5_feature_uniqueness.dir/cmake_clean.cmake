file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_feature_uniqueness.dir/bench_tab5_feature_uniqueness.cpp.o"
  "CMakeFiles/bench_tab5_feature_uniqueness.dir/bench_tab5_feature_uniqueness.cpp.o.d"
  "bench_tab5_feature_uniqueness"
  "bench_tab5_feature_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_feature_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
