# Empty dependencies file for bench_fig11_reassignment.
# This may be replaced when dependencies are built.
