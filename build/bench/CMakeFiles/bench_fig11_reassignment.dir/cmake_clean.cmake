file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_reassignment.dir/bench_fig11_reassignment.cpp.o"
  "CMakeFiles/bench_fig11_reassignment.dir/bench_fig11_reassignment.cpp.o.d"
  "bench_fig11_reassignment"
  "bench_fig11_reassignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_reassignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
