# Empty dependencies file for bench_fig06_key_diversity.
# This may be replaced when dependencies are built.
