file(REMOVE_RECURSE
  "libsm_bench_common.a"
)
