# Empty dependencies file for sm_bench_common.
# This may be replaced when dependencies are built.
