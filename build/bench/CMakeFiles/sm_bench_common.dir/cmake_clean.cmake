file(REMOVE_RECURSE
  "CMakeFiles/sm_bench_common.dir/common.cpp.o"
  "CMakeFiles/sm_bench_common.dir/common.cpp.o.d"
  "libsm_bench_common.a"
  "libsm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
