file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linker.dir/bench_ablation_linker.cpp.o"
  "CMakeFiles/bench_ablation_linker.dir/bench_ablation_linker.cpp.o.d"
  "bench_ablation_linker"
  "bench_ablation_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
