# Empty compiler generated dependencies file for bench_fig03_validity_periods.
# This may be replaced when dependencies are built.
