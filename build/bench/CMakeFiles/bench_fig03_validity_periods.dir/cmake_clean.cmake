file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_validity_periods.dir/bench_fig03_validity_periods.cpp.o"
  "CMakeFiles/bench_fig03_validity_periods.dir/bench_fig03_validity_periods.cpp.o.d"
  "bench_fig03_validity_periods"
  "bench_fig03_validity_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_validity_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
