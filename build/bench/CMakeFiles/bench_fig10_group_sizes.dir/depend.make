# Empty dependencies file for bench_fig10_group_sizes.
# This may be replaced when dependencies are built.
