# Empty dependencies file for bench_sec7_tracking.
# This may be replaced when dependencies are built.
