# Empty dependencies file for bench_sec4_validity_breakdown.
# This may be replaced when dependencies are built.
