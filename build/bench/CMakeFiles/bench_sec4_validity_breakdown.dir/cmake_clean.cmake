file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_validity_breakdown.dir/bench_sec4_validity_breakdown.cpp.o"
  "CMakeFiles/bench_sec4_validity_breakdown.dir/bench_sec4_validity_breakdown.cpp.o.d"
  "bench_sec4_validity_breakdown"
  "bench_sec4_validity_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_validity_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
