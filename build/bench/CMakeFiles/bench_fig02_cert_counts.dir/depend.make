# Empty dependencies file for bench_fig02_cert_counts.
# This may be replaced when dependencies are built.
