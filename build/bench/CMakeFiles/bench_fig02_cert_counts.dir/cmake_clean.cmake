file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cert_counts.dir/bench_fig02_cert_counts.cpp.o"
  "CMakeFiles/bench_fig02_cert_counts.dir/bench_fig02_cert_counts.cpp.o.d"
  "bench_fig02_cert_counts"
  "bench_fig02_cert_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cert_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
