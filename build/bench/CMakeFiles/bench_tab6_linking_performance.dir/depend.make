# Empty dependencies file for bench_tab6_linking_performance.
# This may be replaced when dependencies are built.
