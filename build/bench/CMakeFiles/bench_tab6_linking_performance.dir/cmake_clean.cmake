file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_linking_performance.dir/bench_tab6_linking_performance.cpp.o"
  "CMakeFiles/bench_tab6_linking_performance.dir/bench_tab6_linking_performance.cpp.o.d"
  "bench_tab6_linking_performance"
  "bench_tab6_linking_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_linking_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
