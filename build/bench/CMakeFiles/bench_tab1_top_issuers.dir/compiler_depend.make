# Empty compiler generated dependencies file for bench_tab1_top_issuers.
# This may be replaced when dependencies are built.
