file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_top_issuers.dir/bench_tab1_top_issuers.cpp.o"
  "CMakeFiles/bench_tab1_top_issuers.dir/bench_tab1_top_issuers.cpp.o.d"
  "bench_tab1_top_issuers"
  "bench_tab1_top_issuers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_top_issuers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
