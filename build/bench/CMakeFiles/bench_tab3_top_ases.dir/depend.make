# Empty dependencies file for bench_tab3_top_ases.
# This may be replaced when dependencies are built.
