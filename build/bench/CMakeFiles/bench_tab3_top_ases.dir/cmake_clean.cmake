file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_top_ases.dir/bench_tab3_top_ases.cpp.o"
  "CMakeFiles/bench_tab3_top_ases.dir/bench_tab3_top_ases.cpp.o.d"
  "bench_tab3_top_ases"
  "bench_tab3_top_ases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_top_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
