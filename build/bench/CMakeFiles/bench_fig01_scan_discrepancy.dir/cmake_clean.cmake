file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_scan_discrepancy.dir/bench_fig01_scan_discrepancy.cpp.o"
  "CMakeFiles/bench_fig01_scan_discrepancy.dir/bench_fig01_scan_discrepancy.cpp.o.d"
  "bench_fig01_scan_discrepancy"
  "bench_fig01_scan_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_scan_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
