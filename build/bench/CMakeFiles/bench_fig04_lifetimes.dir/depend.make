# Empty dependencies file for bench_fig04_lifetimes.
# This may be replaced when dependencies are built.
