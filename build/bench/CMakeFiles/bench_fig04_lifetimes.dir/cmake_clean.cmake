file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_lifetimes.dir/bench_fig04_lifetimes.cpp.o"
  "CMakeFiles/bench_fig04_lifetimes.dir/bench_fig04_lifetimes.cpp.o.d"
  "bench_fig04_lifetimes"
  "bench_fig04_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
