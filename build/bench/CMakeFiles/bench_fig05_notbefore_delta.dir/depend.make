# Empty dependencies file for bench_fig05_notbefore_delta.
# This may be replaced when dependencies are built.
