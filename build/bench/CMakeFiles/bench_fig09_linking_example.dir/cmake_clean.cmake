file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_linking_example.dir/bench_fig09_linking_example.cpp.o"
  "CMakeFiles/bench_fig09_linking_example.dir/bench_fig09_linking_example.cpp.o.d"
  "bench_fig09_linking_example"
  "bench_fig09_linking_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_linking_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
