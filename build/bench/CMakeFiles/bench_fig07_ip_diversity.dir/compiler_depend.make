# Empty compiler generated dependencies file for bench_fig07_ip_diversity.
# This may be replaced when dependencies are built.
