# Empty dependencies file for bench_sec644_linking_gain.
# This may be replaced when dependencies are built.
