file(REMOVE_RECURSE
  "CMakeFiles/bench_sec644_linking_gain.dir/bench_sec644_linking_gain.cpp.o"
  "CMakeFiles/bench_sec644_linking_gain.dir/bench_sec644_linking_gain.cpp.o.d"
  "bench_sec644_linking_gain"
  "bench_sec644_linking_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec644_linking_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
