file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_device_types.dir/bench_tab4_device_types.cpp.o"
  "CMakeFiles/bench_tab4_device_types.dir/bench_tab4_device_types.cpp.o.d"
  "bench_tab4_device_types"
  "bench_tab4_device_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_device_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
