# Empty compiler generated dependencies file for bench_tab4_device_types.
# This may be replaced when dependencies are built.
