file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_as_diversity.dir/bench_fig08_as_diversity.cpp.o"
  "CMakeFiles/bench_fig08_as_diversity.dir/bench_fig08_as_diversity.cpp.o.d"
  "bench_fig08_as_diversity"
  "bench_fig08_as_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_as_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
