# Empty dependencies file for bench_fig08_as_diversity.
# This may be replaced when dependencies are built.
