file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_as_types.dir/bench_tab2_as_types.cpp.o"
  "CMakeFiles/bench_tab2_as_types.dir/bench_tab2_as_types.cpp.o.d"
  "bench_tab2_as_types"
  "bench_tab2_as_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_as_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
