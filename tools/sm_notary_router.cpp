// sm_notary_router — the routing tier in front of sharded sm_notaryd
// backends. It owns no corpus: each backend serves one fingerprint-prefix
// slice (sm_notaryd --shard-prefix), and the router forwards every query
// to the shard that owns its first fingerprint byte, scatters batch
// queries across shards, and keeps per-backend health via kPing probes.
//
//   sm_notary_router --backend H:P[,H:P...] --backend H:P[,H:P...] ...
//       One --backend flag per shard, in shard order: with N flags,
//       shard i (serving first bytes [i*256/N, (i+1)*256/N)) is the i-th
//       flag. Comma-separated endpoints within one flag are replicas of
//       the same slice (failover, round-robin).
//
// The router serves the same framed protocol as sm_notaryd (kQuery,
// kBatchQuery, kStats → ROUTER-STATS, kPing, kSnapshot → per-shard
// staleness) and drains cleanly on SIGTERM/SIGINT, printing ROUTER-STATS.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/client_pool.h"
#include "netio/server.h"
#include "notary/router.h"

namespace {

using namespace sm;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Options {
  std::vector<notary::RouterShard> shards;
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 7432;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::uint64_t idle_ms = 60'000;
  netio::ClientPoolConfig pool;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sm_notary_router --backend HOST:PORT[,HOST:PORT...] [...]\n"
      "\n"
      "  --backend LIST   one flag per shard, in shard order; commas\n"
      "                   separate replicas of the same prefix slice\n"
      "  --port N         listen port (default 7432)\n"
      "  --bind ADDR      bind address (default 127.0.0.1)\n"
      "  --threads N      server workers (default: hardware concurrency)\n"
      "  --idle-ms N      close idle client connections after N ms\n"
      "  --connections-per-backend N   pool size per backend (default 2)\n"
      "  --request-timeout-ms N        per-call timeout (default 2000)\n"
      "  --ping-interval-ms N          health-probe period, 0 disables\n"
      "                                (default 200)\n");
}

std::uint64_t parse_u64_or_die(const char* flag, const char* text,
                               std::uint64_t max) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || value > max) {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, text);
    usage();
    std::exit(2);
  }
  return value;
}

/// Parses one --backend flag: HOST:PORT[,HOST:PORT...].
std::optional<notary::RouterShard> parse_shard(const std::string& text) {
  notary::RouterShard shard;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(start, comma - start);
    const std::size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= part.size()) {
      return std::nullopt;
    }
    char* end = nullptr;
    const unsigned long port = std::strtoul(part.c_str() + colon + 1, &end,
                                            10);
    if (*end != '\0' || port == 0 || port > 65535) return std::nullopt;
    shard.replicas.push_back(
        {part.substr(0, colon), static_cast<std::uint16_t>(port)});
    start = comma + 1;
  }
  if (shard.replicas.empty()) return std::nullopt;
  return shard;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--backend") {
      auto shard = parse_shard(next());
      if (!shard.has_value()) {
        std::fprintf(stderr, "bad --backend list: %s\n", argv[i]);
        return std::nullopt;
      }
      opts.shards.push_back(std::move(*shard));
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(
          parse_u64_or_die("--port", next(), 65535));
    } else if (arg == "--bind") {
      opts.bind_address = next();
    } else if (arg == "--threads") {
      opts.threads = parse_u64_or_die("--threads", next(), 4096);
    } else if (arg == "--idle-ms") {
      opts.idle_ms = parse_u64_or_die("--idle-ms", next(), 86'400'000);
    } else if (arg == "--connections-per-backend") {
      opts.pool.connections_per_backend = static_cast<std::size_t>(
          parse_u64_or_die("--connections-per-backend", next(), 64));
    } else if (arg == "--request-timeout-ms") {
      opts.pool.request_timeout_ms =
          parse_u64_or_die("--request-timeout-ms", next(), 600'000);
    } else if (arg == "--ping-interval-ms") {
      opts.pool.ping_interval_ms =
          parse_u64_or_die("--ping-interval-ms", next(), 600'000);
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (opts.shards.empty()) {
    std::fprintf(stderr, "at least one --backend is required\n");
    return std::nullopt;
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts.has_value()) {
    usage();
    return 2;
  }

  notary::RouterConfig router_config;
  router_config.shards = opts->shards;
  router_config.pool = opts->pool;
  notary::RouterService router(std::move(router_config));

  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    const auto [lo, hi] = router.shard_range(s);
    std::string replicas;
    for (const auto& ep : opts->shards[s].replicas) {
      if (!replicas.empty()) replicas += ", ";
      replicas += ep.host + ":" + std::to_string(ep.port);
    }
    std::fprintf(stderr, "shard %zu: prefix %u-%u -> %s\n", s,
                 static_cast<unsigned>(lo), static_cast<unsigned>(hi),
                 replicas.c_str());
  }

  netio::ServerConfig server_config;
  server_config.bind_address = opts->bind_address;
  server_config.port = opts->port;
  server_config.workers = opts->threads;
  server_config.idle_timeout_ms = opts->idle_ms;
  netio::TcpServer server(server_config,
                          [&router](netio::FrameType type,
                                    std::string_view payload,
                                    std::string& out) {
                            router.handle_into(type, payload, out);
                          });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr, "sm_notary_router listening on %s:%u (%zu shards)\n",
               opts->bind_address.c_str(), server.port(),
               router.shard_count());
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "signal received, draining...\n");
  server.shutdown();
  const auto counters = server.counters();
  std::fprintf(stderr,
               "drained: %llu connections, %llu frames (%llu malformed, "
               "%llu idle-closed)\n",
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.frames_handled),
               static_cast<unsigned long long>(counters.malformed_frames),
               static_cast<unsigned long long>(counters.idle_closed));
  std::fputs(router.render_stats().c_str(), stderr);
  return 0;
}
