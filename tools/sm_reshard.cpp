// sm_reshard — the online-resharding driver. It owns no data and holds
// no locks: it sequences the slice-handoff state machine between a
// running sm_notary_router and its sm_notaryd backends, entirely through
// the framed protocol (src/netio/frame.h).
//
//   sm_reshard --router HOST:PORT --show
//       Fetch and print the router's current prefix map (kMapUpdate with
//       an empty payload answers kMapInfo).
//
//   sm_reshard --router HOST:PORT --split I --to HOST:PORT[,HOST:PORT...]
//       Split map entry I at its midpoint. The upper half moves to the
//       --to replicas (typically fresh `sm_notaryd --empty` successors):
//         snapshot+stream  kSliceSend to entry I's first replica, once
//                          per successor — the source streams the upper
//                          half's slice and catches up until the
//                          successor is current (the successor publishes
//                          its enlarged index before replying);
//         swap             kMapUpdate pushes the epoch+1 map to the
//                          router; in-flight queries finish on the old
//                          table, new ones route to the successors;
//         retire           kSliceRetire tells each old replica to drop
//                          the handed-off range.
//       Queries never fail during the handoff: until the swap the old
//       replicas still own the whole range, and by the swap the
//       successors are published and current.
//
//   sm_reshard --router HOST:PORT --merge I
//       Inverse: entry I's range moves to entry I+1's replicas and the
//       two entries collapse into one (same stream → swap → retire
//       sequence, with entry I's replicas as the source).
//
// Exit codes: 0 success, 1 protocol/transport failure, 2 bad flags
// (usage to stderr).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/client_pool.h"
#include "netio/frame.h"
#include "notary/prefix_map.h"

namespace {

using namespace sm;

struct Options {
  std::string router_host;
  std::uint16_t router_port = 0;
  bool show = false;
  bool has_split = false;
  bool has_merge = false;
  std::size_t entry = 0;
  std::vector<netio::Endpoint> to;
  /// Grace between the map swap and the source-side retire: queries the
  /// router dispatched on the old table must land on the old owner before
  /// it drops the range.
  int drain_ms = 200;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sm_reshard --router HOST:PORT (--show | --split I --to "
      "HOST:PORT[,...] | --merge I)\n"
      "\n"
      "  --show          print the router's current prefix map\n"
      "  --split I       split map entry I at its midpoint; the upper\n"
      "                  half moves to the --to replicas (fresh\n"
      "                  `sm_notaryd --empty` successors)\n"
      "  --to LIST       comma-separated successor endpoints for --split\n"
      "  --merge I       fold entry I into entry I+1 (entry I's range\n"
      "                  streams to entry I+1's replicas)\n"
      "  --drain-ms N    wait N ms between the map swap and the source\n"
      "                  retire, letting old-table queries land "
      "(default 200)\n");
}

bool parse_endpoint(const std::string& text, netio::Endpoint& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(text.c_str() + colon + 1, &end,
                                          10);
  if (*end != '\0' || port == 0 || port > 65535) return false;
  out.host = text.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--router") {
      netio::Endpoint ep;
      if (!parse_endpoint(next(), ep)) {
        std::fprintf(stderr, "bad --router endpoint: %s\n", argv[i]);
        return std::nullopt;
      }
      opts.router_host = ep.host;
      opts.router_port = ep.port;
    } else if (arg == "--show") {
      opts.show = true;
    } else if (arg == "--split") {
      char* end = nullptr;
      const unsigned long value = std::strtoul(next(), &end, 10);
      if (*end != '\0' || value > 255) {
        std::fprintf(stderr, "bad --split entry index: %s\n", argv[i]);
        return std::nullopt;
      }
      opts.entry = value;
      opts.has_split = true;
    } else if (arg == "--merge") {
      char* end = nullptr;
      const unsigned long value = std::strtoul(next(), &end, 10);
      if (*end != '\0' || value > 255) {
        std::fprintf(stderr, "bad --merge entry index: %s\n", argv[i]);
        return std::nullopt;
      }
      opts.entry = value;
      opts.has_merge = true;
    } else if (arg == "--to") {
      const std::string list = next();
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        netio::Endpoint ep;
        if (!parse_endpoint(list.substr(start, comma - start), ep)) {
          std::fprintf(stderr, "bad --to endpoint in: %s\n", list.c_str());
          return std::nullopt;
        }
        opts.to.push_back(std::move(ep));
        start = comma + 1;
      }
    } else if (arg == "--drain-ms") {
      char* end = nullptr;
      const unsigned long value = std::strtoul(next(), &end, 10);
      if (*end != '\0' || value > 60'000) {
        std::fprintf(stderr, "bad --drain-ms: %s\n", argv[i]);
        return std::nullopt;
      }
      opts.drain_ms = static_cast<int>(value);
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (opts.router_port == 0) {
    std::fprintf(stderr, "--router is required\n");
    return std::nullopt;
  }
  const int modes = static_cast<int>(opts.show) +
                    static_cast<int>(opts.has_split) +
                    static_cast<int>(opts.has_merge);
  if (modes != 1) {
    std::fprintf(stderr,
                 "exactly one of --show, --split, --merge is required\n");
    return std::nullopt;
  }
  if (opts.has_split && opts.to.empty()) {
    std::fprintf(stderr, "--split needs --to\n");
    return std::nullopt;
  }
  if (!opts.has_split && !opts.to.empty()) {
    std::fprintf(stderr, "--to only makes sense with --split\n");
    return std::nullopt;
  }
  return opts;
}

// ---- one blocking frame connection per peer ------------------------------

class Conn {
 public:
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }

  bool call(netio::FrameType type, std::string_view payload,
            netio::Frame& response) {
    std::string frame = netio::encode_frame(type, payload);
    std::string_view left = frame;
    while (!left.empty()) {
      const ssize_t n = ::send(fd_, left.data(), left.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      left.remove_prefix(static_cast<std::size_t>(n));
    }
    for (;;) {
      switch (decoder_.next(response)) {
        case netio::DecodeStatus::kFrame:
          return true;
        case netio::DecodeStatus::kMalformed:
          return false;
        case netio::DecodeStatus::kNeedMore:
          break;
      }
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  netio::FrameDecoder decoder_{32u << 20};
};

bool call_peer(const netio::Endpoint& ep, netio::FrameType type,
               std::string_view payload, netio::FrameType want,
               std::string& response_payload) {
  Conn conn;
  if (!conn.connect(ep.host, ep.port)) {
    std::fprintf(stderr, "sm_reshard: cannot connect to %s:%u\n",
                 ep.host.c_str(), ep.port);
    return false;
  }
  netio::Frame response;
  if (!conn.call(type, payload, response)) {
    std::fprintf(stderr, "sm_reshard: no response from %s:%u\n",
                 ep.host.c_str(), ep.port);
    return false;
  }
  if (response.type != want) {
    std::fprintf(stderr, "sm_reshard: %s:%u refused: %s\n", ep.host.c_str(),
                 ep.port, response.payload.c_str());
    return false;
  }
  response_payload = std::move(response.payload);
  return true;
}

std::string encode_slice_send(std::uint8_t lo, std::uint8_t hi,
                              const netio::Endpoint& target) {
  std::string payload;
  payload.push_back(static_cast<char>(lo));
  payload.push_back(static_cast<char>(hi));
  payload.push_back(static_cast<char>(target.port & 0xff));
  payload.push_back(static_cast<char>(target.port >> 8));
  payload.push_back(static_cast<char>(target.host.size()));
  payload += target.host;
  return payload;
}

bool fetch_map(const Options& opts, notary::PrefixMap& map) {
  std::string payload;
  if (!call_peer({opts.router_host, opts.router_port},
                 netio::FrameType::kMapUpdate, {},
                 netio::FrameType::kMapInfo, payload)) {
    return false;
  }
  std::string error;
  if (!notary::parse_prefix_map(payload, map, error)) {
    std::fprintf(stderr, "sm_reshard: router sent a bad map: %s\n",
                 error.c_str());
    return false;
  }
  return true;
}

// The shared tail of --split and --merge: stream [lo, hi] from `source`
// to every `target`, push the new map to the router, then retire the
// range from every old holder. Timings go to stderr; the map-swap
// duration is the cutover blackout the bench tracks.
int run_handoff(const Options& opts, const notary::PrefixMap& next_map,
                std::uint8_t lo, std::uint8_t hi,
                const netio::Endpoint& source,
                const std::vector<netio::Endpoint>& targets,
                const std::vector<netio::Endpoint>& retire_from) {
  using Clock = std::chrono::steady_clock;
  std::string response;

  for (const netio::Endpoint& target : targets) {
    const auto t0 = Clock::now();
    if (!call_peer(source, netio::FrameType::kSliceSend,
                   encode_slice_send(lo, hi, target),
                   netio::FrameType::kSliceInfo, response)) {
      return 1;
    }
    std::fprintf(stderr, "stream  %.3fs  %s\n",
                 std::chrono::duration<double>(Clock::now() - t0).count(),
                 response.c_str());
  }

  const auto swap0 = Clock::now();
  if (!call_peer({opts.router_host, opts.router_port},
                 netio::FrameType::kMapUpdate,
                 notary::serialize_prefix_map(next_map),
                 netio::FrameType::kMapInfo, response)) {
    return 1;
  }
  // The ack payload is the router's (binary) authoritative map — confirm
  // it round-trips and reports the epoch we pushed.
  notary::PrefixMap applied;
  std::string error;
  if (!notary::parse_prefix_map(response, applied, error) ||
      applied.epoch != next_map.epoch) {
    std::fprintf(stderr,
                 "sm_reshard: router acked an unexpected map (%s)\n",
                 error.empty() ? "wrong epoch" : error.c_str());
    return 1;
  }
  const double swap_seconds =
      std::chrono::duration<double>(Clock::now() - swap0).count();
  std::fprintf(stderr, "swap    %.6fs  now epoch %llu\n", swap_seconds,
               static_cast<unsigned long long>(applied.epoch));

  if (opts.drain_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.drain_ms));
  }
  for (const netio::Endpoint& old : retire_from) {
    const auto t0 = Clock::now();
    const char range[2] = {static_cast<char>(lo), static_cast<char>(hi)};
    if (!call_peer(old, netio::FrameType::kSliceRetire,
                   std::string_view(range, 2), netio::FrameType::kSliceInfo,
                   response)) {
      return 1;
    }
    std::fprintf(stderr, "retire  %.3fs  %s\n",
                 std::chrono::duration<double>(Clock::now() - t0).count(),
                 response.c_str());
  }

  std::printf("resharded to epoch %llu (map swap %.6fs)\n%s",
              static_cast<unsigned long long>(next_map.epoch), swap_seconds,
              notary::render_prefix_map(next_map).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts.has_value()) {
    usage();
    return 2;
  }

  notary::PrefixMap map;
  if (!fetch_map(*opts, map)) return 1;

  if (opts->show) {
    std::fputs(notary::render_prefix_map(map).c_str(), stdout);
    return 0;
  }

  if (opts->entry >= map.entries.size()) {
    std::fprintf(stderr,
                 "sm_reshard: entry %zu out of range (map has %zu "
                 "entries)\n",
                 opts->entry, map.entries.size());
    return 2;
  }
  const notary::PrefixMapEntry old_entry = map.entries[opts->entry];
  std::string error;

  if (opts->has_split) {
    notary::PrefixMap next = map;
    if (!notary::split_prefix_map_entry(next, opts->entry, opts->to,
                                        error)) {
      std::fprintf(stderr, "sm_reshard: cannot split: %s\n", error.c_str());
      return 2;
    }
    // The upper half is the range that moves; the lower stays put.
    const notary::PrefixMapEntry& upper = next.entries[opts->entry + 1];
    std::fprintf(stderr,
                 "split entry %zu: [%02x-%02x] stays, [%02x-%02x] moves "
                 "to %zu successor(s)\n",
                 opts->entry, next.entries[opts->entry].lo,
                 next.entries[opts->entry].hi, upper.lo, upper.hi,
                 opts->to.size());
    return run_handoff(*opts, next, upper.lo, upper.hi,
                       old_entry.replicas.front(), opts->to,
                       old_entry.replicas);
  }

  // --merge: entry I's whole range moves to entry I+1's replicas.
  notary::PrefixMap next = map;
  if (!notary::merge_prefix_map_entry(next, opts->entry, error)) {
    std::fprintf(stderr, "sm_reshard: cannot merge: %s\n", error.c_str());
    return 2;
  }
  const notary::PrefixMapEntry& right = map.entries[opts->entry + 1];
  std::fprintf(stderr,
               "merge entry %zu: [%02x-%02x] moves to entry %zu's "
               "replicas\n",
               opts->entry, old_entry.lo, old_entry.hi, opts->entry + 1);
  return run_handoff(*opts, next, old_entry.lo, old_entry.hi,
                     old_entry.replicas.front(), right.replicas,
                     old_entry.replicas);
}
