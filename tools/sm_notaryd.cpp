// sm_notaryd — the certificate-notary daemon: serves "what do we know
// about this certificate?" lookups over a scan corpus, the delivery
// vehicle the paper's conclusion calls for (a client deciding whether an
// *invalid* certificate is a benign device cert can ask the notary for
// its history instead of guessing).
//
//   sm_notaryd [--in bundle.smwb | --archive archive.smar] [--port N]
//              [--threads N] [--cache-mb N] [--link]
//       Build the NotaryIndex and serve the framed binary protocol
//       (src/netio/frame.h) until SIGTERM/SIGINT, then drain cleanly.
//       With neither --in nor --archive, a world is simulated from
//       --seed/--devices/--websites/--scale (handy for demos).
//
//   sm_notaryd --bench N [--clients C] ...
//       Load-generator mode: serve on an ephemeral loopback port, drive N
//       queries from C concurrent client connections, and report QPS and
//       client-side latency percentiles plus the server's own STATS dump.
//
//   sm_notaryd --query HEX --port N [--host ADDR]
//       One-shot client: look up a fingerprint (16- or 32-byte hex) on a
//       running daemon and print the response.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/dataset.h"
#include "corpus/corpus_index.h"
#include "corpus_load.h"
#include "linking/linker.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/index.h"
#include "notary/service.h"
#include "scan/archive_io.h"
#include "simworld/world.h"
#include "simworld/world_io.h"
#include "util/hex.h"
#include "util/thread_pool.h"

namespace {

using namespace sm;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Options {
  std::string in_path;
  std::string archive_path;
  std::string bind_address = "127.0.0.1";
  std::string host = "127.0.0.1";
  std::uint16_t port = 7433;
  bool port_given = false;
  std::size_t threads = 0;
  std::size_t cache_mb = 64;
  int idle_ms = 60'000;
  bool link = false;
  std::uint64_t bench = 0;
  std::size_t clients = 4;
  std::string query_hex;
  // Simulation fallback when no input file is given.
  std::uint64_t seed = 42;
  std::size_t devices = 5000;
  std::size_t websites = 1700;
  double scale = 0.45;
};

void usage() {
  std::fputs(
      "usage: sm_notaryd [--in bundle.smwb | --archive archive.smar]\n"
      "  --port N       TCP port (default 7433; 0 = kernel-assigned)\n"
      "  --bind ADDR    bind address (default 127.0.0.1)\n"
      "  --threads N    worker event loops / index build threads (0 = hw)\n"
      "  --cache-mb N   rendered-response LRU cache size (default 64; 0 "
      "= off)\n"
      "  --idle-ms N    idle connection timeout in ms (default 60000)\n"
      "  --link         attach linked-device ids (runs the linker; needs "
      "routing,\n"
      "                 so --in or a simulated world)\n"
      "  --seed/--devices/--websites/--scale   simulate when no input "
      "given\n"
      "  --bench N      loopback load generator: N queries, then exit\n"
      "  --clients C    concurrent bench connections (default 4)\n"
      "  --query HEX    one-shot client query against a running daemon\n"
      "  --host ADDR    server address for --query (default 127.0.0.1)\n",
      stderr);
}

using tools::parse_u64_or_die;

std::optional<Options> parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--in") {
      opts.in_path = value();
    } else if (arg == "--archive") {
      opts.archive_path = value();
    } else if (arg == "--bind") {
      opts.bind_address = value();
    } else if (arg == "--host") {
      opts.host = value();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(
          parse_u64_or_die("--port", value(), 65535));
      opts.port_given = true;
    } else if (arg == "--threads") {
      opts.threads = parse_u64_or_die("--threads", value(), 4096);
    } else if (arg == "--cache-mb") {
      opts.cache_mb = parse_u64_or_die("--cache-mb", value(), 1 << 20);
    } else if (arg == "--idle-ms") {
      opts.idle_ms = static_cast<int>(
          parse_u64_or_die("--idle-ms", value(), 86'400'000));
    } else if (arg == "--link") {
      opts.link = true;
    } else if (arg == "--bench") {
      opts.bench = parse_u64_or_die("--bench", value(), ~std::uint64_t{0});
    } else if (arg == "--clients") {
      opts.clients = parse_u64_or_die("--clients", value(), 1024);
      if (opts.clients == 0) opts.clients = 1;
    } else if (arg == "--query") {
      opts.query_hex = value();
    } else if (arg == "--seed") {
      opts.seed = parse_u64_or_die("--seed", value(), ~std::uint64_t{0});
    } else if (arg == "--devices") {
      opts.devices = parse_u64_or_die("--devices", value(), 100'000'000);
    } else if (arg == "--websites") {
      opts.websites = parse_u64_or_die("--websites", value(), 100'000'000);
    } else if (arg == "--scale") {
      opts.scale = tools::parse_scale_or_die("--scale", value());
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opts;
}

// ---- blocking-socket client helpers (bench + --query modes) -------------

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool read_frame(int fd, netio::FrameDecoder& decoder, netio::Frame& out) {
  for (;;) {
    switch (decoder.next(out)) {
      case netio::DecodeStatus::kFrame:
        return true;
      case netio::DecodeStatus::kMalformed:
        return false;
      case netio::DecodeStatus::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

// ---- modes ---------------------------------------------------------------

int run_query_client(const Options& opts) {
  const auto bytes = util::hex_decode(opts.query_hex);
  if (!bytes.has_value() ||
      (bytes->size() != 16 && bytes->size() != 32)) {
    std::fprintf(stderr,
                 "--query wants 32 or 64 hex digits (16- or 32-byte "
                 "fingerprint)\n");
    return 2;
  }
  const int fd = connect_tcp(opts.host, opts.port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", opts.host.c_str(),
                 opts.port);
    return 1;
  }
  const std::string payload(bytes->begin(), bytes->end());
  netio::FrameDecoder decoder;
  netio::Frame response;
  const bool ok =
      send_all(fd, netio::encode_frame(netio::FrameType::kQuery, payload)) &&
      read_frame(fd, decoder, response);
  ::close(fd);
  if (!ok) {
    std::fprintf(stderr, "no response from %s:%u\n", opts.host.c_str(),
                 opts.port);
    return 1;
  }
  std::fputs(response.payload.c_str(), stdout);
  if (!response.payload.empty() && response.payload.back() != '\n') {
    std::fputc('\n', stdout);
  }
  if (response.type == netio::FrameType::kCertInfo) return 0;
  if (response.type == netio::FrameType::kNotFound) return 3;
  return 1;
}

int run_bench(const Options& opts, notary::NotaryService& service,
              const scan::ScanArchive& archive) {
  netio::ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral: the bench is self-contained
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload) {
    return service.handle(type, payload);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  const auto& certs = archive.certs();
  if (certs.empty()) {
    std::fprintf(stderr, "empty corpus, nothing to query\n");
    return 1;
  }
  const std::size_t clients = opts.clients;
  const std::uint64_t per_client = (opts.bench + clients - 1) / clients;
  std::atomic<std::uint64_t> failures{0};
  notary::LatencyHistogram latency;

  std::fprintf(stderr, "bench: %llu queries over %zu connections...\n",
               static_cast<unsigned long long>(per_client * clients),
               clients);
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = connect_tcp("127.0.0.1", server.port());
      if (fd < 0) {
        failures.fetch_add(per_client, std::memory_order_relaxed);
        return;
      }
      netio::FrameDecoder decoder;
      netio::Frame response;
      std::string payload(16, '\0');
      for (std::uint64_t q = 0; q < per_client; ++q) {
        const auto& fp = certs[(q * clients + c) % certs.size()].fingerprint;
        payload.assign(reinterpret_cast<const char*>(fp.data()), fp.size());
        const auto t0 = std::chrono::steady_clock::now();
        if (!send_all(fd, netio::encode_frame(netio::FrameType::kQuery,
                                              payload)) ||
            !read_frame(fd, decoder, response) ||
            response.type != netio::FrameType::kCertInfo) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      ::close(fd);
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  const auto summary = latency.summarize();
  std::printf("queries:    %llu ok, %llu failed in %.3fs\n",
              static_cast<unsigned long long>(summary.count),
              static_cast<unsigned long long>(
                  failures.load(std::memory_order_relaxed)),
              seconds);
  std::printf("throughput: %.0f queries/s (%zu client connections, %zu "
              "workers)\n",
              static_cast<double>(summary.count) / seconds, clients,
              opts.threads == 0
                  ? static_cast<std::size_t>(
                        std::thread::hardware_concurrency())
                  : opts.threads);
  std::printf("rtt:        p50 %.1fus  p99 %.1fus  max %.1fus\n",
              summary.p50_us, summary.p99_us, summary.max_us);

  // The server's own view, through the protocol like any client.
  const int fd = connect_tcp("127.0.0.1", server.port());
  if (fd >= 0) {
    netio::FrameDecoder decoder;
    netio::Frame response;
    if (send_all(fd, netio::encode_frame(netio::FrameType::kStats, "")) &&
        read_frame(fd, decoder, response)) {
      std::printf("\n%s", response.payload.c_str());
    }
    ::close(fd);
  }
  server.shutdown();
  return failures.load(std::memory_order_relaxed) == 0 ? 0 : 1;
}

int run_server(const Options& opts, notary::NotaryService& service) {
  netio::ServerConfig config;
  config.bind_address = opts.bind_address;
  config.port = opts.port;
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload) {
    return service.handle(type, payload);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr, "sm_notaryd listening on %s:%u (%zu certificates)\n",
               opts.bind_address.c_str(), server.port(),
               service.index().size());
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "signal received, draining...\n");
  server.shutdown();
  const auto counters = server.counters();
  std::fprintf(stderr,
               "drained: %llu connections, %llu frames (%llu malformed, "
               "%llu idle-closed)\n",
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.frames_handled),
               static_cast<unsigned long long>(counters.malformed_frames),
               static_cast<unsigned long long>(counters.idle_closed));
  std::fputs(service.render_stats().c_str(), stderr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts.has_value()) {
    usage();
    return 2;
  }
  if (!opts->query_hex.empty()) {
    if (!opts->port_given) {
      std::fprintf(stderr, "--query needs --port\n");
      return 2;
    }
    return run_query_client(*opts);
  }
  if (opts->threads != 0) {
    util::ThreadPool::set_global_threads(opts->threads);
  }

  tools::CorpusSpec spec;
  spec.in_path = opts->in_path;
  spec.archive_path = opts->archive_path;
  spec.seed = opts->seed;
  spec.devices = opts->devices;
  spec.websites = opts->websites;
  spec.scale = opts->scale;
  const tools::LoadedCorpus corpus = tools::load_or_simulate(spec);
  const scan::ScanArchive& archive = corpus.archive_ref();

  // One columnar spine over the corpus: the linker (under --link) and the
  // notary index both consume it; nothing below re-derives observations.
  const auto spine_begin = std::chrono::steady_clock::now();
  corpus::CorpusOptions spine_options;
  spine_options.routing = corpus.routing();
  const corpus::CorpusIndex spine(archive, spine_options);
  std::fprintf(stderr, "corpus spine: %zu certificates, %zu observations "
               "in %.2fs\n",
               spine.cert_count(), spine.observation_count(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - spine_begin)
                   .count());

  std::vector<std::vector<scan::CertId>> device_groups;
  if (opts->link) {
    if (corpus.routing() == nullptr) {
      std::fprintf(stderr,
                   "--link needs routing data (--in bundle or a simulated "
                   "world, not --archive)\n");
      return 1;
    }
    const auto begin = std::chrono::steady_clock::now();
    const analysis::DatasetIndex index(spine);
    const linking::Linker linker(index);
    const auto linked = linker.link_iteratively();
    device_groups.reserve(linked.groups.size());
    for (const auto& group : linked.groups) {
      device_groups.push_back(group.certs);
    }
    std::fprintf(stderr, "linking: %zu device groups in %.2fs\n",
                 device_groups.size(),
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count());
  }

  const auto begin = std::chrono::steady_clock::now();
  notary::NotaryIndexOptions index_options;
  if (!device_groups.empty()) {
    index_options.device_groups = &device_groups;
  }
  const notary::NotaryIndex index(spine, index_options);
  std::fprintf(stderr, "notary index: %zu certificates in %.2fs\n",
               index.size(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - begin)
                   .count());

  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = opts->cache_mb << 20;
  notary::NotaryService service(index, service_config);

  if (opts->bench > 0) return run_bench(*opts, service, archive);
  return run_server(*opts, service);
}
