// sm_notaryd — the certificate-notary daemon: serves "what do we know
// about this certificate?" lookups over a scan corpus, the delivery
// vehicle the paper's conclusion calls for (a client deciding whether an
// *invalid* certificate is a benign device cert can ask the notary for
// its history instead of guessing).
//
//   sm_notaryd [--in bundle.smwb | --archive archive.smar] [--port N]
//              [--threads N] [--cache-mb N] [--link]
//       Build the NotaryIndex and serve the framed binary protocol
//       (src/netio/frame.h) until SIGTERM/SIGINT, then drain cleanly.
//       With neither --in nor --archive, a world is simulated from
//       --seed/--devices/--websites/--scale (handy for demos).
//
//   sm_notaryd --shard-prefix LO-HI|i/n ...
//       Shard mode: serve only the certificates whose fingerprint's first
//       byte lies in [LO, HI] (i/n expands to shard i's range under an
//       n-way split). N such processes behind sm_notary_router
//       partition the corpus; key-sharing degrees are still computed over
//       the full corpus before slicing, so every shard's responses are
//       byte-identical to an unsharded daemon's. Shards are live: they
//       mount a notary::ReshardHost, so a running shard can stream a
//       prefix slice to a successor (kSliceSend), absorb one
//       (kSliceBegin/Segment/Done), and retire a handed-off range
//       (kSliceRetire) — the backend side of tools/sm_reshard.
//
//   sm_notaryd --empty ...
//       Successor mode: serve an EMPTY corpus (the loaded or simulated
//       world contributes only its routing history, for AS resolution)
//       and wait for a reshard driver to stream a slice in. Key-sharing
//       degrees and revocation statuses arrive in the slice sidecar, so
//       the successor answers byte-identically to the shard it relieves.
//
//   sm_notaryd --bench N [--clients C] ...
//       Load-generator mode: serve on an ephemeral loopback port, drive N
//       lookups from C concurrent client connections, and report
//       throughput and client-side latency percentiles. --bench-batch B
//       groups lookups into kBatchQuery frames, --bench-zipf S draws
//       fingerprints from a Zipf(S) popularity curve, and
//       --bench-open-loop QPS switches to open-loop arrivals (latency
//       measured from the scheduled send time, so queueing counts).
//
//   sm_notaryd --query HEX --port N [--host ADDR]
//       One-shot client: look up a fingerprint (16- or 32-byte hex) on a
//       running daemon and print the response.
//
//   sm_notaryd --ingest DIR [--ingest-poll-ms N] ...
//       Live-ingestion mode: serve the initial corpus, then poll DIR for
//       new `.smar` scan segments (write them atomically — rename into
//       place). Each segment is appended through corpus::LiveCorpus and
//       published as a new epoch/RCU snapshot; queries keep flowing
//       lock-free throughout, and only cached renders of certificates
//       the segment touched are invalidated. kSnapshot requests report
//       the staleness bound ("index as of scan N"). A `SEG.smar.rev`
//       sidecar next to a segment carries revocation statuses learned
//       with it (the slice-sidecar binary format); a status change for an
//       already-known certificate invalidates its cached render like any
//       other delta member.
//
//   sm_notaryd --probe N --port P [--host ADDR] [--oracle HOST:PORT] ...
//       Probe client: drive N kQuery + kRevocationQuery lookups over the
//       corpus's fingerprints against a running daemon or router and
//       count failures. With --oracle, every response is also fetched
//       from the oracle daemon and compared byte-for-byte — the
//       resharding e2e check (exit 0 only on zero failures and zero
//       mismatches).
//
//   sm_notaryd --split-segments K DIR ...
//       Segment producer: write DIR/base.smar (all but the last K scans
//       of the corpus) plus one segment-NNN.smar per held-out scan —
//       ready to serve with `--archive base.smar --ingest DIR`.
//
//   sm_notaryd --ingest-bench K ...
//       Self-contained ingestion benchmark: holds out the last K scans
//       of the corpus, serves the rest, then appends the K held-out
//       segments while loopback clients query continuously — reporting
//       per-epoch swap latency and the query p50/p99 during ingestion.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/dataset.h"
#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "corpus_load.h"
#include "linking/linker.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/reshard.h"
#include "notary/service.h"
#include "scan/archive_io.h"
#include "simworld/world.h"
#include "simworld/world_io.h"
#include "util/hex.h"
#include "util/thread_pool.h"

namespace {

using namespace sm;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Options {
  std::string in_path;
  std::string archive_path;
  std::string bind_address = "127.0.0.1";
  std::string host = "127.0.0.1";
  std::uint16_t port = 7433;
  bool port_given = false;
  std::size_t threads = 0;
  std::size_t cache_mb = 64;
  int idle_ms = 60'000;
  bool link = false;
  std::uint64_t bench = 0;
  std::size_t clients = 4;
  std::size_t bench_batch = 0;   // fingerprints per kBatchQuery; 0 = singles
  double bench_zipf = 0;         // Zipf exponent; 0 = uniform round-robin
  double bench_open_loop = 0;    // target arrival rate (qps); 0 = closed loop
  bool has_shard = false;        // --shard-prefix LO-HI
  std::uint8_t shard_lo = 0;
  std::uint8_t shard_hi = 255;
  bool empty_corpus = false;     // --empty: successor awaiting a slice
  std::uint64_t probe = 0;       // --probe N: e2e probe client
  std::string oracle;            // --oracle HOST:PORT for --probe
  std::string query_hex;
  std::string ingest_dir;
  int ingest_poll_ms = 500;
  std::uint64_t ingest_bench = 0;
  std::uint64_t split_count = 0;
  std::string split_dir;
  // Simulation fallback when no input file is given.
  std::uint64_t seed = 42;
  std::size_t devices = 5000;
  std::size_t websites = 1700;
  double scale = 0.45;
};

void usage() {
  std::fputs(
      "usage: sm_notaryd [--in bundle.smwb | --archive archive.smar]\n"
      "  --port N       TCP port (default 7433; 0 = kernel-assigned)\n"
      "  --bind ADDR    bind address (default 127.0.0.1)\n"
      "  --threads N    worker event loops / index build threads (0 = hw)\n"
      "  --cache-mb N   rendered-response LRU cache size (default 64; 0 "
      "= off)\n"
      "  --idle-ms N    idle connection timeout in ms (default 60000)\n"
      "  --link         attach linked-device ids (runs the linker; needs "
      "routing,\n"
      "                 so --in or a simulated world)\n"
      "  --seed/--devices/--websites/--scale   simulate when no input "
      "given\n"
      "  --shard-prefix LO-HI  serve only certificates whose fingerprint\n"
      "                 first byte is in [LO, HI] (decimal 0-255; i/n\n"
      "                 means shard i's range under an n-way split) —\n"
      "                 the backend side of sm_notary_router; key-sharing\n"
      "                 degrees still reflect the full corpus; the shard\n"
      "                 accepts the kSlice* reshard frames (sm_reshard)\n"
      "  --empty        successor mode: serve an empty corpus (routing\n"
      "                 history only) and wait for a reshard slice\n"
      "  --probe N      probe client: N kQuery+kRevocationQuery lookups\n"
      "                 against --host/--port; exits 0 only on zero\n"
      "                 failures (and zero oracle mismatches)\n"
      "  --oracle H:P   also fetch every --probe response from this\n"
      "                 unsharded daemon and require byte-identity\n"
      "  --bench N      loopback load generator: N queries, then exit\n"
      "  --clients C    concurrent bench connections (default 4)\n"
      "  --bench-batch M      group M fingerprints per kBatchQuery frame\n"
      "  --bench-zipf S       Zipf(S)-distributed fingerprint popularity\n"
      "                 (S > 0, e.g. 0.99) instead of a uniform sweep\n"
      "  --bench-open-loop R  open-loop arrivals at R requests/s: sends\n"
      "                 are scheduled, latency includes queue delay\n"
      "  --query HEX    one-shot client query against a running daemon:\n"
      "                 prints the knowledge render plus the revocation\n"
      "                 status line; exits 0 found, 3 not in the index,\n"
      "                 2 bad hex, 1 connect/transport failure\n"
      "  --host ADDR    server address for --query (default 127.0.0.1)\n"
      "  --ingest DIR   live mode: poll DIR for new .smar segments and\n"
      "                 publish each as a fresh index epoch (no --link)\n"
      "  --ingest-poll-ms N  directory poll interval (default 500)\n"
      "  --ingest-bench K    append the corpus's last K scans as live\n"
      "                 segments under loopback query load; report swap\n"
      "                 latency and query p99 during ingestion\n"
      "  --split-segments K DIR  write DIR/base.smar (all but the last K\n"
      "                 scans) plus one segment-NNN.smar per held-out\n"
      "                 scan, then exit — the producer side of --ingest\n",
      stderr);
}

using tools::parse_u64_or_die;

double parse_positive_double_or_die(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value > 0) || value > 1e9) {
    std::fprintf(stderr, "%s wants a positive number, got \"%s\"\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

std::pair<std::uint8_t, std::uint8_t> parse_prefix_range_or_die(
    const char* text) {
  // i/n: shard i of n, the range the router expects backend i to own.
  const char* slash = std::strchr(text, '/');
  if (slash != nullptr && slash != text && slash[1] != '\0') {
    const std::uint64_t n = parse_u64_or_die("--shard-prefix", slash + 1,
                                             256);
    const std::uint64_t i =
        parse_u64_or_die("--shard-prefix", std::string(text, slash).c_str(),
                         255);
    if (n >= 1 && i < n) {
      return {static_cast<std::uint8_t>(i * 256 / n),
              static_cast<std::uint8_t>((i + 1) * 256 / n - 1)};
    }
  }
  const char* dash = std::strchr(text, '-');
  if (dash != nullptr && dash != text && dash[1] != '\0') {
    const std::uint64_t lo =
        parse_u64_or_die("--shard-prefix", std::string(text, dash).c_str(),
                         255);
    const std::uint64_t hi = parse_u64_or_die("--shard-prefix", dash + 1,
                                              255);
    if (lo <= hi) {
      return {static_cast<std::uint8_t>(lo), static_cast<std::uint8_t>(hi)};
    }
  }
  std::fprintf(stderr,
               "--shard-prefix wants LO-HI (first-byte range) or i/n "
               "(shard i of n, i < n, n in 1..256), got \"%s\"\n",
               text);
  usage();
  std::exit(2);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--in") {
      opts.in_path = value();
    } else if (arg == "--archive") {
      opts.archive_path = value();
    } else if (arg == "--bind") {
      opts.bind_address = value();
    } else if (arg == "--host") {
      opts.host = value();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(
          parse_u64_or_die("--port", value(), 65535));
      opts.port_given = true;
    } else if (arg == "--threads") {
      opts.threads = parse_u64_or_die("--threads", value(), 4096);
    } else if (arg == "--cache-mb") {
      opts.cache_mb = parse_u64_or_die("--cache-mb", value(), 1 << 20);
    } else if (arg == "--idle-ms") {
      opts.idle_ms = static_cast<int>(
          parse_u64_or_die("--idle-ms", value(), 86'400'000));
    } else if (arg == "--link") {
      opts.link = true;
    } else if (arg == "--bench") {
      opts.bench = parse_u64_or_die("--bench", value(), ~std::uint64_t{0});
    } else if (arg == "--clients") {
      opts.clients = parse_u64_or_die("--clients", value(), 1024);
      if (opts.clients == 0) opts.clients = 1;
    } else if (arg == "--bench-batch") {
      opts.bench_batch = parse_u64_or_die("--bench-batch", value(),
                                          notary::kMaxBatchEntries);
    } else if (arg == "--bench-zipf") {
      opts.bench_zipf = parse_positive_double_or_die("--bench-zipf", value());
    } else if (arg == "--bench-open-loop") {
      opts.bench_open_loop =
          parse_positive_double_or_die("--bench-open-loop", value());
    } else if (arg == "--shard-prefix") {
      std::tie(opts.shard_lo, opts.shard_hi) =
          parse_prefix_range_or_die(value());
      opts.has_shard = true;
    } else if (arg == "--empty") {
      opts.empty_corpus = true;
    } else if (arg == "--probe") {
      opts.probe = parse_u64_or_die("--probe", value(), ~std::uint64_t{0});
      if (opts.probe == 0) opts.probe = 1;
    } else if (arg == "--oracle") {
      opts.oracle = value();
    } else if (arg == "--query") {
      opts.query_hex = value();
    } else if (arg == "--ingest") {
      opts.ingest_dir = value();
    } else if (arg == "--ingest-poll-ms") {
      opts.ingest_poll_ms = static_cast<int>(
          parse_u64_or_die("--ingest-poll-ms", value(), 3'600'000));
      if (opts.ingest_poll_ms == 0) opts.ingest_poll_ms = 1;
    } else if (arg == "--split-segments") {
      opts.split_count =
          parse_u64_or_die("--split-segments", value(), 100'000);
      opts.split_dir = value();
    } else if (arg == "--ingest-bench") {
      opts.ingest_bench =
          parse_u64_or_die("--ingest-bench", value(), 100'000);
    } else if (arg == "--seed") {
      opts.seed = parse_u64_or_die("--seed", value(), ~std::uint64_t{0});
    } else if (arg == "--devices") {
      opts.devices = parse_u64_or_die("--devices", value(), 100'000'000);
    } else if (arg == "--websites") {
      opts.websites = parse_u64_or_die("--websites", value(), 100'000'000);
    } else if (arg == "--scale") {
      opts.scale = tools::parse_scale_or_die("--scale", value());
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opts;
}

// ---- blocking-socket client helpers (bench + --query modes) -------------

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool read_frame(int fd, netio::FrameDecoder& decoder, netio::Frame& out) {
  for (;;) {
    switch (decoder.next(out)) {
      case netio::DecodeStatus::kFrame:
        return true;
      case netio::DecodeStatus::kMalformed:
        return false;
      case netio::DecodeStatus::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

// ---- modes ---------------------------------------------------------------

int run_query_client(const Options& opts) {
  const auto bytes = util::hex_decode(opts.query_hex);
  if (!bytes.has_value() ||
      (bytes->size() != 16 && bytes->size() != 32)) {
    std::fprintf(stderr,
                 "--query wants 32 or 64 hex digits (16- or 32-byte "
                 "fingerprint)\n");
    return 2;
  }
  const int fd = connect_tcp(opts.host, opts.port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", opts.host.c_str(),
                 opts.port);
    return 1;
  }
  // Both requests ride one connection: the knowledge render, then the
  // revocation verdict. Exit codes stay distinct so scripts can branch:
  // 0 found, 3 not in the index, 2 bad hex, 1 transport/protocol failure.
  const std::string payload(bytes->begin(), bytes->end());
  netio::FrameDecoder decoder;
  netio::Frame response;
  const bool ok =
      send_all(fd, netio::encode_frame(netio::FrameType::kQuery, payload)) &&
      read_frame(fd, decoder, response);
  if (!ok) {
    ::close(fd);
    std::fprintf(stderr, "no response from %s:%u\n", opts.host.c_str(),
                 opts.port);
    return 1;
  }
  std::fputs(response.payload.c_str(), stdout);
  if (!response.payload.empty() && response.payload.back() != '\n') {
    std::fputc('\n', stdout);
  }
  if (response.type == netio::FrameType::kNotFound) {
    ::close(fd);
    return 3;
  }
  if (response.type != netio::FrameType::kCertInfo) {
    ::close(fd);
    return 1;
  }
  netio::Frame revocation;
  const bool rev_ok =
      send_all(fd, netio::encode_frame(netio::FrameType::kRevocationQuery,
                                       payload)) &&
      read_frame(fd, decoder, revocation);
  ::close(fd);
  if (!rev_ok) {
    std::fprintf(stderr, "no revocation response from %s:%u\n",
                 opts.host.c_str(), opts.port);
    return 1;
  }
  if (revocation.type != netio::FrameType::kRevocationInfo) return 1;
  // The kRevocationInfo body repeats the fingerprint line already printed
  // above; emit only its "revocation: <status>" line.
  const std::size_t line = revocation.payload.find("revocation: ");
  std::fputs(line == std::string::npos ? revocation.payload.c_str()
                                       : revocation.payload.c_str() + line,
             stdout);
  return 0;
}

int run_bench(const Options& opts, notary::NotaryService& service,
              const scan::ScanArchive& archive) {
  netio::ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral: the bench is self-contained
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload,
                                             std::string& out) {
    service.handle_into(type, payload, out);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  const auto& certs = archive.certs();
  if (certs.empty()) {
    std::fprintf(stderr, "empty corpus, nothing to query\n");
    return 1;
  }
  const std::size_t clients = opts.clients;
  const std::size_t batch = std::max<std::size_t>(opts.bench_batch, 1);
  // Round requests up so every client issues whole frames.
  const std::uint64_t frames_per_client =
      (opts.bench + clients * batch - 1) / (clients * batch);

  // Zipf(S) popularity over certificate ranks: one shared CDF, sampled
  // per client by binary search. Rank r (1-based) gets weight r^-S —
  // with S near 1 a few fingerprints dominate, which is what a notary
  // fronting real TLS clients would see (and what makes the LRU earn
  // its keep).
  std::vector<double> zipf_cdf;
  if (opts.bench_zipf > 0) {
    zipf_cdf.resize(certs.size());
    double total = 0;
    for (std::size_t r = 0; r < certs.size(); ++r) {
      total += std::pow(static_cast<double>(r + 1), -opts.bench_zipf);
      zipf_cdf[r] = total;
    }
    for (double& v : zipf_cdf) v /= total;
  }

  // Open-loop arrivals: each client sends on a fixed schedule regardless
  // of responses, so latency includes the queueing a closed loop hides
  // (coordinated omission). Latency is measured from the *scheduled*
  // send time.
  const std::uint64_t interval_ns =
      opts.bench_open_loop > 0
          ? static_cast<std::uint64_t>(1e9 * static_cast<double>(clients) /
                                       opts.bench_open_loop)
          : 0;

  std::atomic<std::uint64_t> failures{0};
  notary::LatencyHistogram latency;

  std::fprintf(
      stderr, "bench: %llu lookups over %zu connections (batch %zu%s%s)...\n",
      static_cast<unsigned long long>(frames_per_client * clients * batch),
      clients, batch, opts.bench_zipf > 0 ? ", zipf" : "",
      interval_ns > 0 ? ", open-loop" : "");
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int fd = connect_tcp("127.0.0.1", server.port());
      if (fd < 0) {
        failures.fetch_add(frames_per_client * batch,
                           std::memory_order_relaxed);
        return;
      }
      netio::FrameDecoder decoder(32u << 20);  // batch responses are big
      netio::Frame response;
      std::mt19937_64 rng(0x5eed0000 + c);
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      std::vector<scan::CertFingerprint> fps(batch);
      std::uint64_t serial = 0;
      const auto pick = [&]() -> const scan::CertFingerprint& {
        std::size_t index;
        if (!zipf_cdf.empty()) {
          index = static_cast<std::size_t>(
              std::upper_bound(zipf_cdf.begin(), zipf_cdf.end(),
                               uniform(rng)) -
              zipf_cdf.begin());
          if (index >= certs.size()) index = certs.size() - 1;
        } else {
          index = (serial * clients + c) % certs.size();
        }
        ++serial;
        return certs[index].fingerprint;
      };
      for (std::uint64_t q = 0; q < frames_per_client; ++q) {
        std::string request;
        if (opts.bench_batch > 0) {
          for (std::size_t i = 0; i < batch; ++i) fps[i] = pick();
          request = netio::encode_frame(netio::FrameType::kBatchQuery,
                                        notary::encode_batch_query(fps));
        } else {
          const auto& fp = pick();
          request = netio::encode_frame(
              netio::FrameType::kQuery,
              std::string_view(reinterpret_cast<const char*>(fp.data()),
                               fp.size()));
        }
        auto t0 = std::chrono::steady_clock::now();
        if (interval_ns > 0) {
          t0 = begin + std::chrono::nanoseconds(q * interval_ns +
                                                c * interval_ns / clients);
          std::this_thread::sleep_until(t0);
        }
        const netio::FrameType want = opts.bench_batch > 0
                                          ? netio::FrameType::kBatchInfo
                                          : netio::FrameType::kCertInfo;
        if (!send_all(fd, request) || !read_frame(fd, decoder, response) ||
            response.type != want) {
          failures.fetch_add(batch, std::memory_order_relaxed);
          continue;
        }
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      ::close(fd);
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  const auto summary = latency.summarize();
  const std::uint64_t lookups_ok =
      summary.count * static_cast<std::uint64_t>(batch);
  std::printf("lookups:    %llu ok, %llu failed in %.3fs\n",
              static_cast<unsigned long long>(lookups_ok),
              static_cast<unsigned long long>(
                  failures.load(std::memory_order_relaxed)),
              seconds);
  std::printf("throughput: %.0f lookups/s, %.0f frames/s (%zu client "
              "connections, %zu workers)\n",
              static_cast<double>(lookups_ok) / seconds,
              static_cast<double>(summary.count) / seconds, clients,
              opts.threads == 0
                  ? static_cast<std::size_t>(
                        std::thread::hardware_concurrency())
                  : opts.threads);
  std::printf("rtt:        p50 %.1fus  p99 %.1fus  max %.1fus%s\n",
              summary.p50_us, summary.p99_us, summary.max_us,
              interval_ns > 0 ? "  (from scheduled send)" : "");

  // The server's own view, through the protocol like any client.
  const int fd = connect_tcp("127.0.0.1", server.port());
  if (fd >= 0) {
    netio::FrameDecoder decoder;
    netio::Frame response;
    if (send_all(fd, netio::encode_frame(netio::FrameType::kStats, "")) &&
        read_frame(fd, decoder, response)) {
      std::printf("\n%s", response.payload.c_str());
    }
    ::close(fd);
  }
  server.shutdown();
  return failures.load(std::memory_order_relaxed) == 0 ? 0 : 1;
}

// ---- live ingestion ------------------------------------------------------

// Builds the notary index over one published corpus epoch (no linking:
// the iterative linker is corpus-global, so live mode serves observation
// history without linked-device ids). The snapshot's sidecar maps —
// revocation statuses and injected full-corpus key-sharing degrees —
// ride into every epoch's index, not just the first.
std::shared_ptr<const notary::NotaryIndex> build_epoch_index(
    const corpus::LiveSnapshot& snap) {
  notary::NotaryIndexOptions options;
  if (snap.key_counts) options.key_counts = snap.key_counts.get();
  if (snap.statuses) options.revocation_statuses = snap.statuses.get();
  return std::make_shared<const notary::NotaryIndex>(*snap.spine, options);
}

// Moves the archive out of a loaded corpus (the routing history, when
// present, stays behind in `corpus.world` and remains borrowable).
scan::ScanArchive take_archive(tools::LoadedCorpus& corpus) {
  return corpus.world.has_value() ? std::move(corpus.world->archive)
                                  : std::move(corpus.archive);
}

// The --ingest poller: watches a directory for new .smar segments,
// appends each through the LiveCorpus, and publishes the fresh epoch to
// the service. Files are processed once, in name order — producers must
// write segments atomically (write elsewhere, rename into place).
void poll_ingest_dir(const Options& opts, corpus::LiveCorpus& live,
                     notary::NotaryService& service,
                     std::atomic<bool>& stop) {
  std::set<std::string> seen;
  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<std::string> fresh;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(opts.ingest_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      const std::filesystem::path& path = it->path();
      if (path.extension() != ".smar" || !it->is_regular_file(ec)) continue;
      if (seen.contains(path.string())) continue;
      fresh.push_back(path.string());
    }
    if (ec) {
      std::fprintf(stderr, "ingest: cannot read %s: %s\n",
                   opts.ingest_dir.c_str(), ec.message().c_str());
    }
    std::sort(fresh.begin(), fresh.end());
    for (const std::string& path : fresh) {
      if (stop.load(std::memory_order_relaxed)) return;
      seen.insert(path);
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "ingest: cannot open %s\n", path.c_str());
        continue;
      }
      // An optional SEG.smar.rev sidecar carries revocation statuses
      // learned with the segment (slice-sidecar binary format; the key
      // count section is unused here).
      corpus::RevocationStatusMap segment_statuses;
      const corpus::RevocationStatusMap* statuses_arg = nullptr;
      std::error_code rev_ec;
      const std::string rev_path = path + ".rev";
      if (std::filesystem::is_regular_file(rev_path, rev_ec)) {
        std::ifstream rev(rev_path, std::ios::binary);
        std::ostringstream bytes;
        bytes << rev.rdbuf();
        corpus::KeyCountMap unused_counts;
        std::string rev_error;
        if (rev && notary::parse_slice_sidecar(bytes.view(), unused_counts,
                                               segment_statuses, rev_error)) {
          statuses_arg = &segment_statuses;
        } else {
          std::fprintf(stderr, "ingest: ignoring bad sidecar %s: %s\n",
                       rev_path.c_str(), rev_error.c_str());
        }
      }
      const auto begin = std::chrono::steady_clock::now();
      const corpus::AppendResult result = live.append_segment(in, statuses_arg);
      if (!result.ok) {
        std::fprintf(stderr, "ingest: %s rejected: %s\n", path.c_str(),
                     result.error.c_str());
        continue;
      }
      const auto snap = live.snapshot();
      service.publish(build_epoch_index(*snap), snap->delta);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - begin)
                                 .count();
      std::fprintf(stderr,
                   "ingest: %s -> epoch %llu (+%zu scans, +%zu certs, "
                   "%zu certs changed) in %.3fs\n",
                   path.c_str(),
                   static_cast<unsigned long long>(snap->epoch),
                   result.scans_appended, result.new_certs,
                   result.delta_size, seconds);
    }
    for (int waited = 0;
         waited < opts.ingest_poll_ms &&
         !stop.load(std::memory_order_relaxed);
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

// The producer side of --ingest: split the corpus into a base archive
// plus one single-scan segment per held-out scan, written with the
// atomic write-then-rename protocol the ingest poller documents.
int run_split_segments(const Options& opts, tools::LoadedCorpus corpus) {
  const scan::ScanArchive full = take_archive(corpus);
  const std::size_t total = full.scans().size();
  if (opts.split_count >= total) {
    std::fprintf(stderr,
                 "--split-segments: corpus has %zu scans, cannot hold "
                 "out %llu\n",
                 total,
                 static_cast<unsigned long long>(opts.split_count));
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(opts.split_dir, ec);
  if (ec) {
    std::fprintf(stderr, "--split-segments: cannot create %s: %s\n",
                 opts.split_dir.c_str(), ec.message().c_str());
    return 2;
  }
  const std::size_t base_count =
      total - static_cast<std::size_t>(opts.split_count);
  const corpus::RevocationStatusMap* statuses =
      corpus.world.has_value() && !corpus.world->revocation.statuses.empty()
          ? &corpus.world->revocation.statuses
          : nullptr;
  const auto write = [&](const scan::ScanArchive& archive,
                         const std::string& name) {
    const auto path = std::filesystem::path(opts.split_dir) / name;
    // Revocation sidecar first: the ingest poller keys on the .smar
    // appearing, so NAME.smar.rev must already be in place by then.
    if (statuses != nullptr) {
      corpus::RevocationStatusMap subset;
      for (const scan::CertRecord& cert : archive.certs()) {
        const auto it = statuses->find(cert.fingerprint);
        if (it != statuses->end()) subset.emplace(it->first, it->second);
      }
      if (!subset.empty()) {
        std::ofstream rev(path.string() + ".rev",
                          std::ios::binary | std::ios::trunc);
        const std::string blob =
            notary::serialize_slice_sidecar({}, subset);
        if (!rev.write(blob.data(),
                       static_cast<std::streamsize>(blob.size()))) {
          std::fprintf(stderr, "cannot write %s.rev\n", path.c_str());
          return false;
        }
      }
    }
    const std::string tmp = path.string() + ".tmp";
    if (!scan::save_archive_file(archive, tmp)) {
      std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
      return false;
    }
    std::error_code rename_ec;
    std::filesystem::rename(tmp, path, rename_ec);
    if (rename_ec) {
      std::fprintf(stderr, "cannot rename %s: %s\n", tmp.c_str(),
                   rename_ec.message().c_str());
      return false;
    }
    std::fprintf(stderr, "wrote %s: %zu certs, %zu scans\n",
                 path.c_str(), archive.certs().size(),
                 archive.scans().size());
    return true;
  };
  if (!write(corpus::extract_segment(full, 0, base_count), "base.smar")) {
    return 1;
  }
  for (std::size_t k = 0; k < opts.split_count; ++k) {
    char name[40];
    std::snprintf(name, sizeof name, "segment-%03zu.smar", k + 1);
    if (!write(corpus::extract_segment(full, base_count + k,
                                       base_count + k + 1),
               name)) {
      return 1;
    }
  }
  return 0;
}

int run_ingest_server(const Options& opts, tools::LoadedCorpus corpus) {
  std::error_code ec;
  if (!std::filesystem::is_directory(opts.ingest_dir, ec)) {
    std::fprintf(stderr, "--ingest: %s is not a directory\n",
                 opts.ingest_dir.c_str());
    return 2;
  }
  const net::RoutingHistory* routing = corpus.routing();
  const auto begin = std::chrono::steady_clock::now();
  // Seed the revocation sidecar from the world when it carries one; the
  // .smar.rev segment sidecars update it epoch over epoch.
  corpus::RevocationStatusMap initial_statuses;
  if (corpus.world.has_value()) {
    initial_statuses = corpus.world->revocation.statuses;
  }
  corpus::LiveCorpus live(take_archive(corpus), routing, nullptr,
                          std::move(initial_statuses));
  const auto snap0 = live.snapshot();
  std::fprintf(stderr, "live corpus: epoch 0 over %zu scans, %zu "
               "certificates in %.2fs\n",
               snap0->spine->scan_count(), snap0->spine->cert_count(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - begin)
                   .count());

  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = opts.cache_mb << 20;
  notary::NotaryService service(build_epoch_index(*snap0), service_config);

  netio::ServerConfig config;
  config.bind_address = opts.bind_address;
  config.port = opts.port;
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload,
                                             std::string& out) {
    service.handle_into(type, payload, out);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr,
               "sm_notaryd listening on %s:%u, ingesting %s every %dms\n",
               opts.bind_address.c_str(), server.port(),
               opts.ingest_dir.c_str(), opts.ingest_poll_ms);

  std::atomic<bool> stop{false};
  std::thread poller([&] { poll_ingest_dir(opts, live, service, stop); });
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "signal received, draining...\n");
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  server.shutdown();
  std::fputs(service.render_stats().c_str(), stderr);
  std::fputs(service.render_snapshot_info().c_str(), stderr);
  return 0;
}

int run_ingest_bench(const Options& opts, tools::LoadedCorpus corpus) {
  const net::RoutingHistory* routing = corpus.routing();
  const scan::ScanArchive full = take_archive(corpus);
  const std::size_t segments = opts.ingest_bench;
  if (full.scans().size() < segments + 1) {
    std::fprintf(stderr,
                 "--ingest-bench %zu needs a corpus with more than %zu "
                 "scans (have %zu)\n",
                 segments, segments, full.scans().size());
    return 2;
  }
  const std::size_t base_scans = full.scans().size() - segments;

  // Serialize the held-out scans as standalone segments up front, so the
  // timed loop measures ingestion (parse + copy-on-append + spine/index
  // rebuild + publish), not segment production.
  std::vector<std::string> segment_bytes;
  segment_bytes.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    std::ostringstream out;
    if (!scan::save_archive(
            corpus::extract_segment(full, base_scans + i, base_scans + i + 1),
            out)) {
      std::fprintf(stderr, "failed to serialize segment %zu\n", i);
      return 1;
    }
    segment_bytes.push_back(std::move(out).str());
  }

  corpus::LiveCorpus live(corpus::extract_segment(full, 0, base_scans),
                          routing, nullptr);
  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = opts.cache_mb << 20;
  notary::NotaryService service(build_epoch_index(*live.snapshot()),
                                service_config);

  netio::ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral: the bench is self-contained
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload,
                                             std::string& out) {
    service.handle_into(type, payload, out);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  // Query load for the whole run: every client walks the *full* corpus's
  // fingerprints, so lookups hit certs from both the base and the not-
  // yet-appended segments (kNotFound until their epoch lands).
  std::atomic<bool> done{false};
  std::atomic<bool> ingesting{false};
  std::atomic<std::uint64_t> failures{0};
  notary::LatencyHistogram overall;
  notary::LatencyHistogram during_ingest;
  std::vector<std::thread> clients;
  clients.reserve(opts.clients);
  for (std::size_t c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_tcp("127.0.0.1", server.port());
      if (fd < 0) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      netio::FrameDecoder decoder;
      netio::Frame response;
      std::string payload(16, '\0');
      const auto& certs = full.certs();
      for (std::uint64_t q = c * 131;
           !done.load(std::memory_order_relaxed); ++q) {
        const auto& fp = certs[q % certs.size()].fingerprint;
        payload.assign(reinterpret_cast<const char*>(fp.data()), fp.size());
        const auto t0 = std::chrono::steady_clock::now();
        if (!send_all(fd, netio::encode_frame(netio::FrameType::kQuery,
                                              payload)) ||
            !read_frame(fd, decoder, response) ||
            (response.type != netio::FrameType::kCertInfo &&
             response.type != netio::FrameType::kNotFound)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const auto nanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        overall.record(nanos);
        if (ingesting.load(std::memory_order_relaxed)) {
          during_ingest.record(nanos);
        }
      }
      ::close(fd);
    });
  }

  std::fprintf(stderr,
               "ingest-bench: %zu base scans + %zu segments, %zu query "
               "connections\n",
               base_scans, segments, opts.clients);
  std::vector<double> swap_seconds;
  swap_seconds.reserve(segments);
  bool append_failed = false;
  for (std::size_t i = 0; i < segments; ++i) {
    // Let the query load run against the settled epoch between swaps.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::istringstream in(segment_bytes[i]);
    ingesting.store(true, std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const corpus::AppendResult result = live.append_segment(in);
    if (!result.ok) {
      std::fprintf(stderr, "append %zu failed: %s\n", i,
                   result.error.c_str());
      append_failed = true;
      ingesting.store(false, std::memory_order_relaxed);
      break;
    }
    const auto snap = live.snapshot();
    service.publish(build_epoch_index(*snap), snap->delta);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    ingesting.store(false, std::memory_order_relaxed);
    swap_seconds.push_back(seconds);
    std::fprintf(stderr,
                 "  epoch %llu: +%zu certs, %zu changed, swap %.3fs\n",
                 static_cast<unsigned long long>(snap->epoch),
                 result.new_certs, result.delta_size, seconds);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_relaxed);
  for (auto& thread : clients) thread.join();
  server.shutdown();

  double swap_total = 0;
  double swap_max = 0;
  for (const double s : swap_seconds) {
    swap_total += s;
    swap_max = std::max(swap_max, s);
  }
  const auto all = overall.summarize();
  const auto during = during_ingest.summarize();
  std::printf("segments:   %zu appended, final epoch %llu\n",
              swap_seconds.size(),
              static_cast<unsigned long long>(live.epochs_published()));
  if (!swap_seconds.empty()) {
    std::printf("swap:       mean %.3fs  max %.3fs\n",
                swap_total / static_cast<double>(swap_seconds.size()),
                swap_max);
  }
  std::printf("queries:    %llu total (%llu failed)\n",
              static_cast<unsigned long long>(all.count),
              static_cast<unsigned long long>(
                  failures.load(std::memory_order_relaxed)));
  std::printf("rtt:        p50 %.1fus  p99 %.1fus  max %.1fus\n",
              all.p50_us, all.p99_us, all.max_us);
  std::printf("rtt-during-ingest: %llu queries, p50 %.1fus  p99 %.1fus\n",
              static_cast<unsigned long long>(during.count), during.p50_us,
              during.p99_us);
  std::printf("\n%s%s", service.render_stats().c_str(),
              service.render_snapshot_info().c_str());
  return (!append_failed &&
          failures.load(std::memory_order_relaxed) == 0)
             ? 0
             : 1;
}

// --shard-prefix / --empty: a live, reshardable backend. The slice lives
// in a LiveCorpus (so kSliceBegin/Segment/Done merges and kSliceRetire
// publish fresh epochs) and a notary::ReshardHost intercepts the reshard
// control frames in front of the NotaryService.
int run_live_server(const Options& opts, tools::LoadedCorpus corpus) {
  const net::RoutingHistory* routing = corpus.routing();
  scan::ScanArchive initial;
  corpus::RevocationStatusMap statuses;
  corpus::KeyCountMap key_counts;
  if (opts.empty_corpus) {
    std::fprintf(stderr,
                 "successor: empty corpus, awaiting a reshard slice\n");
  } else {
    const scan::ScanArchive& full = corpus.archive_ref();
    // Key-sharing degree is a property of the FULL corpus (an SPKI's
    // other holders live on other shards): count before slicing and
    // carry the counts as this slice's sidecar, so they survive merges
    // and retires.
    key_counts.reserve(full.certs().size());
    for (const scan::CertRecord& cert : full.certs()) {
      ++key_counts[cert.key_fingerprint];
    }
    if (corpus.world.has_value()) {
      statuses = corpus.world->revocation.statuses;
    }
    initial =
        corpus::extract_prefix_slice(full, opts.shard_lo, opts.shard_hi);
    std::fprintf(stderr, "shard: prefix %u-%u, %zu of %zu certificates\n",
                 static_cast<unsigned>(opts.shard_lo),
                 static_cast<unsigned>(opts.shard_hi),
                 initial.certs().size(), full.certs().size());
  }

  const auto begin = std::chrono::steady_clock::now();
  corpus::LiveCorpus live(std::move(initial), routing, nullptr,
                          std::move(statuses), std::move(key_counts));
  const auto snap0 = live.snapshot();
  std::fprintf(stderr,
               "live corpus: epoch 0 over %zu scans, %zu certificates in "
               "%.2fs\n",
               snap0->spine->scan_count(), snap0->spine->cert_count(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - begin)
                   .count());

  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = opts.cache_mb << 20;
  notary::NotaryService service(build_epoch_index(*snap0), service_config);
  notary::ReshardHost reshard(live, service);

  if (opts.bench > 0) return run_bench(opts, service, *snap0->archive);

  netio::ServerConfig config;
  config.bind_address = opts.bind_address;
  config.port = opts.port;
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(
      config, [&service, &reshard](netio::FrameType type,
                                   std::string_view payload,
                                   std::string& out) {
        if (!reshard.handle(type, payload, out)) {
          service.handle_into(type, payload, out);
        }
      });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr,
               "sm_notaryd listening on %s:%u (%zu certificates, "
               "reshard-capable)\n",
               opts.bind_address.c_str(), server.port(),
               service.index().size());
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "signal received, draining...\n");
  server.shutdown();
  std::fputs(service.render_stats().c_str(), stderr);
  std::fputs(service.render_snapshot_info().c_str(), stderr);
  return 0;
}

// ---- probe client (--probe) ----------------------------------------------

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str() + colon + 1, &end,
                                           10);
  if (*end != '\0' || value == 0 || value > 65535) return false;
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

// The resharding e2e check: hammer a router (or daemon) with kQuery +
// kRevocationQuery lookups and — with --oracle — require byte-identical
// responses from an unsharded daemon. Any transport failure or mismatch
// is fatal; a resharding deployment must mask the handoff completely.
int run_probe_client(const Options& opts, const scan::ScanArchive& archive) {
  const auto& certs = archive.certs();
  if (certs.empty()) {
    std::fprintf(stderr, "--probe: empty corpus, nothing to query\n");
    return 2;
  }
  std::string oracle_host;
  std::uint16_t oracle_port = 0;
  if (!opts.oracle.empty() &&
      !parse_host_port(opts.oracle, oracle_host, oracle_port)) {
    std::fprintf(stderr, "--oracle wants HOST:PORT, got \"%s\"\n",
                 opts.oracle.c_str());
    return 2;
  }

  const int fd = connect_tcp(opts.host, opts.port);
  if (fd < 0) {
    std::fprintf(stderr, "--probe: cannot connect to %s:%u\n",
                 opts.host.c_str(), opts.port);
    return 1;
  }
  int oracle_fd = -1;
  if (oracle_port != 0) {
    oracle_fd = connect_tcp(oracle_host, oracle_port);
    if (oracle_fd < 0) {
      std::fprintf(stderr, "--probe: cannot connect to oracle %s:%u\n",
                   oracle_host.c_str(), oracle_port);
      ::close(fd);
      return 1;
    }
  }

  netio::FrameDecoder decoder(32u << 20);
  netio::FrameDecoder oracle_decoder(32u << 20);
  netio::Frame response;
  netio::Frame oracle_response;
  std::uint64_t sent = 0;
  std::uint64_t mismatches = 0;
  const netio::FrameType kinds[2] = {netio::FrameType::kQuery,
                                     netio::FrameType::kRevocationQuery};
  for (std::uint64_t q = 0; q < opts.probe; ++q) {
    const auto& fp = certs[q % certs.size()].fingerprint;
    const std::string_view payload(
        reinterpret_cast<const char*>(fp.data()), fp.size());
    for (const netio::FrameType kind : kinds) {
      ++sent;
      if (!send_all(fd, netio::encode_frame(kind, payload)) ||
          !read_frame(fd, decoder, response)) {
        std::fprintf(stderr,
                     "--probe: transport failure on query %llu of %llu\n",
                     static_cast<unsigned long long>(sent),
                     static_cast<unsigned long long>(opts.probe * 2));
        ::close(fd);
        if (oracle_fd >= 0) ::close(oracle_fd);
        return 1;
      }
      if (response.type == netio::FrameType::kError) {
        std::fprintf(stderr, "--probe: query %llu answered kError: %s\n",
                     static_cast<unsigned long long>(sent),
                     response.payload.c_str());
        ::close(fd);
        if (oracle_fd >= 0) ::close(oracle_fd);
        return 1;
      }
      if (oracle_fd < 0) continue;
      if (!send_all(oracle_fd, netio::encode_frame(kind, payload)) ||
          !read_frame(oracle_fd, oracle_decoder, oracle_response)) {
        std::fprintf(stderr, "--probe: oracle transport failure\n");
        ::close(fd);
        ::close(oracle_fd);
        return 1;
      }
      if (response.type != oracle_response.type ||
          response.payload != oracle_response.payload) {
        if (++mismatches <= 3) {
          std::fprintf(
              stderr,
              "--probe: MISMATCH on query %llu (type %u vs %u)\n--- "
              "got ---\n%s\n--- oracle ---\n%s\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned>(response.type),
              static_cast<unsigned>(oracle_response.type),
              response.payload.c_str(), oracle_response.payload.c_str());
        }
      }
    }
  }
  ::close(fd);
  if (oracle_fd >= 0) ::close(oracle_fd);
  std::printf("probe: %llu lookups, %llu mismatches%s\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(mismatches),
              opts.oracle.empty() ? "" : " (oracle-checked)");
  return mismatches == 0 ? 0 : 1;
}

int run_server(const Options& opts, notary::NotaryService& service) {
  netio::ServerConfig config;
  config.bind_address = opts.bind_address;
  config.port = opts.port;
  config.workers = opts.threads;
  config.idle_timeout_ms = opts.idle_ms;
  netio::TcpServer server(config, [&service](netio::FrameType type,
                                             std::string_view payload,
                                             std::string& out) {
    service.handle_into(type, payload, out);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr, "sm_notaryd listening on %s:%u (%zu certificates)\n",
               opts.bind_address.c_str(), server.port(),
               service.index().size());
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "signal received, draining...\n");
  server.shutdown();
  const auto counters = server.counters();
  std::fprintf(stderr,
               "drained: %llu connections, %llu frames (%llu malformed, "
               "%llu idle-closed)\n",
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.frames_handled),
               static_cast<unsigned long long>(counters.malformed_frames),
               static_cast<unsigned long long>(counters.idle_closed));
  std::fputs(service.render_stats().c_str(), stderr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts.has_value()) {
    usage();
    return 2;
  }
  if (!opts->query_hex.empty()) {
    if (!opts->port_given) {
      std::fprintf(stderr, "--query needs --port\n");
      return 2;
    }
    return run_query_client(*opts);
  }
  if (opts->threads != 0) {
    util::ThreadPool::set_global_threads(opts->threads);
  }
  if ((!opts->ingest_dir.empty() || opts->ingest_bench > 0) && opts->link) {
    std::fprintf(stderr,
                 "--link is incompatible with live ingestion: the "
                 "iterative linker is corpus-global and cannot be "
                 "maintained incrementally\n");
    return 2;
  }
  if ((opts->has_shard || opts->empty_corpus) &&
      (opts->link || !opts->ingest_dir.empty() || opts->ingest_bench > 0 ||
       opts->split_count > 0)) {
    std::fprintf(stderr,
                 "--shard-prefix/--empty serve a live slice; they are "
                 "incompatible with --link, --ingest, --ingest-bench and "
                 "--split-segments\n");
    return 2;
  }

  tools::CorpusSpec spec;
  spec.in_path = opts->in_path;
  spec.archive_path = opts->archive_path;
  spec.seed = opts->seed;
  spec.devices = opts->devices;
  spec.websites = opts->websites;
  spec.scale = opts->scale;
  tools::LoadedCorpus corpus = tools::load_or_simulate(spec);

  if (opts->split_count > 0) {
    return run_split_segments(*opts, std::move(corpus));
  }
  if (opts->ingest_bench > 0) {
    return run_ingest_bench(*opts, std::move(corpus));
  }
  if (!opts->ingest_dir.empty()) {
    return run_ingest_server(*opts, std::move(corpus));
  }
  if (opts->probe > 0) {
    if (!opts->port_given) {
      std::fprintf(stderr, "--probe needs --port\n");
      return 2;
    }
    return run_probe_client(*opts, corpus.archive_ref());
  }
  // --shard-prefix / --empty: the live, reshardable backend path (its
  // LiveCorpus carries the full-corpus key-sharing degrees and the
  // revocation statuses as sidecars).
  if (opts->has_shard || opts->empty_corpus) {
    return run_live_server(*opts, std::move(corpus));
  }
  const scan::ScanArchive& archive = corpus.archive_ref();

  // One columnar spine over the corpus: the linker (under --link) and the
  // notary index both consume it; nothing below re-derives observations.
  const auto spine_begin = std::chrono::steady_clock::now();
  corpus::CorpusOptions spine_options;
  spine_options.routing = corpus.routing();
  const corpus::CorpusIndex spine(archive, spine_options);
  std::fprintf(stderr, "corpus spine: %zu certificates, %zu observations "
               "in %.2fs\n",
               spine.cert_count(), spine.observation_count(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - spine_begin)
                   .count());

  std::vector<std::vector<scan::CertId>> device_groups;
  if (opts->link) {
    if (corpus.routing() == nullptr) {
      std::fprintf(stderr,
                   "--link needs routing data (--in bundle or a simulated "
                   "world, not --archive)\n");
      return 1;
    }
    const auto begin = std::chrono::steady_clock::now();
    const analysis::DatasetIndex index(spine);
    const linking::Linker linker(index);
    const auto linked = linker.link_iteratively();
    device_groups.reserve(linked.groups.size());
    for (const auto& group : linked.groups) {
      device_groups.push_back(group.certs);
    }
    std::fprintf(stderr, "linking: %zu device groups in %.2fs\n",
                 device_groups.size(),
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count());
  }

  const auto begin = std::chrono::steady_clock::now();
  notary::NotaryIndexOptions index_options;
  if (!device_groups.empty()) {
    index_options.device_groups = &device_groups;
  }
  // Revocation verdicts ride along when the corpus carries them (a
  // simulated world; bundles and bare archives serve kUnknown). The map
  // is fingerprint-keyed, so a prefix slice picks up its subset for free.
  if (corpus.world.has_value() &&
      !corpus.world->revocation.statuses.empty()) {
    index_options.revocation_statuses = &corpus.world->revocation.statuses;
  }
  const notary::NotaryIndex index(spine, index_options);
  std::fprintf(stderr, "notary index: %zu certificates in %.2fs\n",
               index.size(),
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - begin)
                   .count());

  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = opts->cache_mb << 20;
  notary::NotaryService service(index, service_config);

  if (opts->bench > 0) return run_bench(*opts, service, archive);
  return run_server(*opts, service);
}
