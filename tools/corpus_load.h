// Shared corpus bootstrapping for the command-line tools (sm_survey,
// sm_notaryd): the load-or-simulate path behind `--in bundle.smwb`,
// `--archive archive.smar`, and the `--seed/--devices/--websites/--scale`
// simulation fallback, plus the strict numeric flag parsers. One
// implementation so both tools accept the same flags, print the same
// diagnostics, and exit 2 on bad input.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#include "net/route_table.h"
#include "scan/archive.h"
#include "scan/archive_io.h"
#include "simworld/world.h"
#include "simworld/world_io.h"
#include "util/thread_pool.h"

namespace sm::tools {

/// Strict unsigned parse: rejects empty values, trailing garbage, negative
/// numbers, and out-of-range input (strtoull would silently return 0 or
/// wrap). Exits 2 with a uniform diagnostic on bad input.
inline std::uint64_t parse_u64_or_die(const char* flag, const char* value,
                                      std::uint64_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (*value < '0' || *value > '9' || end == nullptr || *end != '\0' ||
      errno == ERANGE || parsed > max) {
    std::fprintf(stderr, "invalid %s value '%s' (want an integer 0-%llu)\n",
                 flag, value, static_cast<unsigned long long>(max));
    std::exit(2);
  }
  return parsed;
}

/// Strict (0, 1] double parse for --scale-style flags; exits 2 on bad input.
inline double parse_scale_or_die(const char* flag, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (*value == '\0' || end == nullptr || *end != '\0' || !(parsed > 0.0) ||
      parsed > 1.0) {
    std::fprintf(stderr, "invalid %s value '%s' (want 0 < F <= 1)\n", flag,
                 value);
    std::exit(2);
  }
  return parsed;
}

/// Where the corpus comes from: a world bundle, a bare binary archive, or
/// (when both paths are empty) a fresh simulation.
struct CorpusSpec {
  std::string in_path;       ///< world bundle (.smwb): archive + routing + truth
  std::string archive_path;  ///< bare archive (.smar): observations only
  std::uint64_t seed = 42;
  std::size_t devices = 5000;
  std::size_t websites = 1700;
  double scale = 0.45;
};

/// The loaded corpus. Exactly one of `world` (bundle / simulation) or the
/// standalone `archive` (bare .smar) is populated.
struct LoadedCorpus {
  std::optional<simworld::WorldResult> world;
  scan::ScanArchive archive;

  const scan::ScanArchive& archive_ref() const {
    return world.has_value() ? world->archive : archive;
  }
  /// Routing history for AS resolution; null for bare archives.
  const net::RoutingHistory* routing() const {
    return world.has_value() ? &world->routing : nullptr;
  }
};

/// Loads `spec.in_path` or `spec.archive_path`, or simulates a world from
/// the seed parameters when both are empty. Prints progress diagnostics to
/// stderr; exits 2 when an input file is unreadable or corrupt.
inline LoadedCorpus load_or_simulate(const CorpusSpec& spec) {
  LoadedCorpus corpus;
  if (!spec.in_path.empty()) {
    auto world = simworld::load_world_bundle_file(spec.in_path);
    if (!world.has_value()) {
      std::fprintf(stderr, "failed to load bundle %s\n", spec.in_path.c_str());
      std::exit(2);
    }
    corpus.world.emplace(std::move(*world));
    std::fprintf(stderr, "loaded %s: %zu scans, %zu certs, %zu observations\n",
                 spec.in_path.c_str(),
                 corpus.world->archive.scans().size(),
                 corpus.world->archive.certs().size(),
                 corpus.world->archive.observation_count());
    return corpus;
  }
  if (!spec.archive_path.empty()) {
    auto archive = scan::load_archive_file(spec.archive_path);
    if (!archive.has_value()) {
      std::fprintf(stderr, "failed to load archive %s\n",
                   spec.archive_path.c_str());
      std::exit(2);
    }
    corpus.archive = std::move(*archive);
    std::fprintf(stderr, "loaded %s: %zu scans, %zu certs, %zu observations\n",
                 spec.archive_path.c_str(), corpus.archive.scans().size(),
                 corpus.archive.certs().size(),
                 corpus.archive.observation_count());
    return corpus;
  }

  simworld::WorldConfig config;
  config.seed = spec.seed;
  config.device_count = spec.devices;
  config.website_count = spec.websites;
  config.schedule.scale = spec.scale;
  std::fprintf(stderr,
               "simulating %zu devices + %zu websites (seed %llu, %zu "
               "threads)...\n",
               config.device_count, config.website_count,
               static_cast<unsigned long long>(config.seed),
               util::ThreadPool::global_thread_count());
  const auto begin = std::chrono::steady_clock::now();
  corpus.world.emplace(simworld::World(config).run());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  std::fprintf(stderr, "world built in %.2fs\n", seconds);
  const auto& world = *corpus.world;
  std::fprintf(stderr,
               "verified %llu certs: %llu signature checks computed, %llu "
               "memoized\n",
               static_cast<unsigned long long>(world.verify_stats.verified),
               static_cast<unsigned long long>(world.verify_stats.sig_checks),
               static_cast<unsigned long long>(
                   world.verify_stats.sig_cache_hits));
  if (world.dropped_lease_intervals > 0) {
    std::fprintf(stderr,
                 "warning: %llu lease intervals dropped by the per-replica "
                 "cap (degenerate lease config)\n",
                 static_cast<unsigned long long>(
                     world.dropped_lease_intervals));
  }
  return corpus;
}

}  // namespace sm::tools
