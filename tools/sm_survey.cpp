// sm_survey — the command-line front end to the library:
//
//   sm_survey simulate [--seed N] [--devices N] [--websites N] [--scale F]
//                      [--out bundle.smwb] [--tsv archive.tsv]
//       Simulate a world + both scan campaigns; optionally persist the
//       result as a world bundle and/or a TSV archive export.
//
//   sm_survey report   (--in bundle.smwb | --seed N ...)
//       The §4/§5 analysis report: validity breakdown, longevity,
//       key/issuer/host/AS diversity.
//
//   sm_survey link     (--in bundle.smwb | --seed N ...)
//       The §6 linking report: Table 5, Table 6, iterative linking, and
//       ground-truth precision/recall where device ids are present.
//
//   sm_survey track    (--in bundle.smwb | --seed N ...)
//       The §7 tracking report: trackable devices, AS movement, bulk
//       transfers, reassignment inference.
//
//   sm_survey figures  (--in bundle.smwb | --seed N ...) [--outdir DIR]
//       Writes gnuplot-ready .dat series for every figure in the paper
//       plus a plots.gp script that renders them.
//
//   sm_survey stat --archive FILE
//       Streams a binary certificate archive (v1 or v2) through the
//       scan::ArchiveReader visitor API — validity split, per-campaign
//       observation totals — without materializing the whole ScanArchive.
//
//   sm_survey lint --pem FILE
//       Parses every CERTIFICATE block in a PEM bundle and lints each one
//       (zlint-style device-certificate pathology checks).
//
//   sm_survey dump --pem FILE
//       dumpasn1-style DER tree of every block in a PEM bundle.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "analysis/discrepancy.h"
#include "analysis/diversity.h"
#include "analysis/longevity.h"
#include "corpus_load.h"
#include "linking/linker.h"
#include "asn1/print.h"
#include "pki/lint.h"
#include "report/report.h"
#include "scan/archive_io.h"
#include "simworld/world.h"
#include "simworld/world_io.h"
#include "tracking/tracker.h"
#include "util/thread_pool.h"
#include "x509/pem.h"

namespace {

using namespace sm;

struct Options {
  std::string command;
  std::uint64_t seed = 42;
  std::size_t devices = 5000;
  std::size_t websites = 1700;
  double scale = 0.45;
  std::string in_path;
  std::string out_path;
  std::string tsv_path;
  std::string archive_path;
  std::string outdir = "figures";
  std::string pem_path;
  std::size_t threads = 0;  // 0 = one per hardware thread
};

void usage() {
  std::fputs(
      "usage: sm_survey "
      "<simulate|report|link|track|figures|stat|lint|dump> [options]\n"
      "  --seed N       simulation seed (default 42)\n"
      "  --devices N    end-user devices (default 5000)\n"
      "  --websites N   valid websites (default 1700)\n"
      "  --scale F      scan-schedule density 0..1 (default 0.45)\n"
      "  --in FILE      load a world bundle instead of simulating\n"
      "  --out FILE     (simulate) write a world bundle\n"
      "  --tsv FILE     (simulate) export the archive as TSV\n"
      "  --archive FILE (simulate) write a checksummed binary archive;\n"
      "                 (stat) stream one without loading it whole\n"
      "  --outdir DIR   (figures) output directory (default ./figures)\n"
      "  --pem FILE     (lint) PEM bundle to lint\n"
      "  --threads N    worker threads for analysis/linking/tracking\n"
      "                 (default: one per hardware thread; results are\n"
      "                 identical for every N)\n",
      stderr);
}

using tools::parse_u64_or_die;

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opts.seed = parse_u64_or_die("--seed", value(), ~std::uint64_t{0});
    } else if (arg == "--devices") {
      opts.devices = parse_u64_or_die("--devices", value(), 100'000'000);
    } else if (arg == "--websites") {
      opts.websites = parse_u64_or_die("--websites", value(), 100'000'000);
    } else if (arg == "--scale") {
      opts.scale = tools::parse_scale_or_die("--scale", value());
    } else if (arg == "--in") {
      opts.in_path = value();
    } else if (arg == "--out") {
      opts.out_path = value();
    } else if (arg == "--tsv") {
      opts.tsv_path = value();
    } else if (arg == "--archive") {
      opts.archive_path = value();
    } else if (arg == "--outdir") {
      opts.outdir = value();
    } else if (arg == "--pem") {
      opts.pem_path = value();
    } else if (arg == "--threads") {
      const char* v = value();
      char* end = nullptr;
      opts.threads = std::strtoull(v, &end, 10);
      if (*v == '\0' || end == nullptr || *end != '\0' ||
          opts.threads > 4096) {
        std::fprintf(stderr, "invalid --threads value '%s' (want 0-4096)\n",
                     v);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opts;
}

simworld::WorldResult obtain_world(const Options& opts) {
  tools::CorpusSpec spec;
  spec.in_path = opts.in_path;
  spec.seed = opts.seed;
  spec.devices = opts.devices;
  spec.websites = opts.websites;
  spec.scale = opts.scale;
  tools::LoadedCorpus corpus = tools::load_or_simulate(spec);
  return std::move(*corpus.world);  // always a world: no archive_path given
}

int cmd_simulate(const Options& opts) {
  const simworld::WorldResult world = obtain_world(opts);
  std::printf("scans:        %zu\n", world.archive.scans().size());
  std::printf("observations: %zu\n", world.archive.observation_count());
  std::printf("unique certs: %zu\n", world.archive.certs().size());
  if (world.verify_stats.verified > 0) {
    std::printf("verified:     %llu certs (%llu sig checks, %llu memo hits)\n",
                static_cast<unsigned long long>(world.verify_stats.verified),
                static_cast<unsigned long long>(world.verify_stats.sig_checks),
                static_cast<unsigned long long>(
                    world.verify_stats.sig_cache_hits));
  }
  if (!opts.out_path.empty()) {
    if (!simworld::save_world_bundle_file(world, opts.out_path)) {
      std::fprintf(stderr, "failed to write %s\n", opts.out_path.c_str());
      return 1;
    }
    std::printf("bundle:       %s\n", opts.out_path.c_str());
  }
  if (!opts.tsv_path.empty()) {
    std::ofstream tsv(opts.tsv_path);
    if (!tsv) {
      std::fprintf(stderr, "failed to write %s\n", opts.tsv_path.c_str());
      return 1;
    }
    scan::export_tsv(world.archive, tsv);
    std::printf("tsv:          %s\n", opts.tsv_path.c_str());
  }
  if (!opts.archive_path.empty()) {
    if (!scan::save_archive_file(world.archive, opts.archive_path)) {
      std::fprintf(stderr, "failed to write %s\n", opts.archive_path.c_str());
      return 1;
    }
    std::printf("archive:      %s\n", opts.archive_path.c_str());
  }
  return 0;
}

// Streams an archive file through scan::ArchiveReader: every certificate
// and scan is visited exactly once without ever holding the full
// ScanArchive in memory — the shape every analysis over a full-size corpus
// (222 scans, 80M certs in the paper) wants.
int cmd_stat(const Options& opts) {
  if (opts.archive_path.empty()) {
    std::fprintf(stderr, "stat requires --archive FILE\n");
    return 2;
  }
  std::ifstream in(opts.archive_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opts.archive_path.c_str());
    return 1;
  }
  const auto stream_begin = std::chrono::steady_clock::now();
  scan::ArchiveReader reader(in);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: not a valid archive\n",
                 opts.archive_path.c_str());
    return 1;
  }
  std::printf("format:        SMAR v%u\n", reader.version());

  std::uint64_t valid = 0, invalid = 0, transvalid = 0, san_entries = 0;
  reader.for_each_cert([&](scan::CertId, const scan::CertRecord& cert) {
    (cert.valid ? valid : invalid) += 1;
    if (cert.transvalid) ++transvalid;
    san_entries += cert.san.size();
  });
  std::uint64_t scans = 0, observations = 0, max_obs = 0;
  std::uint64_t per_campaign[2] = {0, 0};
  reader.for_each_scan([&](const scan::ScanData& scan) {
    ++scans;
    observations += scan.observations.size();
    max_obs = std::max<std::uint64_t>(max_obs, scan.observations.size());
    per_campaign[static_cast<int>(scan.event.campaign)] +=
        scan.observations.size();
  });
  if (!reader.finished()) {
    std::fprintf(stderr, "%s: corrupt archive (checksum/truncation)\n",
                 opts.archive_path.c_str());
    return 1;
  }
  std::printf("unique certs:  %llu (%llu valid, %llu invalid, "
              "%llu transvalid)\n",
              static_cast<unsigned long long>(valid + invalid),
              static_cast<unsigned long long>(valid),
              static_cast<unsigned long long>(invalid),
              static_cast<unsigned long long>(transvalid));
  std::printf("san entries:   %llu\n",
              static_cast<unsigned long long>(san_entries));
  std::printf("scans:         %llu (umich %llu obs, rapid7 %llu obs)\n",
              static_cast<unsigned long long>(scans),
              static_cast<unsigned long long>(per_campaign[0]),
              static_cast<unsigned long long>(per_campaign[1]));
  std::printf("observations:  %llu (largest scan %llu)\n",
              static_cast<unsigned long long>(observations),
              static_cast<unsigned long long>(max_obs));
  std::fprintf(stderr, "streamed in %.2fs (%zu threads)\n",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             stream_begin)
                   .count(),
               sm::util::ThreadPool::global_thread_count());
  return 0;
}

int cmd_report(const Options& opts) {
  const simworld::WorldResult world = obtain_world(opts);
  const analysis::DatasetIndex index(world.archive, world.routing);
  report::ReportOptions report_options;
  // Simulated worlds carry the revocation pass output; bundles do not
  // (statuses live outside the archive), so the table is conditional.
  if (!world.revocation.statuses.empty()) {
    report_options.revocation_statuses = &world.revocation.statuses;
  }
  const std::string rendered =
      report::render_report(index, world.as_db, report_options);
  std::fputs(rendered.c_str(), stdout);
  // Validation-work counters (zero when --in loaded a prebuilt bundle —
  // classifications are baked into its CertRecords, nothing re-verifies).
  if (world.verify_stats.verified > 0) {
    std::printf("\n-- verification work --\n"
                "verified %llu certs; %llu signature checks computed, %llu "
                "answered by the memo (%s)\n",
                static_cast<unsigned long long>(world.verify_stats.verified),
                static_cast<unsigned long long>(world.verify_stats.sig_checks),
                static_cast<unsigned long long>(
                    world.verify_stats.sig_cache_hits),
                util::percent(
                    static_cast<double>(world.verify_stats.sig_cache_hits) /
                    static_cast<double>(
                        std::max<std::uint64_t>(
                            1, world.verify_stats.sig_checks +
                                   world.verify_stats.sig_cache_hits)))
                    .c_str());
  }
  return 0;
}

int cmd_link(const Options& opts) {
  const simworld::WorldResult world = obtain_world(opts);
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);

  std::printf("linking-eligible invalid certificates: %llu\n\n",
              static_cast<unsigned long long>(linker.eligible_count()));
  std::puts("-- feature uniqueness (table 5) --");
  for (const auto& row : linker.feature_uniqueness()) {
    std::printf("  %-12s applicable %-7llu non-unique %s\n",
                to_string(row.feature).c_str(),
                static_cast<unsigned long long>(row.applicable),
                util::percent(row.non_unique_fraction()).c_str());
  }

  std::puts("\n-- per-field linking (table 6) --");
  for (const auto& field : linker.evaluate_all_fields()) {
    std::printf("  %-12s linked %-7llu uniq %-7llu IP %5s /24 %5s AS %5s\n",
                to_string(field.feature).c_str(),
                static_cast<unsigned long long>(field.total_linked),
                static_cast<unsigned long long>(field.uniquely_linked),
                util::percent(field.consistency.ip).c_str(),
                util::percent(field.consistency.slash24).c_str(),
                util::percent(field.consistency.as_level).c_str());
  }

  const auto linked = linker.link_iteratively();
  const auto gain = linker.compare_with_original(linked);
  std::puts("\n-- iterative linking (6.4.3 / 6.4.4) --");
  std::printf("linked %llu certs (%s) into %zu groups\n",
              static_cast<unsigned long long>(linked.linked_certs),
              util::percent(static_cast<double>(linked.linked_certs) /
                            static_cast<double>(linker.eligible_count()))
                  .c_str(),
              linked.groups.size());
  std::printf("single-scan fraction %s -> %s; mean lifetime %.1f -> %.1f "
              "days\n",
              util::percent(gain.single_scan_fraction_before).c_str(),
              util::percent(gain.single_scan_fraction_after).c_str(),
              gain.mean_lifetime_before_days, gain.mean_lifetime_after_days);

  const auto truth = linker.score_against_truth(linked);
  if (truth.possible_pairs > 0) {
    std::printf("ground truth: precision %.4f recall %.4f\n",
                truth.precision(), truth.recall());
  }
  return 0;
}

int cmd_track(const Options& opts) {
  const simworld::WorldResult world = obtain_world(opts);
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);
  const auto linked = linker.link_iteratively();
  const tracking::DeviceTracker tracker(index, linker, linked, world.as_db);

  const auto summary = tracker.summary();
  std::puts("-- trackable devices (7.2) --");
  std::printf("without linking %llu | with linking %llu (+%s)\n",
              static_cast<unsigned long long>(
                  summary.trackable_without_linking),
              static_cast<unsigned long long>(summary.trackable_with_linking),
              util::percent(summary.improvement()).c_str());

  const auto movement = tracker.movement();
  std::puts("\n-- movement (7.3) --");
  std::printf("tracked %llu | movers %llu | transitions %llu | "
              "country-crossers %llu\n",
              static_cast<unsigned long long>(movement.tracked_devices),
              static_cast<unsigned long long>(movement.devices_with_as_change),
              static_cast<unsigned long long>(movement.total_as_transitions),
              static_cast<unsigned long long>(
                  movement.devices_crossing_countries));
  for (const auto& transfer : movement.bulk_transfers) {
    std::printf("  bulk: %u devices %s -> %s (scan %u)\n", transfer.devices,
                world.as_db.label(transfer.from).c_str(),
                world.as_db.label(transfer.to).c_str(), transfer.scan);
  }

  const auto stats = tracker.reassignment();
  std::puts("\n-- reassignment (7.4 / figure 11) --");
  std::printf("%llu of %zu ASes assign >= 90%% static addresses\n",
              static_cast<unsigned long long>(stats.ases_90pct_static),
              stats.per_as.size());
  for (const auto& as_stats : stats.most_dynamic) {
    std::printf("  dynamic: %-46s %s change every scan\n",
                world.as_db.label(as_stats.asn).c_str(),
                util::percent(as_stats.always_changing_fraction()).c_str());
  }
  return 0;
}

int cmd_figures(const Options& opts) {
  const simworld::WorldResult world = obtain_world(opts);
  const analysis::DatasetIndex index(world.archive, world.routing);

  std::filesystem::create_directories(opts.outdir);
  const auto open_dat = [&](const std::string& name) {
    std::ofstream out(opts.outdir + "/" + name);
    if (!out) {
      std::fprintf(stderr, "cannot write %s/%s\n", opts.outdir.c_str(),
                   name.c_str());
      std::exit(1);
    }
    return out;
  };
  const auto write_cdf = [&](const std::string& name,
                             const util::EmpiricalCdf& cdf) {
    auto out = open_dat(name);
    out << "# x F(x)\n";
    for (const auto& [x, y] : cdf.curve(400)) out << x << ' ' << y << '\n';
  };

  // Figure 1: per-/8 unique-host fractions on a dual-scan day.
  if (const auto disc = analysis::compute_scan_discrepancy(world.archive)) {
    auto out = open_dat("fig01_slash8.dat");
    out << "# first_octet umich_unique rapid7_unique\n";
    for (const auto& row : disc->per_slash8) {
      out << row.first_octet << ' ' << row.umich_unique_fraction << ' '
          << row.rapid7_unique_fraction << '\n';
    }
  }

  // Figure 2: per-scan counts.
  {
    auto out = open_dat("fig02_series.dat");
    out << "# unix_date campaign invalid valid\n";
    for (const auto& row : analysis::compute_scan_series(world.archive)) {
      out << row.date << ' ' << static_cast<int>(row.campaign) << ' '
          << row.invalid << ' ' << row.valid << '\n';
    }
  }

  // Figures 3-5.
  const auto vp = analysis::compute_validity_periods(world.archive);
  write_cdf("fig03_validity_valid.dat", vp.valid_days);
  write_cdf("fig03_validity_invalid.dat", vp.invalid_days);
  const auto lt = analysis::compute_lifetimes(index);
  write_cdf("fig04_lifetime_valid.dat", lt.valid_days);
  write_cdf("fig04_lifetime_invalid.dat", lt.invalid_days);
  const auto nb = analysis::compute_notbefore_deltas(index);
  write_cdf("fig05_notbefore_delta.dat", nb.positive_days);

  // Figure 6: key coverage curves.
  const auto kd = analysis::compute_key_diversity(world.archive);
  {
    auto out = open_dat("fig06_keys_valid.dat");
    out << "# frac_keys frac_certs\n";
    for (const auto& [x, y] : kd.valid_curve) out << x << ' ' << y << '\n';
    auto out2 = open_dat("fig06_keys_invalid.dat");
    out2 << "# frac_keys frac_certs\n";
    for (const auto& [x, y] : kd.invalid_curve) out2 << x << ' ' << y << '\n';
  }

  // Figures 7-8.
  const auto hd = analysis::compute_host_diversity(index);
  write_cdf("fig07_ips_valid.dat", hd.valid_avg_ips);
  write_cdf("fig07_ips_invalid.dat", hd.invalid_avg_ips);
  const auto ad = analysis::compute_as_diversity(index);
  write_cdf("fig08_ases_valid.dat", ad.valid_as_counts);
  write_cdf("fig08_ases_invalid.dat", ad.invalid_as_counts);

  // Figures 10-11 need linking/tracking.
  const linking::Linker linker(index);
  const auto linked = linker.link_iteratively();
  {
    std::vector<double> sizes;
    for (const auto& group : linked.groups) {
      sizes.push_back(static_cast<double>(group.certs.size()));
    }
    write_cdf("fig10_group_sizes.dat", util::EmpiricalCdf(std::move(sizes)));
  }
  const tracking::DeviceTracker tracker(index, linker, linked, world.as_db);
  write_cdf("fig11_static_fraction.dat",
            tracker.reassignment().static_fraction_cdf);

  // A gnuplot script that renders the lot.
  {
    auto out = open_dat("plots.gp");
    out << R"(# gnuplot script regenerating the paper's figures from the
# .dat series in this directory:  gnuplot plots.gp
set terminal pngcairo size 900,540
set key bottom right
set grid

set output 'fig03_validity.png'
set title 'Figure 3: validity periods'
set logscale x
set xlabel 'Validity Period (Days)'; set ylabel 'CDF'
plot 'fig03_validity_invalid.dat' w l t 'Invalid',      'fig03_validity_valid.dat' w l t 'Valid'
unset logscale x

set output 'fig04_lifetime.png'
set title 'Figure 4: lifetimes'
set xlabel 'Lifetime (Days)'; set ylabel 'CDF'
plot 'fig04_lifetime_invalid.dat' w l t 'Invalid',      'fig04_lifetime_valid.dat' w l t 'Valid'

set output 'fig05_delta.png'
set title 'Figure 5: first advertised - NotBefore (ephemeral invalid)'
set logscale x
set xlabel 'Days'; set ylabel 'CDF'
plot 'fig05_notbefore_delta.dat' w l notitle
unset logscale x

set output 'fig06_keys.png'
set title 'Figure 6: public-key sharing'
set xlabel 'Fraction of Public Keys'; set ylabel 'Fraction of Certificates'
plot 'fig06_keys_invalid.dat' w l t 'Invalid',      'fig06_keys_valid.dat' w l t 'Valid', x t 'y=x' dt 2

set output 'fig07_ips.png'
set title 'Figure 7: average IPs hosting a certificate'
set logscale x
set xlabel 'Avg. IPs per scan'; set ylabel 'CDF'
plot 'fig07_ips_invalid.dat' w l t 'Invalid',      'fig07_ips_valid.dat' w l t 'Valid'
unset logscale x

set output 'fig08_ases.png'
set title 'Figure 8: ASes hosting a certificate'
set xlabel 'ASes'; set ylabel 'CDF'
plot 'fig08_ases_invalid.dat' w l t 'Invalid',      'fig08_ases_valid.dat' w l t 'Valid'

set output 'fig10_groups.png'
set title 'Figure 10: linked group sizes'
set logscale x
set xlabel 'Certificates per group'; set ylabel 'CDF'
plot 'fig10_group_sizes.dat' w l notitle
unset logscale x

set output 'fig11_static.png'
set title 'Figure 11: static-assignment fraction over ASes'
set xlabel 'Fraction of AS devices statically assigned'; set ylabel 'CDF'
plot 'fig11_static_fraction.dat' w l notitle
)";
  }
  std::printf("wrote figure data + plots.gp to %s/\n", opts.outdir.c_str());
  return 0;
}

int cmd_lint(const Options& opts) {
  if (opts.pem_path.empty()) {
    std::fprintf(stderr, "lint requires --pem FILE\n");
    return 2;
  }
  std::ifstream in(opts.pem_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opts.pem_path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto blocks = x509::pem_decode_all(text);
  const auto certs = x509::certificates_from_pem(text);
  std::printf("%zu PEM blocks, %zu parseable certificates\n\n",
              blocks.size(), certs.size());
  std::size_t index = 0;
  for (const auto& cert : certs) {
    std::printf("[%zu] subject: %s\n", index,
                cert.subject.to_string().empty()
                    ? "(empty)"
                    : cert.subject.to_string().c_str());
    std::printf("    issuer:  %s\n", cert.issuer.to_string().empty()
                                          ? "(empty)"
                                          : cert.issuer.to_string().c_str());
    const auto findings = pki::lint_certificate(cert);
    if (findings.empty()) {
      std::puts("    lint:    clean");
    }
    for (const auto& finding : findings) {
      std::printf("    [%-7s] %-24s %s\n",
                  to_string(finding.severity).c_str(),
                  to_string(finding.check).c_str(), finding.message.c_str());
    }
    ++index;
  }
  const auto summary = pki::lint_all(certs);
  std::printf("\nsummary: %llu certs, %llu with errors, %llu with warnings\n",
              static_cast<unsigned long long>(summary.certificates),
              static_cast<unsigned long long>(summary.with_errors),
              static_cast<unsigned long long>(summary.with_warnings));
  return 0;
}

int cmd_dump(const Options& opts) {
  if (opts.pem_path.empty()) {
    std::fprintf(stderr, "dump requires --pem FILE\n");
    return 2;
  }
  std::ifstream in(opts.pem_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opts.pem_path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto blocks = x509::pem_decode_all(text);
  std::size_t index = 0;
  for (const auto& block : blocks) {
    std::printf("-- block %zu: %s (%zu bytes) --\n", index++,
                block.label.c_str(), block.der.size());
    std::fputs(asn1::to_text(block.der).c_str(), stdout);
    std::putchar('\n');
  }
  if (blocks.empty()) std::puts("no PEM blocks found");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) {
    usage();
    return 2;
  }
  if (opts->threads != 0) {
    util::ThreadPool::set_global_threads(opts->threads);
  }
  if (opts->command == "simulate") return cmd_simulate(*opts);
  if (opts->command == "report") return cmd_report(*opts);
  if (opts->command == "link") return cmd_link(*opts);
  if (opts->command == "track") return cmd_track(*opts);
  if (opts->command == "figures") return cmd_figures(*opts);
  if (opts->command == "stat") return cmd_stat(*opts);
  if (opts->command == "lint") return cmd_lint(*opts);
  if (opts->command == "dump") return cmd_dump(*opts);
  usage();
  return 2;
}
