// Figure 4: the CDF of certificate lifetimes (first to last scan observed).
// Paper: valid median 274 days; invalid median one day — ~60% of invalid
// certificates appear in a single scan.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/longevity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Figure 4", "CDF of certificate lifetimes");
  const auto lifetimes = sm::analysis::compute_lifetimes(context().index);

  sm::bench::Comparison cmp;
  cmp.add("valid median lifetime (days)", 274.0,
          lifetimes.valid_days.median(), 0);
  cmp.add("invalid median lifetime (days)", 1.0,
          lifetimes.invalid_days.median(), 0);
  cmp.add("invalid single-scan fraction", "~60%",
          sm::util::percent(lifetimes.invalid_single_scan_fraction));
  cmp.print();

  std::puts("invalid lifetime CDF (days):");
  sm::bench::print_curve("days", "F(x)", lifetimes.invalid_days.curve(10));
  std::puts("valid lifetime CDF (days):");
  sm::bench::print_curve("days", "F(x)", lifetimes.valid_days.curve(10));
}

void BM_Lifetimes(benchmark::State& state) {
  for (auto _ : state) {
    auto lifetimes = sm::analysis::compute_lifetimes(context().index);
    benchmark::DoNotOptimize(lifetimes);
  }
}
BENCHMARK(BM_Lifetimes);

void BM_DatasetIndexBuild(benchmark::State& state) {
  const auto& world = context().world;
  for (auto _ : state) {
    sm::analysis::DatasetIndex index(world.archive, world.routing);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_DatasetIndexBuild);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
