// Figure 3: the CDF of validity periods for valid vs invalid certificates.
// Paper: valid median 1.1y / p90 3.1y; invalid median 20y / p90 25y, 5.38%
// negative, tail beyond a million days.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/longevity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Figure 3", "CDF of certificate validity periods");
  const auto vp =
      sm::analysis::compute_validity_periods(context().world.archive);

  sm::bench::Comparison cmp;
  cmp.add("valid median (years)", 1.1, vp.valid_days.median() / 365.0);
  cmp.add("valid p90 (years)", 3.1, vp.valid_days.percentile(0.9) / 365.0);
  cmp.add("invalid median (years)", 20.0, vp.invalid_days.median() / 365.0);
  cmp.add("invalid p90 (years)", 25.0,
          vp.invalid_days.percentile(0.9) / 365.0);
  cmp.add("invalid negative-period fraction", "5.38%",
          sm::util::percent(vp.invalid_negative_fraction));
  cmp.add("invalid tail beyond 300k days", "exists (1M+ days)",
          vp.invalid_days.max() > 300000 ? "exists (" +
              num(vp.invalid_days.max(), 0) + " days)" : "absent");
  cmp.print();

  std::puts("invalid validity-period CDF (days):");
  sm::bench::print_curve("days", "F(x)", vp.invalid_days.curve(10));
  std::puts("valid validity-period CDF (days):");
  sm::bench::print_curve("days", "F(x)", vp.valid_days.curve(10));
}

void BM_ValidityPeriods(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto vp = sm::analysis::compute_validity_periods(archive);
    benchmark::DoNotOptimize(vp);
  }
}
BENCHMARK(BM_ValidityPeriods);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
