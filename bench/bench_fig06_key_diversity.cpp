// Figure 6: the fraction of public keys needed to cover a fraction of
// certificates. Paper: invalid certificates share keys far more than valid
// ones — over 47% of invalid certs share a key; one Lancom key alone spans
// 6.5% of all invalid certificates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Figure 6",
                          "fraction of public keys covering certificates");
  const auto kd =
      sm::analysis::compute_key_diversity(context().world.archive);

  sm::bench::Comparison cmp;
  cmp.add("invalid certs sharing a key", "> 47%",
          sm::util::percent(kd.invalid_shared_fraction));
  cmp.add("valid certs sharing a key (reissue reuse)", "lower than invalid",
          sm::util::percent(kd.valid_shared_fraction));
  cmp.add("top shared key's share of invalid (Lancom)", "6.5%",
          sm::util::percent(kd.top_invalid_key_share));
  cmp.add("top shared key cert count", "4,586,469 (scaled)",
          std::to_string(kd.top_invalid_key_certs));
  cmp.print();

  std::puts("invalid coverage curve (x = frac of keys, y = frac of certs):");
  sm::bench::print_curve("keys", "certs", kd.invalid_curve, 10);
  std::puts("valid coverage curve:");
  sm::bench::print_curve("keys", "certs", kd.valid_curve, 10);
}

void BM_KeyDiversity(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto kd = sm::analysis::compute_key_diversity(archive);
    benchmark::DoNotOptimize(kd);
  }
}
BENCHMARK(BM_KeyDiversity);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
