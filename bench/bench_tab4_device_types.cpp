// Table 4: the device-type breakdown of invalid certificates from the top
// 50 issuing names — the codified version of the paper's manual
// classification. Paper: 45.3% home router/cable modem, 32.0% unknown,
// 6.0% VPN, 5.7% remote storage, 4.3% remote administration, 1.9%
// firewall, 1.8% IP camera, 2.6% other.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Table 4",
                          "device types behind the top 50 invalid issuers");
  const auto breakdown =
      sm::analysis::compute_device_types(context().world.archive, 50);

  const auto paper_share = [](const std::string& type) -> std::string {
    if (type == "Home router/cable modem") return "45.3%";
    if (type == "Unknown") return "32.0%";
    if (type == "VPN") return "6.04%";
    if (type == "Remote storage") return "5.70%";
    if (type == "Remote administration") return "4.27%";
    if (type == "Firewall") return "1.92%";
    if (type == "IP camera") return "1.78%";
    if (type == "Other") return "2.62%";
    return "-";
  };

  sm::util::TextTable table({"device type", "paper", "measured"});
  for (const auto& [type, share] : breakdown.shares) {
    table.add_row({type, paper_share(type), sm::util::percent(share)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  cmp.add("largest category", "Home router/cable modem",
          breakdown.shares.empty() ? "n/a" : breakdown.shares[0].first);
  cmp.add("classified certificates", "top-50 issuers",
          std::to_string(breakdown.classified_certs));
  cmp.print();
}

void BM_DeviceTypes(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto breakdown = sm::analysis::compute_device_types(archive, 50);
    benchmark::DoNotOptimize(breakdown);
  }
}
BENCHMARK(BM_DeviceTypes);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
