// Table 1: the top five issuers of valid and invalid certificates, plus
// §5.3's signing-key diversity. Paper: valid issuers are the familiar CAs
// (Go Daddy, RapidSSL, ...); invalid issuers are device vendors
// (www.lancom-systems.de), private IPs (192.168.1.1), and the empty string.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Table 1", "top issuers of valid/invalid certs");
  const auto id =
      sm::analysis::compute_issuer_diversity(context().world.archive);

  std::puts("top issuers of valid certificates:");
  sm::util::TextTable valid_table({"issuer", "certs"});
  for (const auto& row : id.top_valid) {
    valid_table.add_row({row.issuer, std::to_string(row.certs)});
  }
  std::fputs(valid_table.str().c_str(), stdout);

  std::puts("\ntop issuers of invalid certificates:");
  sm::util::TextTable invalid_table({"issuer", "certs"});
  for (const auto& row : id.top_invalid) {
    invalid_table.add_row({row.issuer, std::to_string(row.certs)});
  }
  std::fputs(invalid_table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  cmp.add("top invalid issuer", "www.lancom-systems.de",
          id.top_invalid.empty() ? "n/a" : id.top_invalid[0].issuer);
  bool has_empty = false, has_private_ip = false;
  for (const auto& row : id.top_invalid) {
    if (row.issuer == "(Empty string)") has_empty = true;
    if (row.issuer.rfind("192.168.", 0) == 0) has_private_ip = true;
  }
  cmp.add("empty-string issuer in top 5", "yes", has_empty ? "yes" : "no");
  cmp.add("192.168.x issuer in top 5", "yes", has_private_ip ? "yes" : "no");
  cmp.add("signing keys spanning half of valid certs", "5",
          std::to_string(id.valid_keys_for_half));
  cmp.add("distinct valid parent keys", "1,477 (scaled)",
          std::to_string(id.valid_parent_keys));
  cmp.add("distinct invalid parent keys (AKI-bearing)", "1.7M (scaled)",
          std::to_string(id.invalid_parent_keys));
  cmp.add("top-5 parent keys' share of AKI-bearing invalid", "37%",
          sm::util::percent(id.invalid_top5_key_share));
  cmp.add("invalid certs issued by private-IP names",
          "3.35M of 70.6M = 4.7%",
          sm::util::percent(id.invalid_private_ip_issuer_fraction));
  cmp.print();
}

void BM_IssuerDiversity(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto id = sm::analysis::compute_issuer_diversity(archive);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_IssuerDiversity);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
