// Figure 2: the number of invalid and valid certificates per scan over
// time, for both campaigns — invalid counts grow over the study.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/longevity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Figure 2",
                          "invalid/valid certificates per scan over time");
  const auto series =
      sm::analysis::compute_scan_series(context().world.archive);
  sm::util::TextTable table(
      {"scan date", "campaign", "invalid", "valid", "invalid %"});
  const std::size_t step = std::max<std::size_t>(1, series.size() / 16);
  for (std::size_t i = 0; i < series.size(); i += step) {
    const auto& row = series[i];
    table.add_row({sm::util::format_date(row.date),
                   to_string(row.campaign), std::to_string(row.invalid),
                   std::to_string(row.valid),
                   sm::util::percent(row.invalid_fraction())});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  // Growth: average invalid count in the first vs last quarter of scans.
  const std::size_t quarter = std::max<std::size_t>(1, series.size() / 4);
  double early = 0, late = 0, min_frac = 1, max_frac = 0, frac_sum = 0;
  for (std::size_t i = 0; i < quarter; ++i) {
    early += static_cast<double>(series[i].invalid);
  }
  for (std::size_t i = series.size() - quarter; i < series.size(); ++i) {
    late += static_cast<double>(series[i].invalid);
  }
  for (const auto& row : series) {
    const double frac = row.invalid_fraction();
    min_frac = std::min(min_frac, frac);
    max_frac = std::max(max_frac, frac);
    frac_sum += frac;
  }
  sm::bench::Comparison cmp;
  cmp.add("invalid count grows over study", "yes",
          late > early ? "yes" : "no");
  cmp.add("late/early invalid-count ratio", "> 1", num(late / early, 2));
  cmp.add("per-scan invalid fraction mean", "65.0%",
          sm::util::percent(frac_sum / static_cast<double>(series.size())));
  cmp.add("per-scan invalid fraction range", "59.6% - 73.7%",
          sm::util::percent(min_frac) + " - " + sm::util::percent(max_frac));
  cmp.print();
}

void BM_ScanSeries(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto series = sm::analysis::compute_scan_series(archive);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_ScanSeries);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
