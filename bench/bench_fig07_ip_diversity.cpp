// Figure 7: the CDF of the average number of IP addresses advertising each
// certificate per scan. Paper: most certs of both kinds sit on one host,
// but the 99th percentile is 2.0 IPs for invalid vs 11.3 for valid (CDN
// replication), with a long valid tail.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Figure 7",
                          "average IPs advertising each certificate per scan");
  const auto hd = sm::analysis::compute_host_diversity(context().index);

  sm::bench::Comparison cmp;
  cmp.add("invalid p99 (IPs/scan)", 2.0, hd.invalid_p99, 1);
  cmp.add("valid p99 (IPs/scan)", 11.3, hd.valid_p99, 1);
  cmp.add("valid tail exceeds invalid tail", "yes",
          hd.valid_avg_ips.max() > hd.invalid_avg_ips.max() ? "yes" : "no");
  cmp.add("invalid certs ever on > 2 IPs in one scan", "1.6%",
          sm::util::percent(hd.invalid_multihost_fraction) +
              " (scaled: few factory-shared certs exist at 5k devices)");
  cmp.print();

  std::puts("invalid avg-IPs CDF:");
  sm::bench::print_curve("ips", "F(x)", hd.invalid_avg_ips.curve(8));
  std::puts("valid avg-IPs CDF:");
  sm::bench::print_curve("ips", "F(x)", hd.valid_avg_ips.curve(8));
  std::printf("valid max avg-IPs: %s; invalid max: %s\n",
              num(hd.valid_avg_ips.max(), 1).c_str(),
              num(hd.invalid_avg_ips.max(), 1).c_str());
}

void BM_HostDiversity(benchmark::State& state) {
  for (auto _ : state) {
    auto hd = sm::analysis::compute_host_diversity(context().index);
    benchmark::DoNotOptimize(hd);
  }
}
BENCHMARK(BM_HostDiversity);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
