// Archive I/O benchmark: v1 (legacy unframed) vs v2 (framed + CRC32,
// sharded, parallel) save/load on a simulated-world archive, plus the
// streaming ArchiveReader path. Prints a size/time/RSS comparison, then
// runs google-benchmark timings — the v2 save/load benchmarks sweep the
// thread count to show the parallel shard pipeline scaling.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

#include <sys/resource.h>

#include "bench/common.h"
#include "scan/archive_io.h"
#include "util/thread_pool.h"

namespace {

using namespace sm;
using scan::ArchiveVersion;

const scan::ScanArchive& archive() { return bench::context().world.archive; }

std::string serialize(ArchiveVersion version) {
  std::stringstream out;
  scan::save_archive(archive(), out, version);
  return out.str();
}

long peak_rss_kib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

double timed_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void report() {
  bench::print_banner("archive-io",
                      "Archive save/load: v1 legacy vs v2 framed+CRC32");
  const std::string v1 = serialize(ArchiveVersion::kV1);
  const std::string v2 = serialize(ArchiveVersion::kV2);

  const double save_v1_ms =
      timed_ms([&] { benchmark::DoNotOptimize(serialize(ArchiveVersion::kV1)); });
  const double save_v2_ms =
      timed_ms([&] { benchmark::DoNotOptimize(serialize(ArchiveVersion::kV2)); });
  double load_v1_ms = 0, load_v2_ms = 0;
  {
    std::stringstream in(v1);
    load_v1_ms = timed_ms([&] {
      auto loaded = scan::load_archive(in);
      benchmark::DoNotOptimize(loaded);
    });
  }
  {
    std::stringstream in(v2);
    load_v2_ms = timed_ms([&] {
      auto loaded = scan::load_archive(in);
      benchmark::DoNotOptimize(loaded);
    });
  }

  // Streaming pass (no ScanArchive materialized): the low-memory path.
  std::size_t streamed_obs = 0;
  double stream_ms = 0;
  {
    std::stringstream in(v2);
    stream_ms = timed_ms([&] {
      scan::ArchiveReader reader(in);
      reader.for_each_scan([&](const scan::ScanData& scan) {
        streamed_obs += scan.observations.size();
      });
    });
  }

  std::printf("archive: %zu certs, %zu scans, %zu observations\n",
              archive().certs().size(), archive().scans().size(),
              archive().observation_count());
  std::printf("  v1 bytes: %zu   v2 bytes: %zu (x%.3f)\n", v1.size(),
              v2.size(),
              static_cast<double>(v2.size()) / static_cast<double>(v1.size()));
  std::printf("  save: v1 %.1f ms   v2 %.1f ms (x%.2f)\n", save_v1_ms,
              save_v2_ms, save_v1_ms / save_v2_ms);
  std::printf("  load: v1 %.1f ms   v2 %.1f ms (x%.2f)\n", load_v1_ms,
              load_v2_ms, load_v1_ms / load_v2_ms);
  std::printf("  v2 streaming scan pass: %.1f ms (%zu observations)\n",
              stream_ms, streamed_obs);

  // Intern throughput — the certificate-table hot path on every load.
  // FingerprintHash is a raw memcpy of the fingerprint's first 8 bytes:
  // the fingerprint is already uniform hash output, so no mixing step.
  std::size_t interned = 0;
  const double intern_ms = timed_ms([&] {
    scan::ScanArchive fresh;
    fresh.reserve_certs(archive().certs().size());
    for (const auto& record : archive().certs()) fresh.intern(record);
    interned = fresh.certs().size();
  });
  std::printf("  cert intern: %zu certs in %.1f ms (%.2fM certs/s, "
              "memcpy fingerprint hash)\n",
              interned, intern_ms,
              static_cast<double>(interned) / intern_ms / 1e3);
  std::printf("  peak RSS: %ld KiB\n\n", peak_rss_kib());
}

void BM_SaveV1(benchmark::State& state) {
  for (auto _ : state) {
    auto bytes = serialize(ArchiveVersion::kV1);
    benchmark::DoNotOptimize(bytes);
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_SaveV1);

void BM_LoadV1(benchmark::State& state) {
  const std::string bytes = serialize(ArchiveVersion::kV1);
  for (auto _ : state) {
    std::stringstream in(bytes);
    auto loaded = scan::load_archive(in);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_LoadV1);

void BM_SaveV2(benchmark::State& state) {
  util::ThreadPool::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = serialize(ArchiveVersion::kV2);
    benchmark::DoNotOptimize(bytes);
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes.size()));
  }
  util::ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_SaveV2)->Arg(1)->Arg(2)->Arg(8);

void BM_LoadV2(benchmark::State& state) {
  util::ThreadPool::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  const std::string bytes = serialize(ArchiveVersion::kV2);
  for (auto _ : state) {
    std::stringstream in(bytes);
    auto loaded = scan::load_archive(in);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
  util::ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_LoadV2)->Arg(1)->Arg(2)->Arg(8);

void BM_StreamScansV2(benchmark::State& state) {
  const std::string bytes = serialize(ArchiveVersion::kV2);
  for (auto _ : state) {
    std::stringstream in(bytes);
    scan::ArchiveReader reader(in);
    std::size_t observations = 0;
    reader.for_each_scan([&](const scan::ScanData& scan) {
      observations += scan.observations.size();
    });
    benchmark::DoNotOptimize(observations);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_StreamScansV2);

void BM_ExportTsv(benchmark::State& state) {
  for (auto _ : state) {
    std::stringstream out;
    scan::export_tsv(archive(), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ExportTsv);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
