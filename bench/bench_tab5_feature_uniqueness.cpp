// Table 5: the percentage of linking-eligible invalid certificates whose
// value for each feature is shared with at least one other certificate.
// Paper: Not Before 67.7%, Common Name 67.5%, Not After 61.4%, Public Key
// 47.0%, SAN list 19.6%, Issuer Name + Serial 4.2% — and CRL/AIA/OCSP/OID
// present on under 1% of invalid certificates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::bench::context;
using sm::linking::Feature;

std::string paper_value(Feature feature) {
  switch (feature) {
    case Feature::kNotBefore:
      return "67.7%";
    case Feature::kCommonName:
      return "67.5%";
    case Feature::kNotAfter:
      return "61.4%";
    case Feature::kPublicKey:
      return "47.0%";
    case Feature::kSan:
      return "19.6%";
    case Feature::kIssuerSerial:
      return "4.2%";
    case Feature::kCrl:
      return "present on 0.8%";
    case Feature::kAia:
      return "present on 0.7%";
    case Feature::kOcsp:
      return "present on 0.1%";
    case Feature::kOid:
      return "present on 0.1%";
  }
  return "-";
}

void report() {
  sm::bench::print_banner("Table 5",
                          "non-uniqueness of invalid-certificate features");
  const auto rows = context().linker.feature_uniqueness();
  const double eligible =
      static_cast<double>(context().linker.eligible_count());

  sm::util::TextTable table(
      {"feature", "applicable", "present %", "non-unique (paper)",
       "non-unique"});
  for (const auto& row : rows) {
    table.add_row({to_string(row.feature), std::to_string(row.applicable),
                   sm::util::percent(static_cast<double>(row.applicable) /
                                     eligible),
                   paper_value(row.feature),
                   sm::util::percent(row.non_unique_fraction())});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  const auto fraction_of = [&](Feature feature) {
    for (const auto& row : rows) {
      if (row.feature == feature) return row.non_unique_fraction();
    }
    return 0.0;
  };
  cmp.add("IN+SN least non-unique of the big fields", "yes",
          fraction_of(Feature::kIssuerSerial) <
                  fraction_of(Feature::kPublicKey) &&
                  fraction_of(Feature::kIssuerSerial) <
                      fraction_of(Feature::kCommonName)
              ? "yes"
              : "no");
  const auto applicable_of = [&](Feature feature) -> double {
    for (const auto& row : rows) {
      if (row.feature == feature) {
        return static_cast<double>(row.applicable) / eligible;
      }
    }
    return 0.0;
  };
  cmp.add("CRL/AIA/OCSP/OID rarely present", "< 1% each",
          sm::util::percent(applicable_of(Feature::kCrl)) + " / " +
              sm::util::percent(applicable_of(Feature::kAia)) + " / " +
              sm::util::percent(applicable_of(Feature::kOcsp)) + " / " +
              sm::util::percent(applicable_of(Feature::kOid)));
  cmp.print();
}

void BM_FeatureUniqueness(benchmark::State& state) {
  const auto& linker = context().linker;
  for (auto _ : state) {
    auto rows = linker.feature_uniqueness();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FeatureUniqueness);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
