// Figure 1: the fraction of hosts unique to each campaign's scan, per /8,
// on a day where both campaigns scanned — the dataset-discrepancy /
// blacklisting analysis of §4.1.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/discrepancy.h"
#include "bench/common.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Figure 1",
                          "hosts unique to each scan, per /8 network");
  const auto disc =
      sm::analysis::compute_scan_discrepancy(context().world.archive);
  if (!disc) {
    std::puts("no dual-campaign scan pair found");
    return;
  }
  std::printf("compared scans: umich #%zu vs rapid7 #%zu\n",
              disc->umich_scan, disc->rapid7_scan);
  std::printf("umich hosts %llu (%llu unique), rapid7 hosts %llu (%llu unique)\n",
              static_cast<unsigned long long>(disc->umich_total_hosts),
              static_cast<unsigned long long>(disc->umich_only_hosts),
              static_cast<unsigned long long>(disc->rapid7_total_hosts),
              static_cast<unsigned long long>(disc->rapid7_only_hosts));
  std::printf(
      "paper shape: Rapid7 scans ~20%% smaller; missing hosts spread across\n"
      "the IP space, driven by per-campaign BGP-prefix blacklists\n\n");
  sm::util::TextTable table(
      {"/8 network", "umich hosts", "u-unique", "rapid7 hosts", "r-unique"});
  for (const auto& row : disc->per_slash8) {
    table.add_row({std::to_string(row.first_octet) + ".0.0.0/8",
                   std::to_string(row.umich_hosts),
                   num(row.umich_unique_fraction, 3),
                   std::to_string(row.rapid7_hosts),
                   num(row.rapid7_unique_fraction, 3)});
  }
  std::fputs(table.str().c_str(), stdout);

  sm::bench::Comparison cmp;
  cmp.add("rapid7/umich host ratio", "~0.8",
          num(static_cast<double>(disc->rapid7_total_hosts) /
                  static_cast<double>(disc->umich_total_hosts),
              2));
  cmp.print();
}

void BM_ScanDiscrepancy(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto result = sm::analysis::compute_scan_discrepancy(archive);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ScanDiscrepancy);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
