// Figure 8: the CDF of the number of autonomous systems hosting each
// certificate, plus §5.4's concentration numbers. Paper: 18% of invalid
// certificates originate from a single AS; 165 ASes cover 70% of invalid
// certs vs 500 for valid. (Our world has ~80 ASes vs the internet's tens of
// thousands, so absolute AS counts scale down; the invalid < valid
// concentration ordering is the target.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Figure 8", "ASes hosting each certificate");
  const auto ad = sm::analysis::compute_as_diversity(context().index);

  sm::bench::Comparison cmp;
  cmp.add("top AS share of invalid certs", "18%",
          sm::util::percent(ad.invalid_top_as_share));
  cmp.add("top AS share of valid certs", "10%",
          sm::util::percent(ad.valid_top_as_share));
  cmp.add("ASes covering 70% of invalid", "165 (scaled)",
          std::to_string(ad.invalid_ases_for_70));
  cmp.add("ASes covering 70% of valid", "500 (scaled)",
          std::to_string(ad.valid_ases_for_70));
  cmp.add("invalid needs fewer ASes than valid", "yes",
          ad.invalid_ases_for_70 <= ad.valid_ases_for_70 ? "yes" : "no");
  cmp.print();

  std::puts("invalid #ASes-per-cert CDF:");
  sm::bench::print_curve("ases", "F(x)", ad.invalid_as_counts.curve(6));
  std::puts("valid #ASes-per-cert CDF:");
  sm::bench::print_curve("ases", "F(x)", ad.valid_as_counts.curve(6));
}

void BM_AsDiversity(benchmark::State& state) {
  for (auto _ : state) {
    auto ad = sm::analysis::compute_as_diversity(context().index);
    benchmark::DoNotOptimize(ad);
  }
}
BENCHMARK(BM_AsDiversity);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
