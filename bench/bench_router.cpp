// Router benchmark: a four-shard sm_notaryd deployment (prefix-sliced
// backends behind RouterService, all in-process over real loopback TCP)
// hammered with single queries, batched queries, a many-connection
// sweep, and Zipf-popularity traffic. Prints a summary including the
// batch-32 vs single-query amplification, then runs google-benchmark
// timings.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/router.h"
#include "notary/service.h"

namespace {

using namespace sm;

constexpr std::size_t kShardCount = 4;

const scan::ScanArchive& archive() { return bench::context().world.archive; }

// One in-process backend: the --shard-prefix sm_notaryd shape.
struct Backend {
  scan::ScanArchive slice;
  std::optional<corpus::CorpusIndex> spine;
  std::optional<notary::NotaryIndex> index;
  std::optional<notary::NotaryService> service;
  std::optional<netio::TcpServer> server;
};

// The routed deployment every benchmark talks to; built once.
struct Deployment {
  std::unordered_map<scan::KeyFingerprint, std::uint32_t> key_counts;
  std::array<Backend, kShardCount> backends;
  std::optional<notary::RouterService> router;
  std::optional<netio::TcpServer> router_server;
  std::vector<scan::CertFingerprint> fingerprints;

  Deployment() {
    const scan::ScanArchive& full = archive();
    key_counts.reserve(full.certs().size());
    for (const scan::CertRecord& cert : full.certs()) {
      ++key_counts[cert.key_fingerprint];
      fingerprints.push_back(cert.fingerprint);
    }
    notary::RouterConfig router_config;
    for (std::size_t s = 0; s < kShardCount; ++s) {
      Backend& backend = backends[s];
      const auto lo = static_cast<std::uint8_t>(s * 256 / kShardCount);
      const auto hi =
          static_cast<std::uint8_t>((s + 1) * 256 / kShardCount - 1);
      backend.slice = corpus::extract_prefix_slice(full, lo, hi);
      backend.spine.emplace(
          backend.slice,
          corpus::CorpusOptions{&bench::context().world.routing, nullptr});
      notary::NotaryIndexOptions options;
      options.key_counts = &key_counts;
      backend.index.emplace(*backend.spine, options);
      backend.service.emplace(*backend.index);
      netio::ServerConfig config;
      config.workers = 2;
      backend.server.emplace(config,
                             [&backend](netio::FrameType type,
                                        std::string_view payload) {
                               return backend.service->handle(type, payload);
                             });
      if (!backend.server->start()) std::abort();
      router_config.shards.push_back(
          {{{"127.0.0.1", backend.server->port()}}});
    }
    router.emplace(std::move(router_config));
    netio::ServerConfig server_config;
    server_config.workers = 8;
    router_server.emplace(server_config,
                          [this](netio::FrameType type,
                                 std::string_view payload) {
                            return router->handle(type, payload);
                          });
    if (!router_server->start()) std::abort();
  }
};

Deployment& deployment() {
  static Deployment* d = new Deployment();
  return *d;
}

std::string fp_payload(const scan::CertFingerprint& fp) {
  return {reinterpret_cast<const char*>(fp.data()), fp.size()};
}

// Blocking loopback client (mirrors tools/sm_notaryd --bench).
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool round_trip(int fd, netio::FrameDecoder& decoder,
                const std::string& wire, netio::Frame& out) {
  std::string_view rest = wire;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  for (;;) {
    if (decoder.next(out) == netio::DecodeStatus::kFrame) return true;
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

// Closed-loop lookups/s over one connection; `batch` == 0 means single
// kQuery frames, otherwise kBatchQuery frames of that size.
double measure_lookups_per_s(std::size_t batch, std::size_t total_lookups) {
  Deployment& d = deployment();
  const int fd = connect_loopback(d.router_server->port());
  if (fd < 0) return 0.0;
  // A batch response carries kShardCount scatter/gather sub-responses;
  // give the decoder the same generous ceiling the router tools use.
  netio::FrameDecoder decoder(32u << 20);
  netio::Frame response;
  std::size_t cursor = 0;
  const auto next_fp = [&] {
    const scan::CertFingerprint& fp = d.fingerprints[cursor];
    cursor = (cursor + 1) % d.fingerprints.size();
    return fp;
  };
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = 0;
  while (done < total_lookups) {
    std::string wire;
    if (batch == 0) {
      wire = netio::encode_frame(netio::FrameType::kQuery,
                                 fp_payload(next_fp()));
      done += 1;
    } else {
      std::vector<scan::CertFingerprint> fps;
      fps.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) fps.push_back(next_fp());
      wire = netio::encode_frame(netio::FrameType::kBatchQuery,
                                 notary::encode_batch_query(fps));
      done += batch;
    }
    if (!round_trip(fd, decoder, wire, response)) break;
    benchmark::DoNotOptimize(response);
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ::close(fd);
  return secs > 0 ? static_cast<double>(done) / secs : 0.0;
}

void report() {
  bench::print_banner(
      "router", "sm_notary_router: sharded deployment over loopback TCP");
  Deployment& d = deployment();
  std::printf("corpus: %zu certs across %zu shards (", archive().certs().size(),
              kShardCount);
  for (std::size_t s = 0; s < kShardCount; ++s) {
    const auto [lo, hi] = d.router->shard_range(s);
    std::printf("%s%u-%u: %zu", s ? ", " : "", lo, hi,
                d.backends[s].slice.certs().size());
  }
  std::printf(")\n");

  const double single = measure_lookups_per_s(0, 4'000);
  const double batch32 = measure_lookups_per_s(32, 64'000);
  std::printf("single kQuery:       %10.0f lookups/s\n", single);
  std::printf("kBatchQuery (32):    %10.0f lookups/s\n", batch32);
  std::printf("batch-32 amplification: %.1fx %s\n\n",
              single > 0 ? batch32 / single : 0.0,
              batch32 >= 2 * single ? "(>= 2x: OK)" : "(below 2x target)");
}

// One connection, one in-flight kQuery through router + backend.
void BM_RouterSingleQuery(benchmark::State& state) {
  Deployment& d = deployment();
  const int fd = connect_loopback(d.router_server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  netio::FrameDecoder decoder;
  netio::Frame response;
  std::size_t cursor = state.thread_index();
  for (auto _ : state) {
    const std::string wire = netio::encode_frame(
        netio::FrameType::kQuery,
        fp_payload(d.fingerprints[cursor % d.fingerprints.size()]));
    if (!round_trip(fd, decoder, wire, response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations());
  ::close(fd);
}
BENCHMARK(BM_RouterSingleQuery)->Unit(benchmark::kMicrosecond);

// One kBatchQuery per iteration: the router scatters sub-batches to all
// four shards concurrently and reassembles. Items == lookups, so the
// lookups/s column is directly comparable with BM_RouterSingleQuery.
void BM_RouterBatchQuery(benchmark::State& state) {
  Deployment& d = deployment();
  const auto batch = static_cast<std::size_t>(state.range(0));
  const int fd = connect_loopback(d.router_server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  netio::FrameDecoder decoder(32u << 20);
  netio::Frame response;
  std::size_t cursor = 0;
  for (auto _ : state) {
    std::vector<scan::CertFingerprint> fps;
    fps.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      fps.push_back(d.fingerprints[cursor % d.fingerprints.size()]);
      ++cursor;
    }
    const std::string wire = netio::encode_frame(
        netio::FrameType::kBatchQuery, notary::encode_batch_query(fps));
    if (!round_trip(fd, decoder, wire, response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
  ::close(fd);
}
BENCHMARK(BM_RouterBatchQuery)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// Many-connection sweep: every benchmark thread drives its own TCP
// connection, so N threads == N concurrent closed-loop clients.
void BM_RouterConnectionSweep(benchmark::State& state) {
  Deployment& d = deployment();
  const int fd = connect_loopback(d.router_server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  netio::FrameDecoder decoder;
  netio::Frame response;
  std::size_t cursor = static_cast<std::size_t>(state.thread_index()) * 131;
  for (auto _ : state) {
    const std::string wire = netio::encode_frame(
        netio::FrameType::kQuery,
        fp_payload(d.fingerprints[cursor % d.fingerprints.size()]));
    if (!round_trip(fd, decoder, wire, response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations());
  ::close(fd);
}
BENCHMARK(BM_RouterConnectionSweep)->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// Zipf(1.1) popularity over the corpus: a hot head concentrating on a
// few shards, the same skew tools/sm_notaryd --bench-zipf generates.
void BM_RouterZipfQuery(benchmark::State& state) {
  Deployment& d = deployment();
  static const std::vector<double>* cdf = [] {
    auto* weights = new std::vector<double>();
    weights->reserve(deployment().fingerprints.size());
    double total = 0.0;
    for (std::size_t r = 0; r < deployment().fingerprints.size(); ++r) {
      total += std::pow(static_cast<double>(r + 1), -1.1);
      weights->push_back(total);
    }
    return weights;
  }();
  const int fd = connect_loopback(d.router_server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  netio::FrameDecoder decoder;
  netio::Frame response;
  std::mt19937_64 rng(0x5eed'0001);
  std::uniform_real_distribution<double> uniform(0.0, cdf->back());
  for (auto _ : state) {
    const auto it = std::upper_bound(cdf->begin(), cdf->end(), uniform(rng));
    const auto rank = static_cast<std::size_t>(it - cdf->begin());
    const std::string wire = netio::encode_frame(
        netio::FrameType::kQuery,
        fp_payload(d.fingerprints[std::min(rank,
                                           d.fingerprints.size() - 1)]));
    if (!round_trip(fd, decoder, wire, response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  ::close(fd);
}
BENCHMARK(BM_RouterZipfQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
