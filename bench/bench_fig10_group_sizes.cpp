// Figure 10: the CDF of linked-group sizes, overall and per linking field.
// Paper: groups reach 413 certificates; public-key groups are the largest
// population; CRL groups are almost all pairs; SAN groups average larger
// than Common Name groups.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::bench::context;
using sm::bench::num;
using sm::linking::Feature;

void report() {
  sm::bench::print_banner("Figure 10", "sizes of linked certificate groups");
  const auto& linked = context().linked;

  std::map<Feature, std::vector<double>> sizes_by_feature;
  std::vector<double> all_sizes;
  for (const auto& group : linked.groups) {
    sizes_by_feature[group.feature].push_back(
        static_cast<double>(group.certs.size()));
    all_sizes.push_back(static_cast<double>(group.certs.size()));
  }

  sm::util::TextTable table(
      {"field", "groups", "mean size", "median", "max", "pairs %"});
  double cn_mean = 0, san_mean = 0;
  for (const auto& [feature, sizes] : sizes_by_feature) {
    const sm::util::EmpiricalCdf cdf(sizes);
    const double pairs = cdf.at(2.0);
    if (feature == Feature::kCommonName) cn_mean = cdf.mean();
    if (feature == Feature::kSan) san_mean = cdf.mean();
    table.add_row({to_string(feature), std::to_string(sizes.size()),
                   num(cdf.mean(), 2), num(cdf.median(), 0),
                   num(cdf.max(), 0), sm::util::percent(pairs)});
  }
  const sm::util::EmpiricalCdf all_cdf(all_sizes);
  table.add_row({"All", std::to_string(all_sizes.size()),
                 num(all_cdf.mean(), 2), num(all_cdf.median(), 0),
                 num(all_cdf.max(), 0), sm::util::percent(all_cdf.at(2.0))});
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  cmp.add("largest group (certs)", "413 (scaled)", num(all_cdf.max(), 0));
  cmp.add("groups larger than 2", "62%",
          sm::util::percent(1.0 - all_cdf.at(2.0)));
  if (san_mean > 0 && cn_mean > 0) {
    cmp.add("SAN mean group size > CN mean (5.10 vs 2.60)", "yes",
            san_mean > cn_mean
                ? "yes (" + num(san_mean, 2) + " vs " + num(cn_mean, 2) + ")"
                : "no (" + num(san_mean, 2) + " vs " + num(cn_mean, 2) + ")");
  }
  cmp.print();

  std::puts("group-size CDF (all fields):");
  sm::bench::print_curve("size", "F(x)", all_cdf.curve(10));
}

void BM_IterativeLinking(benchmark::State& state) {
  const auto& linker = context().linker;
  for (auto _ : state) {
    auto result = linker.link_iteratively();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IterativeLinking);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
