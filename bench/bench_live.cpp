// Live-ingestion benchmark: the epoch-publication pipeline behind
// sm_notaryd --ingest. Measures, at paper scale, what one appended scan
// segment costs end to end (archive copy + re-intern + spine rebuild +
// snapshot publish), what the query path pays per request to read the
// current epoch (one atomic shared_ptr acquire), and what a
// NotaryService::publish swap costs with precise cache invalidation.
// Prints the per-segment ingest trace, then runs google-benchmark
// timings. The daemon-side numbers (query p99 while segments land) come
// from `sm_notaryd --ingest-bench`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "corpus/live.h"
#include "netio/frame.h"
#include "notary/index.h"
#include "notary/service.h"
#include "scan/archive_io.h"

namespace {

using namespace sm;

constexpr std::size_t kSegments = 3;
constexpr std::size_t kScansPerSegment = 2;

const scan::ScanArchive& archive() { return bench::context().world.archive; }

// The paper-scale archive split once: a base corpus plus serialized SMAR
// segments holding the last scans, the shape --ingest replays.
struct Split {
  scan::ScanArchive base;
  std::vector<std::string> segments;
};

const Split& split() {
  static const Split split = [] {
    Split out;
    const std::size_t total = archive().scans().size();
    const std::size_t base_count = total - kSegments * kScansPerSegment;
    out.base = corpus::extract_segment(archive(), 0, base_count);
    for (std::size_t k = 0; k < kSegments; ++k) {
      const std::size_t first = base_count + k * kScansPerSegment;
      std::ostringstream bytes;
      scan::save_archive(
          corpus::extract_segment(archive(), first, first + kScansPerSegment),
          bytes);
      out.segments.push_back(std::move(bytes).str());
    }
    return out;
  }();
  return split;
}

std::unique_ptr<corpus::LiveCorpus> make_live() {
  return std::make_unique<corpus::LiveCorpus>(
      split().base, &bench::context().world.routing);
}

std::shared_ptr<const notary::NotaryIndex> index_of(
    const corpus::LiveSnapshot& snap) {
  return std::make_shared<const notary::NotaryIndex>(*snap.spine);
}

void report() {
  bench::print_banner("live",
                      "live ingestion: epoch publish + precise invalidation");
  const Split& s = split();
  std::printf("base corpus: %zu certs, %zu scans (+%zu segments x %zu "
              "scans held out)\n",
              s.base.certs().size(), s.base.scans().size(), kSegments,
              kScansPerSegment);

  const auto live = make_live();
  notary::NotaryServiceConfig config;
  config.cache_bytes = 64 << 20;
  notary::NotaryService service(index_of(*live->snapshot()), config);

  // Warm the cache over epoch 0, then ingest every segment and report
  // what each append + publish cost and how much of the cache survived.
  for (scan::CertId id = 0; id < service.index().size(); ++id) {
    const auto& fp = s.base.cert(id).fingerprint;
    service.handle(netio::FrameType::kQuery,
                   std::string(reinterpret_cast<const char*>(fp.data()),
                               fp.size()));
  }
  for (std::size_t k = 0; k < kSegments; ++k) {
    std::istringstream in(s.segments[k]);
    const auto t0 = std::chrono::steady_clock::now();
    const corpus::AppendResult result = live->append_segment(in);
    const double append_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    if (!result.ok) {
      std::printf("append %zu FAILED: %s\n", k + 1, result.error.c_str());
      return;
    }
    const auto snap = live->snapshot();
    const auto p0 = std::chrono::steady_clock::now();
    service.publish(index_of(*snap), snap->delta);
    const double publish_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - p0)
                                  .count();
    std::printf("epoch %llu: append %.1f ms (+%zu certs, %zu obs), "
                "index+publish %.1f ms, delta %zu\n",
                static_cast<unsigned long long>(snap->epoch), append_ms,
                result.new_certs, result.observations, publish_ms,
                result.delta_size);
  }
  const auto metrics = service.metrics();
  std::printf("cache: %llu renders invalidated over %llu swaps "
              "(%zu certs cached before the first)\n\n",
              static_cast<unsigned long long>(metrics.cache_invalidations),
              static_cast<unsigned long long>(metrics.snapshot_swaps),
              static_cast<std::size_t>(service.index().size()));
}

// One full append at paper scale: copy-on-append of the whole archive,
// segment re-intern, spine rebuild, epoch publish. Fresh corpus per
// iteration (appends are not repeatable), so the iteration count is
// pinned and the rebuild happens off the clock.
void BM_LiveAppendSegment(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    const auto live = make_live();
    std::istringstream in(split().segments[0]);
    state.ResumeTiming();
    const corpus::AppendResult result = live->append_segment(in);
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kScansPerSegment));
}
BENCHMARK(BM_LiveAppendSegment)->Iterations(3)->Unit(benchmark::kMillisecond);

// The per-request cost of reading the published epoch: one lock-free
// atomic shared_ptr acquire (plus its release on scope exit). This is
// the entire synchronization the query hot path pays.
void BM_SnapshotAcquire(benchmark::State& state) {
  const auto live = make_live();
  for (auto _ : state) {
    auto snap = live->snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotAcquire);

// A NotaryService epoch swap: snapshot store plus the precise per-shard
// invalidation of the delta's cached renders. Arg is the delta size (0 =
// a pure swap).
void BM_NotaryPublishSwap(benchmark::State& state) {
  const auto live = make_live();
  const auto snap = live->snapshot();
  const auto index_a = index_of(*snap);
  const auto index_b = index_of(*snap);
  std::vector<scan::CertId> delta;
  for (scan::CertId id = 0;
       id < static_cast<scan::CertId>(state.range(0)) &&
       id < index_a->size();
       ++id) {
    delta.push_back(id);
  }
  notary::NotaryServiceConfig config;
  config.cache_bytes = 64 << 20;
  notary::NotaryService service(index_a, config);
  bool flip = false;
  for (auto _ : state) {
    service.publish(flip ? index_a : index_b, delta);
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotaryPublishSwap)->Arg(0)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
