// Notary benchmark: NotaryIndex construction over the paper-scale corpus
// (thread sweep), in-process query throughput with the response cache on
// and off (single- and multi-threaded), and full loopback round-trips
// through the epoll server. Prints a summary, then runs google-benchmark
// timings.
//
// This binary links sm_alloc_hook (the counting operator new/delete
// replacement), so the query benchmarks can report allocs_per_query —
// the number the allocation-free hot path drives to zero — and the
// loopback benchmark reports send_syscalls_per_rtt from the server's
// vectored-write counter. scripts/bench_check.sh tracks both exactly.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "corpus/corpus_index.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/service.h"
#include "util/alloc_hook.h"
#include "util/thread_pool.h"

namespace {

using namespace sm;

const scan::ScanArchive& archive() { return bench::context().world.archive; }

// The corpus spine shared with every other consumer in the bench context.
const corpus::CorpusIndex& spine() { return bench::context().index.corpus(); }

const notary::NotaryIndex& shared_index() {
  static const notary::NotaryIndex index(spine());
  return index;
}

// Pre-encoded query payloads (16-byte fingerprints), one per cert, so the
// timed loops measure the service, not payload construction.
const std::vector<std::string>& query_payloads() {
  static const std::vector<std::string> payloads = [] {
    std::vector<std::string> out;
    out.reserve(archive().certs().size());
    for (const scan::CertRecord& cert : archive().certs()) {
      out.emplace_back(reinterpret_cast<const char*>(cert.fingerprint.data()),
                       cert.fingerprint.size());
    }
    return out;
  }();
  return payloads;
}

// Pre-encoded kQuery wire frames for the loopback benchmark.
const std::vector<std::string>& query_wires() {
  static const std::vector<std::string> wires = [] {
    std::vector<std::string> out;
    out.reserve(query_payloads().size());
    for (const std::string& payload : query_payloads()) {
      out.push_back(netio::encode_frame(netio::FrameType::kQuery, payload));
    }
    return out;
  }();
  return wires;
}

// Blocking loopback client (mirrors tools/sm_notaryd --bench).
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool round_trip(int fd, netio::FrameDecoder& decoder,
                const std::string& wire, netio::Frame& out) {
  std::string_view rest = wire;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  for (;;) {
    if (decoder.next(out) == netio::DecodeStatus::kFrame) return true;
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

void report() {
  bench::print_banner("notary",
                      "sm_notaryd: index build + query service throughput");
  const auto t0 = std::chrono::steady_clock::now();
  const notary::NotaryIndex& index = shared_index();
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::printf("corpus: %zu certs, %zu scans, %zu observations\n",
              archive().certs().size(), archive().scans().size(),
              archive().observation_count());
  std::printf("index build (global pool): %.1f ms\n", build_ms);

  notary::NotaryServiceConfig config;
  config.cache_bytes = 64 << 20;
  notary::NotaryService service(index, config);
  const std::size_t n = index.size();
  std::string out;
  out.reserve(64 << 10);
  const auto q0 = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < 2; ++round) {
    for (scan::CertId id = 0; id < n; ++id) {
      out.clear();
      service.handle_into(netio::FrameType::kQuery, query_payloads()[id],
                          out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  const double query_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - q0)
                             .count();
  // Allocation audit of the steady-state hit path.
  const std::uint64_t allocs_before = util::alloc_hook::thread_new_count();
  for (scan::CertId id = 0; id < n; ++id) {
    out.clear();
    service.handle_into(netio::FrameType::kQuery, query_payloads()[id], out);
    benchmark::DoNotOptimize(out.data());
  }
  const std::uint64_t hot_allocs =
      util::alloc_hook::thread_new_count() - allocs_before;
  const auto metrics = service.metrics();
  std::printf("in-process: %.0f queries/s (hit rate %s, p99 %.1f us)\n",
              static_cast<double>(2 * n) / query_s,
              util::percent(metrics.cache_hit_rate()).c_str(),
              metrics.latency.p99_us);
  std::printf("steady-state sweep: %" PRIu64
              " heap allocations across %zu cache-hit queries\n\n",
              hot_allocs, n);
}

void BM_NotaryIndexBuild(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  notary::NotaryIndexOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    notary::NotaryIndex index(spine(), options);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(archive().certs().size()));
}
BENCHMARK(BM_NotaryIndexBuild)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One handler thread, cache off vs on (service recreated per run so the
// cache starts cold but warms within the first sweep). Renders into a
// reused output buffer through the zero-copy entry point; the
// allocs_per_query counter reaches 0 once the cache is warm.
void BM_NotaryQuery(benchmark::State& state) {
  const notary::NotaryIndex& index = shared_index();
  notary::NotaryServiceConfig config;
  config.cache_bytes =
      state.range(0) == 0 ? 0 : static_cast<std::size_t>(64) << 20;
  notary::NotaryService service(index, config);
  const std::size_t n = index.size();
  std::string out;
  out.reserve(64 << 10);
  scan::CertId id = 0;
  const std::uint64_t allocs_before = util::alloc_hook::thread_new_count();
  for (auto _ : state) {
    out.clear();
    service.handle_into(netio::FrameType::kQuery, query_payloads()[id], out);
    benchmark::DoNotOptimize(out.data());
    id = (id + 1) % n;
  }
  const std::uint64_t allocs =
      util::alloc_hook::thread_new_count() - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_query"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetLabel(state.range(0) == 0 ? "cache-off" : "cache-on");
}
BENCHMARK(BM_NotaryQuery)->Arg(0)->Arg(1);

// Shared service hammered by `threads` handler threads (the contention
// shape the epoll workers produce).
void BM_NotaryQueryParallel(benchmark::State& state) {
  static notary::NotaryService* service = [] {
    notary::NotaryServiceConfig config;
    config.cache_bytes = 64 << 20;
    return new notary::NotaryService(shared_index(), config);
  }();
  const std::size_t n = shared_index().size();
  scan::CertId id =
      static_cast<scan::CertId>(state.thread_index() * 131 % n);
  std::string out;
  out.reserve(64 << 10);
  for (auto _ : state) {
    out.clear();
    service->handle_into(netio::FrameType::kQuery, query_payloads()[id],
                         out);
    benchmark::DoNotOptimize(out.data());
    id = (id + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotaryQueryParallel)->Threads(1)->Threads(2)->Threads(8);

// Full loopback round-trip: framing, epoll, kernel TCP, and the service.
// Requests are pre-encoded wire frames; the server renders through the
// stream handler straight into its output buffer and flushes with
// vectored sendmsg (send_syscalls_per_rtt tracks the flush count).
void BM_NotaryLoopbackRoundTrip(benchmark::State& state) {
  const notary::NotaryIndex& index = shared_index();
  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = 64 << 20;
  notary::NotaryService service(index, service_config);
  netio::ServerConfig server_config;
  server_config.workers = static_cast<std::size_t>(state.range(0));
  netio::TcpServer server(
      server_config,
      [&service](netio::FrameType type, std::string_view payload,
                 std::string& out) {
        service.handle_into(type, payload, out);
      });
  if (!server.start()) {
    state.SkipWithError("server start failed");
    return;
  }
  const int fd = connect_loopback(server.port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  netio::FrameDecoder decoder;
  netio::Frame response;
  const std::size_t n = index.size();
  scan::CertId id = 0;
  for (auto _ : state) {
    if (!round_trip(fd, decoder, query_wires()[id], response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
    id = (id + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
  const netio::ServerCounters counters = server.counters();
  state.counters["send_syscalls_per_rtt"] = benchmark::Counter(
      static_cast<double>(counters.send_syscalls),
      benchmark::Counter::kAvgIterations);
  ::close(fd);
  server.shutdown();
}
BENCHMARK(BM_NotaryLoopbackRoundTrip)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// Batched loopback: one kBatchQuery frame carrying `batch` fingerprints
// per round trip. Amortizing the syscall pair across the batch is where
// the pipelined protocol earns its keep; items == fingerprints answered.
void BM_NotaryLoopbackBatch(benchmark::State& state) {
  const notary::NotaryIndex& index = shared_index();
  notary::NotaryServiceConfig service_config;
  service_config.cache_bytes = 64 << 20;
  notary::NotaryService service(index, service_config);
  netio::ServerConfig server_config;
  server_config.workers = 1;
  netio::TcpServer server(
      server_config,
      [&service](netio::FrameType type, std::string_view payload,
                 std::string& out) {
        service.handle_into(type, payload, out);
      });
  if (!server.start()) {
    state.SkipWithError("server start failed");
    return;
  }
  const int fd = connect_loopback(server.port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t n = index.size();
  // Pre-encode a rotation of batch request frames.
  std::vector<std::string> wires;
  for (std::size_t w = 0; w < 8; ++w) {
    std::vector<scan::CertFingerprint> fps;
    for (std::size_t i = 0; i < batch; ++i) {
      fps.push_back(archive().cert((w * batch + i) % n).fingerprint);
    }
    wires.push_back(netio::encode_frame(netio::FrameType::kBatchQuery,
                                        notary::encode_batch_query(fps)));
  }
  netio::FrameDecoder decoder(32u << 20);
  netio::Frame response;
  std::size_t w = 0;
  for (auto _ : state) {
    if (!round_trip(fd, decoder, wires[w], response)) {
      state.SkipWithError("round trip failed");
      break;
    }
    benchmark::DoNotOptimize(response);
    w = (w + 1) % wires.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
  ::close(fd);
  server.shutdown();
}
BENCHMARK(BM_NotaryLoopbackBatch)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
