// §6.4.4: how linking changes the view of the certificate population.
// Paper: the single-scan fraction drops from 61% to 50.7%, and the mean
// lifetime grows from 95.4 to 132.3 days, once reissued certificates are
// merged into device entities. We also report the ground-truth
// precision/recall the paper could not compute.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Section 6.4.4",
                          "linked vs original certificate population");
  const auto gain = context().linker.compare_with_original(context().linked);
  const auto truth = context().linker.score_against_truth(context().linked);

  sm::bench::Comparison cmp;
  cmp.add("linking-eligible invalid certs", "69.5M (scaled)",
          std::to_string(gain.eligible_certs));
  cmp.add("certs linked into groups", "27.4M = 39.4%",
          std::to_string(context().linked.linked_certs) + " = " +
              sm::util::percent(
                  static_cast<double>(context().linked.linked_certs) /
                  static_cast<double>(gain.eligible_certs)));
  cmp.add("groups formed", "2.98M (scaled)",
          std::to_string(context().linked.groups.size()));
  cmp.add("single-scan fraction before", "61%",
          sm::util::percent(gain.single_scan_fraction_before));
  cmp.add("single-scan fraction after", "50.7%",
          sm::util::percent(gain.single_scan_fraction_after));
  cmp.add("mean lifetime before (days)", 95.4,
          gain.mean_lifetime_before_days);
  cmp.add("mean lifetime after (days)", 132.3, gain.mean_lifetime_after_days);
  cmp.add("mean lifetime grows", "yes",
          gain.mean_lifetime_after_days > gain.mean_lifetime_before_days
              ? "yes"
              : "no");
  cmp.print();

  std::puts("ground truth (unavailable to the paper):");
  sm::bench::Comparison truth_cmp;
  truth_cmp.add("linking precision (pairwise)", "unknown",
                num(truth.precision(), 4));
  truth_cmp.add("linking recall (pairwise)", "unknown",
                num(truth.recall(), 4));
  truth_cmp.add("pairs linked", "-", std::to_string(truth.linked_pairs));
  truth_cmp.add("true pairs available", "-",
                std::to_string(truth.possible_pairs));
  truth_cmp.print();
}

void BM_CompareWithOriginal(benchmark::State& state) {
  const auto& linker = context().linker;
  const auto& linked = context().linked;
  for (auto _ : state) {
    auto gain = linker.compare_with_original(linked);
    benchmark::DoNotOptimize(gain);
  }
}
BENCHMARK(BM_CompareWithOriginal);

void BM_TruthScoring(benchmark::State& state) {
  const auto& linker = context().linker;
  const auto& linked = context().linked;
  for (auto _ : state) {
    auto truth = linker.score_against_truth(linked);
    benchmark::DoNotOptimize(truth);
  }
}
BENCHMARK(BM_TruthScoring);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
