#include "bench/common.h"

#include <cstdio>

namespace sm::bench {

Context::Context()
    : world(simworld::World(simworld::WorldConfig::paper()).run()),
      index(world.archive, world.routing),
      linker(index),
      linked(linker.link_iteratively()) {}

const Context& context() {
  static const Context ctx;
  return ctx;
}

void print_banner(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), title.c_str());
  std::printf(
      "(simulated world: %zu devices + %zu websites, %zu scans; shapes are\n"
      " the reproduction target, not absolute counts)\n\n",
      context().world.true_device_count, context().world.true_website_count,
      context().world.archive.scans().size());
}

Comparison::Comparison()
    : table_({"metric", "paper", "measured"}) {}

void Comparison::add(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  table_.add_row({metric, paper, measured});
}

void Comparison::add(const std::string& metric, double paper, double measured,
                     int precision) {
  table_.add_row({metric, num(paper, precision), num(measured, precision)});
}

void Comparison::print() const {
  std::fputs(table_.str().c_str(), stdout);
  std::fputc('\n', stdout);
}

void print_curve(const std::string& x_label, const std::string& y_label,
                 const std::vector<std::pair<double, double>>& points,
                 std::size_t max_rows) {
  util::TextTable table({x_label, y_label});
  const std::size_t step =
      points.empty() ? 1 : std::max<std::size_t>(1, points.size() / max_rows);
  for (std::size_t i = 0; i < points.size(); i += step) {
    table.add_row({num(points[i].first, 2), num(points[i].second, 3)});
  }
  if (!points.empty() && (points.size() - 1) % step != 0) {
    table.add_row(
        {num(points.back().first, 2), num(points.back().second, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);
}

std::string num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sm::bench
