#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/thread_pool.h"

namespace sm::bench {

Context::Context()
    : world(simworld::World(simworld::WorldConfig::paper()).run()),
      index(world.archive, world.routing),
      linker(index),
      linked(linker.link_iteratively()) {}

const Context& context() {
  // The statics initialize in order on first use, so `begin` brackets the
  // Context build and the message fires exactly once.
  static const auto begin = std::chrono::steady_clock::now();
  static const Context ctx;
  static const bool logged = [] {
    std::fprintf(stderr,
                 "bench context (paper world + index + linking): %.2fs on "
                 "%zu threads\n",
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count(),
                 util::ThreadPool::global_thread_count());
    return true;
  }();
  (void)logged;
  return ctx;
}

namespace {

std::size_t parse_threads(const char* text) {
  char* end = nullptr;
  const std::size_t threads = std::strtoull(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || threads > 4096) {
    std::fprintf(stderr, "invalid thread count '%s' (want 0-4096)\n", text);
    std::exit(2);
  }
  return threads;
}

}  // namespace

void configure_threads(int* argc, char** argv) {
  std::size_t threads = 0;  // 0 = hardware default
  bool configured = false;
  if (const char* env = std::getenv("SM_THREADS")) {
    threads = parse_threads(env);
    configured = true;
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      threads = parse_threads(argv[++i]);
      configured = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = parse_threads(argv[i] + 10);
      configured = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (configured) sm::util::ThreadPool::set_global_threads(threads);
}

void print_banner(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), title.c_str());
  std::printf(
      "(simulated world: %zu devices + %zu websites, %zu scans; shapes are\n"
      " the reproduction target, not absolute counts)\n\n",
      context().world.true_device_count, context().world.true_website_count,
      context().world.archive.scans().size());
}

Comparison::Comparison()
    : table_({"metric", "paper", "measured"}) {}

void Comparison::add(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  table_.add_row({metric, paper, measured});
}

void Comparison::add(const std::string& metric, double paper, double measured,
                     int precision) {
  table_.add_row({metric, num(paper, precision), num(measured, precision)});
}

void Comparison::print() const {
  std::fputs(table_.str().c_str(), stdout);
  std::fputc('\n', stdout);
}

void print_curve(const std::string& x_label, const std::string& y_label,
                 const std::vector<std::pair<double, double>>& points,
                 std::size_t max_rows) {
  util::TextTable table({x_label, y_label});
  const std::size_t step =
      points.empty() ? 1 : std::max<std::size_t>(1, points.size() / max_rows);
  for (std::size_t i = 0; i < points.size(); i += step) {
    table.add_row({num(points[i].first, 2), num(points[i].second, 3)});
  }
  if (!points.empty() && (points.size() - 1) % step != 0) {
    table.add_row(
        {num(points.back().first, 2), num(points.back().second, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);
}

std::string num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sm::bench
