// Shared context for the bench binaries: one lazily-built paper-scale
// world plus the derived indices, linker and tracker every experiment
// needs, and small printing helpers for the paper-vs-measured tables.
//
// Every bench binary follows the same structure:
//   1. print the reproduction of its table/figure (paper vs measured);
//   2. run google-benchmark timings of the kernels that computed it.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"
#include "util/stats.h"

namespace sm::bench {

/// The world and all derived state shared by a bench binary.
struct Context {
  simworld::WorldResult world;
  analysis::DatasetIndex index;
  linking::Linker linker;
  linking::IterativeResult linked;

  Context();
};

/// The process-wide context (built on first use; ~2 s).
const Context& context();

/// Configures the global ThreadPool from the SM_THREADS environment
/// variable and a `--threads N` / `--threads=N` argument (stripped from
/// argv so google-benchmark never sees it). Call before `context()`.
void configure_threads(int* argc, char** argv);

/// Prints the experiment banner.
void print_banner(const std::string& experiment, const std::string& title);

/// A two-column "paper vs measured" row helper.
class Comparison {
 public:
  Comparison();

  /// Adds one metric row. `paper` and `measured` are preformatted values.
  void add(const std::string& metric, const std::string& paper,
           const std::string& measured);

  /// Numeric convenience (formats with the given precision).
  void add(const std::string& metric, double paper, double measured,
           int precision = 1);

  /// Prints the table to stdout.
  void print() const;

 private:
  util::TextTable table_;
};

/// Prints an (x, y) curve as aligned columns, subsampled to `max_rows`.
void print_curve(const std::string& x_label, const std::string& y_label,
                 const std::vector<std::pair<double, double>>& points,
                 std::size_t max_rows = 12);

/// Formats a double with `precision` decimals.
std::string num(double value, int precision = 1);

}  // namespace sm::bench
