// Table 2: the breakdown of certificate origin by CAIDA-style AS type.
// Paper: 94.1% of invalid certificates come from transit/access networks;
// valid certificates split between transit/access (46.6%) and content
// (42.9%) networks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Table 2", "AS-type breakdown of cert origin");
  const auto breakdown = sm::analysis::compute_as_type_breakdown(
      context().index, context().world.as_db);

  const auto share = [&](sm::net::AsType type, bool valid) {
    const auto it = breakdown.shares.find(type);
    if (it == breakdown.shares.end()) return 0.0;
    return valid ? it->second.first : it->second.second;
  };

  sm::util::TextTable table(
      {"AS type", "% of valid (paper)", "% of valid", "% of invalid (paper)",
       "% of invalid"});
  table.add_row({"Transit/Access", "46.6%",
                 sm::util::percent(share(sm::net::AsType::kTransitAccess, true)),
                 "94.1%",
                 sm::util::percent(share(sm::net::AsType::kTransitAccess, false))});
  table.add_row({"Content", "42.9%",
                 sm::util::percent(share(sm::net::AsType::kContent, true)),
                 "4.7%",
                 sm::util::percent(share(sm::net::AsType::kContent, false))});
  table.add_row({"Enterprise", "7.8%",
                 sm::util::percent(share(sm::net::AsType::kEnterprise, true)),
                 "1.5%",
                 sm::util::percent(share(sm::net::AsType::kEnterprise, false))});
  table.add_row({"Unknown", "2.6%",
                 sm::util::percent(share(sm::net::AsType::kUnknown, true)),
                 "1.7%",
                 sm::util::percent(share(sm::net::AsType::kUnknown, false))});
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  cmp.add("invalid overwhelmingly transit/access", "94.1%",
          sm::util::percent(share(sm::net::AsType::kTransitAccess, false)));
  cmp.add("content networks mostly valid", "yes",
          share(sm::net::AsType::kContent, true) >
                  share(sm::net::AsType::kContent, false)
              ? "yes"
              : "no");
  cmp.print();
}

void BM_AsTypeBreakdown(benchmark::State& state) {
  for (auto _ : state) {
    auto breakdown = sm::analysis::compute_as_type_breakdown(
        context().index, context().world.as_db);
    benchmark::DoNotOptimize(breakdown);
  }
}
BENCHMARK(BM_AsTypeBreakdown);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
