// Micro-benchmarks of the substrate primitives every higher layer leans on:
// hashing, bignum division, RSA sign/verify, DER build/parse, base64/PEM,
// longest-prefix-match routing, and the scan-order permutation.
#include <benchmark/benchmark.h>

#include "bignum/biguint.h"
#include "crypto/rsa.h"
#include "net/route_table.h"
#include "pki/lint.h"
#include "scan/permutation.h"
#include "util/md5.h"
#include "util/prng.h"
#include "util/sha1.h"
#include "util/sha256.h"
#include "x509/builder.h"
#include "x509/pem.h"

namespace {

using namespace sm;

// --- hashing -----------------------------------------------------------------

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    auto digest = util::Sha256::digest(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha1(benchmark::State& state) {
  util::Bytes data(4096, 0x5a);
  for (auto _ : state) {
    auto digest = util::Sha1::digest(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha1);

void BM_Md5(benchmark::State& state) {
  util::Bytes data(4096, 0x5a);
  for (auto _ : state) {
    auto digest = util::Md5::digest(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Md5);

// --- bignum / RSA ------------------------------------------------------------

void BM_BigUintDivmod(benchmark::State& state) {
  util::Rng rng(1);
  util::Bytes num_bytes(static_cast<std::size_t>(state.range(0)) / 8);
  util::Bytes den_bytes(num_bytes.size() / 2);
  for (auto& b : num_bytes) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto& b : den_bytes) b = static_cast<std::uint8_t>(rng.below(256));
  den_bytes[0] |= 0x80;
  const auto num = bignum::BigUint::from_bytes(num_bytes);
  const auto den = bignum::BigUint::from_bytes(den_bytes);
  for (auto _ : state) {
    auto result = bignum::BigUint::divmod(num, den);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BigUintDivmod)->Arg(512)->Arg(1024)->Arg(4096);

void BM_RsaSign(benchmark::State& state) {
  util::Rng rng(2);
  const auto key = crypto::generate_rsa_keypair(
      static_cast<std::size_t>(state.range(0)), rng);
  const util::Bytes message = util::to_bytes("tbs bytes");
  for (auto _ : state) {
    auto signature = crypto::rsa_sign_sha256(key, message);
    benchmark::DoNotOptimize(signature);
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  util::Rng rng(3);
  const auto key = crypto::generate_rsa_keypair(
      static_cast<std::size_t>(state.range(0)), rng);
  const util::Bytes message = util::to_bytes("tbs bytes");
  const util::Bytes signature = crypto::rsa_sign_sha256(key, message);
  for (auto _ : state) {
    bool ok = crypto::rsa_verify_sha256(key.pub, message, signature);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_RsaKeygen512(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    auto key = crypto::generate_rsa_keypair(512, rng);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_RsaKeygen512);

// --- X.509 / PEM ----------------------------------------------------------------

x509::Certificate build_sample_cert() {
  util::Rng rng(5);
  const auto key =
      crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
  return x509::CertificateBuilder()
      .set_serial(bignum::BigUint(42))
      .set_issuer(x509::Name::with_common_name("micro bench ca"))
      .set_subject(x509::Name::with_common_name("device.local"))
      .set_validity(0, util::make_date(2033, 1, 1))
      .set_public_key(key.pub)
      .set_subject_alt_names({{x509::GeneralName::Kind::kDns, "device.local"}})
      .sign(key);
}

void BM_BuildAndSignCert(benchmark::State& state) {
  util::Rng rng(6);
  const auto key =
      crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    auto cert = x509::CertificateBuilder()
                    .set_serial(bignum::BigUint(++serial))
                    .set_issuer(x509::Name::with_common_name("ca"))
                    .set_subject(x509::Name::with_common_name("leaf"))
                    .set_validity(0, 1000000)
                    .set_public_key(key.pub)
                    .sign(key);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_BuildAndSignCert);

void BM_PemRoundTrip(benchmark::State& state) {
  const auto cert = build_sample_cert();
  for (auto _ : state) {
    const std::string pem = x509::to_pem(cert);
    auto back = x509::certificates_from_pem(pem);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PemRoundTrip);

void BM_LintCertificate(benchmark::State& state) {
  const auto cert = build_sample_cert();
  for (auto _ : state) {
    auto findings = pki::lint_certificate(cert);
    benchmark::DoNotOptimize(findings);
  }
}
BENCHMARK(BM_LintCertificate);

// --- net / scan ---------------------------------------------------------------

void BM_RouteLookup(benchmark::State& state) {
  net::RouteTable table;
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    table.announce(net::Prefix(net::Ipv4Address(
                                   static_cast<std::uint32_t>(rng())),
                               8 + static_cast<unsigned>(rng.below(17))),
                   static_cast<net::Asn>(i));
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    probe = probe * 2654435761u + 1;
    auto asn = table.lookup(net::Ipv4Address(probe));
    benchmark::DoNotOptimize(asn);
  }
}
BENCHMARK(BM_RouteLookup);

void BM_PermutationInverse(benchmark::State& state) {
  const scan::AddressPermutation perm(99);
  std::uint32_t x = 0;
  for (auto _ : state) {
    x = perm.inverse(x + 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PermutationInverse);

void BM_Base64Encode(benchmark::State& state) {
  util::Bytes data(4096, 0xab);
  for (auto _ : state) {
    auto text = x509::base64_encode(data);
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Base64Encode);

}  // namespace

BENCHMARK_MAIN();
