// §7: tracking end-user devices. Paper: 5.59M devices trackable without
// linking, 6.75M with (+17.2%); 718K devices change AS at least once with
// 69.7% moving exactly once; bulk prefix-transfer movements (Verizon ->
// MCI) are visible; 45K devices cross countries.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "tracking/tracker.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Section 7", "tracking end-user devices");
  const sm::tracking::DeviceTracker tracker(
      context().index, context().linker, context().linked,
      context().world.as_db);
  const auto summary = tracker.summary();
  const auto movement = tracker.movement();

  sm::bench::Comparison cmp;
  cmp.add("trackable without linking", "5,585,965 (scaled)",
          std::to_string(summary.trackable_without_linking));
  cmp.add("trackable with linking", "6,750,744 (scaled)",
          std::to_string(summary.trackable_with_linking));
  cmp.add("improvement", "+17.2%",
          "+" + sm::util::percent(summary.improvement()));
  cmp.add("devices changing AS at least once", "718,495 (scaled)",
          std::to_string(movement.devices_with_as_change));
  cmp.add("mover fraction of tracked", "10.6%",
          sm::util::percent(
              static_cast<double>(movement.devices_with_as_change) /
              static_cast<double>(movement.tracked_devices)));
  cmp.add("total AS transitions", "1,328,223 (scaled)",
          std::to_string(movement.total_as_transitions));
  cmp.add("movers with exactly one move", "69.7%",
          sm::util::percent(movement.single_move_fraction));
  cmp.add("max moves by one device", "> 100 (mobile)",
          std::to_string(movement.max_moves));
  cmp.add("devices crossing countries", "45,450 (scaled)",
          std::to_string(movement.devices_crossing_countries));
  cmp.print();

  std::puts("bulk AS-to-AS movements (paper: Verizon -> MCI twice, AT&T):");
  sm::util::TextTable table({"scan", "from", "to", "devices"});
  for (const auto& transfer : movement.bulk_transfers) {
    table.add_row({std::to_string(transfer.scan),
                   context().world.as_db.label(transfer.from),
                   context().world.as_db.label(transfer.to),
                   std::to_string(transfer.devices)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_Movement(benchmark::State& state) {
  const sm::tracking::DeviceTracker tracker(
      context().index, context().linker, context().linked,
      context().world.as_db);
  for (auto _ : state) {
    auto movement = tracker.movement();
    benchmark::DoNotOptimize(movement);
  }
}
BENCHMARK(BM_Movement);

void BM_Summary(benchmark::State& state) {
  const sm::tracking::DeviceTracker tracker(
      context().index, context().linker, context().linked,
      context().world.as_db);
  for (auto _ : state) {
    auto summary = tracker.summary();
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_Summary);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
