// Table 6: per-field linking performance — certificates linked, uniquely
// linked, and IP-//24-/AS-level consistency. Paper's key shapes: Public Key
// links the most certificates with 98% AS-level but only 41.9% IP-level
// consistency (German-ISP churn); Common Name and SAN behave similarly;
// Not Before / Not After link certificates with consistency too weak to
// use, and together with IN+SN are excluded from the final linker.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::bench::context;
using sm::linking::Feature;

struct PaperRow {
  const char* linked;
  const char* ip;
  const char* as_level;
};

PaperRow paper_row(Feature feature) {
  switch (feature) {
    case Feature::kPublicKey:
      return {"23.3M", "41.9%", "98.0%"};
    case Feature::kNotBefore:
      return {"16.3M", "53.5%", "63.0%"};
    case Feature::kCommonName:
      return {"8.6M", "51.1%", "96.6%"};
    case Feature::kNotAfter:
      return {"6.2M", "51.2%", "58.2%"};
    case Feature::kIssuerSerial:
      return {"4.2M", "48.2%", "89.3%"};
    case Feature::kSan:
      return {"2.5M", "52.2%", "97.5%"};
    case Feature::kCrl:
      return {"389K", "85.8%", "95.2%"};
    case Feature::kAia:
      return {"377K", "85.7%", "95.1%"};
    case Feature::kOcsp:
      return {"3.4K", "52.2%", "97.5%"};
    case Feature::kOid:
      return {"593", "83.9%", "92.6%"};
  }
  return {"-", "-", "-"};
}

void report() {
  sm::bench::print_banner("Table 6", "per-field linking performance");
  const auto results = context().linker.evaluate_all_fields();

  sm::util::TextTable table({"field", "linked (paper)", "linked",
                             "uniq linked", "IP", "/24", "AS",
                             "AS (paper)"});
  for (const auto& result : results) {
    const PaperRow paper = paper_row(result.feature);
    table.add_row({to_string(result.feature), paper.linked,
                   std::to_string(result.total_linked),
                   std::to_string(result.uniquely_linked),
                   sm::util::percent(result.consistency.ip),
                   sm::util::percent(result.consistency.slash24),
                   sm::util::percent(result.consistency.as_level),
                   paper.as_level});
  }
  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  const auto find = [&](Feature feature) -> const sm::linking::FieldResult& {
    for (const auto& result : results) {
      if (result.feature == feature) return result;
    }
    throw std::logic_error("missing field");
  };
  sm::bench::Comparison cmp;
  cmp.add("Public Key links the most certs", "yes",
          find(Feature::kPublicKey).total_linked >=
                  find(Feature::kCommonName).total_linked
              ? "yes"
              : "no");
  cmp.add("PK AS-consistency >> IP-consistency (98.0 vs 41.9)", "yes",
          find(Feature::kPublicKey).consistency.as_level >
                  find(Feature::kPublicKey).consistency.ip + 0.2
              ? "yes"
              : "no");
  cmp.add("/24 slightly above IP everywhere", "yes",
          find(Feature::kPublicKey).consistency.slash24 >=
                  find(Feature::kPublicKey).consistency.ip
              ? "yes"
              : "no");
  cmp.add("NB/NA excluded from final linker", "yes", "yes (by construction)");
  cmp.print();
}

void BM_EvaluateAllFields(benchmark::State& state) {
  const auto& linker = context().linker;
  for (auto _ : state) {
    auto results = linker.evaluate_all_fields();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_EvaluateAllFields);

void BM_LinkPublicKeyField(benchmark::State& state) {
  const auto& linker = context().linker;
  for (auto _ : state) {
    auto result =
        linker.link_field(Feature::kPublicKey, linker.eligible());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LinkPublicKeyField);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
