// Figure 5: for ephemeral invalid certificates (seen in exactly one scan),
// the difference between the first-advertised date and the NotBefore date.
// Paper: bimodal — ~70% under four days (fresh reissues), ~20% over 1000
// days (stuck factory clocks); 30% same-day; 2.9% negative.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/longevity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner(
      "Figure 5", "first-advertised minus NotBefore, ephemeral invalid certs");
  const auto deltas = sm::analysis::compute_notbefore_deltas(context().index);

  sm::bench::Comparison cmp;
  cmp.add("same-day fraction", "~30%",
          sm::util::percent(deltas.same_day_fraction));
  cmp.add("under 4 days", "~70%",
          sm::util::percent(deltas.under_four_days_fraction));
  cmp.add("over 1000 days (stuck clocks)", "~20%",
          sm::util::percent(deltas.over_thousand_days_fraction));
  cmp.add("negative (clock ahead)", "2.9%",
          sm::util::percent(deltas.negative_fraction));
  cmp.print();

  std::puts("delta CDF (days, non-negative part):");
  sm::bench::print_curve("days", "F(x)", deltas.positive_days.curve(12));
}

void BM_NotBeforeDeltas(benchmark::State& state) {
  for (auto _ : state) {
    auto deltas = sm::analysis::compute_notbefore_deltas(context().index);
    benchmark::DoNotOptimize(deltas);
  }
}
BENCHMARK(BM_NotBeforeDeltas);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
