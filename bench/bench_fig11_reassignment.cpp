// Figure 11 / §7.4: the distribution over ASes of the fraction of tracked
// devices with statically-assigned IPs. Paper: 56.3% of ASes are >= 90%
// static (Comcast, AT&T cited), while a small set (Deutsche Telekom,
// Telefonica Venezolana, Tim Celular, BSES) reassigns most devices between
// every scan.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "tracking/tracker.h"

namespace {

using sm::bench::context;
using sm::bench::num;

void report() {
  sm::bench::print_banner("Figure 11",
                          "per-AS fraction of statically-assigned devices");
  const sm::tracking::DeviceTracker tracker(
      context().index, context().linker, context().linked,
      context().world.as_db);
  const auto stats = tracker.reassignment();

  sm::bench::Comparison cmp;
  cmp.add("ASes analysed (>= 10 tracked devices)", "4,467 (scaled)",
          std::to_string(stats.per_as.size()));
  cmp.add("ASes >= 90% static", "56.3%",
          stats.per_as.empty()
              ? "n/a"
              : sm::util::percent(static_cast<double>(stats.ases_90pct_static) /
                                  static_cast<double>(stats.per_as.size())));
  cmp.add("highly dynamic ASes (>=75% change every scan)", "15 (scaled)",
          std::to_string(stats.most_dynamic.size()));
  cmp.print();

  std::puts("static-fraction CDF over ASes:");
  sm::bench::print_curve("static frac", "F(x)",
                         stats.static_fraction_cdf.curve(10));

  std::puts("most dynamic ASes (paper: DT 76.3%, Telefonica VEN 99.6%, ...):");
  sm::util::TextTable table({"AS", "devices", "change-every-scan"});
  for (const auto& as_stats : stats.most_dynamic) {
    table.add_row({context().world.as_db.label(as_stats.asn),
                   std::to_string(as_stats.tracked_devices),
                   sm::util::percent(as_stats.always_changing_fraction())});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nexample static-heavy ASes (paper: Comcast 90%, AT&T 88.9%):");
  sm::util::TextTable table2({"AS", "devices", "static"});
  for (const auto& as_stats : stats.per_as) {
    if (as_stats.asn == 7922 || as_stats.asn == 7018 ||
        as_stats.asn == 3320) {
      table2.add_row({context().world.as_db.label(as_stats.asn),
                      std::to_string(as_stats.tracked_devices),
                      sm::util::percent(as_stats.static_fraction())});
    }
  }
  std::fputs(table2.str().c_str(), stdout);
}

void BM_Reassignment(benchmark::State& state) {
  const sm::tracking::DeviceTracker tracker(
      context().index, context().linker, context().linked,
      context().world.as_db);
  for (auto _ : state) {
    auto stats = tracker.reassignment();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_Reassignment);

void BM_TrackerBuild(benchmark::State& state) {
  for (auto _ : state) {
    sm::tracking::DeviceTracker tracker(context().index, context().linker,
                                        context().linked,
                                        context().world.as_db);
    benchmark::DoNotOptimize(tracker);
  }
}
BENCHMARK(BM_TrackerBuild);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
