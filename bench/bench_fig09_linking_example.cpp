// Figure 9: the paper's worked linking example — three groups of
// certificates sharing public keys PK1, PK2, PK3 across four scans. PK1 and
// PK2 satisfy the one-scan-overlap rule and link; PK3's certificates
// overlap on two scans and are rejected. The §6.4.1 example consistency
// values (IP 0.5, /24 0.75, AS 1.0 for PK2) are reproduced too.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/dataset.h"
#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::analysis::DatasetIndex;
using sm::linking::Feature;
using sm::linking::FieldResult;
using sm::linking::Linker;
using sm::scan::Campaign;
using sm::scan::CertRecord;
using sm::scan::ScanArchive;
using sm::scan::ScanEvent;

constexpr std::int64_t kDay = sm::util::kSecondsPerDay;

CertRecord example_record(std::uint64_t id, std::uint64_t key) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.key_fingerprint = key;
  rec.subject_cn = "cert-" + std::to_string(id);
  rec.not_before = 0;
  rec.not_after = sm::util::make_date(2033, 1, 1);
  rec.valid = false;
  rec.invalid_reason = sm::pki::InvalidReason::kSelfSigned;
  return rec;
}

struct Example {
  ScanArchive archive;
  sm::net::RoutingHistory routing;

  Example() {
    sm::net::RouteTable table;
    // One AS; two /24s within it so the /24-level metric is interesting.
    table.announce(*sm::net::Prefix::parse("10.0.0.0/16"), 64500);
    routing.add_snapshot(0, table);

    // Certs 1-2 share PK1; 3-5 share PK2; 6-7 share PK3.
    for (std::uint64_t id = 1; id <= 7; ++id) {
      const std::uint64_t key = id <= 2 ? 0xF1 : (id <= 5 ? 0xF2 : 0xF3);
      archive.intern(example_record(id, key));
    }
    const std::size_t s0 = archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
    const std::size_t s1 =
        archive.begin_scan(ScanEvent{Campaign::kUMich, 7 * kDay});
    const std::size_t s2 =
        archive.begin_scan(ScanEvent{Campaign::kUMich, 14 * kDay});
    const std::size_t s3 =
        archive.begin_scan(ScanEvent{Campaign::kUMich, 21 * kDay});
    const auto ip = [](std::uint32_t addr_index) {
      // "IP addr 2" and "IP addr 3" share a /24, as in the example.
      static const std::uint32_t kAddrs[] = {
          0x0a000101, 0x0a000201, 0x0a000202, 0x0a000301, 0x0a000401,
          0x0a000501};
      return kAddrs[addr_index - 1];
    };
    // PK1: cert1 scans 0-1 at addr1; cert2 scans 2-3 (gap in scan 2 for
    // cert1 as in the figure: "not observed in the third scan").
    archive.add_observation(s0, 0, ip(1), 1);
    archive.add_observation(s1, 0, ip(1), 1);
    archive.add_observation(s3, 1, ip(1), 1);
    // PK2: cert3 scans 0-1 at addr2; cert4 scans 1-2 at addr3 (one-scan
    // overlap); cert5 scan 3 at addr4.
    archive.add_observation(s0, 2, ip(2), 2);
    archive.add_observation(s1, 2, ip(2), 2);
    archive.add_observation(s1, 3, ip(3), 2);
    archive.add_observation(s2, 3, ip(3), 2);
    archive.add_observation(s3, 4, ip(4), 2);
    // PK3: cert6 scans 0-2 at addr5; cert7 scans 1-3 at addr6 — two-scan
    // overlap, different devices.
    archive.add_observation(s0, 5, ip(5), 3);
    archive.add_observation(s1, 5, ip(5), 3);
    archive.add_observation(s2, 5, ip(5), 3);
    archive.add_observation(s1, 6, ip(6), 4);
    archive.add_observation(s2, 6, ip(6), 4);
    archive.add_observation(s3, 6, ip(6), 4);
  }
};

void report() {
  sm::bench::print_banner("Figure 9",
                          "the linking-methodology worked example");
  Example example;
  const DatasetIndex index(example.archive, example.routing);
  const Linker linker(index);
  const FieldResult result =
      linker.link_field(Feature::kPublicKey, linker.eligible());

  sm::bench::Comparison cmp;
  cmp.add("groups linked", "2 (PK1, PK2)",
          std::to_string(result.groups.size()));
  cmp.add("PK3 rejected (two-scan overlap)", "yes",
          result.total_linked == 5 ? "yes" : "no");
  cmp.print();

  for (const auto& group : result.groups) {
    const auto consistency = linker.group_consistency(group);
    std::printf(
        "group of %zu certs (key %s): IP consistency %.2f, /24 %.2f, AS %.2f\n",
        group.certs.size(),
        feature_value(example.archive.cert(group.certs[0]),
                      Feature::kPublicKey)
            .c_str(),
        consistency.ip, consistency.slash24, consistency.as_level);
  }
  std::puts(
      "\npaper's PK2 example: IP-level 0.5, /24-level 0.75, AS-level 1.0");
}

void BM_ExampleLinking(benchmark::State& state) {
  Example example;
  const DatasetIndex index(example.archive, example.routing);
  for (auto _ : state) {
    const Linker linker(index);
    auto result = linker.link_field(Feature::kPublicKey, linker.eligible());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExampleLinking);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
