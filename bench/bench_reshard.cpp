// Resharding benchmark: a live two-shard deployment (LiveCorpus-backed
// backends with ReshardHost behind RouterService, in-process over real
// loopback TCP) splits one shard into two while a client hammers the
// router. Prints the handoff phase timings — the headline being the
// cutover blackout: the map-swap round trip during which the new epoch
// takes effect (RCU swap, so queries never stop flowing) — then runs
// google-benchmark timings of the reshard kernels.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/index.h"
#include "notary/prefix_map.h"
#include "notary/reshard.h"
#include "notary/router.h"
#include "notary/service.h"
#include "scan/archive_io.h"
#include "tests/loopback_client.h"

namespace {

using namespace sm;
using sm::testing::LoopbackClient;

const scan::ScanArchive& archive() { return bench::context().world.archive; }

std::string fp_payload(const scan::CertFingerprint& fp) {
  return {reinterpret_cast<const char*>(fp.data()), fp.size()};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One in-process live backend: the sm_notaryd --shard-prefix / --empty
// shape (LiveCorpus + NotaryService + ReshardHost behind a TcpServer).
struct LiveBackend {
  std::optional<corpus::LiveCorpus> live;
  std::optional<notary::NotaryService> service;
  std::optional<notary::ReshardHost> reshard;
  std::optional<netio::TcpServer> server;
  std::uint16_t port = 0;

  void start(scan::ScanArchive slice, corpus::RevocationStatusMap statuses,
             corpus::KeyCountMap key_counts) {
    live.emplace(std::move(slice), &bench::context().world.routing, nullptr,
                 std::move(statuses), std::move(key_counts));
    const auto snap = live->snapshot();
    notary::NotaryIndexOptions options;
    if (snap->key_counts) options.key_counts = snap->key_counts.get();
    if (snap->statuses) {
      options.revocation_statuses = snap->statuses.get();
    }
    notary::NotaryServiceConfig config;
    config.cache_bytes = 8u << 20;
    service.emplace(
        std::make_shared<const notary::NotaryIndex>(*snap->spine, options),
        config);
    reshard.emplace(*live, *service);
    netio::ServerConfig server_config;
    server_config.workers = 2;
    server.emplace(server_config,
                   [this](netio::FrameType type, std::string_view payload,
                          std::string& out) {
                     if (!reshard->handle(type, payload, out)) {
                       service->handle_into(type, payload, out);
                     }
                   });
    if (!server->start()) std::abort();
    port = server->port();
  }
};

std::string slice_send_payload(std::uint8_t lo, std::uint8_t hi,
                               std::uint16_t target) {
  const std::string host = "127.0.0.1";
  std::string payload;
  payload.push_back(static_cast<char>(lo));
  payload.push_back(static_cast<char>(hi));
  payload.push_back(static_cast<char>(target & 0xff));
  payload.push_back(static_cast<char>(target >> 8));
  payload.push_back(static_cast<char>(host.size()));
  payload += host;
  return payload;
}

netio::Frame ask(std::uint16_t port, netio::FrameType type,
                 std::string_view payload) {
  LoopbackClient client(port);
  netio::Frame response;
  if (!client.connected() || !client.send_frame(type, payload) ||
      !client.read_frame(response)) {
    std::abort();
  }
  return response;
}

// The printed experiment: split [c0-ff] off the upper shard onto a fresh
// successor while queries flow, reporting per-phase wall times.
void report() {
  bench::print_banner("reshard",
                      "online resharding: live slice handoff timings");

  const scan::ScanArchive& full = archive();
  corpus::KeyCountMap key_counts;
  for (const scan::CertRecord& cert : full.certs()) {
    ++key_counts[cert.key_fingerprint];
  }
  const corpus::RevocationStatusMap& statuses =
      bench::context().world.revocation.statuses;

  LiveBackend lower, upper, successor;
  lower.start(corpus::extract_prefix_slice(full, 0, 127), statuses,
              key_counts);
  upper.start(corpus::extract_prefix_slice(full, 128, 255), statuses,
              key_counts);
  successor.start(scan::ScanArchive{}, {}, {});

  notary::RouterConfig router_config;
  router_config.shards.push_back({{{"127.0.0.1", lower.port}}});
  router_config.shards.push_back({{{"127.0.0.1", upper.port}}});
  router_config.pool.ping_interval_ms = 50;
  notary::RouterService router(std::move(router_config));
  netio::ServerConfig server_config;
  server_config.workers = 4;
  netio::TcpServer router_server(
      server_config, [&router](netio::FrameType type,
                               std::string_view payload, std::string& out) {
        router.handle_into(type, payload, out);
      });
  if (!router_server.start()) std::abort();

  std::vector<scan::CertFingerprint> probes;
  for (const scan::CertRecord& cert : full.certs()) {
    probes.push_back(cert.fingerprint);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failed{0};
  std::thread load([&] {
    LoopbackClient client(router_server.port());
    if (!client.connected()) return;
    netio::Frame response;
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!client.send_frame(netio::FrameType::kQuery,
                             fp_payload(probes[i++ % probes.size()])) ||
          !client.read_frame(response) ||
          response.type != netio::FrameType::kCertInfo) {
        failed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Let the load reach steady state before the handoff starts.
  while (served.load(std::memory_order_relaxed) < 500) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto handoff_start = std::chrono::steady_clock::now();
  auto phase_start = handoff_start;
  const netio::Frame streamed =
      ask(upper.port, netio::FrameType::kSliceSend,
          slice_send_payload(192, 255, successor.port));
  if (streamed.type != netio::FrameType::kSliceInfo) std::abort();
  const double stream_s = seconds_since(phase_start);

  notary::PrefixMap next = router.current_map();
  std::string error;
  if (!notary::split_prefix_map_entry(
          next, 1, {{"127.0.0.1", successor.port}}, error)) {
    std::abort();
  }
  phase_start = std::chrono::steady_clock::now();
  const netio::Frame swapped =
      ask(router_server.port(), netio::FrameType::kMapUpdate,
          notary::serialize_prefix_map(next));
  if (swapped.type != netio::FrameType::kMapInfo) std::abort();
  const double blackout_s = seconds_since(phase_start);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // drain
  phase_start = std::chrono::steady_clock::now();
  const netio::Frame retired =
      ask(upper.port, netio::FrameType::kSliceRetire, "\xc0\xff");
  if (retired.type != netio::FrameType::kSliceInfo) std::abort();
  const double retire_s = seconds_since(phase_start);
  const double total_s = seconds_since(handoff_start);

  stop.store(true, std::memory_order_relaxed);
  load.join();

  const std::size_t moved =
      corpus::extract_prefix_slice(full, 192, 255).certs().size();
  std::printf("  certificates moved     %zu of %zu\n", moved,
              full.certs().size());
  std::printf("  slice stream + merge   %9.3f s\n", stream_s);
  std::printf("  cutover blackout       %9.6f s (map swap to epoch %llu)\n",
              blackout_s,
              static_cast<unsigned long long>(router.map_epoch()));
  std::printf("  source slice retire    %9.3f s (after 0.100 s drain)\n",
              retire_s);
  std::printf("  handoff total          %9.3f s\n", total_s);
  std::printf("  queries during handoff %llu served, %llu failed\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(failed.load()));
  if (failed.load() != 0 || blackout_s >= 1.0) std::abort();

  router_server.shutdown();
  lower.server->shutdown();
  upper.server->shutdown();
  successor.server->shutdown();
}

// ---- kernels -------------------------------------------------------------

// The cutover blackout kernel: validate + compile + RCU-swap a new map
// on a standalone RouterService (no sockets — the swap itself).
void BM_RouterMapSwap(benchmark::State& state) {
  notary::RouterConfig config;
  config.shards.push_back({{{"127.0.0.1", 19301}}});
  config.shards.push_back({{{"127.0.0.1", 19302}}});
  config.pool.ping_interval_ms = 0;
  notary::RouterService router(std::move(config));
  notary::PrefixMap map = router.current_map();
  std::string error;
  for (auto _ : state) {
    ++map.epoch;
    if (!router.apply_map(map, error)) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterMapSwap)->Unit(benchmark::kMicrosecond);

// Map wire codec at the 256-entry ceiling (every first byte its own
// entry) — the worst case a router or driver ever moves.
void BM_PrefixMapRoundTrip(benchmark::State& state) {
  notary::PrefixMap map;
  map.epoch = 7;
  for (unsigned b = 0; b < 256; ++b) {
    map.entries.push_back(
        {static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(b),
         {{"127.0.0.1", static_cast<std::uint16_t>(10000 + b)}}});
  }
  for (auto _ : state) {
    const std::string wire = notary::serialize_prefix_map(map);
    notary::PrefixMap parsed;
    std::string error;
    if (!notary::parse_prefix_map(wire, parsed, error)) std::abort();
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixMapRoundTrip)->Unit(benchmark::kMicrosecond);

// Snapshotting a quarter-range slice out of the full archive — the
// per-round cost a source backend pays while streaming to a successor.
void BM_SliceExtract(benchmark::State& state) {
  const scan::ScanArchive& full = archive();
  for (auto _ : state) {
    const scan::ScanArchive slice =
        corpus::extract_prefix_slice(full, 192, 255);
    benchmark::DoNotOptimize(slice.certs().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SliceExtract)->Unit(benchmark::kMillisecond);

// Serialize + merge a quarter slice into a fresh successor corpus — the
// receiving side of one catch-up round.
void BM_SliceMerge(benchmark::State& state) {
  corpus::KeyCountMap key_counts;
  for (const scan::CertRecord& cert : archive().certs()) {
    ++key_counts[cert.key_fingerprint];
  }
  std::ostringstream smar;
  if (!scan::save_archive(corpus::extract_prefix_slice(archive(), 192, 255),
                          smar)) {
    std::abort();
  }
  const std::string wire = smar.str();
  for (auto _ : state) {
    corpus::LiveCorpus successor(scan::ScanArchive{},
                                 &bench::context().world.routing);
    std::istringstream in(wire);
    const corpus::AppendResult result =
        successor.merge_slice(in, &key_counts, nullptr);
    if (!result.ok) std::abort();
    benchmark::DoNotOptimize(result.new_certs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SliceMerge)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
