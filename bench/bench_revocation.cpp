// Revocation benchmark: the batch-verified revocation pass
// (BatchVerifier::check_revocation_all against a published ecosystem,
// thread sweep) and the notary's kRevocationQuery serving path (singles
// and batches). Prints the paper-world revocation breakdown first, then
// runs google-benchmark timings.
//
// Links sm_alloc_hook so the serving benchmarks report allocs_per_query
// — the revocation render bypasses the response cache and must stay at
// zero on a warm buffer; scripts/bench_check.sh gates that exactly.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/revocation.h"
#include "bench/common.h"
#include "bignum/biguint.h"
#include "corpus/corpus_index.h"
#include "netio/frame.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/service.h"
#include "pki/root_store.h"
#include "pki/verifier.h"
#include "revocation/ecosystem.h"
#include "util/alloc_hook.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "x509/builder.h"

namespace {

using namespace sm;

// ---- synthetic ecosystem for the verifier kernel -------------------------
// The world keeps its verifier stores internal, so the check_revocation_all
// sweep runs against a self-contained ecosystem at paper-ish CA scale.

constexpr std::size_t kAuthorities = 48;
constexpr std::size_t kCertsPerAuthority = 400;
const util::UnixTime kCheckTime = util::make_date(2014, 9, 1);

struct VerifierFixture {
  revocation::Ecosystem eco;
  pki::RootStore roots;
  pki::IntermediatePool intermediates;
  std::vector<pki::RevocationQuery> queries;

  VerifierFixture() : eco(make_config()) {
    for (std::size_t i = 0; i < kAuthorities; ++i) {
      util::Rng rng(9000 + i);
      const crypto::SigningKey key =
          crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
      const std::string cn = "Bench CA " + std::to_string(i);
      const x509::Certificate cert =
          x509::CertificateBuilder()
              .set_serial(bignum::BigUint(1))
              .set_issuer(x509::Name::with_common_name(cn))
              .set_subject(x509::Name::with_common_name(cn))
              .set_validity(util::make_date(2010, 1, 1),
                            util::make_date(2035, 1, 1))
              .set_public_key(key.pub)
              .set_basic_constraints(true)
              .sign(key);
      const std::string issuer_key = cert.subject.to_string();
      eco.add_authority(issuer_key, cert, key, /*trusted=*/true);
      if (i % 2 == 0) {
        roots.add(cert);
      } else {
        intermediates.add(cert);
      }
      for (std::size_t j = 0; j < kCertsPerAuthority; ++j) {
        const std::string serial = bignum::BigUint(100 + j).to_hex();
        eco.add_certificate(issuer_key, serial,
                            util::make_date(2014, 1 + (j % 8), 1));
        queries.push_back({issuer_key, serial, j % 5 != 0, j % 3 != 0});
      }
    }
    eco.publish();
  }

  static revocation::EcosystemConfig make_config() {
    revocation::EcosystemConfig config;
    config.seed = 0xbe7c;
    config.check_time = kCheckTime;
    config.mass_event_issuer =
        x509::Name::with_common_name("Bench CA 7").to_string();
    config.mass_event_time = util::make_date(2014, 5, 1);
    return config;
  }
};

const VerifierFixture& fixture() {
  static const VerifierFixture f;
  return f;
}

// ---- notary serving over the shared paper world --------------------------

const simworld::WorldResult& world() { return bench::context().world; }

const notary::NotaryIndex& shared_index() {
  static const notary::NotaryIndex index = [] {
    notary::NotaryIndexOptions options;
    options.revocation_statuses = &world().revocation.statuses;
    return notary::NotaryIndex(bench::context().index.corpus(), options);
  }();
  return index;
}

const std::vector<std::string>& query_payloads() {
  static const std::vector<std::string> payloads = [] {
    std::vector<std::string> out;
    out.reserve(world().archive.certs().size());
    for (const scan::CertRecord& cert : world().archive.certs()) {
      out.emplace_back(reinterpret_cast<const char*>(cert.fingerprint.data()),
                       cert.fingerprint.size());
    }
    return out;
  }();
  return payloads;
}

void report() {
  bench::print_banner(
      "revocation",
      "CRL/OCSP ecosystem: batch-verified status + notary serving");
  const auto& outcome = world().revocation;
  if (outcome.ecosystem == nullptr) {
    std::printf("revocation pass disabled in this world\n\n");
    return;
  }
  const revocation::EcosystemStats stats = outcome.ecosystem->stats();
  std::printf(
      "paper world: %zu authorities, %zu issued serials; revoked %zu "
      "(%zu by the mass event), %zu stale CRLs, %zu unreachable DPs\n",
      stats.authorities, stats.certificates, stats.revoked_intent,
      stats.revoked_mass_event, stats.stale_authorities,
      stats.unreachable_authorities);
  const analysis::RevocationBreakdown breakdown =
      analysis::compute_revocation_breakdown(world().archive,
                                             outcome.statuses);
  std::fputs(analysis::render_revocation_table(breakdown).c_str(), stdout);
  std::printf("\n");
}

// The revocation pass kernel: fetch + parse + verify the served CRL per
// issuer (memoized), classify every certificate. Thread sweep over the
// synthetic ecosystem (48 CAs x 400 certs).
void BM_RevocationCheckAll(benchmark::State& state) {
  const VerifierFixture& f = fixture();
  const pki::BatchVerifier verifier(f.roots, f.intermediates);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const std::vector<pki::RevocationStatus> statuses =
        verifier.check_revocation_all(f.queries, f.eco, kCheckTime, &pool);
    benchmark::DoNotOptimize(statuses.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.queries.size()));
}
BENCHMARK(BM_RevocationCheckAll)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Single kRevocationQuery serving: a flat-row read plus a two-line render
// into a warm buffer — allocation-free, no cache involved.
void BM_NotaryRevocationQuery(benchmark::State& state) {
  notary::NotaryService service(shared_index());
  const std::size_t n = query_payloads().size();
  std::string out;
  out.reserve(64 << 10);
  std::size_t i = 0;
  const std::uint64_t allocs_before = util::alloc_hook::thread_new_count();
  for (auto _ : state) {
    out.clear();
    service.handle_into(netio::FrameType::kRevocationQuery,
                        query_payloads()[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % n;
  }
  const std::uint64_t allocs =
      util::alloc_hook::thread_new_count() - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_query"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_NotaryRevocationQuery);

// Batched revocation status for 256 fingerprints per request.
void BM_NotaryRevocationBatch(benchmark::State& state) {
  notary::NotaryService service(shared_index());
  std::vector<scan::CertFingerprint> fps;
  const auto& certs = world().archive.certs();
  for (std::size_t i = 0; i < 256 && i < certs.size(); ++i) {
    fps.push_back(certs[i].fingerprint);
  }
  const std::string request = notary::encode_batch_query(fps);
  std::string out;
  out.reserve(1 << 20);
  for (auto _ : state) {
    out.clear();
    service.handle_into(netio::FrameType::kRevocationQuery, request, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fps.size()));
}
BENCHMARK(BM_NotaryRevocationBatch);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
