// Corpus-spine benchmark: the cost of building corpus::CorpusIndex (the
// columnar cert→observation CSR + ASN column + stats rows every layer
// shares) over the paper-scale corpus, its thread scaling, and the
// before/after of the single-spine refactor — the pre-refactor pipeline
// derived the same columns independently in analysis, linking, tracking,
// and the notary (four builds per survey); the shared spine is built once
// and consumed as zero-copy views. Prints the end-to-end survey
// comparison (wall time + peak RSS + resident footprint), then runs
// google-benchmark timings.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include <sys/resource.h>

#include "analysis/dataset.h"
#include "bench/common.h"
#include "corpus/corpus_index.h"
#include "linking/linker.h"
#include "notary/index.h"
#include "tracking/tracker.h"
#include "util/thread_pool.h"

namespace {

using namespace sm;

const simworld::WorldResult& world() { return bench::context().world; }

corpus::CorpusOptions spine_options(util::ThreadPool* pool = nullptr) {
  corpus::CorpusOptions options;
  options.routing = &world().routing;
  options.pool = pool;
  return options;
}

long peak_rss_kib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

double timed_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Resident bytes of one spine's columns (CSR offsets, {scan,ip} rows,
/// ASN column, stats rows, first-device column).
double spine_footprint_mb(const corpus::CorpusIndex& spine) {
  const double bytes =
      static_cast<double>(spine.cert_count() + 1) * sizeof(std::uint64_t) +
      static_cast<double>(spine.observation_count()) *
          (sizeof(corpus::Obs) + sizeof(net::Asn)) +
      static_cast<double>(spine.cert_count()) *
          (sizeof(corpus::CertStats) + sizeof(scan::DeviceId));
  return bytes / (1024.0 * 1024.0);
}

// The full downstream survey given an already-built spine: §5 analysis
// view, §6 linking, §7 tracking, §8 notary index.
void run_consumers(const corpus::CorpusIndex& spine) {
  const analysis::DatasetIndex index(spine);
  const linking::Linker linker(index);
  const auto linked = linker.link_iteratively();
  const tracking::DeviceTracker tracker(index, linker, linked,
                                        world().as_db);
  const notary::NotaryIndex notary(spine);
  benchmark::DoNotOptimize(linked.groups.size());
  benchmark::DoNotOptimize(tracker.entities().size());
  benchmark::DoNotOptimize(notary.size());
}

void report() {
  bench::print_banner(
      "corpus", "Columnar corpus spine: one build, four consumer layers");
  const auto& archive = world().archive;
  std::printf("corpus: %zu certs, %zu scans, %zu observations\n",
              archive.certs().size(), archive.scans().size(),
              archive.observation_count());

  // Single spine build on the global pool.
  double build_ms = 0;
  {
    corpus::CorpusIndex* spine = nullptr;
    build_ms = timed_ms([&] {
      spine = new corpus::CorpusIndex(archive, spine_options());
    });
    std::printf("spine build (global pool): %.1f ms, %.1f MB resident\n",
                build_ms, spine_footprint_mb(*spine));
    delete spine;
  }

  // Pre-refactor shape: analysis, linking, tracking, and the notary each
  // derived the CSR + ASN column + stats privately — four spine builds
  // held live at once, then the same consumer work.
  const long rss_before_legacy = peak_rss_kib();
  const double legacy_ms = timed_ms([&] {
    const corpus::CorpusIndex s1(archive, spine_options());
    const corpus::CorpusIndex s2(archive, spine_options());
    const corpus::CorpusIndex s3(archive, spine_options());
    const corpus::CorpusIndex s4(archive, spine_options());
    run_consumers(s1);
  });
  const long rss_after_legacy = peak_rss_kib();

  // Post-refactor shape: one spine, every layer a zero-copy view.
  const long rss_before_shared = peak_rss_kib();
  const double shared_ms = timed_ms([&] {
    const corpus::CorpusIndex spine(archive, spine_options());
    run_consumers(spine);
  });
  const long rss_after_shared = peak_rss_kib();

  std::printf("end-to-end survey (spine + link + track + notary):\n");
  std::printf("  four per-layer builds (pre-refactor): %.1f ms, "
              "peak RSS +%ld KiB\n",
              legacy_ms, rss_after_legacy - rss_before_legacy);
  std::printf("  one shared spine (this layout):       %.1f ms, "
              "peak RSS +%ld KiB\n",
              shared_ms, rss_after_shared - rss_before_shared);
  std::printf("  speedup x%.2f\n\n", legacy_ms / shared_ms);
}

void BM_SpineBuild(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto options = spine_options(&pool);
  for (auto _ : state) {
    corpus::CorpusIndex spine(world().archive, options);
    benchmark::DoNotOptimize(spine.observation_count());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(world().archive.observation_count()));
}
BENCHMARK(BM_SpineBuild)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// No-routing build: the CSR + stats cost alone, isolating the ASN column.
void BM_SpineBuildNoRouting(benchmark::State& state) {
  for (auto _ : state) {
    corpus::CorpusIndex spine(world().archive);
    benchmark::DoNotOptimize(spine.observation_count());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(world().archive.observation_count()));
}
BENCHMARK(BM_SpineBuildNoRouting)->Unit(benchmark::kMillisecond);

void BM_FourIndependentBuilds(benchmark::State& state) {
  const auto options = spine_options();
  for (auto _ : state) {
    corpus::CorpusIndex s1(world().archive, options);
    corpus::CorpusIndex s2(world().archive, options);
    corpus::CorpusIndex s3(world().archive, options);
    corpus::CorpusIndex s4(world().archive, options);
    benchmark::DoNotOptimize(s4.observation_count());
  }
}
BENCHMARK(BM_FourIndependentBuilds)->Unit(benchmark::kMillisecond);

// A consumer-side read: sweep every cert's observation + ASN spans the
// way the linker's duplicate filter does.
void BM_SpanSweep(benchmark::State& state) {
  static const corpus::CorpusIndex spine(world().archive, spine_options());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (scan::CertId id = 0; id < spine.cert_count(); ++id) {
      const auto obs = spine.observations(id);
      const auto asns = spine.asns(id);
      for (std::size_t i = 0; i < obs.size(); ++i) {
        acc += obs[i].ip + asns[i];
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(spine.observation_count()));
}
BENCHMARK(BM_SpanSweep);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
