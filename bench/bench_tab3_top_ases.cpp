// Table 3: the top ASes hosting valid and invalid certificates. Paper: all
// top valid hosters are US hosting companies (GoDaddy, Unified Layer,
// Amazon, SoftLayer); top invalid hosters are end-user access ISPs with
// Germany heavily represented (Deutsche Telekom, Vodafone, Telefonica) plus
// Comcast and Korea Telecom.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/diversity.h"
#include "bench/common.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Table 3", "top ASes hosting valid/invalid certs");
  const auto top = sm::analysis::compute_top_ases(context().index,
                                                  context().world.as_db);

  std::puts("top ASes hosting valid certificates (paper: GoDaddy, Unified");
  std::puts("Layer, Amazon x2, SoftLayer — all USA):");
  sm::util::TextTable valid_table({"AS", "certs"});
  for (const auto& row : top.valid) {
    valid_table.add_row({row.label, std::to_string(row.certs)});
  }
  std::fputs(valid_table.str().c_str(), stdout);

  std::puts("\ntop ASes hosting invalid certificates (paper: Deutsche");
  std::puts("Telekom, Comcast, Vodafone, Telefonica Germany, Korea Telecom):");
  sm::util::TextTable invalid_table({"AS", "certs"});
  for (const auto& row : top.invalid) {
    invalid_table.add_row({row.label, std::to_string(row.certs)});
  }
  std::fputs(invalid_table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  sm::bench::Comparison cmp;
  cmp.add("top invalid AS", "#3320 Deutsche Telekom AG (DEU)",
          top.invalid.empty() ? "n/a" : top.invalid[0].label);
  int german = 0;
  for (const auto& row : top.invalid) {
    const auto* info = context().world.as_db.find(row.asn);
    if (info && info->country == "DEU") ++german;
  }
  cmp.add("German ISPs among top-5 invalid", "3", std::to_string(german));
  bool all_valid_usa = !top.valid.empty();
  for (const auto& row : top.valid) {
    const auto* info = context().world.as_db.find(row.asn);
    if (!info || info->country != "USA") all_valid_usa = false;
  }
  cmp.add("all top-5 valid ASes in USA", "yes", all_valid_usa ? "yes" : "no");
  cmp.print();
}

void BM_TopAses(benchmark::State& state) {
  for (auto _ : state) {
    auto top = sm::analysis::compute_top_ases(context().index,
                                              context().world.as_db);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_TopAses);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
