// Ablations of the linking methodology's design choices (not in the paper;
// enabled by simulator ground truth):
//  * overlap tolerance 0 / 1 (paper) / 2 scans;
//  * duplicate filter on/off;
//  * IP-CN exclusion on/off;
//  * single-field linkers vs the full iterative pipeline.
// Precision is pairwise against true device identities.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "linking/linker.h"

namespace {

using sm::bench::context;
using sm::bench::num;
using sm::linking::Feature;
using sm::linking::Linker;
using sm::linking::LinkerConfig;

void run_variant(sm::util::TextTable& table, const std::string& name,
                 const LinkerConfig& config) {
  const Linker linker(context().index, config);
  const auto linked = linker.link_iteratively();
  const auto truth = linker.score_against_truth(linked);
  table.add_row(
      {name, std::to_string(linker.eligible_count()),
       std::to_string(linked.linked_certs),
       sm::util::percent(static_cast<double>(linked.linked_certs) /
                         static_cast<double>(linker.eligible_count())),
       num(truth.precision(), 4), num(truth.recall(), 4)});
}

void report() {
  sm::bench::print_banner("Ablation",
                          "linker design choices scored against ground truth");
  sm::util::TextTable table(
      {"variant", "eligible", "linked", "linked %", "precision", "recall"});

  run_variant(table, "paper defaults", LinkerConfig{});

  LinkerConfig strict;
  strict.max_overlap_scans = 0;
  run_variant(table, "overlap tolerance 0", strict);

  LinkerConfig lax;
  lax.max_overlap_scans = 2;
  run_variant(table, "overlap tolerance 2", lax);

  LinkerConfig no_dup;
  no_dup.dup_ip_threshold = 0xffffffff;
  no_dup.exclude_always_at_threshold = false;
  run_variant(table, "duplicate filter off", no_dup);

  LinkerConfig ip_cns;
  ip_cns.exclude_ip_common_names = false;
  run_variant(table, "IP CNs allowed in CN linking", ip_cns);

  std::fputs(table.str().c_str(), stdout);
  std::fputc('\n', stdout);

  std::puts("single-field linkers (paper order context):");
  sm::util::TextTable single(
      {"field", "linked", "precision", "recall"});
  for (const Feature feature :
       {Feature::kPublicKey, Feature::kCommonName, Feature::kSan,
        Feature::kNotBefore, Feature::kIssuerSerial}) {
    const auto linked = context().linker.link_iteratively({feature});
    const auto truth = context().linker.score_against_truth(linked);
    single.add_row({to_string(feature), std::to_string(linked.linked_certs),
                    num(truth.precision(), 4), num(truth.recall(), 4)});
  }
  std::fputs(single.str().c_str(), stdout);
  std::puts(
      "\nshape check: the paper's choices (tolerance 1, duplicate filter on,\n"
      "IP CNs excluded) should dominate the precision/recall frontier; the\n"
      "timestamp fields should show visibly worse precision.");
}

void BM_LinkerConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Linker linker(context().index);
    benchmark::DoNotOptimize(linker);
  }
}
BENCHMARK(BM_LinkerConstruction);

void BM_FullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    Linker linker(context().index);
    auto linked = linker.link_iteratively();
    auto truth = linker.score_against_truth(linked);
    benchmark::DoNotOptimize(truth);
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

int main(int argc, char** argv) {
  sm::bench::configure_threads(&argc, argv);
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
