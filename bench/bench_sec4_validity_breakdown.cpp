// §4.2: isolating invalid certificates — the openssl-verify analog. Paper:
// 87.9% of unique certificates are invalid; of those, 88.0% are
// self-signed, 11.99% are signed by an untrusted certificate, and 0.01%
// fail for other reasons. The kernel benchmark times the full verifier on
// freshly built certificates (chain building + self-signature detection).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/longevity.h"
#include "bench/common.h"
#include "pki/verifier.h"
#include "util/prng.h"
#include "x509/builder.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Section 4.2", "validity breakdown");
  const auto vb =
      sm::analysis::compute_validity_breakdown(context().world.archive);

  sm::bench::Comparison cmp;
  cmp.add("unique certificates (scaled)", "80.4M",
          std::to_string(vb.total_certs));
  cmp.add("invalid fraction", "87.9%",
          sm::util::percent(vb.invalid_fraction()));
  cmp.add("self-signed among invalid", "88.0%",
          sm::util::percent(static_cast<double>(vb.self_signed) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("untrusted issuer among invalid", "11.99%",
          sm::util::percent(static_cast<double>(vb.untrusted_issuer) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("other reasons among invalid", "0.01%",
          sm::util::percent(static_cast<double>(vb.other_invalid) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("illegal-version certs disregarded", "89,667 (scaled)",
          std::to_string(vb.malformed_version));
  cmp.add("transvalid among valid (broken served chains)", "exists [29]",
          std::to_string(vb.transvalid) + " = " +
              sm::util::percent(static_cast<double>(vb.transvalid) /
                                static_cast<double>(vb.valid_certs)));
  cmp.print();
}

// Kernel: verify a self-signed device certificate (the hot path — 88% of
// all certificates take it).
void BM_VerifySelfSigned(benchmark::State& state) {
  sm::util::Rng rng(1);
  const auto key =
      sm::crypto::generate_keypair(sm::crypto::SigScheme::kSimSha256, rng);
  const auto cert =
      sm::x509::CertificateBuilder()
          .set_serial(sm::bignum::BigUint(1))
          .set_issuer(sm::x509::Name::with_common_name("192.168.1.1"))
          .set_subject(sm::x509::Name::with_common_name("192.168.1.1"))
          .set_validity(0, sm::util::make_date(2033, 1, 1))
          .set_public_key(key.pub)
          .sign(key);
  const sm::pki::RootStore roots;
  const sm::pki::IntermediatePool pool;
  const sm::pki::Verifier verifier(roots, pool);
  for (auto _ : state) {
    auto result = verifier.verify(cert);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_VerifySelfSigned);

// Kernel: parse a certificate from DER (the scan-ingest hot path).
void BM_ParseCertificate(benchmark::State& state) {
  sm::util::Rng rng(2);
  const auto key =
      sm::crypto::generate_keypair(sm::crypto::SigScheme::kSimSha256, rng);
  const auto cert =
      sm::x509::CertificateBuilder()
          .set_serial(sm::bignum::BigUint(7))
          .set_issuer(sm::x509::Name::with_common_name("fritz.box"))
          .set_subject(sm::x509::Name::with_common_name("fritz.box"))
          .set_validity(0, sm::util::make_date(2033, 1, 1))
          .set_public_key(key.pub)
          .set_subject_alt_names(
              {{sm::x509::GeneralName::Kind::kDns, "fritz.fonwlan.box"}})
          .sign(key);
  for (auto _ : state) {
    auto parsed = sm::x509::parse_certificate(cert.der);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseCertificate);

void BM_ValidityBreakdown(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto vb = sm::analysis::compute_validity_breakdown(archive);
    benchmark::DoNotOptimize(vb);
  }
}
BENCHMARK(BM_ValidityBreakdown);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
