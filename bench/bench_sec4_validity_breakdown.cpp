// §4.2: isolating invalid certificates — the openssl-verify analog. Paper:
// 87.9% of unique certificates are invalid; of those, 88.0% are
// self-signed, 11.99% are signed by an untrusted certificate, and 0.01%
// fail for other reasons. The kernel benchmark times the full verifier on
// freshly built certificates (chain building + self-signature detection).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "analysis/longevity.h"
#include "bench/common.h"
#include "pki/verifier.h"
#include "simworld/world.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "x509/builder.h"

namespace {

using sm::bench::context;

void report() {
  sm::bench::print_banner("Section 4.2", "validity breakdown");
  const auto vb =
      sm::analysis::compute_validity_breakdown(context().world.archive);

  sm::bench::Comparison cmp;
  cmp.add("unique certificates (scaled)", "80.4M",
          std::to_string(vb.total_certs));
  cmp.add("invalid fraction", "87.9%",
          sm::util::percent(vb.invalid_fraction()));
  cmp.add("self-signed among invalid", "88.0%",
          sm::util::percent(static_cast<double>(vb.self_signed) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("untrusted issuer among invalid", "11.99%",
          sm::util::percent(static_cast<double>(vb.untrusted_issuer) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("other reasons among invalid", "0.01%",
          sm::util::percent(static_cast<double>(vb.other_invalid) /
                            static_cast<double>(vb.invalid_certs)));
  cmp.add("illegal-version certs disregarded", "89,667 (scaled)",
          std::to_string(vb.malformed_version));
  cmp.add("transvalid among valid (broken served chains)", "exists [29]",
          std::to_string(vb.transvalid) + " = " +
              sm::util::percent(static_cast<double>(vb.transvalid) /
                                static_cast<double>(vb.valid_certs)));
  cmp.print();
}

// Kernel: verify a self-signed device certificate (the hot path — 88% of
// all certificates take it).
void BM_VerifySelfSigned(benchmark::State& state) {
  sm::util::Rng rng(1);
  const auto key =
      sm::crypto::generate_keypair(sm::crypto::SigScheme::kSimSha256, rng);
  const auto cert =
      sm::x509::CertificateBuilder()
          .set_serial(sm::bignum::BigUint(1))
          .set_issuer(sm::x509::Name::with_common_name("192.168.1.1"))
          .set_subject(sm::x509::Name::with_common_name("192.168.1.1"))
          .set_validity(0, sm::util::make_date(2033, 1, 1))
          .set_public_key(key.pub)
          .sign(key);
  const sm::pki::RootStore roots;
  const sm::pki::IntermediatePool pool;
  const sm::pki::Verifier verifier(roots, pool);
  for (auto _ : state) {
    auto result = verifier.verify(cert);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_VerifySelfSigned);

// Kernel: parse a certificate from DER (the scan-ingest hot path).
void BM_ParseCertificate(benchmark::State& state) {
  sm::util::Rng rng(2);
  const auto key =
      sm::crypto::generate_keypair(sm::crypto::SigScheme::kSimSha256, rng);
  const auto cert =
      sm::x509::CertificateBuilder()
          .set_serial(sm::bignum::BigUint(7))
          .set_issuer(sm::x509::Name::with_common_name("fritz.box"))
          .set_subject(sm::x509::Name::with_common_name("fritz.box"))
          .set_validity(0, sm::util::make_date(2033, 1, 1))
          .set_public_key(key.pub)
          .set_subject_alt_names(
              {{sm::x509::GeneralName::Kind::kDns, "fritz.fonwlan.box"}})
          .sign(key);
  for (auto _ : state) {
    auto parsed = sm::x509::parse_certificate(cert.der);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseCertificate);

void BM_ValidityBreakdown(benchmark::State& state) {
  const auto& archive = context().world.archive;
  for (auto _ : state) {
    auto vb = sm::analysis::compute_validity_breakdown(archive);
    benchmark::DoNotOptimize(vb);
  }
}
BENCHMARK(BM_ValidityBreakdown);

// A corpus shaped like the paper's population: mostly self-signed device
// certificates, a slice of CA-issued leaves funneling through a handful of
// intermediates (valid + transvalid), and vendor-CA chains that end
// untrusted. Shared by the batch-verify kernels below.
struct VerifyCorpus {
  sm::pki::RootStore roots;
  sm::pki::IntermediatePool pool;
  std::vector<sm::x509::Certificate> certs;
};

const VerifyCorpus& verify_corpus() {
  static const VerifyCorpus corpus = [] {
    VerifyCorpus c;
    sm::util::Rng rng(3);
    const auto make_key = [&rng] {
      return sm::crypto::generate_keypair(sm::crypto::SigScheme::kSimSha256,
                                          rng);
    };
    const auto ca_cert = [](const sm::x509::Name& subject,
                            const sm::x509::Name& issuer,
                            const sm::crypto::PublicKeyInfo& pub,
                            const sm::crypto::SigningKey& signer,
                            std::uint64_t serial) {
      return sm::x509::CertificateBuilder()
          .set_serial(sm::bignum::BigUint(serial))
          .set_issuer(issuer)
          .set_subject(subject)
          .set_validity(0, sm::util::make_date(2035, 1, 1))
          .set_public_key(pub)
          .set_basic_constraints(true)
          .sign(signer);
    };
    const auto root_key = make_key();
    const auto intermediate_key = make_key();
    const auto vendor_key = make_key();
    const sm::x509::Name root_name =
        sm::x509::Name::with_common_name("Bench Root CA");
    const sm::x509::Name int_name =
        sm::x509::Name::with_common_name("Bench Intermediate CA");
    const sm::x509::Name vendor_name =
        sm::x509::Name::with_common_name("Bench Vendor CA");
    const auto root = ca_cert(root_name, root_name, root_key.pub, root_key, 1);
    const auto intermediate =
        ca_cert(int_name, root_name, intermediate_key.pub, root_key, 2);
    const auto vendor =
        ca_cert(vendor_name, vendor_name, vendor_key.pub, vendor_key, 3);
    c.roots.add(root);
    c.pool.add(intermediate);
    c.pool.add(vendor);

    constexpr std::size_t kCorpus = 8000;
    c.certs.reserve(kCorpus);
    for (std::size_t i = 0; i < kCorpus; ++i) {
      const auto leaf_key = make_key();
      const sm::x509::Name subject = sm::x509::Name::with_common_name(
          "device-" + std::to_string(i) + ".example");
      sm::x509::CertificateBuilder builder;
      builder.set_serial(sm::bignum::BigUint(100 + i))
          .set_subject(subject)
          .set_validity(0, sm::util::make_date(2033, 1, 1))
          .set_public_key(leaf_key.pub);
      if (i % 10 < 7) {  // 70% self-signed
        builder.set_issuer(subject);
        c.certs.push_back(builder.sign(leaf_key));
      } else if (i % 10 < 9) {  // 20% transvalid via the intermediate
        builder.set_issuer(int_name);
        c.certs.push_back(builder.sign(intermediate_key));
      } else {  // 10% vendor-CA chains (untrusted issuer)
        builder.set_issuer(vendor_name);
        c.certs.push_back(builder.sign(vendor_key));
      }
    }
    return c;
  }();
  return corpus;
}

// Baseline: the plain serial verifier over the whole corpus — what the
// simulator did per certificate before BatchVerifier existed.
void BM_VerifyAllSerial(benchmark::State& state) {
  const VerifyCorpus& corpus = verify_corpus();
  const sm::pki::Verifier verifier(corpus.roots, corpus.pool);
  for (auto _ : state) {
    std::size_t valid = 0;
    for (const auto& cert : corpus.certs) {
      valid += verifier.verify(cert).valid ? 1 : 0;
    }
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    corpus.certs.size()));
}
BENCHMARK(BM_VerifyAllSerial)->Unit(benchmark::kMillisecond);

// Kernel: memoized batch verification, swept over thread counts. A fresh
// BatchVerifier per iteration so the memo is cold, as in a real pass.
void BM_BatchVerifyAll(benchmark::State& state) {
  const VerifyCorpus& corpus = verify_corpus();
  sm::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const sm::pki::BatchVerifier batch(corpus.roots, corpus.pool);
    auto results = batch.verify_all(corpus.certs, &pool);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    corpus.certs.size()));
}
BENCHMARK(BM_BatchVerifyAll)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Kernel: the full world build (topology + PKI + population + every scan),
// swept over thread counts — the `Context()` setup cost every bench and
// tool pays. Smaller than WorldConfig::paper() so the sweep stays fast.
void BM_WorldBuild(benchmark::State& state) {
  sm::simworld::WorldConfig config;
  config.seed = 11;
  config.device_count = 1000;
  config.website_count = 340;
  config.schedule.scale = 0.2;
  sm::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto world = sm::simworld::World(config, &pool).run();
    benchmark::DoNotOptimize(world.issued_certificates);
  }
}
BENCHMARK(BM_WorldBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
