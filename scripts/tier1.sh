#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# resharding end-to-end smoke (a real sm_notaryd/sm_notary_router/
# sm_reshard deployment splits a shard and merges it back under
# oracle-checked loopback load — zero failed queries allowed), then a
# ThreadSanitizer build exercising the concurrency-bearing tests
# (thread pool, corpus spine, linking pipeline, dataset index, tracker,
# parallel world simulation, batch verifier, notary epoll server +
# loopback traffic, live-ingestion epoch swaps racing loopback queries,
# sharded router deployment with backend kill/restart, online-resharding
# split/merge handoffs under load),
# then an AddressSanitizer build running the archive I/O and notary-frame
# corruption harnesses (exhaustive truncation + bit-flip sweeps over
# hostile input) plus the world-determinism test.
#
# The simworld_parallel_test golden-hash determinism check runs under BOTH
# sanitizer configs: any thread-count divergence in the simulated archive
# bytes fails the pass.
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan] [--bench]
#   --bench additionally runs scripts/bench_check.sh (notary/router
#   benchmarks vs the committed bench-results/ baselines) — opt-in
#   because benchmark timings need a quiet machine to mean anything.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_bench=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    --bench) run_bench=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

echo "== tier 1: strict flag validation (exit 2 + usage on stderr) =="
check_rejects() {
  local out rc=0
  out="$("$@" 2>&1 >/dev/null)" || rc=$?
  if [[ "$rc" != 2 ]] || ! grep -q "usage:" <<<"$out"; then
    echo "expected exit 2 + usage from: $*  (got exit $rc)" >&2
    exit 1
  fi
}
check_rejects ./build/tools/sm_notary_router --backend nonsense
check_rejects ./build/tools/sm_notary_router --backend host:0
check_rejects ./build/tools/sm_notary_router --backend 127.0.0.1:1,
check_rejects ./build/tools/sm_notaryd --shard-prefix 3/2
check_rejects ./build/tools/sm_notaryd --shard-prefix 0/0
check_rejects ./build/tools/sm_notaryd --shard-prefix 9-1
check_rejects ./build/tools/sm_reshard --split 1
check_rejects ./build/tools/sm_reshard --router x:1 --split 0 --merge 0

echo "== tier 1: resharding e2e smoke (split + merge back under load) =="
smoke_dir="$(mktemp -d)"
smoke_pids=()
smoke_cleanup() {
  for pid in "${smoke_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$smoke_dir"
}
trap smoke_cleanup EXIT
SIM=(--seed 7 --devices 300 --websites 120 --scale 0.2)
base_port=17921
wait_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up" >&2
  return 1
}
# Unsharded oracle + two live shards + an empty successor + the router.
./build/tools/sm_notaryd "${SIM[@]}" --port $((base_port + 1)) \
    >"$smoke_dir/oracle.log" 2>&1 & smoke_pids+=($!)
./build/tools/sm_notaryd "${SIM[@]}" --shard-prefix 0/2 \
    --port $((base_port + 2)) >"$smoke_dir/shard0.log" 2>&1 & smoke_pids+=($!)
./build/tools/sm_notaryd "${SIM[@]}" --shard-prefix 1/2 \
    --port $((base_port + 3)) >"$smoke_dir/shard1.log" 2>&1 & smoke_pids+=($!)
./build/tools/sm_notaryd "${SIM[@]}" --empty \
    --port $((base_port + 4)) >"$smoke_dir/succ.log" 2>&1 & smoke_pids+=($!)
for p in 1 2 3 4; do wait_port $((base_port + p)); done
./build/tools/sm_notary_router --port $base_port \
    --backend 127.0.0.1:$((base_port + 2)) \
    --backend 127.0.0.1:$((base_port + 3)) \
    >"$smoke_dir/router.log" 2>&1 & smoke_pids+=($!)
wait_port $base_port
# Oracle-checked load across the whole handoff: exits non-zero on any
# failed query or any byte that differs from the unsharded oracle.
./build/tools/sm_notaryd "${SIM[@]}" --probe 20000 \
    --host 127.0.0.1 --port $base_port \
    --oracle 127.0.0.1:$((base_port + 1)) \
    >"$smoke_dir/probe.log" 2>&1 & probe_pid=$!
sleep 2  # let the prober finish its world build and start querying
./build/tools/sm_reshard --router 127.0.0.1:$base_port \
    --split 1 --to 127.0.0.1:$((base_port + 4))
./build/tools/sm_reshard --router 127.0.0.1:$base_port --merge 1
if ! wait "$probe_pid"; then
  echo "resharding smoke: probe failed" >&2
  tail -n 5 "$smoke_dir/probe.log" >&2
  exit 1
fi
tail -n 1 "$smoke_dir/probe.log"
# A final full sweep against the post-handoff (epoch 3) layout.
./build/tools/sm_notaryd "${SIM[@]}" --probe 2000 \
    --host 127.0.0.1 --port $base_port \
    --oracle 127.0.0.1:$((base_port + 1))
smoke_cleanup
trap - EXIT
echo "resharding smoke OK"

tsan_tests=(thread_pool_test corpus_test linking_parallel_test linking_test
            analysis_test tracking_test util_test
            simworld_parallel_test batch_verifier_test
            netio_test notary_test notary_loopback_test live_ingest_test
            router_test revocation_test reshard_test)
if [[ "$run_tsan" == 1 ]]; then
  echo "== tier 1: TSan build (thread pool + linking/analysis/tracking + world/verify + notary) =="
  cmake -B build-tsan -S . -DSM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target "${tsan_tests[@]}" >/dev/null
  # Suppressions cover the libstdc++ atomic<shared_ptr> internals (see
  # the file's header); halt_on_error keeps a real report fatal.
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan_suppressions.txt halt_on_error=1 ${TSAN_OPTIONS:-}"
  for t in "${tsan_tests[@]}"; do
    echo "-- $t (tsan)"
    ./build-tsan/tests/"$t" --gtest_brief=1
  done
fi

asan_tests=(archive_corruption_test archive_io_test simworld_parallel_test
            corpus_test netio_test notary_loopback_test live_ingest_test
            router_test revocation_test reshard_test)
if [[ "$run_asan" == 1 ]]; then
  echo "== tier 1: ASan build (archive I/O + notary-frame corruption harnesses + world determinism) =="
  cmake -B build-asan -S . -DSM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target "${asan_tests[@]}" >/dev/null
  for t in "${asan_tests[@]}"; do
    echo "-- $t (asan)"
    ./build-asan/tests/"$t" --gtest_brief=1
  done
fi

if [[ "$run_bench" == 1 ]]; then
  echo "== tier 1: bench regression check (notary/router vs committed baselines) =="
  scripts/bench_check.sh
fi

echo "tier 1 OK"
