#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build exercising the concurrency-bearing tests
# (thread pool, linking pipeline, dataset index, tracker).
#
# Usage: scripts/tier1.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then run_tsan=0; fi

echo "== tier 1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier 1: TSan build (thread pool + linking/analysis/tracking) =="
  cmake -B build-tsan -S . -DSM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    thread_pool_test linking_parallel_test linking_test \
    analysis_test tracking_test util_test >/dev/null
  for t in thread_pool_test linking_parallel_test linking_test \
           analysis_test tracking_test util_test; do
    echo "-- $t (tsan)"
    ./build-tsan/tests/"$t" --gtest_brief=1
  done
fi

echo "tier 1 OK"
