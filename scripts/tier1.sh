#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build exercising the concurrency-bearing tests
# (thread pool, corpus spine, linking pipeline, dataset index, tracker,
# parallel world simulation, batch verifier, notary epoll server +
# loopback traffic, live-ingestion epoch swaps racing loopback queries,
# sharded router deployment with backend kill/restart),
# then an AddressSanitizer build running the archive I/O and notary-frame
# corruption harnesses (exhaustive truncation + bit-flip sweeps over
# hostile input) plus the world-determinism test.
#
# The simworld_parallel_test golden-hash determinism check runs under BOTH
# sanitizer configs: any thread-count divergence in the simulated archive
# bytes fails the pass.
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan] [--bench]
#   --bench additionally runs scripts/bench_check.sh (notary/router
#   benchmarks vs the committed bench-results/ baselines) — opt-in
#   because benchmark timings need a quiet machine to mean anything.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_bench=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    --bench) run_bench=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

tsan_tests=(thread_pool_test corpus_test linking_parallel_test linking_test
            analysis_test tracking_test util_test
            simworld_parallel_test batch_verifier_test
            netio_test notary_test notary_loopback_test live_ingest_test
            router_test revocation_test)
if [[ "$run_tsan" == 1 ]]; then
  echo "== tier 1: TSan build (thread pool + linking/analysis/tracking + world/verify + notary) =="
  cmake -B build-tsan -S . -DSM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target "${tsan_tests[@]}" >/dev/null
  # Suppressions cover the libstdc++ atomic<shared_ptr> internals (see
  # the file's header); halt_on_error keeps a real report fatal.
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan_suppressions.txt halt_on_error=1 ${TSAN_OPTIONS:-}"
  for t in "${tsan_tests[@]}"; do
    echo "-- $t (tsan)"
    ./build-tsan/tests/"$t" --gtest_brief=1
  done
fi

asan_tests=(archive_corruption_test archive_io_test simworld_parallel_test
            corpus_test netio_test notary_loopback_test live_ingest_test
            router_test revocation_test)
if [[ "$run_asan" == 1 ]]; then
  echo "== tier 1: ASan build (archive I/O + notary-frame corruption harnesses + world determinism) =="
  cmake -B build-asan -S . -DSM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target "${asan_tests[@]}" >/dev/null
  for t in "${asan_tests[@]}"; do
    echo "-- $t (asan)"
    ./build-asan/tests/"$t" --gtest_brief=1
  done
fi

if [[ "$run_bench" == 1 ]]; then
  echo "== tier 1: bench regression check (notary/router vs committed baselines) =="
  scripts/bench_check.sh
fi

echo "tier 1 OK"
