#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build exercising the concurrency-bearing tests
# (thread pool, linking pipeline, dataset index, tracker), then an
# AddressSanitizer build running the archive I/O corruption harness
# (exhaustive truncation + bit-flip sweeps over hostile input).
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: standard build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier 1: TSan build (thread pool + linking/analysis/tracking) =="
  cmake -B build-tsan -S . -DSM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    thread_pool_test linking_parallel_test linking_test \
    analysis_test tracking_test util_test >/dev/null
  for t in thread_pool_test linking_parallel_test linking_test \
           analysis_test tracking_test util_test; do
    echo "-- $t (tsan)"
    ./build-tsan/tests/"$t" --gtest_brief=1
  done
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== tier 1: ASan build (archive I/O corruption harness) =="
  cmake -B build-asan -S . -DSM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    archive_corruption_test archive_io_test >/dev/null
  for t in archive_corruption_test archive_io_test; do
    echo "-- $t (asan)"
    ./build-asan/tests/"$t" --gtest_brief=1
  done
fi

echo "tier 1 OK"
