#!/usr/bin/env bash
# Runs every bench binary with google-benchmark JSON output, writing one
# BENCH_<name>.json per binary so the perf trajectory is recorded across
# PRs. The banner/report tables still go to stdout; the machine-readable
# timings land in the JSON files (--benchmark_out, not --benchmark_format,
# because the report() preamble would corrupt a stdout JSON stream).
#
# Usage: scripts/bench_json.sh [OUTDIR] [-- extra benchmark args...]
#   OUTDIR defaults to bench-results/. SM_THREADS / --threads are honored
#   by each binary as usual, e.g.:
#     SM_THREADS=8 scripts/bench_json.sh
#     scripts/bench_json.sh out -- --benchmark_filter=BM_WorldBuild
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="bench-results"
extra_args=()
if [[ $# -gt 0 && "$1" != "--" ]]; then
  outdir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  extra_args=("$@")
fi

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
mkdir -p "$outdir"

shopt -s nullglob
benches=(build/bench/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "no bench binaries under build/bench" >&2
  exit 1
fi

for bench in "${benches[@]}"; do
  [[ -x "$bench" ]] || continue
  name="$(basename "$bench")"
  out="$outdir/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  "$bench" --benchmark_out="$out" --benchmark_out_format=json \
           "${extra_args[@]}"
done

echo "bench JSON written to $outdir/"
