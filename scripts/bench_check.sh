#!/usr/bin/env bash
# Regression gate for the notary serving benchmarks: re-runs
# bench_notary, bench_router, bench_revocation, bench_live and
# bench_reshard, and
# compares each benchmark family against the committed baselines in
# bench-results/BENCH_<name>.json.
#
# Tolerances by metric class:
#   * items_per_second — one-sided lower bound. Wall-clock throughput on
#     shared CI hardware is noisy, so a run only fails when it drops
#     below RATIO (default 0.60) of the committed number. Regressions
#     hide in noise; collapses do not.
#   * allocs_per_query — exact. The allocation count of a deterministic
#     code path is a property of the code, not the machine; any drift is
#     a real change and must be re-baselined deliberately.
#   * send_syscalls_per_rtt — 2% band. Syscall counts are near-exact but
#     flush timing can add the odd extra sendmsg at iteration edges.
#
# Benchmarks present in the run but absent from the baseline (new
# families) are reported and skipped; benchmarks present in the baseline
# but missing from the run fail the check (a silently-deleted benchmark
# is a coverage regression).
#
# Usage: scripts/bench_check.sh [--ratio R] [-- extra benchmark args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ratio=0.60
extra_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --ratio) ratio="$2"; shift 2 ;;
    --) shift; extra_args=("$@"); break ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_notary bench_router \
    bench_revocation bench_live bench_reshard >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

status=0
for name in notary router revocation live reshard; do
  baseline="bench-results/BENCH_${name}.json"
  if [[ ! -f "$baseline" ]]; then
    echo "MISSING baseline $baseline" >&2
    status=1
    continue
  fi
  current="$tmpdir/BENCH_${name}.json"
  echo "== bench_${name} (vs $baseline)"
  ./build/bench/"bench_${name}" \
      --benchmark_out="$current" --benchmark_out_format=json \
      "${extra_args[@]}" >/dev/null
  python3 - "$baseline" "$current" "$ratio" <<'PY' || status=1
import json
import sys

baseline_path, current_path, ratio_text = sys.argv[1:4]
ratio = float(ratio_text)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        out[row["name"]] = row
    return out


base = load(baseline_path)
cur = load(current_path)
failures = []

for name, brow in sorted(base.items()):
    crow = cur.get(name)
    if crow is None:
        failures.append(f"{name}: present in baseline but not in this run")
        continue
    bips = brow.get("items_per_second")
    cips = crow.get("items_per_second")
    if bips and cips:
        floor = bips * ratio
        verdict = "ok" if cips >= floor else "FAIL"
        print(f"  {verdict:4s} {name}: {cips:,.0f} items/s "
              f"(baseline {bips:,.0f}, floor {floor:,.0f})")
        if cips < floor:
            failures.append(
                f"{name}: items_per_second {cips:,.0f} below floor "
                f"{floor:,.0f} ({ratio:.2f} x baseline {bips:,.0f})")
    # Counter classes: exact for allocation counts, 2% for syscalls.
    for key, tol in (("allocs_per_query", 0.0),
                     ("send_syscalls_per_rtt", 0.02)):
        if key not in brow:
            continue
        if key not in crow:
            failures.append(f"{name}: counter {key} vanished from the run")
            continue
        bval, cval = float(brow[key]), float(crow[key])
        # Exact class: any difference fails. Banded class: only growth
        # beyond the band fails (fewer syscalls is an improvement).
        if tol == 0.0:
            bad = cval != bval
        else:
            bad = cval > bval * (1.0 + tol) + 1e-9
        verdict = "FAIL" if bad else "ok"
        print(f"  {verdict:4s} {name}: {key} = {cval:g} "
              f"(baseline {bval:g})")
        if bad:
            failures.append(
                f"{name}: {key} {cval:g} vs baseline {bval:g} "
                f"(tolerance {'exact' if tol == 0.0 else f'{tol:.0%}'})")

for name in sorted(set(cur) - set(base)):
    print(f"  new  {name}: no baseline, skipped")

if failures:
    print("bench_check FAILURES:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
PY
done

if [[ "$status" != 0 ]]; then
  echo "bench check FAILED" >&2
  exit 1
fi
echo "bench check OK"
