// Tests for sm::net — address parsing, prefix math, LPM route tables,
// routing history, and the AS database.
#include <gtest/gtest.h>

#include "net/as_database.h"
#include "net/ipv4.h"
#include "net/route_table.h"
#include "util/prng.h"

namespace sm::net {
namespace {

// --- Ipv4Address ---------------------------------------------------------

TEST(Ipv4, ParseAndFormat) {
  const auto ip = Ipv4Address::parse("192.168.1.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->value(), 0xc0a80101u);
  EXPECT_EQ(ip->to_string(), "192.168.1.1");
  EXPECT_EQ(Ipv4Address(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(0xffffffff).to_string(), "255.255.255.255");
}

TEST(Ipv4, ParseRejectsGarbage) {
  for (const char* bad :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
        "1.2.3.4 ", "01x.2.3.4", "1.2.3.1234"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(Ipv4, FromOctets) {
  EXPECT_EQ(Ipv4Address::from_octets(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(Ipv4, LooksLikeIpv4) {
  EXPECT_TRUE(looks_like_ipv4("192.168.1.1"));
  EXPECT_FALSE(looks_like_ipv4("fritz.box"));
  EXPECT_FALSE(looks_like_ipv4("WD2GO 293822"));
}

TEST(Ipv4, PrivateRanges) {
  EXPECT_TRUE(is_private(*Ipv4Address::parse("10.1.2.3")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("172.16.0.1")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("172.31.255.255")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("192.168.99.1")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("172.32.0.1")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("8.8.8.8")));
}

// --- Prefix ------------------------------------------------------------------

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(*Ipv4Address::parse("192.168.1.77"), 24);
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("192.168.1.1")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("192.168.2.1")));
  EXPECT_EQ(p.size(), 256u);
}

TEST(Prefix, ParseAndRoundTrip) {
  const auto p = Prefix::parse("10.42.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.42.0.0/16");
  EXPECT_FALSE(Prefix::parse("10.42.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.42.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.42.0.0/x").has_value());
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(0)));
  EXPECT_TRUE(all.contains(Ipv4Address(0xffffffff)));
  EXPECT_EQ(all.mask(), 0u);
}

TEST(Prefix, Slash8And24Helpers) {
  const Ipv4Address ip = *Ipv4Address::parse("93.184.216.34");
  EXPECT_EQ(slash8(ip).to_string(), "93.0.0.0/8");
  EXPECT_EQ(slash24(ip).to_string(), "93.184.216.0/24");
}

// --- RouteTable ----------------------------------------------------------------

TEST(RouteTable, LongestPrefixMatchWins) {
  RouteTable t;
  t.announce(*Prefix::parse("10.0.0.0/8"), 100);
  t.announce(*Prefix::parse("10.1.0.0/16"), 200);
  t.announce(*Prefix::parse("10.1.2.0/24"), 300);
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("10.9.9.9")), 100u);
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("10.1.9.9")), 200u);
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("10.1.2.3")), 300u);
  EXPECT_FALSE(t.lookup(*Ipv4Address::parse("11.0.0.1")).has_value());
  EXPECT_EQ(t.size(), 3u);
}

TEST(RouteTable, LookupPrefixReturnsMostSpecific) {
  RouteTable t;
  t.announce(*Prefix::parse("10.0.0.0/8"), 100);
  t.announce(*Prefix::parse("10.1.0.0/16"), 200);
  EXPECT_EQ(t.lookup_prefix(*Ipv4Address::parse("10.1.2.3"))->to_string(),
            "10.1.0.0/16");
  EXPECT_EQ(t.lookup_prefix(*Ipv4Address::parse("10.200.2.3"))->to_string(),
            "10.0.0.0/8");
}

TEST(RouteTable, ReannounceOverwrites) {
  RouteTable t;
  const Prefix p = *Prefix::parse("20.0.0.0/16");
  t.announce(p, 1);
  t.announce(p, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("20.0.1.1")), 2u);
}

TEST(RouteTable, WithdrawFallsBack) {
  RouteTable t;
  t.announce(*Prefix::parse("10.0.0.0/8"), 100);
  t.announce(*Prefix::parse("10.1.0.0/16"), 200);
  EXPECT_TRUE(t.withdraw(*Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("10.1.2.3")), 100u);
  EXPECT_FALSE(t.withdraw(*Prefix::parse("10.1.0.0/16")));
  EXPECT_FALSE(t.withdraw(*Prefix::parse("99.0.0.0/8")));
}

TEST(RouteTable, HostRouteAndDefaultRoute) {
  RouteTable t;
  t.announce(Prefix(Ipv4Address(0), 0), 1);          // default
  t.announce(*Prefix::parse("5.6.7.8/32"), 2);       // host route
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("5.6.7.8")), 2u);
  EXPECT_EQ(t.lookup(*Ipv4Address::parse("5.6.7.9")), 1u);
}

TEST(RouteTable, EntriesRoundTrip) {
  RouteTable t;
  t.announce(*Prefix::parse("10.0.0.0/8"), 100);
  t.announce(*Prefix::parse("172.20.0.0/16"), 200);
  const auto entries = t.entries();
  EXPECT_EQ(entries.size(), 2u);
  RouteTable copy;
  for (const auto& [prefix, asn] : entries) copy.announce(prefix, asn);
  EXPECT_EQ(copy.lookup(*Ipv4Address::parse("10.3.4.5")), 100u);
  EXPECT_EQ(copy.lookup(*Ipv4Address::parse("172.20.1.1")), 200u);
}

TEST(RouteTable, RandomizedAgainstLinearScan) {
  util::Rng rng(123);
  RouteTable t;
  std::vector<std::pair<Prefix, Asn>> prefixes;
  for (int i = 0; i < 200; ++i) {
    const Prefix p(Ipv4Address(static_cast<std::uint32_t>(rng())),
                   8 + static_cast<unsigned>(rng.below(17)));
    const Asn asn = static_cast<Asn>(1 + rng.below(1000));
    t.announce(p, asn);
    // Keep only the last announcement for duplicate prefixes, as the trie
    // does.
    bool replaced = false;
    for (auto& [existing, existing_asn] : prefixes) {
      if (existing == p) {
        existing_asn = asn;
        replaced = true;
        break;
      }
    }
    if (!replaced) prefixes.emplace_back(p, asn);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address ip(static_cast<std::uint32_t>(rng()));
    std::optional<Asn> expected;
    unsigned best_len = 0;
    for (const auto& [prefix, asn] : prefixes) {
      if (prefix.contains(ip) &&
          (!expected.has_value() || prefix.length() >= best_len)) {
        if (!expected.has_value() || prefix.length() > best_len) {
          expected = asn;
          best_len = prefix.length();
        }
      }
    }
    EXPECT_EQ(t.lookup(ip), expected) << ip.to_string();
  }
}

// --- RoutingHistory ---------------------------------------------------------

TEST(RoutingHistory, SnapshotSelection) {
  RoutingHistory history;
  RouteTable before;
  before.announce(*Prefix::parse("10.0.0.0/16"), 19262);
  history.add_snapshot(1000, before);
  RouteTable after = before;
  after.announce(*Prefix::parse("10.0.0.0/16"), 701);  // prefix transfer
  history.add_snapshot(2000, after);

  const Ipv4Address ip = *Ipv4Address::parse("10.0.5.5");
  EXPECT_EQ(history.at(1500)->lookup(ip), 19262u);
  EXPECT_EQ(history.at(2000)->lookup(ip), 701u);
  EXPECT_EQ(history.at(99999)->lookup(ip), 701u);
  // Before the first snapshot, the earliest applies.
  EXPECT_EQ(history.at(0)->lookup(ip), 19262u);
}

TEST(RoutingHistory, EmptyReturnsNull) {
  const RoutingHistory history;
  EXPECT_EQ(history.at(123), nullptr);
}

// --- AsDatabase -----------------------------------------------------------------

TEST(AsDatabase, BasicLookup) {
  AsDatabase db;
  db.add(AsInfo{3320, "Deutsche Telekom AG", "DEU", AsType::kTransitAccess});
  ASSERT_NE(db.find(3320), nullptr);
  EXPECT_EQ(db.find(3320)->name, "Deutsche Telekom AG");
  EXPECT_EQ(db.type_of(3320), AsType::kTransitAccess);
  EXPECT_EQ(db.type_of(9999), AsType::kUnknown);
  EXPECT_EQ(db.label(3320), "#3320 Deutsche Telekom AG (DEU)");
  EXPECT_EQ(db.label(9999), "#9999 (unknown)");
}

TEST(AsDatabase, CountryChangesOverTime) {
  AsDatabase db;
  db.add(AsInfo{100, "Mover", "USA", AsType::kTransitAccess});
  db.add_country_change(100, 5000, "DEU");
  EXPECT_EQ(db.country_at(100, 0), "USA");
  EXPECT_EQ(db.country_at(100, 4999), "USA");
  EXPECT_EQ(db.country_at(100, 5000), "DEU");
  EXPECT_EQ(db.country_at(100, 90000), "DEU");
  EXPECT_EQ(db.country_at(42, 0), "");
}

TEST(AsType, Labels) {
  EXPECT_EQ(to_string(AsType::kTransitAccess), "Transit/Access");
  EXPECT_EQ(to_string(AsType::kContent), "Content");
  EXPECT_EQ(to_string(AsType::kEnterprise), "Enterprise");
  EXPECT_EQ(to_string(AsType::kUnknown), "Unknown");
}

}  // namespace
}  // namespace sm::net
