// Tests for sm::simworld world-bundle persistence and for running the
// simulator with the real-RSA signature scheme end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/dataset.h"
#include "analysis/longevity.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "simworld/world_io.h"

namespace sm::simworld {
namespace {

WorldConfig micro_config() {
  WorldConfig config;
  config.seed = 11;
  config.device_count = 120;
  config.website_count = 40;
  config.schedule.scale = 0.1;
  return config;
}

TEST(WorldBundle, RoundTripPreservesAnalysis) {
  const WorldResult original = World(micro_config()).run();
  std::stringstream buffer;
  save_world_bundle(original, buffer);
  const auto loaded = load_world_bundle(buffer);
  ASSERT_TRUE(loaded.has_value());

  // The archive round-trips bit-for-bit.
  ASSERT_EQ(loaded->archive.certs().size(), original.archive.certs().size());
  ASSERT_EQ(loaded->archive.observation_count(),
            original.archive.observation_count());
  EXPECT_EQ(loaded->schedule.size(), original.archive.scans().size());

  // Routing and AS data survive: every observation resolves to the same AS
  // through the loaded bundle as through the original.
  const analysis::DatasetIndex original_index(original.archive,
                                              original.routing);
  const analysis::DatasetIndex loaded_index(loaded->archive, loaded->routing);
  for (scan::CertId id = 0; id < original.archive.certs().size(); ++id) {
    EXPECT_EQ(original_index.stats(id).majority_as,
              loaded_index.stats(id).majority_as);
    EXPECT_EQ(original_index.stats(id).distinct_as_count,
              loaded_index.stats(id).distinct_as_count);
  }

  // AS metadata preserved for every AS with devices.
  for (const auto& scan : original.archive.scans()) {
    for (const auto& obs : scan.observations) {
      const net::Asn asn = original_index.as_of(0, obs.ip);
      if (asn == 0) continue;
      const net::AsInfo* info = loaded->as_db.find(asn);
      ASSERT_NE(info, nullptr);
      EXPECT_EQ(info->name, original.as_db.find(asn)->name);
      break;  // one check per scan is plenty
    }
  }

  // Blacklists preserved.
  EXPECT_EQ(loaded->umich_blacklist.size(), original.umich_blacklist.size());
  EXPECT_EQ(loaded->rapid7_blacklist.size(),
            original.rapid7_blacklist.size());

  // Linking over the loaded bundle gives identical results.
  const linking::Linker original_linker(original_index);
  const linking::Linker loaded_linker(loaded_index);
  EXPECT_EQ(original_linker.eligible_count(), loaded_linker.eligible_count());
  const auto original_linked = original_linker.link_iteratively();
  const auto loaded_linked = loaded_linker.link_iteratively();
  EXPECT_EQ(original_linked.linked_certs, loaded_linked.linked_certs);
  EXPECT_EQ(original_linked.groups.size(), loaded_linked.groups.size());
}

TEST(WorldBundle, RejectsGarbage) {
  std::stringstream garbage("definitely not a bundle");
  EXPECT_FALSE(load_world_bundle(garbage).has_value());
  std::stringstream empty;
  EXPECT_FALSE(load_world_bundle(empty).has_value());
}

TEST(WorldBundle, RejectsTruncation) {
  const WorldResult original = World(micro_config()).run();
  std::stringstream buffer;
  save_world_bundle(original, buffer);
  const std::string full = buffer.str();
  for (const std::size_t cut : {full.size() / 3, full.size() - 5}) {
    std::stringstream cut_buffer(full.substr(0, cut));
    EXPECT_FALSE(load_world_bundle(cut_buffer).has_value());
  }
}

TEST(RsaWorld, EndToEndWithRealSignatures) {
  // A very small world where every certificate is a real RSA-signed X.509
  // certificate — exercising keygen, PKCS1 signing, and chain verification
  // through the whole simulate->scan->classify pipeline.
  WorldConfig config;
  config.seed = 3;
  config.device_count = 10;
  config.website_count = 5;
  config.schedule.scale = 0.05;
  config.scheme = crypto::SigScheme::kRsaSha256;
  config.rsa_bits = 512;  // smallest modulus that fits PKCS1/SHA-256
  const WorldResult world = World(config).run();
  EXPECT_GT(world.archive.certs().size(), 10u);
  const auto breakdown = analysis::compute_validity_breakdown(world.archive);
  EXPECT_GT(breakdown.invalid_certs, 0u);
  EXPECT_GT(breakdown.valid_certs, 0u);
  // Self-signed detection must still work through real RSA signatures.
  EXPECT_GT(breakdown.self_signed, 0u);
}

}  // namespace
}  // namespace sm::simworld
