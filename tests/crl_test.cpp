// Tests for X.509 CRLs and revocation: CertificateList build/parse
// round-trips, CrlStore signature gating, verifier integration, and
// KeyUsage named-bit encoding.
#include <gtest/gtest.h>

#include "asn1/der.h"
#include "pki/crl_store.h"
#include "pki/verifier.h"
#include "util/prng.h"
#include "x509/builder.h"
#include "x509/crl.h"

namespace sm {
namespace {

using crypto::SigScheme;
using x509::CertificateBuilder;
using x509::Crl;
using x509::CrlBuilder;
using x509::Name;

crypto::SigningKey sim_key(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(SigScheme::kSimSha256, rng);
}

x509::Certificate make_ca(const std::string& cn,
                          const crypto::SigningKey& key) {
  return CertificateBuilder()
      .set_serial(bignum::BigUint(1))
      .set_issuer(Name::with_common_name(cn))
      .set_subject(Name::with_common_name(cn))
      .set_validity(util::make_date(2010, 1, 1), util::make_date(2035, 1, 1))
      .set_public_key(key.pub)
      .set_basic_constraints(true)
      .sign(key);
}

// --- named-bit BIT STRING ------------------------------------------------------

TEST(NamedBits, KnownEncodings) {
  // keyCertSign|cRLSign = bits 5,6 -> one octet 0000'0110 -> 0x06, 1 unused.
  const auto der = asn1::encode_named_bit_string(0b1100000, 9);
  ASSERT_EQ(der.size(), 4u);
  EXPECT_EQ(der[0], 0x03);  // BIT STRING
  EXPECT_EQ(der[2], 1);     // unused bits
  EXPECT_EQ(der[3], 0x06);
  // digitalSignature alone = bit 0 -> 0x80, 7 unused.
  const auto ds = asn1::encode_named_bit_string(0b1, 9);
  EXPECT_EQ(ds[2], 7);
  EXPECT_EQ(ds[3], 0x80);
  // decipherOnly = bit 8 -> two octets, 7 unused.
  const auto dec = asn1::encode_named_bit_string(1u << 8, 9);
  EXPECT_EQ(dec[2], 7);
  EXPECT_EQ(dec[3], 0x00);
  EXPECT_EQ(dec[4], 0x80);
}

TEST(NamedBits, RoundTripAllMasks) {
  for (std::uint32_t bits = 0; bits < (1u << 9); ++bits) {
    const auto der = asn1::encode_named_bit_string(bits, 9);
    const auto tlv = asn1::parse_single(der);
    ASSERT_TRUE(tlv.has_value());
    EXPECT_EQ(asn1::decode_named_bit_string(tlv->content), bits) << bits;
  }
}

TEST(NamedBits, DecodeRejectsNonZeroPadding) {
  // 7 unused bits declared but padding bits set.
  const util::Bytes content = {0x07, 0x81};
  EXPECT_FALSE(asn1::decode_named_bit_string(content).has_value());
  EXPECT_FALSE(asn1::decode_named_bit_string({}).has_value());
}

// --- KeyUsage on certificates -----------------------------------------------------

TEST(KeyUsage, BuilderRoundTrip) {
  const auto key = sim_key(1);
  x509::KeyUsage usage;
  usage.set(x509::KeyUsageBit::kKeyCertSign)
      .set(x509::KeyUsageBit::kCrlSign);
  const auto cert = CertificateBuilder()
                        .set_serial(bignum::BigUint(2))
                        .set_issuer(Name::with_common_name("ku"))
                        .set_subject(Name::with_common_name("ku"))
                        .set_validity(0, 1)
                        .set_public_key(key.pub)
                        .set_key_usage(usage)
                        .sign(key);
  const auto parsed = cert.key_usage();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, usage);
  EXPECT_TRUE(parsed->has(x509::KeyUsageBit::kKeyCertSign));
  EXPECT_FALSE(parsed->has(x509::KeyUsageBit::kDigitalSignature));
  EXPECT_EQ(parsed->to_string(), "keyCertSign, cRLSign");
  const auto* raw = cert.find_extension(asn1::oids::key_usage());
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->critical);
}

TEST(KeyUsage, AbsentWhenNotSet) {
  const auto key = sim_key(2);
  const auto cert = CertificateBuilder()
                        .set_serial(bignum::BigUint(3))
                        .set_issuer(Name::with_common_name("x"))
                        .set_subject(Name::with_common_name("x"))
                        .set_validity(0, 1)
                        .set_public_key(key.pub)
                        .sign(key);
  EXPECT_FALSE(cert.key_usage().has_value());
}

// --- CRL build/parse ---------------------------------------------------------------

TEST(CrlRoundTrip, BuildParseQuery) {
  const auto ca_key = sim_key(3);
  const Crl crl = CrlBuilder()
                      .set_issuer(Name::with_common_name("Revoking CA"))
                      .set_this_update(util::make_date(2014, 6, 1))
                      .set_next_update(util::make_date(2014, 7, 1))
                      .add_revoked(bignum::BigUint(42),
                                   util::make_date(2014, 5, 20))
                      .add_revoked(bignum::BigUint(7),
                                   util::make_date(2014, 4, 1))
                      .add_revoked(bignum::BigUint(42),
                                   util::make_date(2014, 5, 20))  // dup
                      .sign(ca_key);
  EXPECT_EQ(crl.issuer.common_name(), "Revoking CA");
  EXPECT_EQ(crl.this_update, util::make_date(2014, 6, 1));
  EXPECT_EQ(crl.next_update, util::make_date(2014, 7, 1));
  ASSERT_EQ(crl.revoked.size(), 2u);  // deduplicated
  EXPECT_TRUE(crl.is_revoked(bignum::BigUint(42)));
  EXPECT_TRUE(crl.is_revoked(bignum::BigUint(7)));
  EXPECT_FALSE(crl.is_revoked(bignum::BigUint(43)));
  EXPECT_EQ(crl.revocation_date(bignum::BigUint(7)),
            util::make_date(2014, 4, 1));

  // Independent parse agrees.
  const auto reparsed = x509::parse_crl(crl.der);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->revoked, crl.revoked);
  EXPECT_EQ(reparsed->signature, crl.signature);
}

TEST(CrlRoundTrip, EmptyCrl) {
  const auto ca_key = sim_key(4);
  const Crl crl = CrlBuilder()
                      .set_issuer(Name::with_common_name("Quiet CA"))
                      .set_this_update(util::make_date(2014, 1, 1))
                      .sign(ca_key);
  EXPECT_TRUE(crl.revoked.empty());
  EXPECT_FALSE(crl.next_update.has_value());
  EXPECT_FALSE(crl.is_revoked(bignum::BigUint(1)));
}

TEST(CrlRoundTrip, ParserRejectsGarbage) {
  EXPECT_FALSE(x509::parse_crl(util::to_bytes("nope")).has_value());
  const auto ca_key = sim_key(5);
  Crl crl = CrlBuilder()
                .set_issuer(Name::with_common_name("T"))
                .set_this_update(0)
                .sign(ca_key);
  util::Bytes truncated = crl.der;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(x509::parse_crl(truncated).has_value());
}

// --- CrlStore ----------------------------------------------------------------------

TEST(CrlStore, VerifiesSignatureAndIssuer) {
  const auto ca_key = sim_key(6);
  const auto ca = make_ca("Store CA", ca_key);
  const Crl good = CrlBuilder()
                       .set_issuer(ca.subject)
                       .set_this_update(util::make_date(2014, 1, 1))
                       .add_revoked(bignum::BigUint(9), 0)
                       .sign(ca_key);
  pki::CrlStore store;
  EXPECT_TRUE(store.add(good, ca));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.is_revoked(ca.subject, bignum::BigUint(9)));
  EXPECT_FALSE(store.is_revoked(ca.subject, bignum::BigUint(10)));
  EXPECT_FALSE(
      store.is_revoked(Name::with_common_name("Other CA"), bignum::BigUint(9)));

  // A CRL signed by the wrong key is rejected.
  const auto rogue_key = sim_key(7);
  const Crl forged = CrlBuilder()
                         .set_issuer(ca.subject)
                         .set_this_update(util::make_date(2014, 2, 1))
                         .add_revoked(bignum::BigUint(10), 0)
                         .sign(rogue_key);
  EXPECT_FALSE(store.add(forged, ca));
  EXPECT_FALSE(store.is_revoked(ca.subject, bignum::BigUint(10)));

  // A mismatched issuer name is rejected even with a valid signature.
  const Crl misnamed = CrlBuilder()
                           .set_issuer(Name::with_common_name("Not Store CA"))
                           .set_this_update(0)
                           .sign(ca_key);
  EXPECT_FALSE(store.add(misnamed, ca));
}

TEST(CrlStore, KeepsFreshestCrl) {
  const auto ca_key = sim_key(8);
  const auto ca = make_ca("Fresh CA", ca_key);
  const Crl old_crl = CrlBuilder()
                          .set_issuer(ca.subject)
                          .set_this_update(util::make_date(2014, 1, 1))
                          .add_revoked(bignum::BigUint(1), 0)
                          .sign(ca_key);
  const Crl new_crl = CrlBuilder()
                          .set_issuer(ca.subject)
                          .set_this_update(util::make_date(2014, 6, 1))
                          .add_revoked(bignum::BigUint(2), 0)
                          .sign(ca_key);
  pki::CrlStore store;
  EXPECT_TRUE(store.add(new_crl, ca));
  // A well-signed but older edition is not kept — and says so.
  EXPECT_FALSE(store.add(old_crl, ca));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.is_revoked(ca.subject, bignum::BigUint(1)));
  EXPECT_TRUE(store.is_revoked(ca.subject, bignum::BigUint(2)));
}

TEST(CrlStore, RejectsNextUpdateBeforeThisUpdate) {
  const auto ca_key = sim_key(30);
  const auto ca = make_ca("Backwards CA", ca_key);
  // nextUpdate earlier than thisUpdate: a malformed validity window the
  // store refuses even though the signature verifies.
  const Crl backwards = CrlBuilder()
                            .set_issuer(ca.subject)
                            .set_this_update(util::make_date(2014, 6, 1))
                            .set_next_update(util::make_date(2014, 5, 1))
                            .add_revoked(bignum::BigUint(5), 0)
                            .sign(ca_key);
  pki::CrlStore store;
  EXPECT_FALSE(store.add(backwards, ca));
  EXPECT_FALSE(store.add_unverified(backwards));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.is_revoked(ca.subject, bignum::BigUint(5)));

  // The degenerate-but-legal equal-boundary window is accepted.
  const Crl instant = CrlBuilder()
                          .set_issuer(ca.subject)
                          .set_this_update(util::make_date(2014, 6, 1))
                          .set_next_update(util::make_date(2014, 6, 1))
                          .sign(ca_key);
  EXPECT_TRUE(store.add(instant, ca));
  EXPECT_EQ(store.size(), 1u);
}

TEST(CrlStore, StalenessEdges) {
  const auto ca_key = sim_key(31);
  const auto ca = make_ca("Stale CA", ca_key);
  const util::UnixTime next = util::make_date(2014, 7, 1);
  const Crl dated = CrlBuilder()
                        .set_issuer(ca.subject)
                        .set_this_update(util::make_date(2014, 6, 1))
                        .set_next_update(next)
                        .sign(ca_key);
  pki::CrlStore store;
  // No CRL for the issuer: not stale (there is nothing to be stale).
  EXPECT_FALSE(store.is_stale(ca.subject, next + 1));
  ASSERT_TRUE(store.add(dated, ca));
  EXPECT_FALSE(store.is_stale(ca.subject, next - 1));
  EXPECT_FALSE(store.is_stale(ca.subject, next));  // deadline instant: fresh
  EXPECT_TRUE(store.is_stale(ca.subject, next + 1));

  // A replacement edition pushes the deadline out again.
  const Crl fresher = CrlBuilder()
                          .set_issuer(ca.subject)
                          .set_this_update(util::make_date(2014, 7, 15))
                          .set_next_update(util::make_date(2014, 8, 15))
                          .sign(ca_key);
  ASSERT_TRUE(store.add(fresher, ca));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.is_stale(ca.subject, next + 1));
  EXPECT_TRUE(store.is_stale(ca.subject, util::make_date(2014, 9, 1)));

  // Absence of a nextUpdate deadline is not staleness.
  const auto quiet_key = sim_key(32);
  const auto quiet = make_ca("No Deadline CA", quiet_key);
  const Crl open_ended = CrlBuilder()
                             .set_issuer(quiet.subject)
                             .set_this_update(util::make_date(2010, 1, 1))
                             .sign(quiet_key);
  ASSERT_TRUE(store.add(open_ended, quiet));
  EXPECT_FALSE(store.is_stale(quiet.subject, util::make_date(2030, 1, 1)));
}

// --- verifier integration ------------------------------------------------------------

TEST(Revocation, VerifierClassifiesRevokedLeaf) {
  const auto root_key = sim_key(9);
  const auto root = make_ca("Rev Root", root_key);
  const auto leaf_key = sim_key(10);
  const auto leaf = CertificateBuilder()
                        .set_serial(bignum::BigUint(777))
                        .set_issuer(root.subject)
                        .set_subject(Name::with_common_name("revoked.example"))
                        .set_validity(util::make_date(2013, 1, 1),
                                      util::make_date(2015, 1, 1))
                        .set_public_key(leaf_key.pub)
                        .sign(root_key);

  pki::RootStore roots;
  roots.add(root);
  const pki::IntermediatePool pool;

  pki::CrlStore crls;
  const Crl crl = CrlBuilder()
                      .set_issuer(root.subject)
                      .set_this_update(util::make_date(2014, 1, 1))
                      .add_revoked(bignum::BigUint(777),
                                   util::make_date(2014, 1, 1))
                      .sign(root_key);
  ASSERT_TRUE(crls.add(crl, root));

  // Without a CRL store: valid.
  const pki::Verifier plain(roots, pool);
  EXPECT_TRUE(plain.verify(leaf).valid);

  // With the store: revoked.
  pki::VerifyOptions options;
  options.crl_store = &crls;
  const pki::Verifier checking(roots, pool, options);
  const auto result = checking.verify(leaf);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.reason, pki::InvalidReason::kRevoked);
  EXPECT_EQ(to_string(result.reason), "revoked");

  // A sibling with a different serial still validates.
  const auto other = CertificateBuilder()
                         .set_serial(bignum::BigUint(778))
                         .set_issuer(root.subject)
                         .set_subject(Name::with_common_name("fine.example"))
                         .set_validity(util::make_date(2013, 1, 1),
                                       util::make_date(2015, 1, 1))
                         .set_public_key(leaf_key.pub)
                         .sign(root_key);
  EXPECT_TRUE(checking.verify(other).valid);
}

}  // namespace
}  // namespace sm
