// Tests for sm::pki::lint — each check fires on exactly the pathology it
// codifies, clean certificates pass, and the aggregate summary counts.
#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "pki/lint.h"
#include "util/prng.h"
#include "x509/builder.h"

namespace sm::pki {
namespace {

using crypto::SigScheme;
using x509::CertificateBuilder;
using x509::Name;

crypto::SigningKey sim_key(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(SigScheme::kSimSha256, rng);
}

bool has_check(const std::vector<LintFinding>& findings, LintCheck check) {
  for (const LintFinding& finding : findings) {
    if (finding.check == check) return true;
  }
  return false;
}

CertificateBuilder clean_leaf_builder(const crypto::SigningKey& key) {
  CertificateBuilder builder;
  builder.set_serial(bignum::BigUint(0xc0ffee))
      .set_issuer(Name::with_common_name("Issuing CA"))
      .set_subject(Name::with_common_name("www.example.com"))
      .set_validity(util::make_date(2014, 1, 1), util::make_date(2015, 1, 1))
      .set_public_key(key.pub)
      .set_subject_alt_names({{x509::GeneralName::Kind::kDns,
                               "www.example.com"}})
      .set_authority_key_id({1, 2, 3});
  return builder;
}

TEST(Lint, CleanLeafHasNoFindings) {
  const auto key = sim_key(1);
  const auto cert = clean_leaf_builder(key).sign(key);
  const auto findings = lint_certificate(cert);
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << to_string(findings.front().check);
}

TEST(Lint, NegativeValidityIsError) {
  const auto key = sim_key(2);
  const auto cert = clean_leaf_builder(key)
                        .set_validity(util::make_date(2015, 1, 1),
                                      util::make_date(2014, 1, 1))
                        .sign(key);
  const auto findings = lint_certificate(cert);
  ASSERT_TRUE(has_check(findings, LintCheck::kNegativeValidity));
  EXPECT_EQ(findings.front().severity, LintSeverity::kError);
  // A never-valid cert is not additionally nagged about length ceilings.
  EXPECT_FALSE(has_check(findings, LintCheck::kLongValidity));
}

TEST(Lint, TwentyYearDeviceCertFlagsLongAndEpochAndFuture) {
  const auto key = sim_key(3);
  const auto cert =
      clean_leaf_builder(key)
          .set_validity(0, util::make_date(2100, 1, 1))
          .sign(key);
  const auto findings = lint_certificate(cert);
  EXPECT_TRUE(has_check(findings, LintCheck::kLongValidity));
  EXPECT_TRUE(has_check(findings, LintCheck::kAbsurdValidity));
  EXPECT_TRUE(has_check(findings, LintCheck::kEpochNotBefore));
  EXPECT_TRUE(has_check(findings, LintCheck::kFarFutureNotAfter));
}

TEST(Lint, EmptyNamesAndSelfIssued) {
  const auto key = sim_key(4);
  const auto empty_cert = CertificateBuilder()
                              .set_serial(bignum::BigUint(2))
                              .set_issuer(Name{})
                              .set_subject(Name{})
                              .set_validity(util::make_date(2014, 1, 1),
                                            util::make_date(2015, 1, 1))
                              .set_public_key(key.pub)
                              .sign(key);
  const auto findings = lint_certificate(empty_cert);
  EXPECT_TRUE(has_check(findings, LintCheck::kEmptySubject));
  EXPECT_TRUE(has_check(findings, LintCheck::kEmptyIssuer));
  // Empty == empty, but "self-issued" only fires on non-empty names.
  EXPECT_FALSE(has_check(findings, LintCheck::kSelfIssued));

  const auto self_issued =
      CertificateBuilder()
          .set_serial(bignum::BigUint(3))
          .set_issuer(Name::with_common_name("fritz.box"))
          .set_subject(Name::with_common_name("fritz.box"))
          .set_validity(util::make_date(2014, 1, 1),
                        util::make_date(2015, 1, 1))
          .set_public_key(key.pub)
          .set_subject_alt_names({{x509::GeneralName::Kind::kDns, "fritz.box"}})
          .sign(key);
  EXPECT_TRUE(
      has_check(lint_certificate(self_issued), LintCheck::kSelfIssued));
}

TEST(Lint, IpCommonNames) {
  const auto key = sim_key(5);
  const auto make_with_cn = [&](const std::string& cn) {
    return CertificateBuilder()
        .set_serial(bignum::BigUint(7))
        .set_issuer(Name::with_common_name("ca"))
        .set_subject(Name::with_common_name(cn))
        .set_validity(util::make_date(2014, 1, 1),
                      util::make_date(2015, 1, 1))
        .set_public_key(key.pub)
        .set_authority_key_id({1})
        .sign(key);
  };
  EXPECT_TRUE(has_check(lint_certificate(make_with_cn("192.168.1.1")),
                        LintCheck::kPrivateIpCommonName));
  EXPECT_TRUE(has_check(lint_certificate(make_with_cn("8.8.8.8")),
                        LintCheck::kIpAddressCommonName));
  // An IP CN is not nagged about missing SANs.
  EXPECT_FALSE(has_check(lint_certificate(make_with_cn("192.168.1.1")),
                         LintCheck::kMissingSan));
}

TEST(Lint, FixedSerialAndMissingSanAndAki) {
  const auto key = sim_key(6);
  const auto cert = CertificateBuilder()
                        .set_serial(bignum::BigUint(1))
                        .set_issuer(Name::with_common_name("vendor ca"))
                        .set_subject(Name::with_common_name("device.local"))
                        .set_validity(util::make_date(2014, 1, 1),
                                      util::make_date(2015, 1, 1))
                        .set_public_key(key.pub)
                        .sign(key);
  const auto findings = lint_certificate(cert);
  EXPECT_TRUE(has_check(findings, LintCheck::kFixedSerialNumber));
  EXPECT_TRUE(has_check(findings, LintCheck::kMissingSan));
  EXPECT_TRUE(has_check(findings, LintCheck::kMissingAki));
}

TEST(Lint, IllegalVersion) {
  const auto key = sim_key(7);
  const auto cert = clean_leaf_builder(key).set_raw_version(12).sign(key);
  const auto findings = lint_certificate(cert);
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(has_check(findings, LintCheck::kIllegalVersion));
  EXPECT_EQ(findings.front().severity, LintSeverity::kError);
}

TEST(Lint, CaWithoutSki) {
  const auto key = sim_key(8);
  const auto ca = CertificateBuilder()
                      .set_serial(bignum::BigUint(100))
                      .set_issuer(Name::with_common_name("Root"))
                      .set_subject(Name::with_common_name("Root"))
                      .set_validity(util::make_date(2010, 1, 1),
                                    util::make_date(2035, 1, 1))
                      .set_public_key(key.pub)
                      .set_basic_constraints(true)
                      .sign(key);
  EXPECT_TRUE(has_check(lint_certificate(ca),
                        LintCheck::kCaWithoutKeyIdentifier));
  // CA certs are exempt from the 39-month leaf ceiling.
  EXPECT_FALSE(has_check(lint_certificate(ca), LintCheck::kLongValidity));
}

TEST(Lint, WeakRsaKey) {
  util::Rng rng(9);
  const auto weak_key =
      crypto::generate_keypair(SigScheme::kRsaSha256, rng, 512);
  const auto cert = clean_leaf_builder(weak_key).sign(weak_key);
  EXPECT_TRUE(has_check(lint_certificate(cert), LintCheck::kWeakRsaKey));
  LintOptions lax;
  lax.min_rsa_bits = 512;
  EXPECT_FALSE(has_check(lint_certificate(cert, lax), LintCheck::kWeakRsaKey));
}

TEST(Lint, FindingsSortedBySeverity) {
  const auto key = sim_key(10);
  const auto cert = CertificateBuilder()
                        .set_raw_version(12)
                        .set_serial(bignum::BigUint(1))
                        .set_issuer(Name{})
                        .set_subject(Name{})
                        .set_validity(util::make_date(2015, 1, 1),
                                      util::make_date(2014, 1, 1))
                        .set_public_key(key.pub)
                        .sign(key);
  const auto findings = lint_certificate(cert);
  ASSERT_GE(findings.size(), 3u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(static_cast<int>(findings[i - 1].severity),
              static_cast<int>(findings[i].severity));
  }
}

TEST(Lint, SummaryAggregates) {
  const auto key = sim_key(11);
  std::vector<x509::Certificate> certs;
  certs.push_back(clean_leaf_builder(key).sign(key));  // clean
  certs.push_back(clean_leaf_builder(key)
                      .set_validity(util::make_date(2015, 1, 1),
                                    util::make_date(2014, 1, 1))
                      .sign(key));  // error
  certs.push_back(clean_leaf_builder(key)
                      .set_serial(bignum::BigUint(1))
                      .sign(key));  // warning
  const LintSummary summary = lint_all(certs);
  EXPECT_EQ(summary.certificates, 3u);
  EXPECT_EQ(summary.with_errors, 1u);
  EXPECT_EQ(summary.with_warnings, 1u);  // only the fixed-serial cert warns
  EXPECT_EQ(summary.by_check[static_cast<std::size_t>(
                LintCheck::kNegativeValidity)],
            1u);
  EXPECT_EQ(summary.by_check[static_cast<std::size_t>(
                LintCheck::kFixedSerialNumber)],
            1u);
}

TEST(Lint, Names) {
  EXPECT_EQ(to_string(LintCheck::kNegativeValidity), "negative-validity");
  EXPECT_EQ(to_string(LintCheck::kWeakRsaKey), "weak-rsa-key");
  EXPECT_EQ(to_string(LintSeverity::kError), "error");
}

}  // namespace
}  // namespace sm::pki
