// Tests for sm::notary: NotaryIndex field correctness against brute-force
// recomputation, thread-count determinism of the rendered responses, the
// service's LRU cache (byte-identical on/off, eviction), and the metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "net/ipv4.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/service.h"
#include "simworld/world.h"
#include "util/thread_pool.h"

namespace sm::notary {
namespace {

simworld::WorldConfig micro_config() {
  simworld::WorldConfig config;
  config.seed = 11;
  config.device_count = 120;
  config.website_count = 40;
  config.schedule.scale = 0.1;
  return config;
}

const simworld::WorldResult& micro_world() {
  static const simworld::WorldResult world =
      simworld::World(micro_config()).run();
  return world;
}

// The shared corpus spine (with routing) the notary consumes.
const corpus::CorpusIndex& micro_spine() {
  static const corpus::CorpusIndex spine(
      micro_world().archive,
      corpus::CorpusOptions{&micro_world().routing, nullptr});
  return spine;
}

TEST(NotaryIndex, MatchesBruteForceRecomputation) {
  const auto& world = micro_world();
  const auto& archive = world.archive;
  const NotaryIndex index(micro_spine());
  ASSERT_EQ(index.size(), archive.certs().size());

  for (scan::CertId id = 0; id < archive.certs().size(); ++id) {
    const CertKnowledge& k = index.knowledge(id);
    const scan::CertRecord& record = archive.cert(id);
    EXPECT_EQ(k.fingerprint, record.fingerprint);
    EXPECT_EQ(k.valid, record.valid);
    EXPECT_EQ(k.transvalid, record.transvalid);
    EXPECT_EQ(k.reason, record.invalid_reason);
    EXPECT_EQ(k.subject_cn, record.subject_cn);
    EXPECT_EQ(k.issuer_cn, record.issuer_cn);
    EXPECT_EQ(k.not_before, record.not_before);
    EXPECT_EQ(k.not_after, record.not_after);

    // Brute-force observation history from the raw archive.
    std::uint64_t observations = 0;
    std::uint32_t scans_seen = 0;
    util::UnixTime first_seen = 0, last_seen = 0;
    std::set<std::uint32_t> ips, slash24s;
    std::set<net::Asn> ases;
    for (const scan::ScanData& scan : archive.scans()) {
      bool seen_in_scan = false;
      const net::RouteTable* table = world.routing.at(scan.event.start);
      for (const scan::Observation& obs : scan.observations) {
        if (obs.cert != id) continue;
        ++observations;
        if (!seen_in_scan) {
          seen_in_scan = true;
          ++scans_seen;
          if (observations == 1) first_seen = scan.event.start;
          last_seen = scan.event.start;
        }
        ips.insert(obs.ip);
        slash24s.insert(obs.ip >> 8);
        if (table != nullptr) {
          const auto asn = table->lookup(net::Ipv4Address(obs.ip));
          if (asn.has_value() && *asn != 0) ases.insert(*asn);
        }
      }
    }
    EXPECT_EQ(k.observations, observations) << "cert " << id;
    EXPECT_EQ(k.scans_seen, scans_seen) << "cert " << id;
    if (observations > 0) {
      EXPECT_EQ(k.first_seen, first_seen) << "cert " << id;
      EXPECT_EQ(k.last_seen, last_seen) << "cert " << id;
    }
    EXPECT_EQ(k.distinct_ips, ips.size()) << "cert " << id;
    EXPECT_EQ(k.distinct_slash24s, slash24s.size()) << "cert " << id;
    EXPECT_EQ(k.distinct_ases, ases.size()) << "cert " << id;
  }
}

TEST(NotaryIndex, KeySharingCountsCertsPerSpki) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  std::map<scan::KeyFingerprint, std::uint32_t> counts;
  for (const scan::CertRecord& record : world.archive.certs()) {
    ++counts[record.key_fingerprint];
  }
  bool any_shared = false;
  for (scan::CertId id = 0; id < world.archive.certs().size(); ++id) {
    const std::uint32_t expected =
        counts.at(world.archive.cert(id).key_fingerprint);
    EXPECT_EQ(index.knowledge(id).key_sharing, expected);
    any_shared |= expected > 1;
  }
  // The simulated world includes firmware families that share keys, so the
  // degree must actually exercise values above 1 somewhere.
  EXPECT_TRUE(any_shared);
}

TEST(NotaryIndex, LookupFindsEveryCertAndRejectsUnknown) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  for (scan::CertId id = 0; id < world.archive.certs().size(); ++id) {
    const CertKnowledge* k = index.lookup(world.archive.cert(id).fingerprint);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k, &index.knowledge(id));
  }
  scan::CertFingerprint unknown{};
  unknown.fill(0xfe);
  EXPECT_EQ(index.lookup(unknown), nullptr);
}

TEST(NotaryIndex, RenderedResponsesAreThreadCountInvariant) {
  const auto& world = micro_world();
  util::ThreadPool serial(1);
  util::ThreadPool wide(8);
  // Both the spine build and the notary build vary their thread count.
  const corpus::CorpusIndex spine1(
      world.archive, corpus::CorpusOptions{&world.routing, &serial});
  const corpus::CorpusIndex spine8(
      world.archive, corpus::CorpusOptions{&world.routing, &wide});
  NotaryIndexOptions options1;
  options1.pool = &serial;
  NotaryIndexOptions options8;
  options8.pool = &wide;
  const NotaryIndex index1(spine1, options1);
  const NotaryIndex index8(spine8, options8);
  ASSERT_EQ(index1.size(), index8.size());
  for (scan::CertId id = 0; id < index1.size(); ++id) {
    EXPECT_EQ(render_knowledge(index1.knowledge(id)),
              render_knowledge(index8.knowledge(id)))
        << "cert " << id;
  }
}

TEST(NotaryIndex, DeviceGroupsAssignLinkedIds) {
  const auto& world = micro_world();
  ASSERT_GE(world.archive.certs().size(), 6u);
  const std::vector<std::vector<scan::CertId>> groups = {{2, 5}, {0, 1, 4}};
  NotaryIndexOptions options;
  options.device_groups = &groups;
  // A spine built without routing: the AS column is all zeros.
  const corpus::CorpusIndex spine(world.archive);
  const NotaryIndex index(spine, options);
  EXPECT_EQ(index.knowledge(2).linked_device, 0u);
  EXPECT_EQ(index.knowledge(5).linked_device, 0u);
  EXPECT_EQ(index.knowledge(0).linked_device, 1u);
  EXPECT_EQ(index.knowledge(1).linked_device, 1u);
  EXPECT_EQ(index.knowledge(4).linked_device, 1u);
  EXPECT_EQ(index.knowledge(3).linked_device, kNoLinkedDevice);
  // Without routing the AS column degrades to 0 rather than lying.
  EXPECT_EQ(index.knowledge(0).distinct_ases, 0u);
}

TEST(NotaryIndex, RenderKnowledgeContainsEveryField) {
  const NotaryIndex index(micro_spine());
  const std::string body = render_knowledge(index.knowledge(0));
  for (const char* key :
       {"fingerprint: ", "status: ", "subject-cn: ", "issuer-cn: ",
        "not-before: ", "not-after: ", "first-seen: ", "last-seen: ",
        "scans-seen: ", "observations: ", "distinct-ips: ",
        "distinct-slash24s: ", "distinct-ases: ", "key-sharing: ",
        "linked-device: "}) {
    EXPECT_NE(body.find(key), std::string::npos) << key;
  }
}

// ---- service -------------------------------------------------------------

std::string fp_payload(const scan::CertFingerprint& fp) {
  return std::string(reinterpret_cast<const char*>(fp.data()), fp.size());
}

TEST(NotaryService, ResponsesAreByteIdenticalWithCacheOnAndOff) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryService uncached(index);  // cache_bytes = 0
  NotaryServiceConfig cached_config;
  cached_config.cache_bytes = 16 << 20;
  NotaryService cached(index, cached_config);

  for (scan::CertId id = 0; id < index.size(); ++id) {
    const std::string payload = fp_payload(world.archive.cert(id).fingerprint);
    // Twice each, so the cached service serves both the miss and hit paths.
    for (int round = 0; round < 2; ++round) {
      const netio::Frame a = uncached.handle(netio::FrameType::kQuery, payload);
      const netio::Frame b = cached.handle(netio::FrameType::kQuery, payload);
      ASSERT_EQ(a.type, netio::FrameType::kCertInfo);
      ASSERT_EQ(b.type, netio::FrameType::kCertInfo);
      ASSERT_EQ(a.payload, b.payload) << "cert " << id;
      EXPECT_EQ(a.payload, render_knowledge(index.knowledge(id)));
    }
  }
  EXPECT_EQ(uncached.metrics().cache_hits, 0u);
  EXPECT_EQ(cached.metrics().cache_hits, index.size());
  EXPECT_EQ(cached.metrics().cache_misses, index.size());
}

TEST(NotaryService, AcceptsFull32ByteFingerprintPayloads) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryService service(index);
  // A 32-byte SHA-256 is truncated to the archive's 128-bit intern key.
  std::string payload = fp_payload(world.archive.cert(0).fingerprint);
  payload.append(16, '\xaa');
  const netio::Frame response =
      service.handle(netio::FrameType::kQuery, payload);
  ASSERT_EQ(response.type, netio::FrameType::kCertInfo);
  EXPECT_EQ(response.payload, render_knowledge(index.knowledge(0)));
}

TEST(NotaryService, UnknownFingerprintAnswersNotFound) {
  const NotaryIndex index(micro_spine());
  NotaryService service(index);
  scan::CertFingerprint unknown{};
  unknown.fill(0xfe);
  const netio::Frame response =
      service.handle(netio::FrameType::kQuery, fp_payload(unknown));
  EXPECT_EQ(response.type, netio::FrameType::kNotFound);
  // kNotFound echoes the queried fingerprint in hex.
  std::string expected;
  for (int i = 0; i < 16; ++i) expected += "fe";
  EXPECT_EQ(response.payload, expected);
  EXPECT_EQ(service.metrics().not_found, 1u);
}

TEST(NotaryService, BadPayloadSizesAnswerError) {
  const NotaryIndex index(micro_spine());
  NotaryService service(index);
  for (const std::size_t size : {0u, 1u, 15u, 17u, 31u, 33u}) {
    const netio::Frame response = service.handle(
        netio::FrameType::kQuery, std::string(size, 'x'));
    EXPECT_EQ(response.type, netio::FrameType::kError) << size;
  }
  EXPECT_EQ(service.metrics().bad_requests, 6u);
}

TEST(NotaryService, LruEvictsWithinShardUnderTinyCapacity) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());

  // Two certificates in the same cache shard.
  std::vector<scan::CertId> same_shard;
  const std::size_t target = NotaryIndex::shard_of(
      world.archive.cert(0).fingerprint);
  for (scan::CertId id = 0; id < index.size() && same_shard.size() < 2; ++id) {
    if (NotaryIndex::shard_of(world.archive.cert(id).fingerprint) == target) {
      same_shard.push_back(id);
    }
  }
  ASSERT_EQ(same_shard.size(), 2u) << "micro world too small for the sweep";
  const std::string a = fp_payload(world.archive.cert(same_shard[0]).fingerprint);
  const std::string b = fp_payload(world.archive.cert(same_shard[1]).fingerprint);

  // Capacity: one rendered response per populated shard (plus slack), so
  // A and B evict each other.  The cache splits its budget across
  // populated shards only, so size the total by that count.
  std::size_t populated = 0;
  for (std::size_t s = 0; s < NotaryIndex::kShards; ++s) {
    if (index.shard_population(s) > 0) ++populated;
  }
  const std::size_t one_entry =
      render_knowledge(index.knowledge(same_shard[0])).size() + 64;
  NotaryServiceConfig config;
  config.cache_bytes = one_entry * populated;
  NotaryService service(index, config);

  auto query = [&](const std::string& payload) {
    const netio::Frame r = service.handle(netio::FrameType::kQuery, payload);
    ASSERT_EQ(r.type, netio::FrameType::kCertInfo);
  };
  query(a);  // miss, cached
  query(a);  // hit
  EXPECT_EQ(service.metrics().cache_hits, 1u);
  query(b);  // miss, evicts a
  query(a);  // miss again (evicted), evicts b
  query(b);  // miss again
  const NotaryMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 4u);
  // Responses stay correct throughout the thrash.
  const netio::Frame r = service.handle(netio::FrameType::kQuery, a);
  EXPECT_EQ(r.payload, render_knowledge(index.knowledge(same_shard[0])));
}

TEST(NotaryService, CacheBudgetSplitsAcrossPopulatedShardsOnly) {
  const NotaryIndex index(micro_spine());
  std::size_t populated = 0;
  for (std::size_t s = 0; s < NotaryIndex::kShards; ++s) {
    if (index.shard_population(s) > 0) ++populated;
  }
  ASSERT_GT(populated, 0u);

  NotaryServiceConfig config;
  config.cache_bytes = 1 << 20;
  const NotaryService service(index, config);

  const std::size_t per = config.cache_bytes / populated;
  for (std::size_t s = 0; s < NotaryIndex::kShards; ++s) {
    if (index.shard_population(s) > 0) {
      EXPECT_EQ(service.cache_shard_capacity(s), per) << "shard " << s;
    } else {
      EXPECT_EQ(service.cache_shard_capacity(s), 0u)
          << "empty shard " << s << " should get no cache budget";
    }
  }
}

TEST(NotaryService, MetricsAndStatsTextTrackTraffic) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryServiceConfig config;
  config.cache_bytes = 1 << 20;
  NotaryService service(index, config);

  const std::string known = fp_payload(world.archive.cert(0).fingerprint);
  scan::CertFingerprint missing{};
  missing.fill(0xfe);

  service.handle(netio::FrameType::kQuery, known);
  service.handle(netio::FrameType::kQuery, known);
  service.handle(netio::FrameType::kQuery, fp_payload(missing));
  const netio::Frame pong = service.handle(netio::FrameType::kPing, "hello");
  EXPECT_EQ(pong.type, netio::FrameType::kPong);
  EXPECT_EQ(pong.payload, "hello");
  const netio::Frame stats = service.handle(netio::FrameType::kStats, "");
  ASSERT_EQ(stats.type, netio::FrameType::kStatsText);

  const NotaryMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.requests, 5u);
  EXPECT_EQ(m.queries, 3u);
  EXPECT_EQ(m.found, 2u);
  EXPECT_EQ(m.not_found, 1u);
  EXPECT_EQ(m.pings, 1u);
  EXPECT_EQ(m.stats_requests, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(m.cache_hit_rate(), 0.5);
  EXPECT_GT(m.latency.count, 0u);
  EXPECT_GT(m.latency.p99_us, 0.0);

  EXPECT_NE(stats.payload.find("notary-stats"), std::string::npos);
  EXPECT_NE(stats.payload.find("queries: 3 (found 2, unknown 1)"),
            std::string::npos);
  EXPECT_NE(stats.payload.find("latency-p50-us"), std::string::npos);
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndBounded) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.summarize().count, 0u);
  // 1us, 2us, 4us ... exercise distinct power-of-two buckets.
  for (int i = 0; i < 10; ++i) {
    histogram.record(std::uint64_t{1000} << i);
  }
  const auto summary = histogram.summarize();
  EXPECT_EQ(summary.count, 10u);
  EXPECT_GT(summary.p50_us, 0.0);
  EXPECT_LE(summary.p50_us, summary.p99_us);
  EXPECT_LE(summary.p99_us, summary.max_us);
}

// Regression: max_us reported the top of the maximum sample's *bucket*,
// not the sample — a 3ms request showed up as 4.194ms. The histogram now
// tracks the exact maximum alongside the buckets.
TEST(LatencyHistogram, MaxReportsExactSampleNotBucketBound) {
  LatencyHistogram histogram;
  histogram.record(1'500);
  histogram.record(3'000'000);  // 3ms: bucket [2^21, 2^22) ns
  const auto summary = histogram.summarize();
  EXPECT_EQ(summary.count, 2u);
  EXPECT_DOUBLE_EQ(summary.max_us, 3'000.0);
  EXPECT_LE(summary.p99_us, summary.max_us);
}

// Regression: samples past the top bucket were silently clamped *into*
// it, so a pathological multi-day stall was indistinguishable from a
// sample at the top bucket's bound — and the count lied about where the
// tail mass lives. Overflow is now counted separately and max_us still
// reports the true sample.
TEST(LatencyHistogram, OverflowSamplesAreCountedNotClamped) {
  LatencyHistogram histogram;
  histogram.record(1'000);
  const std::uint64_t huge = (std::uint64_t{1} << 50) + 12'345;
  histogram.record(huge);  // >= 2^48 ns: past the last bucket
  const auto summary = histogram.summarize();
  EXPECT_EQ(summary.count, 2u);
  EXPECT_EQ(summary.overflow, 1u);
  EXPECT_DOUBLE_EQ(summary.max_us, static_cast<double>(huge) / 1000.0);
  EXPECT_LE(summary.p99_us, summary.max_us);
}

// ---- batch queries -------------------------------------------------------

TEST(BatchCodec, QueryAndInfoRoundTrip) {
  std::vector<scan::CertFingerprint> fps(5);
  for (std::size_t i = 0; i < fps.size(); ++i) fps[i].fill(i * 17);
  std::vector<scan::CertFingerprint> parsed;
  ASSERT_TRUE(parse_batch_query(encode_batch_query(fps), parsed));
  EXPECT_EQ(parsed, fps);

  std::string body = encode_batch_info_header(3);
  append_batch_entry(body, netio::FrameType::kCertInfo, "status: valid\n");
  append_batch_entry(body, netio::FrameType::kNotFound, "deadbeef");
  append_batch_entry(body, netio::FrameType::kError, "shard down");
  std::vector<BatchEntry> entries;
  ASSERT_TRUE(parse_batch_info(body, entries));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].status, netio::FrameType::kCertInfo);
  EXPECT_EQ(entries[0].body, "status: valid\n");
  EXPECT_EQ(entries[1].status, netio::FrameType::kNotFound);
  EXPECT_EQ(entries[2].status, netio::FrameType::kError);
  EXPECT_EQ(entries[2].body, "shard down");
}

TEST(BatchCodec, RejectsMalformedPayloads) {
  std::vector<scan::CertFingerprint> fps(2);
  const std::string good = encode_batch_query(fps);
  std::vector<scan::CertFingerprint> out;
  EXPECT_TRUE(parse_batch_query(good, out));
  // Truncated, padded, count/size disagreement, count over the cap.
  EXPECT_FALSE(parse_batch_query(good.substr(0, good.size() - 1), out));
  EXPECT_FALSE(parse_batch_query(good + "x", out));
  EXPECT_FALSE(parse_batch_query(good.substr(0, 3), out));
  std::string oversized(4 + (kMaxBatchEntries + 1) * 16, '\0');
  const std::uint32_t n = kMaxBatchEntries + 1;
  std::memcpy(oversized.data(), &n, 4);
  EXPECT_FALSE(parse_batch_query(oversized, out));

  std::string info = encode_batch_info_header(1);
  append_batch_entry(info, netio::FrameType::kCertInfo, "x");
  std::vector<BatchEntry> entries;
  EXPECT_TRUE(parse_batch_info(info, entries));
  EXPECT_FALSE(parse_batch_info(info.substr(0, info.size() - 1), entries));
  EXPECT_FALSE(parse_batch_info(info + "y", entries));
  std::string bad_status = info;
  bad_status[4] = 0x03;  // kPing is not a valid per-entry status
  EXPECT_FALSE(parse_batch_info(bad_status, entries));
}

// The protocol promise: a kBatchQuery answers exactly what the same
// fingerprints would get as standalone kQuery frames against the same
// epoch — same statuses, byte-identical bodies, in request order.
TEST(NotaryService, BatchEqualsSequenceOfSingles) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryService service(index);

  std::vector<scan::CertFingerprint> fps;
  for (std::size_t i = 0; i < 8 && i < world.archive.certs().size(); ++i) {
    fps.push_back(world.archive.cert(static_cast<scan::CertId>(i))
                      .fingerprint);
  }
  scan::CertFingerprint missing{};
  missing.fill(0xfe);
  fps.insert(fps.begin() + 3, missing);  // a miss in the middle

  const netio::Frame batched =
      service.handle(netio::FrameType::kBatchQuery, encode_batch_query(fps));
  ASSERT_EQ(batched.type, netio::FrameType::kBatchInfo);
  std::vector<BatchEntry> entries;
  ASSERT_TRUE(parse_batch_info(batched.payload, entries));
  ASSERT_EQ(entries.size(), fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    const netio::Frame single =
        service.handle(netio::FrameType::kQuery, fp_payload(fps[i]));
    EXPECT_EQ(entries[i].status, single.type) << "entry " << i;
    EXPECT_EQ(entries[i].body, single.payload) << "entry " << i;
  }

  const NotaryMetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.batch_queries, 1u);
  EXPECT_EQ(m.batch_entries, fps.size());
  // Singles + batch entries both land in found/not_found.
  EXPECT_EQ(m.found + m.not_found, 2 * fps.size());
  EXPECT_EQ(m.not_found, 2u);
}

TEST(NotaryService, MalformedBatchQueryAnswersError) {
  const NotaryIndex index(micro_spine());
  NotaryService service(index);
  const netio::Frame response =
      service.handle(netio::FrameType::kBatchQuery, "garbage");
  EXPECT_EQ(response.type, netio::FrameType::kError);
  EXPECT_EQ(service.metrics().bad_requests, 1u);
}

// Regression: render_stats() read the index size from one snapshot
// acquire and the epoch from another (inside metrics()), so a publish()
// landing between the two produced a stats dump pairing epoch N with
// epoch N+1's index size. Two indexes of different sizes swapped in a
// tight loop catch the tear: epoch parity determines which size must be
// reported.
TEST(NotaryService, RenderStatsPairsEpochWithThatEpochsIndexSize) {
  const auto& world = micro_world();
  // A second index with a different certificate count: the lower half of
  // the fingerprint space (sliced from the same archive).
  const scan::ScanArchive half_archive =
      corpus::extract_prefix_slice(world.archive, 0, 127);
  const corpus::CorpusIndex half_spine(half_archive, corpus::CorpusOptions{});
  auto full = std::make_shared<const NotaryIndex>(micro_spine());
  auto half = std::make_shared<const NotaryIndex>(half_spine);
  ASSERT_NE(full->size(), half->size());

  NotaryService service(full);
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    // Odd epochs carry the half index, even epochs the full one.
    for (std::uint64_t e = 1; !stop.load(std::memory_order_relaxed); ++e) {
      service.publish(e % 2 == 1 ? half : full, {});
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::uint64_t checked = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string stats = service.render_stats();
    std::size_t size = 0;
    std::uint64_t epoch = 0;
    ASSERT_EQ(std::sscanf(stats.c_str(), "notary-stats\nindex-size: %zu",
                          &size),
              1);
    const std::size_t at = stats.find("snapshot-epoch: ");
    ASSERT_NE(at, std::string::npos);
    ASSERT_EQ(std::sscanf(stats.c_str() + at, "snapshot-epoch: %" SCNu64,
                          &epoch),
              1);
    const std::size_t expected =
        epoch % 2 == 1 ? half->size() : full->size();
    ASSERT_EQ(size, expected) << "torn stats at epoch " << epoch;
    ++checked;
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace sm::notary
