// Tests for sm::analysis — the dataset index and every §4/§5 computation,
// on hand-built archives with known answers plus a simulated tiny world.
#include <gtest/gtest.h>

#include "analysis/dataset.h"
#include "analysis/discrepancy.h"
#include "analysis/diversity.h"
#include "analysis/longevity.h"
#include "simworld/world.h"

namespace sm::analysis {
namespace {

using scan::Campaign;
using scan::CertId;
using scan::CertRecord;
using scan::ScanArchive;
using scan::ScanEvent;

constexpr std::int64_t kDay = util::kSecondsPerDay;

CertRecord make_record(std::uint64_t id, bool valid,
                       pki::InvalidReason reason) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.fingerprint[14] = 0xBB;
  rec.key_fingerprint = 0x9000 + id;
  rec.subject_cn = "host-" + std::to_string(id);
  rec.issuer_cn = "issuer-" + std::to_string(id);
  rec.not_before = util::make_date(2013, 1, 1);
  rec.not_after = util::make_date(2014, 1, 1);
  rec.valid = valid;
  rec.invalid_reason = reason;
  return rec;
}

struct TestWorld {
  ScanArchive archive;
  net::RoutingHistory routing;
  net::AsDatabase as_db;

  TestWorld() {
    net::RouteTable table;
    table.announce(*net::Prefix::parse("10.1.0.0/16"), 100);
    table.announce(*net::Prefix::parse("10.2.0.0/16"), 200);
    routing.add_snapshot(0, table);
    as_db.add(net::AsInfo{100, "Access A", "USA", net::AsType::kTransitAccess});
    as_db.add(net::AsInfo{200, "Content B", "DEU", net::AsType::kContent});
  }
};

// --- DatasetIndex -------------------------------------------------------------

TEST(DatasetIndex, ComputesPerCertStats) {
  TestWorld w;
  const CertId a = w.archive.intern(
      make_record(1, false, pki::InvalidReason::kSelfSigned));
  const CertId b = w.archive.intern(
      make_record(2, true, pki::InvalidReason::kNone));
  const std::size_t s0 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  const std::size_t s1 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 10 * kDay});
  // Cert a: 1 IP in scan 0, 2 IPs in scan 1; spans both ASes.
  w.archive.add_observation(s0, a, 0x0a010001, 1);
  w.archive.add_observation(s1, a, 0x0a010002, 1);
  w.archive.add_observation(s1, a, 0x0a020003, 1);
  // Cert b: same IP twice in one scan (deduped), seen in one scan.
  w.archive.add_observation(s0, b, 0x0a020001, 2);
  w.archive.add_observation(s0, b, 0x0a020001, 2);

  const DatasetIndex index(w.archive, w.routing);
  const CertStats& sa = index.stats(a);
  EXPECT_EQ(sa.scans_seen, 2u);
  EXPECT_EQ(sa.first_scan, 0u);
  EXPECT_EQ(sa.last_scan, 1u);
  EXPECT_DOUBLE_EQ(sa.avg_ips_per_scan(), 1.5);
  EXPECT_EQ(sa.max_ips_in_scan, 2u);
  EXPECT_EQ(sa.min_ips_in_scan, 1u);
  EXPECT_EQ(sa.distinct_as_count, 2u);
  EXPECT_EQ(sa.majority_as, 100u);
  EXPECT_DOUBLE_EQ(index.lifetime_days(a), 11.0);

  const CertStats& sb = index.stats(b);
  EXPECT_EQ(sb.scans_seen, 1u);
  EXPECT_DOUBLE_EQ(sb.avg_ips_per_scan(), 1.0);
  EXPECT_DOUBLE_EQ(index.lifetime_days(b), 1.0);
  EXPECT_EQ(sb.majority_as, 200u);

  EXPECT_EQ(index.as_of(0, 0x0a010001), 100u);
  EXPECT_EQ(index.as_of(0, 0x0b000001), 0u);  // unroutable
}

// --- §4 breakdown ---------------------------------------------------------------

TEST(ValidityBreakdown, CountsReasonsAndMalformed) {
  TestWorld w;
  w.archive.intern(make_record(1, false, pki::InvalidReason::kSelfSigned));
  w.archive.intern(make_record(2, false, pki::InvalidReason::kSelfSigned));
  w.archive.intern(
      make_record(3, false, pki::InvalidReason::kUntrustedIssuer));
  w.archive.intern(make_record(4, false, pki::InvalidReason::kNeverValid));
  w.archive.intern(make_record(5, true, pki::InvalidReason::kNone));
  CertRecord malformed =
      make_record(6, false, pki::InvalidReason::kMalformedVersion);
  malformed.raw_version = 12;
  w.archive.intern(malformed);

  const ValidityBreakdown vb = compute_validity_breakdown(w.archive);
  EXPECT_EQ(vb.total_certs, 5u);
  EXPECT_EQ(vb.valid_certs, 1u);
  EXPECT_EQ(vb.invalid_certs, 4u);
  EXPECT_EQ(vb.self_signed, 2u);
  EXPECT_EQ(vb.untrusted_issuer, 1u);
  EXPECT_EQ(vb.other_invalid, 1u);
  EXPECT_EQ(vb.malformed_version, 1u);
  EXPECT_DOUBLE_EQ(vb.invalid_fraction(), 0.8);
}

// --- Figure 2 -----------------------------------------------------------------

TEST(ScanSeries, PerScanUniqueCounts) {
  TestWorld w;
  const CertId inv = w.archive.intern(
      make_record(1, false, pki::InvalidReason::kSelfSigned));
  const CertId val =
      w.archive.intern(make_record(2, true, pki::InvalidReason::kNone));
  const std::size_t s0 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  const std::size_t s1 =
      w.archive.begin_scan(ScanEvent{Campaign::kRapid7, 7 * kDay});
  w.archive.add_observation(s0, inv, 0x0a010001, 1);
  w.archive.add_observation(s0, inv, 0x0a010002, 1);  // same cert, 2 IPs
  w.archive.add_observation(s0, val, 0x0a020001, 2);
  w.archive.add_observation(s1, val, 0x0a020001, 2);

  const auto series = compute_scan_series(w.archive);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].invalid, 1u);  // unique certs, not observations
  EXPECT_EQ(series[0].valid, 1u);
  EXPECT_DOUBLE_EQ(series[0].invalid_fraction(), 0.5);
  EXPECT_EQ(series[1].invalid, 0u);
  EXPECT_EQ(series[1].valid, 1u);
  EXPECT_EQ(series[1].campaign, Campaign::kRapid7);
}

// --- Figure 3 -----------------------------------------------------------------

TEST(ValidityPeriods, SplitsAndCountsNegative) {
  TestWorld w;
  CertRecord neg = make_record(1, false, pki::InvalidReason::kSelfSigned);
  neg.not_after = neg.not_before - 5 * kDay;
  w.archive.intern(neg);
  CertRecord long_lived = make_record(2, false, pki::InvalidReason::kSelfSigned);
  long_lived.not_after = long_lived.not_before + 20 * 365 * kDay;
  w.archive.intern(long_lived);
  w.archive.intern(make_record(3, true, pki::InvalidReason::kNone));

  const ValidityPeriods vp = compute_validity_periods(w.archive);
  EXPECT_EQ(vp.valid_days.size(), 1u);
  EXPECT_NEAR(vp.valid_days.median(), 365.0, 0.5);
  EXPECT_EQ(vp.invalid_days.size(), 1u);  // negative excluded from CDF
  EXPECT_NEAR(vp.invalid_days.median(), 7300.0, 1.0);
  EXPECT_DOUBLE_EQ(vp.invalid_negative_fraction, 0.5);
  EXPECT_DOUBLE_EQ(vp.valid_negative_fraction, 0.0);
}

// --- Figures 4 & 5 ---------------------------------------------------------------

TEST(LifetimesAndDeltas, EphemeralDetection) {
  TestWorld w;
  // Ephemeral cert issued "just before" the scan.
  CertRecord fresh = make_record(1, false, pki::InvalidReason::kSelfSigned);
  fresh.not_before = 100 * kDay - 2 * kDay;
  const CertId fresh_id = w.archive.intern(fresh);
  // Ephemeral cert with a 1970 stuck clock.
  CertRecord stuck = make_record(2, false, pki::InvalidReason::kSelfSigned);
  stuck.not_before = 0;
  const CertId stuck_id = w.archive.intern(stuck);
  // Ephemeral cert with NotBefore in the future.
  CertRecord ahead = make_record(3, false, pki::InvalidReason::kSelfSigned);
  ahead.not_before = 100 * kDay + 10 * kDay;
  const CertId ahead_id = w.archive.intern(ahead);
  // Multi-scan cert (not ephemeral).
  const CertId multi = w.archive.intern(
      make_record(4, false, pki::InvalidReason::kSelfSigned));

  const std::size_t s0 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 100 * kDay});
  const std::size_t s1 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 110 * kDay});
  w.archive.add_observation(s0, fresh_id, 0x0a010001, 1);
  w.archive.add_observation(s0, stuck_id, 0x0a010002, 2);
  w.archive.add_observation(s0, ahead_id, 0x0a010003, 3);
  w.archive.add_observation(s0, multi, 0x0a010004, 4);
  w.archive.add_observation(s1, multi, 0x0a010004, 4);

  const DatasetIndex index(w.archive, w.routing);
  const Lifetimes lifetimes = compute_lifetimes(index);
  EXPECT_EQ(lifetimes.invalid_days.size(), 4u);
  EXPECT_DOUBLE_EQ(lifetimes.invalid_single_scan_fraction, 0.75);

  const NotBeforeDeltas deltas = compute_notbefore_deltas(index);
  // Three ephemeral certs: fresh (delta 2d), stuck (delta 100d... >1000? no
  // — 100 days), ahead (negative).
  EXPECT_EQ(deltas.positive_days.size(), 2u);
  EXPECT_NEAR(deltas.negative_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(deltas.under_four_days_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(deltas.same_day_fraction, 0.0);
}

// --- Figure 6 ------------------------------------------------------------------

TEST(KeyDiversity, DetectsSharing) {
  TestWorld w;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    CertRecord rec = make_record(i, false, pki::InvalidReason::kSelfSigned);
    if (i <= 3) rec.key_fingerprint = 0x5;  // three certs share one key
    w.archive.intern(rec);
  }
  CertRecord valid = make_record(5, true, pki::InvalidReason::kNone);
  w.archive.intern(valid);

  const KeyDiversity kd = compute_key_diversity(w.archive);
  EXPECT_DOUBLE_EQ(kd.invalid_shared_fraction, 0.75);
  EXPECT_DOUBLE_EQ(kd.valid_shared_fraction, 0.0);
  EXPECT_EQ(kd.top_invalid_key_certs, 3u);
  EXPECT_DOUBLE_EQ(kd.top_invalid_key_share, 0.75);
  ASSERT_FALSE(kd.invalid_curve.empty());
  // First curve point: the heaviest key (1 of 2 keys) covers 3/4 of certs.
  EXPECT_DOUBLE_EQ(kd.invalid_curve.front().first, 0.5);
  EXPECT_DOUBLE_EQ(kd.invalid_curve.front().second, 0.75);
}

// --- Tables 1-4 -------------------------------------------------------------------

TEST(IssuerDiversity, TopIssuersAndParentKeys) {
  TestWorld w;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    CertRecord rec = make_record(i, false, pki::InvalidReason::kSelfSigned);
    rec.issuer_cn = "www.lancom-systems.de";
    w.archive.intern(rec);
  }
  CertRecord empty_issuer =
      make_record(4, false, pki::InvalidReason::kSelfSigned);
  empty_issuer.issuer_cn.clear();
  w.archive.intern(empty_issuer);
  CertRecord private_ip =
      make_record(5, false, pki::InvalidReason::kSelfSigned);
  private_ip.issuer_cn = "192.168.1.1";
  w.archive.intern(private_ip);
  CertRecord valid = make_record(6, true, pki::InvalidReason::kNone);
  valid.issuer_cn = "Go Daddy Secure Certification Authority";
  valid.aki_hex = "aabbcc";
  w.archive.intern(valid);

  const IssuerDiversity id = compute_issuer_diversity(w.archive, 3);
  ASSERT_FALSE(id.top_invalid.empty());
  EXPECT_EQ(id.top_invalid[0].issuer, "www.lancom-systems.de");
  EXPECT_EQ(id.top_invalid[0].certs, 3u);
  bool has_empty = false;
  for (const IssuerRow& row : id.top_invalid) {
    if (row.issuer == "(Empty string)") has_empty = true;
  }
  EXPECT_TRUE(has_empty);
  ASSERT_EQ(id.top_valid.size(), 1u);
  EXPECT_EQ(id.top_valid[0].issuer, "Go Daddy Secure Certification Authority");
  EXPECT_EQ(id.valid_parent_keys, 1u);
  EXPECT_DOUBLE_EQ(id.invalid_private_ip_issuer_fraction, 0.2);
}

TEST(DeviceTypes, ClassifierPatterns) {
  EXPECT_EQ(classify_issuer("www.lancom-systems.de"), "Home router/cable modem");
  EXPECT_EQ(classify_issuer("192.168.1.1"), "Home router/cable modem");
  EXPECT_EQ(classify_issuer("remotewd.com"), "Remote storage");
  EXPECT_EQ(classify_issuer("VMware"), "Remote administration");
  EXPECT_EQ(classify_issuer("vpn-gw.corp"), "VPN");
  EXPECT_EQ(classify_issuer("SonicWALL Firewall DV CA"), "Firewall");
  EXPECT_EQ(classify_issuer("HikVision Device CA"), "IP camera");
  EXPECT_EQ(classify_issuer("Cisco SIP Device CA"), "Other");
  EXPECT_EQ(classify_issuer("PlayBook: AB:CD"), "Unknown");
}

TEST(DeviceTypes, BreakdownSumsToOne) {
  TestWorld w;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    CertRecord rec = make_record(i, false, pki::InvalidReason::kSelfSigned);
    rec.issuer_cn = i <= 6 ? "192.168.1.1" : "remotewd.com";
    w.archive.intern(rec);
  }
  const DeviceTypeBreakdown breakdown = compute_device_types(w.archive, 50);
  EXPECT_EQ(breakdown.classified_certs, 10u);
  double total = 0;
  for (const auto& [type, share] : breakdown.shares) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(breakdown.shares[0].first, "Home router/cable modem");
  EXPECT_DOUBLE_EQ(breakdown.shares[0].second, 0.6);
}

// --- AS analyses (Figure 8, Tables 2-3) -------------------------------------------

TEST(AsAnalyses, TypeBreakdownAndTopAses) {
  TestWorld w;
  const CertId inv = w.archive.intern(
      make_record(1, false, pki::InvalidReason::kSelfSigned));
  const CertId val =
      w.archive.intern(make_record(2, true, pki::InvalidReason::kNone));
  const std::size_t s0 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  w.archive.add_observation(s0, inv, 0x0a010001, 1);  // AS 100 transit
  w.archive.add_observation(s0, val, 0x0a020001, 2);  // AS 200 content

  const DatasetIndex index(w.archive, w.routing);
  const AsTypeBreakdown breakdown = compute_as_type_breakdown(index, w.as_db);
  EXPECT_DOUBLE_EQ(
      breakdown.shares.at(net::AsType::kTransitAccess).second, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.shares.at(net::AsType::kContent).first, 1.0);

  const TopAses top = compute_top_ases(index, w.as_db, 5);
  ASSERT_EQ(top.invalid.size(), 1u);
  EXPECT_EQ(top.invalid[0].asn, 100u);
  EXPECT_EQ(top.invalid[0].label, "#100 Access A (USA)");
  ASSERT_EQ(top.valid.size(), 1u);
  EXPECT_EQ(top.valid[0].asn, 200u);

  const AsDiversity ad = compute_as_diversity(index);
  EXPECT_DOUBLE_EQ(ad.invalid_top_as_share, 1.0);
  EXPECT_EQ(ad.invalid_ases_for_70, 1u);
}

// --- Figure 1 ----------------------------------------------------------------------

TEST(Discrepancy, DetectsCampaignUniqueHosts) {
  TestWorld w;
  const CertId cert = w.archive.intern(
      make_record(1, false, pki::InvalidReason::kSelfSigned));
  const std::size_t umich =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  const std::size_t rapid7 =
      w.archive.begin_scan(ScanEvent{Campaign::kRapid7, kDay / 2});
  // Shared host, one UMich-only host, one Rapid7-only host in another /8.
  w.archive.add_observation(umich, cert, 0x0a010001, 1);
  w.archive.add_observation(rapid7, cert, 0x0a010001, 1);
  w.archive.add_observation(umich, cert, 0x0a010002, 2);
  w.archive.add_observation(rapid7, cert, 0x14010001, 3);  // 20.1.0.1

  const auto disc = compute_scan_discrepancy(w.archive);
  ASSERT_TRUE(disc.has_value());
  EXPECT_EQ(disc->umich_total_hosts, 2u);
  EXPECT_EQ(disc->rapid7_total_hosts, 2u);
  EXPECT_EQ(disc->umich_only_hosts, 1u);
  EXPECT_EQ(disc->rapid7_only_hosts, 1u);
  ASSERT_EQ(disc->per_slash8.size(), 2u);
  EXPECT_EQ(disc->per_slash8[0].first_octet, 10u);
  EXPECT_DOUBLE_EQ(disc->per_slash8[0].umich_unique_fraction, 0.5);
  EXPECT_DOUBLE_EQ(disc->per_slash8[1].rapid7_unique_fraction, 1.0);
}

TEST(Discrepancy, RequiresBothCampaigns) {
  TestWorld w;
  const CertId cert = w.archive.intern(
      make_record(1, false, pki::InvalidReason::kSelfSigned));
  const std::size_t s0 =
      w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  w.archive.add_observation(s0, cert, 0x0a010001, 1);
  EXPECT_FALSE(compute_scan_discrepancy(w.archive).has_value());
}

// --- end-to-end shape sanity on a tiny world -----------------------------------------

TEST(TinyWorldShapes, HeadlineDirectionsHold) {
  simworld::World world(simworld::WorldConfig::tiny());
  const simworld::WorldResult r = world.run();
  const DatasetIndex index(r.archive, r.routing);

  const ValidityBreakdown vb = compute_validity_breakdown(r.archive);
  EXPECT_GT(vb.invalid_fraction(), 0.7);
  EXPECT_GT(vb.self_signed, vb.untrusted_issuer);

  const ValidityPeriods vp = compute_validity_periods(r.archive);
  EXPECT_GT(vp.invalid_days.median(), 5 * vp.valid_days.median());
  EXPECT_GT(vp.invalid_negative_fraction, 0.0);

  const Lifetimes lifetimes = compute_lifetimes(index);
  EXPECT_LT(lifetimes.invalid_days.median(), lifetimes.valid_days.median());

  const KeyDiversity kd = compute_key_diversity(r.archive);
  EXPECT_GT(kd.invalid_shared_fraction, kd.valid_shared_fraction);

  const AsTypeBreakdown breakdown = compute_as_type_breakdown(index, r.as_db);
  // Invalid certs come overwhelmingly from transit/access networks.
  EXPECT_GT(breakdown.shares.at(net::AsType::kTransitAccess).second, 0.8);
}

}  // namespace
}  // namespace sm::analysis
