// Tests for sm::tracking — entity construction, trackability, AS movement
// and bulk transfers, country crossings, and reassignment inference.
#include <gtest/gtest.h>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"

namespace sm::tracking {
namespace {

using scan::Campaign;
using scan::CertId;
using scan::CertRecord;
using scan::ScanArchive;
using scan::ScanEvent;

constexpr std::int64_t kDay = util::kSecondsPerDay;

CertRecord make_record(std::uint64_t id, std::uint64_t key = 0) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.fingerprint[13] = 0xCC;
  rec.key_fingerprint = key ? key : 0x4000 + id;
  rec.subject_cn = "dev-" + std::to_string(id);
  rec.not_before = 0;
  rec.not_after = util::make_date(2033, 1, 1);
  rec.valid = false;
  rec.invalid_reason = pki::InvalidReason::kSelfSigned;
  return rec;
}

struct TestWorld {
  ScanArchive archive;
  net::RoutingHistory routing;
  net::AsDatabase as_db;

  TestWorld() {
    net::RouteTable table;
    table.announce(*net::Prefix::parse("10.1.0.0/16"), 100);
    table.announce(*net::Prefix::parse("10.2.0.0/16"), 200);
    table.announce(*net::Prefix::parse("10.3.0.0/16"), 300);
    routing.add_snapshot(0, table);
    as_db.add(net::AsInfo{100, "ISP A", "USA", net::AsType::kTransitAccess});
    as_db.add(net::AsInfo{200, "ISP B", "DEU", net::AsType::kTransitAccess});
    as_db.add(net::AsInfo{300, "ISP C", "USA", net::AsType::kTransitAccess});
  }

  std::size_t add_scan(int day) {
    return archive.begin_scan(
        ScanEvent{Campaign::kUMich, day * kDay, 10 * 3600});
  }
};

struct Pipeline {
  analysis::DatasetIndex index;
  linking::Linker linker;
  linking::IterativeResult linked;

  explicit Pipeline(const TestWorld& w)
      : index(w.archive, w.routing),
        linker(index),
        linked(linker.link_iteratively()) {}
};

// --- trackability ---------------------------------------------------------------

TEST(Tracker, SingleLongLivedCertIsTrackableWithoutLinking) {
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  for (int day : {0, 100, 200, 300, 400}) {
    const std::size_t s = w.add_scan(day);
    w.archive.add_observation(s, cert, 0x0a010005, 1);
  }
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db);
  const TrackableSummary summary = tracker.summary();
  EXPECT_EQ(summary.trackable_without_linking, 1u);
  EXPECT_EQ(summary.trackable_with_linking, 1u);
}

TEST(Tracker, LinkingExtendsTrackability) {
  // Two 200-day certs from one device (shared key): individually under a
  // year, linked they span 400 days.
  TestWorld w;
  const CertId c1 = w.archive.intern(make_record(1, 0x77));
  const CertId c2 = w.archive.intern(make_record(2, 0x77));
  for (int day : {0, 100, 200}) {
    w.archive.add_observation(w.add_scan(day), c1, 0x0a010005, 1);
  }
  for (int day : {210, 300, 400}) {
    w.archive.add_observation(w.add_scan(day), c2, 0x0a010005, 1);
  }
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db);
  const TrackableSummary summary = tracker.summary();
  EXPECT_EQ(summary.trackable_without_linking, 0u);
  EXPECT_EQ(summary.trackable_with_linking, 1u);
}

TEST(Tracker, ShortLivedEntitiesNotTrackable) {
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  w.archive.add_observation(w.add_scan(0), cert, 0x0a010005, 1);
  w.archive.add_observation(w.add_scan(30), cert, 0x0a010005, 1);
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db);
  EXPECT_TRUE(tracker.trackable().empty());
  EXPECT_FALSE(tracker.entities().empty());
}

// --- movement -------------------------------------------------------------------

TEST(Tracker, DetectsAsTransitionsAndCountryCrossing) {
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  // AS 100 (USA) for two scans, then AS 200 (DEU) for the rest of a year+.
  w.archive.add_observation(w.add_scan(0), cert, 0x0a010001, 1);
  w.archive.add_observation(w.add_scan(100), cert, 0x0a010001, 1);
  w.archive.add_observation(w.add_scan(200), cert, 0x0a020001, 1);
  w.archive.add_observation(w.add_scan(380), cert, 0x0a020002, 1);
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db);
  const MovementStats movement = tracker.movement();
  EXPECT_EQ(movement.tracked_devices, 1u);
  EXPECT_EQ(movement.devices_with_as_change, 1u);
  EXPECT_EQ(movement.total_as_transitions, 1u);
  EXPECT_DOUBLE_EQ(movement.single_move_fraction, 1.0);
  EXPECT_EQ(movement.devices_crossing_countries, 1u);
}

TEST(Tracker, BulkTransferDetection) {
  // 20 devices hop from AS 100 to AS 300 between scans 1 and 2 — a prefix
  // transfer signature.
  TestWorld w;
  TrackerConfig config;
  config.bulk_transfer_min_devices = 15;
  std::vector<CertId> certs;
  for (std::uint64_t i = 0; i < 20; ++i) {
    certs.push_back(w.archive.intern(make_record(100 + i)));
  }
  const std::size_t s0 = w.add_scan(0);
  const std::size_t s1 = w.add_scan(200);
  const std::size_t s2 = w.add_scan(400);
  for (std::uint32_t i = 0; i < 20; ++i) {
    w.archive.add_observation(s0, certs[i], 0x0a010000 + i, i);
    w.archive.add_observation(s1, certs[i], 0x0a010000 + i, i);
    w.archive.add_observation(s2, certs[i], 0x0a030000 + i, i);
  }
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db, config);
  const MovementStats movement = tracker.movement();
  ASSERT_EQ(movement.bulk_transfers.size(), 1u);
  EXPECT_EQ(movement.bulk_transfers[0].from, 100u);
  EXPECT_EQ(movement.bulk_transfers[0].to, 300u);
  EXPECT_EQ(movement.bulk_transfers[0].devices, 20u);
  EXPECT_EQ(movement.bulk_transfers[0].scan, 2u);
}

// --- reassignment ------------------------------------------------------------------

TEST(Tracker, ReassignmentSeparatesStaticAndDynamic) {
  TestWorld w;
  TrackerConfig config;
  config.min_devices_per_as = 2;
  // AS 100: two static devices; AS 200: two always-changing devices.
  std::vector<CertId> certs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    certs.push_back(w.archive.intern(make_record(200 + i)));
  }
  const int days[] = {0, 150, 300, 430};
  for (int d = 0; d < 4; ++d) {
    const std::size_t s = w.add_scan(days[d]);
    // Static devices: fixed IPs in AS 100.
    w.archive.add_observation(s, certs[0], 0x0a010010, 1);
    w.archive.add_observation(s, certs[1], 0x0a010011, 2);
    // Dynamic devices: fresh IP per scan in AS 200.
    w.archive.add_observation(
        s, certs[2], 0x0a020000 + static_cast<std::uint32_t>(d), 3);
    w.archive.add_observation(
        s, certs[3], 0x0a020100 + static_cast<std::uint32_t>(d), 4);
  }
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db, config);
  const ReassignmentStats stats = tracker.reassignment();
  ASSERT_EQ(stats.per_as.size(), 2u);
  for (const AsReassignment& as_stats : stats.per_as) {
    if (as_stats.asn == 100) {
      EXPECT_DOUBLE_EQ(as_stats.static_fraction(), 1.0);
      EXPECT_DOUBLE_EQ(as_stats.always_changing_fraction(), 0.0);
    } else {
      EXPECT_EQ(as_stats.asn, 200u);
      EXPECT_DOUBLE_EQ(as_stats.static_fraction(), 0.0);
      EXPECT_DOUBLE_EQ(as_stats.always_changing_fraction(), 1.0);
    }
  }
  EXPECT_EQ(stats.ases_90pct_static, 1u);
  ASSERT_EQ(stats.most_dynamic.size(), 1u);
  EXPECT_EQ(stats.most_dynamic[0].asn, 200u);
}

TEST(Tracker, MoversExcludedFromReassignment) {
  TestWorld w;
  TrackerConfig config;
  config.min_devices_per_as = 1;
  const CertId mover = w.archive.intern(make_record(1));
  w.archive.add_observation(w.add_scan(0), mover, 0x0a010001, 1);
  w.archive.add_observation(w.add_scan(200), mover, 0x0a020001, 1);
  w.archive.add_observation(w.add_scan(400), mover, 0x0a020001, 1);
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db, config);
  EXPECT_TRUE(tracker.reassignment().per_as.empty());
  EXPECT_EQ(tracker.movement().devices_with_as_change, 1u);
}

TEST(Tracker, SameDayDualScansDoNotBreakAlwaysChanging) {
  TestWorld w;
  TrackerConfig config;
  config.min_devices_per_as = 1;
  const CertId cert = w.archive.intern(make_record(1));
  // Dual-scan day: same IP twice on day 0 (same lease), then new IPs.
  const std::size_t s0 = w.archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  const std::size_t s0b = w.archive.begin_scan(
      ScanEvent{Campaign::kRapid7, 6 * 3600});
  w.archive.add_observation(s0, cert, 0x0a020001, 1);
  w.archive.add_observation(s0b, cert, 0x0a020001, 1);
  w.archive.add_observation(w.add_scan(200), cert, 0x0a020002, 1);
  w.archive.add_observation(w.add_scan(400), cert, 0x0a020003, 1);
  Pipeline p(w);
  const DeviceTracker tracker(p.index, p.linker, p.linked, w.as_db, config);
  const ReassignmentStats stats = tracker.reassignment();
  ASSERT_EQ(stats.per_as.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.per_as[0].always_changing_fraction(), 1.0);
}

// --- end-to-end on the simulated world ----------------------------------------------

TEST(TrackerWorld, LinkingImprovesTrackingOnTinyWorld) {
  simworld::World world(simworld::WorldConfig::tiny());
  const simworld::WorldResult r = world.run();
  const analysis::DatasetIndex index(r.archive, r.routing);
  const linking::Linker linker(index);
  const linking::IterativeResult linked = linker.link_iteratively();
  const DeviceTracker tracker(index, linker, linked, r.as_db);
  const TrackableSummary summary = tracker.summary();
  EXPECT_GT(summary.trackable_with_linking, 0u);
  EXPECT_GE(summary.trackable_with_linking, summary.trackable_without_linking);
  const MovementStats movement = tracker.movement();
  EXPECT_EQ(movement.tracked_devices, summary.trackable_with_linking);
}

}  // namespace
}  // namespace sm::tracking
