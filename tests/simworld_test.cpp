// Tests for sm::simworld — topology construction, vendor profiles, and
// end-to-end properties of a small simulated world: determinism, the
// invalid/valid mix, vendor pathologies (shared keys, German churn,
// negative validity), and scan-duplicate artifacts.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "simworld/isp.h"
#include "simworld/vendor.h"
#include "simworld/world.h"

namespace sm::simworld {
namespace {

// --- ISPs / topology ---------------------------------------------------------

TEST(Isps, DefaultTopologyIsSane) {
  const auto isps = default_isps();
  EXPECT_GT(isps.size(), 60u);
  std::set<net::Asn> asns;
  std::set<std::uint32_t> pool_starts;
  for (const IspConfig& isp : isps) {
    EXPECT_TRUE(asns.insert(isp.asn).second) << "duplicate ASN " << isp.asn;
    EXPECT_FALSE(isp.pools.empty());
    EXPECT_GE(isp.static_fraction, 0.0);
    EXPECT_LE(isp.static_fraction, 1.0);
    EXPECT_GT(isp.lease_seconds, 0);
    for (const net::Prefix& pool : isp.pools) {
      EXPECT_TRUE(pool_starts.insert(pool.address().value()).second)
          << "overlapping pool " << pool.to_string();
      EXPECT_EQ(pool.length(), 16u);
      const std::uint32_t first_octet = pool.address().value() >> 24;
      EXPECT_NE(first_octet, 10u);
      EXPECT_NE(first_octet, 127u);
      EXPECT_LT(first_octet, 224u);
    }
  }
  // The paper's named ASes are present with correct metadata.
  const auto find = [&](net::Asn a) -> const IspConfig* {
    for (const IspConfig& isp : isps) {
      if (isp.asn == a) return &isp;
    }
    return nullptr;
  };
  ASSERT_NE(find(asn::kDeutscheTelekom), nullptr);
  EXPECT_EQ(find(asn::kDeutscheTelekom)->country, "DEU");
  EXPECT_LT(find(asn::kDeutscheTelekom)->static_fraction, 0.3);
  ASSERT_NE(find(asn::kComcast), nullptr);
  EXPECT_GE(find(asn::kComcast)->static_fraction, 0.9);
  ASSERT_NE(find(asn::kGoDaddy), nullptr);
  EXPECT_EQ(find(asn::kGoDaddy)->type, net::AsType::kContent);
}

TEST(Isps, TransfersReferenceRealPools) {
  const auto isps = default_isps();
  const auto transfers = default_transfers(isps);
  EXPECT_GE(transfers.size(), 2u);
  for (const PrefixTransfer& t : transfers) {
    bool found = false;
    for (const IspConfig& isp : isps) {
      if (isp.asn != t.from) continue;
      for (const net::Prefix& pool : isp.pools) {
        if (pool == t.prefix) found = true;
      }
    }
    EXPECT_TRUE(found) << t.prefix.to_string();
  }
}

TEST(Isps, RoutingHistoryAppliesTransfers) {
  const auto isps = default_isps();
  const auto transfers = default_transfers(isps);
  const auto history =
      build_routing_history(isps, transfers, util::make_date(2012, 1, 1));
  ASSERT_GE(history.snapshot_count(), transfers.size());
  const PrefixTransfer& t = transfers.front();
  const net::Ipv4Address probe(t.prefix.address().value() + 5);
  EXPECT_EQ(history.at(t.when - 1)->lookup(probe), t.from);
  EXPECT_EQ(history.at(t.when + 1)->lookup(probe), t.to);
}

TEST(Isps, AsDatabaseCoversAll) {
  const auto isps = default_isps();
  const auto db = build_as_database(isps);
  EXPECT_EQ(db.size(), isps.size());
  EXPECT_EQ(db.type_of(asn::kDeutscheTelekom), net::AsType::kTransitAccess);
}

// --- vendors ------------------------------------------------------------------

TEST(Vendors, ProfilesCoverPaperPathologies) {
  const auto vendors = default_vendor_profiles();
  std::set<std::string> names;
  bool has_global_shared = false, has_stable = false, has_fresh = false;
  bool has_vendor_ca = false, has_empty = false, has_mac_issuer = false;
  bool has_ip_cn = false, has_dyndns = false;
  for (const VendorProfile& v : vendors) {
    EXPECT_TRUE(names.insert(v.name).second);
    EXPECT_GT(v.weight, 0.0);
    has_global_shared |= v.key_policy == KeyPolicy::kGlobalShared;
    has_stable |= v.key_policy == KeyPolicy::kStablePerDevice;
    has_fresh |= v.key_policy == KeyPolicy::kFreshPerReissue;
    has_vendor_ca |= v.issuer_policy == IssuerPolicy::kVendorCa;
    has_empty |= v.cn_policy == CnPolicy::kEmpty;
    has_mac_issuer |= v.issuer_policy == IssuerPolicy::kDeviceMac;
    has_ip_cn |= v.cn_policy == CnPolicy::kPublicIp;
    has_dyndns |= v.cn_policy == CnPolicy::kDynDns;
  }
  EXPECT_TRUE(has_global_shared);  // Lancom
  EXPECT_TRUE(has_stable);         // FRITZ!Box
  EXPECT_TRUE(has_fresh);          // generic routers
  EXPECT_TRUE(has_vendor_ca);      // untrusted-issuer population
  EXPECT_TRUE(has_empty);          // empty-string issuers
  EXPECT_TRUE(has_mac_issuer);     // PlayBook
  EXPECT_TRUE(has_ip_cn);          // IP-as-CN devices
  EXPECT_TRUE(has_dyndns);         // myfritz.net names
}

TEST(Vendors, WebsiteProfilesAreTrustedAndReplicated) {
  const auto sites = default_website_profiles();
  EXPECT_GT(sites.size(), 10u);
  bool has_cdn = false;
  for (const VendorProfile& v : sites) {
    EXPECT_EQ(v.issuer_policy, IssuerPolicy::kTrustedCa);
    EXPECT_FALSE(v.fixed_issuer.empty());
    has_cdn |= v.replication_max > 10;
  }
  EXPECT_TRUE(has_cdn);
}

// --- end-to-end world ------------------------------------------------------------

class TinyWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    World world(WorldConfig::tiny());
    result_ = new WorldResult(world.run());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const WorldResult& result() { return *result_; }

 private:
  static WorldResult* result_;
};

WorldResult* TinyWorld::result_ = nullptr;

TEST_F(TinyWorld, ProducesScansAndObservations) {
  const auto& r = result();
  EXPECT_GT(r.schedule.size(), 10u);
  EXPECT_EQ(r.archive.scans().size(), r.schedule.size());
  EXPECT_GT(r.archive.observation_count(), 1000u);
  EXPECT_GT(r.archive.certs().size(), 200u);
  // Issuance events can exceed unique certs: factory-identical
  // certificates intern to a single record.
  EXPECT_GE(r.issued_certificates, r.archive.certs().size());
  EXPECT_EQ(r.roots.size(), 3u);
  // No default ISP lease is tiny enough to overflow the per-replica
  // interval cap, so nothing may be dropped silently.
  EXPECT_EQ(r.dropped_lease_intervals, 0u);
}

TEST_F(TinyWorld, InvalidCertsDominate) {
  const auto& certs = result().archive.certs();
  std::size_t invalid = 0;
  for (const auto& cert : certs) {
    if (!cert.valid) ++invalid;
  }
  const double frac =
      static_cast<double>(invalid) / static_cast<double>(certs.size());
  // Paper: 87.9% of unique certs are invalid. Loose band for a tiny world.
  EXPECT_GT(frac, 0.70);
  EXPECT_LT(frac, 0.99);
}

TEST_F(TinyWorld, SelfSignedDominateInvalids) {
  std::size_t self_signed = 0, untrusted = 0, other = 0;
  for (const auto& cert : result().archive.certs()) {
    if (cert.valid) continue;
    switch (cert.invalid_reason) {
      case pki::InvalidReason::kSelfSigned:
        ++self_signed;
        break;
      case pki::InvalidReason::kUntrustedIssuer:
        ++untrusted;
        break;
      default:
        ++other;
    }
  }
  // Paper: 88.0% self-signed, 11.99% untrusted, 0.01% other.
  EXPECT_GT(self_signed, untrusted);
  EXPECT_GT(untrusted, 0u);
  EXPECT_LT(other, self_signed / 5 + 10);
}

TEST_F(TinyWorld, SharedKeysExist) {
  // The Lancom pathology: one key fingerprint spanning many certificates.
  std::map<scan::KeyFingerprint, std::size_t> key_counts;
  for (const auto& cert : result().archive.certs()) {
    if (!cert.valid) ++key_counts[cert.key_fingerprint];
  }
  std::size_t max_count = 0;
  for (const auto& [key, count] : key_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 20u);
}

TEST_F(TinyWorld, ObservationsCarryGroundTruth) {
  std::set<scan::DeviceId> devices;
  for (const auto& scan : result().archive.scans()) {
    for (const auto& obs : scan.observations) {
      EXPECT_NE(obs.device, scan::kNoDevice);
      devices.insert(obs.device);
    }
  }
  // Most of the simulated population should eventually be observed.
  EXPECT_GT(devices.size(),
            (result().true_device_count + result().true_website_count) / 2);
}

TEST_F(TinyWorld, ScanDuplicatesExist) {
  // Devices changing IP mid-scan must occasionally be seen at two
  // addresses in one scan — the artifact §6.2's filter handles.
  std::size_t multi_ip_device_scans = 0;
  for (const auto& scan : result().archive.scans()) {
    std::map<scan::DeviceId, std::set<std::uint32_t>> ips_per_device;
    for (const auto& obs : scan.observations) {
      ips_per_device[obs.device].insert(obs.ip);
    }
    for (const auto& [device, ips] : ips_per_device) {
      if (ips.size() >= 2) ++multi_ip_device_scans;
    }
  }
  EXPECT_GT(multi_ip_device_scans, 0u);
}

TEST_F(TinyWorld, NegativeValidityExists) {
  std::size_t negative = 0;
  for (const auto& cert : result().archive.certs()) {
    if (cert.not_after < cert.not_before) ++negative;
  }
  EXPECT_GT(negative, 0u);
}

TEST_F(TinyWorld, EveryObservedIpResolvesToAnAs) {
  const auto& r = result();
  for (const auto& scan : r.archive.scans()) {
    const net::RouteTable* table = r.routing.at(scan.event.start);
    ASSERT_NE(table, nullptr);
    for (const auto& obs : scan.observations) {
      EXPECT_TRUE(table->lookup(net::Ipv4Address(obs.ip)).has_value());
    }
  }
}

TEST_F(TinyWorld, BlacklistedIpsNeverObserved) {
  const auto& r = result();
  for (const auto& scan : r.archive.scans()) {
    const scan::PrefixSet& blacklist =
        scan.event.campaign == scan::Campaign::kUMich ? r.umich_blacklist
                                                      : r.rapid7_blacklist;
    for (const auto& obs : scan.observations) {
      EXPECT_FALSE(blacklist.covers(net::Ipv4Address(obs.ip)));
    }
  }
}

TEST(WorldDeterminism, SameSeedSameWorld) {
  WorldConfig config = WorldConfig::tiny();
  config.device_count = 60;
  config.website_count = 25;
  config.schedule.scale = 0.08;
  World w1(config), w2(config);
  const WorldResult r1 = w1.run();
  const WorldResult r2 = w2.run();
  ASSERT_EQ(r1.archive.observation_count(), r2.archive.observation_count());
  ASSERT_EQ(r1.archive.certs().size(), r2.archive.certs().size());
  for (std::size_t s = 0; s < r1.archive.scans().size(); ++s) {
    const auto& obs1 = r1.archive.scans()[s].observations;
    const auto& obs2 = r2.archive.scans()[s].observations;
    ASSERT_EQ(obs1.size(), obs2.size());
    for (std::size_t i = 0; i < obs1.size(); ++i) {
      EXPECT_EQ(obs1[i].cert, obs2[i].cert);
      EXPECT_EQ(obs1[i].ip, obs2[i].ip);
      EXPECT_EQ(obs1[i].device, obs2[i].device);
    }
  }
}

TEST(WorldDeterminism, DifferentSeedsDiffer) {
  WorldConfig a = WorldConfig::tiny();
  a.device_count = 60;
  a.website_count = 25;
  a.schedule.scale = 0.08;
  WorldConfig b = a;
  b.seed = a.seed + 1;
  const WorldResult ra = World(a).run();
  const WorldResult rb = World(b).run();
  EXPECT_NE(ra.archive.observation_count(), rb.archive.observation_count());
}

}  // namespace
}  // namespace sm::simworld
