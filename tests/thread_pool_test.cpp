// Tests for sm::util::ThreadPool — shutdown, parallel_for coverage and
// deterministic ordering, exception propagation, and the nested-use guard.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace sm::util {
namespace {

TEST(ThreadPool, ConstructAndShutdownIdle) {
  // Pools of every interesting size must start and join cleanly with no
  // work submitted.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
}

TEST(ThreadPool, ZeroMeansHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ShutdownAfterWork) {
  // Destruction right after a burst of jobs must not hang or lose tasks.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
      hits += static_cast<int>(end - begin);
    });
    EXPECT_EQ(hits.load(), 100);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<int> visits(1000, 0);
    pool.parallel_for(visits.size(), 13,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) ++visits[i];
                      });
    for (const int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPool, ParallelForDeterministicOrdering) {
  // Index-addressed writes make the output independent of the schedule:
  // the same transform must produce byte-identical results at 1, 2, and 8
  // threads.
  const std::size_t n = 4096;
  std::vector<std::uint64_t> reference(n);
  ThreadPool serial(1);
  serial.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      reference[i] = i * 2654435761u + 17;
    }
  });
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(n);
    pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = i * 2654435761u + 17;
      }
    });
    EXPECT_EQ(out, reference);
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagates) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100, 10,
                          [](std::size_t begin, std::size_t) {
                            if (begin == 50) {
                              throw std::runtime_error("chunk 5 failed");
                            }
                          }),
        std::runtime_error);
    // The pool must remain usable after a throwing job.
    std::atomic<int> hits{0};
    pool.parallel_for(10, 1, [&](std::size_t, std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 10);
  }
}

TEST(ThreadPool, LowestChunkExceptionWins) {
  // Several chunks throw; the rethrown error must be the lowest-indexed
  // one at every thread count.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(100, 10, [](std::size_t begin, std::size_t) {
        if (begin >= 30) {
          throw std::runtime_error("chunk " + std::to_string(begin / 10));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 3");
    }
  }
}

TEST(ThreadPool, NestedUseRunsInline) {
  // A parallel region that itself calls parallel_for must complete (the
  // nested call runs serially on the worker) rather than deadlock.
  ThreadPool pool(4);
  std::vector<std::uint64_t> sums(16, 0);
  pool.parallel_for(sums.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<std::uint64_t> inner(100);
      pool.parallel_for(inner.size(), 10,
                        [&](std::size_t b, std::size_t e) {
                          for (std::size_t j = b; j < e; ++j) {
                            inner[j] = i * 1000 + j;
                          }
                        });
      sums[i] = std::accumulate(inner.begin(), inner.end(), std::uint64_t{0});
    }
  });
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], i * 1000 * 100 + 4950);
  }
}

TEST(ThreadPool, GlobalPoolConfigurable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global_thread_count(), 3u);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  ThreadPool::set_global_threads(0);  // restore hardware default
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace sm::util
