// CorpusIndex correctness: the parallel columnar build (CSR, ASN column,
// per-cert stats) is compared field-by-field against a brute-force serial
// recompute over a simulated world, at 1, 2, and 8 build threads — any
// divergence from the serial reference or between thread counts fails.
// Also covers the empty archive, interned-but-never-observed certificates,
// a hand-made archive with a mid-study prefix transfer, and the
// no-routing-history degenerate case. Runs under TSan and ASan in
// scripts/tier1.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "corpus/corpus_index.h"
#include "net/route_table.h"
#include "scan/archive.h"
#include "simworld/world.h"
#include "util/thread_pool.h"

namespace sm::corpus {
namespace {

// The serial reference: everything recomputed the obvious way, straight
// from the archive, one observation at a time.
struct BruteForce {
  std::vector<std::vector<Obs>> obs;            // per cert
  std::vector<std::vector<net::Asn>> asns;      // per cert, parallel
  std::vector<CertStats> stats;                 // per cert
  std::vector<scan::DeviceId> first_device;     // per cert

  BruteForce(const scan::ScanArchive& archive,
             const net::RoutingHistory* routing) {
    const std::size_t n = archive.certs().size();
    obs.resize(n);
    asns.resize(n);
    stats.resize(n);
    first_device.assign(n, scan::kNoDevice);

    const auto& scans = archive.scans();
    for (std::uint32_t s = 0; s < scans.size(); ++s) {
      const net::RouteTable* table =
          routing == nullptr ? nullptr : routing->at(scans[s].event.start);
      for (const scan::Observation& o : scans[s].observations) {
        if (first_device[o.cert] == scan::kNoDevice) {
          first_device[o.cert] = o.device;
        }
        obs[o.cert].push_back({s, o.ip});
        asns[o.cert].push_back(
            table == nullptr
                ? 0
                : table->lookup(net::Ipv4Address(o.ip)).value_or(0));
      }
    }

    for (std::size_t id = 0; id < n; ++id) {
      CertStats& s = stats[id];
      std::map<std::uint32_t, std::set<std::uint32_t>> ips_by_scan;
      for (const Obs& o : obs[id]) ips_by_scan[o.scan].insert(o.ip);
      if (!ips_by_scan.empty()) {
        s.first_scan = ips_by_scan.begin()->first;
        s.last_scan = ips_by_scan.rbegin()->first;
        s.min_ips_in_scan = ~std::uint32_t{0};
        for (const auto& [scan, ips] : ips_by_scan) {
          ++s.scans_seen;
          const auto count = static_cast<std::uint32_t>(ips.size());
          s.total_ip_scan_slots += count;
          if (count > s.max_ips_in_scan) s.max_ips_in_scan = count;
          if (count < s.min_ips_in_scan) s.min_ips_in_scan = count;
        }
      }
      if (routing != nullptr) {
        // Observation-weighted AS tally over the column; ASN 0 counts as
        // a distinct AS, and majority ties break to the smallest ASN
        // (std::map iterates ascending).
        std::map<net::Asn, std::uint64_t> tally;
        for (const net::Asn asn : asns[id]) ++tally[asn];
        s.distinct_as_count = static_cast<std::uint32_t>(tally.size());
        std::uint64_t best = 0;
        for (const auto& [asn, count] : tally) {
          if (count > best) {
            best = count;
            s.majority_as = asn;
          }
        }
      }
    }
  }
};

void expect_matches(const CorpusIndex& index, const BruteForce& expected) {
  ASSERT_EQ(index.cert_count(), expected.stats.size());
  std::size_t total = 0;
  for (scan::CertId id = 0; id < index.cert_count(); ++id) {
    const auto obs = index.observations(id);
    const auto asns = index.asns(id);
    ASSERT_EQ(obs.size(), expected.obs[id].size()) << "cert " << id;
    ASSERT_EQ(asns.size(), obs.size()) << "cert " << id;
    total += obs.size();
    for (std::size_t i = 0; i < obs.size(); ++i) {
      EXPECT_EQ(obs[i].scan, expected.obs[id][i].scan)
          << "cert " << id << " obs " << i;
      EXPECT_EQ(obs[i].ip, expected.obs[id][i].ip)
          << "cert " << id << " obs " << i;
      EXPECT_EQ(asns[i], expected.asns[id][i])
          << "cert " << id << " obs " << i;
    }
    const CertStats& got = index.stats(id);
    const CertStats& want = expected.stats[id];
    EXPECT_EQ(got.scans_seen, want.scans_seen) << "cert " << id;
    EXPECT_EQ(got.first_scan, want.first_scan) << "cert " << id;
    EXPECT_EQ(got.last_scan, want.last_scan) << "cert " << id;
    EXPECT_EQ(got.total_ip_scan_slots, want.total_ip_scan_slots)
        << "cert " << id;
    EXPECT_EQ(got.max_ips_in_scan, want.max_ips_in_scan) << "cert " << id;
    EXPECT_EQ(got.min_ips_in_scan, want.min_ips_in_scan) << "cert " << id;
    EXPECT_EQ(got.distinct_as_count, want.distinct_as_count) << "cert " << id;
    EXPECT_EQ(got.majority_as, want.majority_as) << "cert " << id;
    EXPECT_EQ(index.first_device(id), expected.first_device[id])
        << "cert " << id;
  }
  EXPECT_EQ(index.observation_count(), total);
  EXPECT_EQ(index.observation_count(), index.archive().observation_count());
}

const simworld::WorldResult& small_world() {
  static const simworld::WorldResult world = [] {
    simworld::WorldConfig config;
    config.seed = 7;
    config.device_count = 80;
    config.website_count = 30;
    config.schedule.scale = 0.08;
    return simworld::World(config).run();
  }();
  return world;
}

TEST(CorpusIndex, MatchesSerialBruteForceAtEveryThreadCount) {
  const auto& world = small_world();
  const BruteForce expected(world.archive, &world.routing);
  ASSERT_GT(world.archive.certs().size(), 0u);
  ASSERT_GT(world.archive.observation_count(), 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    CorpusOptions options;
    options.routing = &world.routing;
    options.pool = &pool;
    const CorpusIndex index(world.archive, options);
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_matches(index, expected);
  }
}

TEST(CorpusIndex, LifetimeDaysMatchesComputeLifetimes) {
  const auto& world = small_world();
  const CorpusIndex index(world.archive);
  const auto lifetimes = scan::compute_lifetimes(world.archive);
  for (scan::CertId id = 0; id < index.cert_count(); ++id) {
    const double expected = index.stats(id).scans_seen == 0
                                ? 0.0
                                : lifetimes[id].days(world.archive.scans());
    EXPECT_DOUBLE_EQ(index.lifetime_days(id), expected) << "cert " << id;
  }
}

TEST(CorpusIndex, EmptyArchiveYieldsEmptySpine) {
  const scan::ScanArchive archive;
  const CorpusIndex index(archive);
  EXPECT_EQ(index.cert_count(), 0u);
  EXPECT_EQ(index.scan_count(), 0u);
  EXPECT_EQ(index.observation_count(), 0u);
  EXPECT_FALSE(index.has_routing());
}

scan::CertRecord record_with_fingerprint(std::uint8_t tag) {
  scan::CertRecord record;
  record.fingerprint.fill(tag);
  return record;
}

TEST(CorpusIndex, InternedButNeverObservedCertHasEmptyRow) {
  scan::ScanArchive archive;
  const scan::CertId seen = archive.intern(record_with_fingerprint(1));
  const scan::CertId ghost = archive.intern(record_with_fingerprint(2));
  scan::ScanEvent event;
  event.start = util::make_date(2013, 3, 1);
  const std::size_t scan = archive.begin_scan(event);
  archive.add_observation(scan, seen, 0x0a000001, /*device=*/17);

  const CorpusIndex index(archive);
  EXPECT_EQ(index.cert_count(), 2u);
  EXPECT_EQ(index.observation_count(), 1u);
  EXPECT_TRUE(index.observations(ghost).empty());
  EXPECT_TRUE(index.asns(ghost).empty());
  EXPECT_EQ(index.stats(ghost).scans_seen, 0u);
  EXPECT_EQ(index.stats(ghost).min_ips_in_scan, 0u);
  EXPECT_EQ(index.stats(ghost).total_ip_scan_slots, 0u);
  EXPECT_EQ(index.first_device(ghost), scan::kNoDevice);
  EXPECT_EQ(index.lifetime_days(ghost), 0.0);

  EXPECT_EQ(index.observations(seen).size(), 1u);
  EXPECT_EQ(index.first_device(seen), 17u);
  EXPECT_EQ(index.lifetime_days(seen), 1.0);
}

TEST(CorpusIndex, AsnColumnTracksPrefixTransfersAcrossScans) {
  // One IP, two scans, and a routing history where the covering prefix
  // moves from AS 100 to AS 200 between them — the column must resolve
  // each observation through the snapshot at its own scan's start.
  scan::ScanArchive archive;
  const scan::CertId cert = archive.intern(record_with_fingerprint(3));

  const std::uint32_t ip = net::Ipv4Address::from_octets(10, 1, 2, 3).value();
  const util::UnixTime t1 = util::make_date(2013, 1, 1);
  const util::UnixTime t2 = util::make_date(2013, 6, 1);

  net::RouteTable before;
  before.announce(net::Prefix(net::Ipv4Address(ip), 16), 100);
  net::RouteTable after;
  after.announce(net::Prefix(net::Ipv4Address(ip), 16), 200);
  net::RoutingHistory routing;
  routing.add_snapshot(t1 - 1000, std::move(before));
  routing.add_snapshot(t2 - 1000, std::move(after));

  scan::ScanEvent first;
  first.start = t1;
  archive.add_observation(archive.begin_scan(first), cert, ip, 1);
  scan::ScanEvent second;
  second.start = t2;
  archive.add_observation(archive.begin_scan(second), cert, ip, 1);

  CorpusOptions options;
  options.routing = &routing;
  const CorpusIndex index(archive, options);
  ASSERT_EQ(index.asns(cert).size(), 2u);
  EXPECT_EQ(index.asns(cert)[0], 100u);
  EXPECT_EQ(index.asns(cert)[1], 200u);
  EXPECT_EQ(index.stats(cert).distinct_as_count, 2u);
  // Tie at one observation each: the majority breaks to the smaller ASN.
  EXPECT_EQ(index.stats(cert).majority_as, 100u);
  EXPECT_EQ(index.as_of(0, ip), 100u);
  EXPECT_EQ(index.as_of(1, ip), 200u);
}

TEST(CorpusIndex, NoRoutingHistoryLeavesAsStatsZero) {
  const auto& world = small_world();
  const CorpusIndex index(world.archive);  // no routing supplied
  EXPECT_FALSE(index.has_routing());
  const BruteForce expected(world.archive, nullptr);
  expect_matches(index, expected);
  for (scan::CertId id = 0; id < index.cert_count(); ++id) {
    EXPECT_EQ(index.stats(id).distinct_as_count, 0u);
    EXPECT_EQ(index.stats(id).majority_as, 0u);
    for (const net::Asn asn : index.asns(id)) EXPECT_EQ(asn, 0u);
  }
}

}  // namespace
}  // namespace sm::corpus
