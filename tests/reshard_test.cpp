// Online-resharding tests: the epoch-versioned prefix map (codec,
// split/merge algebra, router swaps), the slice-handoff state machine
// (kSliceBegin/Segment/Done/Send/Retire through ReshardHost), and the
// acceptance bar — a live deployment splits one shard into two and merges
// back under sustained loopback load with zero failed queries, answering
// byte-identically to an unsharded oracle before, during, and after. This
// binary also runs under TSan and ASan in scripts/tier1.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "loopback_client.h"
#include "netio/client_pool.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/index.h"
#include "notary/prefix_map.h"
#include "notary/reshard.h"
#include "notary/router.h"
#include "notary/service.h"
#include "scan/archive_io.h"
#include "simworld/world.h"

namespace sm::notary {
namespace {

using sm::testing::LoopbackClient;

std::string fp_payload(const scan::CertFingerprint& fp) {
  return {reinterpret_cast<const char*>(fp.data()), fp.size()};
}

std::vector<netio::Endpoint> loopback(std::uint16_t port) {
  return {{"127.0.0.1", port}};
}

// ---- prefix map unit tests ----------------------------------------------

TEST(PrefixMap, UniformMapSerializesParsesAndRenders) {
  const PrefixMap map =
      uniform_prefix_map({loopback(9301), loopback(9302), loopback(9303)});
  EXPECT_EQ(map.epoch, 1u);
  ASSERT_EQ(map.entries.size(), 3u);
  EXPECT_EQ(map.entries[0].lo, 0);
  EXPECT_EQ(map.entries[0].hi, 84);
  EXPECT_EQ(map.entries[2].hi, 255);
  std::string error;
  EXPECT_TRUE(validate_prefix_map(map, error)) << error;

  PrefixMap parsed;
  ASSERT_TRUE(parse_prefix_map(serialize_prefix_map(map), parsed, error))
      << error;
  EXPECT_EQ(parsed.epoch, map.epoch);
  ASSERT_EQ(parsed.entries.size(), map.entries.size());
  for (std::size_t i = 0; i < map.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].lo, map.entries[i].lo);
    EXPECT_EQ(parsed.entries[i].hi, map.entries[i].hi);
    ASSERT_EQ(parsed.entries[i].replicas.size(),
              map.entries[i].replicas.size());
    EXPECT_EQ(parsed.entries[i].replicas[0].host,
              map.entries[i].replicas[0].host);
    EXPECT_EQ(parsed.entries[i].replicas[0].port,
              map.entries[i].replicas[0].port);
  }

  const std::string text = render_prefix_map(map);
  EXPECT_NE(text.find("epoch 1"), std::string::npos);
  EXPECT_NE(text.find("[00-54] 127.0.0.1:9301"), std::string::npos);
  EXPECT_NE(text.find("[aa-ff] 127.0.0.1:9303"), std::string::npos);

  EXPECT_EQ(prefix_map_entry_of(map, 0), 0u);
  EXPECT_EQ(prefix_map_entry_of(map, 84), 0u);
  EXPECT_EQ(prefix_map_entry_of(map, 85), 1u);
  EXPECT_EQ(prefix_map_entry_of(map, 255), 2u);
}

TEST(PrefixMap, ValidationCatchesEveryStructuralViolation) {
  std::string error;
  const PrefixMap good = uniform_prefix_map({loopback(1), loopback(2)});

  PrefixMap gap = good;
  gap.entries[1].lo = 129;  // hole at 128
  EXPECT_FALSE(validate_prefix_map(gap, error));

  PrefixMap overlap = good;
  overlap.entries[1].lo = 127;
  EXPECT_FALSE(validate_prefix_map(overlap, error));

  PrefixMap short_cover = good;
  short_cover.entries[1].hi = 254;
  EXPECT_FALSE(validate_prefix_map(short_cover, error));

  PrefixMap no_replicas = good;
  no_replicas.entries[0].replicas.clear();
  EXPECT_FALSE(validate_prefix_map(no_replicas, error));

  PrefixMap bad_port = good;
  bad_port.entries[0].replicas[0].port = 0;
  EXPECT_FALSE(validate_prefix_map(bad_port, error));

  PrefixMap empty_host = good;
  empty_host.entries[0].replicas[0].host.clear();
  EXPECT_FALSE(validate_prefix_map(empty_host, error));

  PrefixMap none;
  none.epoch = 1;
  EXPECT_FALSE(validate_prefix_map(none, error));

  // Malformed bytes never parse: truncations of a valid serialization.
  const std::string bytes = serialize_prefix_map(good);
  PrefixMap out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(parse_prefix_map(bytes.substr(0, cut), out, error))
        << "cut " << cut;
  }
  EXPECT_FALSE(parse_prefix_map(bytes + "x", out, error));
}

TEST(PrefixMap, SplitAndMergeRoundTripTheMap) {
  PrefixMap map = uniform_prefix_map({loopback(9301), loopback(9302)});
  std::string error;

  ASSERT_TRUE(split_prefix_map_entry(map, 1, loopback(9303), error))
      << error;
  EXPECT_EQ(map.epoch, 2u);
  ASSERT_EQ(map.entries.size(), 3u);
  EXPECT_EQ(map.entries[1].lo, 128);
  EXPECT_EQ(map.entries[1].hi, 191);
  EXPECT_EQ(map.entries[1].replicas[0].port, 9302);
  EXPECT_EQ(map.entries[2].lo, 192);
  EXPECT_EQ(map.entries[2].hi, 255);
  EXPECT_EQ(map.entries[2].replicas[0].port, 9303);
  EXPECT_TRUE(validate_prefix_map(map, error)) << error;

  // Merging entry 1 into entry 2 hands the combined range to entry 2's
  // replicas (the absorbing side).
  ASSERT_TRUE(merge_prefix_map_entry(map, 1, error)) << error;
  EXPECT_EQ(map.epoch, 3u);
  ASSERT_EQ(map.entries.size(), 2u);
  EXPECT_EQ(map.entries[1].lo, 128);
  EXPECT_EQ(map.entries[1].hi, 255);
  EXPECT_EQ(map.entries[1].replicas[0].port, 9303);
  EXPECT_TRUE(validate_prefix_map(map, error)) << error;

  // Degenerate shapes refuse cleanly.
  PrefixMap tiny;
  tiny.epoch = 1;
  tiny.entries.push_back({0, 0, loopback(1)});
  tiny.entries.push_back({1, 255, loopback(2)});
  EXPECT_FALSE(split_prefix_map_entry(tiny, 0, loopback(3), error));
  EXPECT_FALSE(split_prefix_map_entry(tiny, 9, loopback(3), error));
  EXPECT_FALSE(split_prefix_map_entry(tiny, 1, {}, error));
  EXPECT_FALSE(merge_prefix_map_entry(tiny, 1, error));  // last entry
  EXPECT_FALSE(merge_prefix_map_entry(tiny, 7, error));
}

TEST(SliceSidecar, CodecRoundTripsAndRejectsGarbage) {
  corpus::KeyCountMap counts;
  corpus::RevocationStatusMap statuses;
  counts[0x1122334455667788ull] = 7;
  counts[0xdeadbeefull] = 1;
  scan::CertFingerprint fp{};
  fp[0] = 0xc0;
  fp[15] = 0x0d;
  statuses[fp] = pki::RevocationStatus::kRevoked;

  const std::string blob = serialize_slice_sidecar(counts, statuses);
  corpus::KeyCountMap counts_out;
  corpus::RevocationStatusMap statuses_out;
  std::string error;
  ASSERT_TRUE(parse_slice_sidecar(blob, counts_out, statuses_out, error))
      << error;
  EXPECT_EQ(counts_out, counts);
  ASSERT_EQ(statuses_out.size(), 1u);
  EXPECT_EQ(statuses_out.at(fp), pki::RevocationStatus::kRevoked);

  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    corpus::KeyCountMap c;
    corpus::RevocationStatusMap s;
    EXPECT_FALSE(parse_slice_sidecar(blob.substr(0, cut), c, s, error))
        << "cut " << cut;
  }
  {
    corpus::KeyCountMap c;
    corpus::RevocationStatusMap s;
    EXPECT_FALSE(parse_slice_sidecar(blob + std::string(1, '\0'), c, s,
                                     error));
    std::string bad_status = blob;
    bad_status.back() = 0x63;  // not a RevocationStatus
    EXPECT_FALSE(parse_slice_sidecar(bad_status, c, s, error));
  }
}

// ---- the shared world fixture -------------------------------------------

std::shared_ptr<const NotaryIndex> build_live_index(
    const corpus::LiveSnapshot& snap) {
  NotaryIndexOptions options;
  if (snap.key_counts) options.key_counts = snap.key_counts.get();
  if (snap.statuses) options.revocation_statuses = snap.statuses.get();
  return std::make_shared<const NotaryIndex>(*snap.spine, options);
}

/// One in-process live backend: the `sm_notaryd --shard-prefix` /
/// `--empty` shape — LiveCorpus + NotaryService + ReshardHost behind a
/// real TcpServer.
struct LiveBackend {
  std::optional<corpus::LiveCorpus> live;
  std::optional<NotaryService> service;
  std::optional<ReshardHost> reshard;
  std::optional<netio::TcpServer> server;
  std::uint16_t port = 0;

  void start(scan::ScanArchive slice, const net::RoutingHistory* routing,
             corpus::RevocationStatusMap statuses,
             corpus::KeyCountMap key_counts) {
    live.emplace(std::move(slice), routing, nullptr, std::move(statuses),
                 std::move(key_counts));
    NotaryServiceConfig config;
    config.cache_bytes = 1 << 20;
    service.emplace(build_live_index(*live->snapshot()), config);
    reshard.emplace(*live, *service);
    netio::ServerConfig server_config;
    server_config.workers = 2;
    server.emplace(server_config,
                   [this](netio::FrameType type, std::string_view payload,
                          std::string& out) {
                     if (!reshard->handle(type, payload, out)) {
                       service->handle_into(type, payload, out);
                     }
                   });
    std::string error;
    ASSERT_TRUE(server->start(&error)) << error;
    port = server->port();
  }
};

class ReshardWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simworld::WorldConfig config;
    config.seed = 11;
    config.device_count = 120;
    config.website_count = 40;
    config.schedule.scale = 0.1;
    world_ = new simworld::WorldResult(simworld::World(config).run());
    const scan::ScanArchive& full = world_->archive;

    key_counts_ = new corpus::KeyCountMap();
    for (const scan::CertRecord& cert : full.certs()) {
      ++(*key_counts_)[cert.key_fingerprint];
    }

    oracle_spine_ = new corpus::CorpusIndex(
        full, corpus::CorpusOptions{&world_->routing, nullptr});
    NotaryIndexOptions oracle_options;
    oracle_options.revocation_statuses = &world_->revocation.statuses;
    oracle_index_ = new NotaryIndex(*oracle_spine_, oracle_options);
    oracle_ = new NotaryService(*oracle_index_);
  }

  static void TearDownTestSuite() {
    delete oracle_;
    oracle_ = nullptr;
    delete oracle_index_;
    oracle_index_ = nullptr;
    delete oracle_spine_;
    oracle_spine_ = nullptr;
    delete key_counts_;
    key_counts_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  /// Starts a backend serving the [lo, hi] slice with the full-corpus
  /// sidecars, exactly like `sm_notaryd --shard-prefix`.
  static void start_slice(LiveBackend& backend, std::uint8_t lo,
                          std::uint8_t hi) {
    backend.start(corpus::extract_prefix_slice(world_->archive, lo, hi),
                  &world_->routing, world_->revocation.statuses,
                  *key_counts_);
  }

  static netio::Frame ask(std::uint16_t port, netio::FrameType type,
                          std::string_view payload) {
    LoopbackClient client(port);
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.send_frame(type, payload));
    netio::Frame response;
    EXPECT_TRUE(client.read_frame(response));
    return response;
  }

  /// The kSliceSend driver payload: move [lo, hi] to 127.0.0.1:target.
  static std::string slice_send_payload(std::uint8_t lo, std::uint8_t hi,
                                        std::uint16_t target) {
    const std::string host = "127.0.0.1";
    std::string payload;
    payload.push_back(static_cast<char>(lo));
    payload.push_back(static_cast<char>(hi));
    payload.push_back(static_cast<char>(target & 0xff));
    payload.push_back(static_cast<char>(target >> 8));
    payload.push_back(static_cast<char>(host.size()));
    payload += host;
    return payload;
  }

  static std::string range_payload(std::uint8_t lo, std::uint8_t hi) {
    std::string payload;
    payload.push_back(static_cast<char>(lo));
    payload.push_back(static_cast<char>(hi));
    return payload;
  }

  static simworld::WorldResult* world_;
  static corpus::KeyCountMap* key_counts_;
  static corpus::CorpusIndex* oracle_spine_;
  static NotaryIndex* oracle_index_;
  static NotaryService* oracle_;
};

simworld::WorldResult* ReshardWorldTest::world_ = nullptr;
corpus::KeyCountMap* ReshardWorldTest::key_counts_ = nullptr;
corpus::CorpusIndex* ReshardWorldTest::oracle_spine_ = nullptr;
NotaryIndex* ReshardWorldTest::oracle_index_ = nullptr;
NotaryService* ReshardWorldTest::oracle_ = nullptr;

// ---- LiveCorpus slice merge / retire ------------------------------------

// A fresh successor that merges a full slice answers byte-identically to
// the unsharded oracle for every fingerprint it now owns — and still
// kNotFound for everything it does not.
TEST_F(ReshardWorldTest, MergedSliceAnswersLikeTheOracle) {
  constexpr std::uint8_t kLo = 128, kHi = 255;
  corpus::LiveCorpus successor(scan::ScanArchive{}, &world_->routing);
  std::ostringstream smar;
  ASSERT_TRUE(scan::save_archive(
      corpus::extract_prefix_slice(world_->archive, kLo, kHi), smar));
  std::istringstream in(smar.str());
  const corpus::AppendResult result = successor.merge_slice(
      in, key_counts_, &world_->revocation.statuses);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.new_certs, 0u);
  EXPECT_GT(result.scans_appended, 0u);

  const auto snap = successor.snapshot();
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ(snap->archive->scans().size(), world_->archive.scans().size());
  NotaryService service(build_live_index(*snap));
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    const std::string payload = fp_payload(cert.fingerprint);
    for (const netio::FrameType type :
         {netio::FrameType::kQuery, netio::FrameType::kRevocationQuery}) {
      const netio::Frame got = service.handle(type, payload);
      if (cert.fingerprint[0] >= kLo) {
        const netio::Frame want = oracle_->handle(type, payload);
        ASSERT_EQ(got.type, want.type);
        ASSERT_EQ(got.payload, want.payload);
      } else {
        ASSERT_EQ(got.type, netio::FrameType::kNotFound);
      }
    }
  }
}

// Catch-up rounds: round 1 streams everything, later rounds re-list the
// range's certificates (intern dedups) but carry only the scans the
// receiver has not merged yet. Two rounds must converge on exactly the
// one-shot slice.
TEST_F(ReshardWorldTest, CatchUpRoundsConvergeOnTheOneShotSlice) {
  constexpr std::uint8_t kLo = 0, kHi = 127;
  const scan::ScanArchive& full = world_->archive;
  const std::size_t split = full.scans().size() / 2;
  ASSERT_GT(split, 0u);

  corpus::LiveCorpus stepwise(scan::ScanArchive{}, &world_->routing);
  {
    // Round 1: the slice as of "scan count == split".
    const scan::ScanArchive early = corpus::extract_segment(full, 0, split);
    std::ostringstream smar;
    ASSERT_TRUE(scan::save_archive(
        corpus::extract_prefix_slice(early, kLo, kHi), smar));
    std::istringstream in(smar.str());
    const auto r1 = stepwise.merge_slice(in, key_counts_, nullptr);
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.scans_appended, split);
  }
  {
    // Round 2: the corpus grew; only scans [split, end) travel.
    std::ostringstream smar;
    ASSERT_TRUE(scan::save_archive(
        corpus::extract_prefix_slice(full, kLo, kHi, split), smar));
    std::istringstream in(smar.str());
    const auto r2 = stepwise.merge_slice(in, key_counts_, nullptr);
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.scans_appended, full.scans().size() - split);
  }

  corpus::LiveCorpus oneshot(scan::ScanArchive{}, &world_->routing);
  {
    std::ostringstream smar;
    ASSERT_TRUE(scan::save_archive(
        corpus::extract_prefix_slice(full, kLo, kHi), smar));
    std::istringstream in(smar.str());
    ASSERT_TRUE(oneshot.merge_slice(in, key_counts_, nullptr).ok);
  }

  const auto a = stepwise.snapshot();
  const auto b = oneshot.snapshot();
  ASSERT_EQ(a->archive->certs().size(), b->archive->certs().size());
  ASSERT_EQ(a->archive->scans().size(), b->archive->scans().size());
  EXPECT_EQ(a->archive->observation_count(), b->archive->observation_count());
  NotaryService stepwise_service(build_live_index(*a));
  NotaryService oneshot_service(build_live_index(*b));
  for (const scan::CertRecord& cert : full.certs()) {
    if (cert.fingerprint[0] > kHi) continue;
    const std::string payload = fp_payload(cert.fingerprint);
    const netio::Frame x =
        stepwise_service.handle(netio::FrameType::kQuery, payload);
    const netio::Frame y =
        oneshot_service.handle(netio::FrameType::kQuery, payload);
    ASSERT_EQ(x.type, y.type);
    ASSERT_EQ(x.payload, y.payload);
  }
}

// retire_prefix drops the range, remaps ids, and its delta forces a full
// cache flush — a cached render must never survive under a reused id.
TEST_F(ReshardWorldTest, RetireFlushesEveryCachedRender) {
  constexpr std::uint8_t kLo = 128, kHi = 255;
  corpus::LiveCorpus live(world_->archive, &world_->routing, nullptr,
                          world_->revocation.statuses, *key_counts_);
  NotaryServiceConfig config;
  config.cache_bytes = 1 << 20;
  NotaryService service(build_live_index(*live.snapshot()), config);

  // Warm the cache across the whole corpus.
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    ASSERT_EQ(service
                  .handle(netio::FrameType::kQuery,
                          fp_payload(cert.fingerprint))
                  .type,
              netio::FrameType::kCertInfo);
  }

  const std::size_t before = live.snapshot()->archive->certs().size();
  const corpus::AppendResult result = live.retire_prefix(kLo, kHi);
  ASSERT_TRUE(result.ok) << result.error;
  const auto snap = live.snapshot();
  // The delta spans every id of the old AND new epoch: ids were remapped.
  EXPECT_EQ(result.delta_size,
            std::max(before, snap->archive->certs().size()));
  publish_live_snapshot(*snap, service);

  for (const scan::CertRecord& cert : world_->archive.certs()) {
    const std::string payload = fp_payload(cert.fingerprint);
    const netio::Frame got =
        service.handle(netio::FrameType::kQuery, payload);
    if (cert.fingerprint[0] >= kLo) {
      ASSERT_EQ(got.type, netio::FrameType::kNotFound);
    } else {
      const netio::Frame want =
          oracle_->handle(netio::FrameType::kQuery, payload);
      ASSERT_EQ(got.type, want.type);
      // Byte-identical even though every id below the cut was remapped
      // and re-rendered.
      ASSERT_EQ(got.payload, want.payload);
    }
  }
}

// ---- ReshardHost wire protocol ------------------------------------------

TEST_F(ReshardWorldTest, TransferProtocolRefusesMalformedAndConcurrent) {
  LiveBackend backend;
  start_slice(backend, 0, 255);

  // Malformed begin/retire payloads.
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceBegin, "x").type,
            netio::FrameType::kError);
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceBegin,
                range_payload(9, 3))
                .type,
            netio::FrameType::kError);
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceRetire, "abc").type,
            netio::FrameType::kError);
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceSend, "tiny").type,
            netio::FrameType::kError);

  // Segment / done without a transfer in progress.
  EXPECT_EQ(
      ask(backend.port, netio::FrameType::kSliceSegment, "\x01payload").type,
      netio::FrameType::kError);
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceDone, "").type,
            netio::FrameType::kError);

  // One transfer at a time; an unknown stream id aborts it.
  LoopbackClient first(backend.port);
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.send_frame(netio::FrameType::kSliceBegin,
                               range_payload(0, 127)));
  netio::Frame response;
  ASSERT_TRUE(first.read_frame(response));
  ASSERT_EQ(response.type, netio::FrameType::kSliceInfo);
  EXPECT_EQ(ask(backend.port, netio::FrameType::kSliceBegin,
                range_payload(128, 255))
                .type,
            netio::FrameType::kError);
  ASSERT_TRUE(first.send_frame(netio::FrameType::kSliceSegment, "\x07???"));
  ASSERT_TRUE(first.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kError);
  // The abort freed the slot: a new transfer may begin.
  ASSERT_TRUE(first.send_frame(netio::FrameType::kSliceBegin,
                               range_payload(128, 255)));
  ASSERT_TRUE(first.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kSliceInfo);

  backend.server->shutdown();
}

// ---- the acceptance bar -------------------------------------------------

// Split one shard into two and merge back, over real sockets, while a
// client hammers the router: zero failed queries, and every response —
// before, during, after — byte-identical to the unsharded oracle.
TEST_F(ReshardWorldTest, SplitAndMergeBackUnderLoadMatchesOracle) {
  LiveBackend left, right, successor;
  start_slice(left, 0, 127);
  start_slice(right, 128, 255);
  successor.start(scan::ScanArchive{}, &world_->routing, {}, {});

  RouterConfig router_config;
  router_config.shards.push_back({loopback(left.port)});
  router_config.shards.push_back({loopback(right.port)});
  router_config.pool.ping_interval_ms = 50;
  RouterService router(std::move(router_config));
  netio::ServerConfig server_config;
  server_config.workers = 4;
  netio::TcpServer router_server(
      server_config, [&router](netio::FrameType type,
                               std::string_view payload, std::string& out) {
        router.handle_into(type, payload, out);
      });
  ASSERT_TRUE(router_server.start());

  std::vector<scan::CertFingerprint> probes;
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    probes.push_back(cert.fingerprint);
  }

  // Sustained load for the whole test: every response must be a valid
  // kCertInfo (all probes are corpus hits — kNotFound or kError means the
  // handoff dropped knowledge on the floor).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> load_queries{0};
  std::atomic<std::uint64_t> load_failures{0};
  std::thread load([&] {
    LoopbackClient client(router_server.port());
    if (!client.connected()) {
      load_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    netio::Frame response;
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string payload = fp_payload(probes[i++ % probes.size()]);
      if (!client.send_frame(netio::FrameType::kQuery, payload) ||
          !client.read_frame(response) ||
          response.type != netio::FrameType::kCertInfo) {
        load_failures.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      load_queries.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto sweep = [&](const char* phase) {
    LoopbackClient client(router_server.port());
    ASSERT_TRUE(client.connected());
    netio::Frame routed;
    for (const scan::CertFingerprint& fp : probes) {
      const std::string payload = fp_payload(fp);
      for (const netio::FrameType type :
           {netio::FrameType::kQuery, netio::FrameType::kRevocationQuery}) {
        ASSERT_TRUE(client.send_frame(type, payload)) << phase;
        ASSERT_TRUE(client.read_frame(routed)) << phase;
        const netio::Frame direct = oracle_->handle(type, payload);
        ASSERT_EQ(routed.type, direct.type)
            << phase << " prefix " << int(fp[0]);
        ASSERT_EQ(routed.payload, direct.payload) << phase;
      }
    }
  };
  sweep("before");
  EXPECT_EQ(router.map_epoch(), 1u);

  // SPLIT: [c0-ff] moves from `right` to `successor` — stream, swap,
  // drain, retire, exactly the sm_reshard sequence.
  {
    const netio::Frame streamed =
        ask(right.port, netio::FrameType::kSliceSend,
            slice_send_payload(192, 255, successor.port));
    ASSERT_EQ(streamed.type, netio::FrameType::kSliceInfo)
        << streamed.payload;

    PrefixMap next = router.current_map();
    std::string error;
    ASSERT_TRUE(
        split_prefix_map_entry(next, 1, loopback(successor.port), error))
        << error;
    const netio::Frame swapped =
        ask(router_server.port(), netio::FrameType::kMapUpdate,
            serialize_prefix_map(next));
    ASSERT_EQ(swapped.type, netio::FrameType::kMapInfo) << swapped.payload;

    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // drain
    const netio::Frame retired = ask(
        right.port, netio::FrameType::kSliceRetire, range_payload(192, 255));
    ASSERT_EQ(retired.type, netio::FrameType::kSliceInfo) << retired.payload;
  }
  sweep("after-split");
  EXPECT_EQ(router.map_epoch(), 2u);
  EXPECT_EQ(router.shard_count(), 3u);

  // MERGE back: [80-bf] follows, collapsing entries 1 and 2 onto the
  // successor (the absorbing side keeps the combined range).
  {
    const netio::Frame streamed =
        ask(right.port, netio::FrameType::kSliceSend,
            slice_send_payload(128, 191, successor.port));
    ASSERT_EQ(streamed.type, netio::FrameType::kSliceInfo)
        << streamed.payload;

    PrefixMap next = router.current_map();
    std::string error;
    ASSERT_TRUE(merge_prefix_map_entry(next, 1, error)) << error;
    const netio::Frame swapped =
        ask(router_server.port(), netio::FrameType::kMapUpdate,
            serialize_prefix_map(next));
    ASSERT_EQ(swapped.type, netio::FrameType::kMapInfo) << swapped.payload;

    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // drain
    const netio::Frame retired = ask(
        right.port, netio::FrameType::kSliceRetire, range_payload(128, 191));
    ASSERT_EQ(retired.type, netio::FrameType::kSliceInfo) << retired.payload;
  }
  sweep("after-merge");
  EXPECT_EQ(router.map_epoch(), 3u);
  EXPECT_EQ(router.shard_count(), 2u);

  stop.store(true, std::memory_order_relaxed);
  load.join();
  EXPECT_EQ(load_failures.load(), 0u);
  EXPECT_GT(load_queries.load(), 0u);

  // The swaps are visible in ROUTER-STATS.
  const netio::Frame stats =
      ask(router_server.port(), netio::FrameType::kStats, "");
  ASSERT_EQ(stats.type, netio::FrameType::kStatsText);
  EXPECT_NE(stats.payload.find("map-epoch: 3"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("map-swaps: 2"), std::string::npos);

  // A stale map (same epoch) is refused — swaps must advance the epoch.
  const netio::Frame stale =
      ask(router_server.port(), netio::FrameType::kMapUpdate,
          serialize_prefix_map(router.current_map()));
  EXPECT_EQ(stale.type, netio::FrameType::kError);

  router_server.shutdown();
  left.server->shutdown();
  right.server->shutdown();
  successor.server->shutdown();
}

}  // namespace
}  // namespace sm::notary
