// Tests for the simulated revocation ecosystem and its consumers: CRL
// edition publication (signed, asn1 round-tripped, CrlStore-compatible),
// seed determinism, the pathology knobs, the mass-revocation event, and —
// the core contract — agreement between two independent implementations of
// the client's view: the ecosystem's intent-path oracle
// (Ecosystem::expected_status) and the mechanism path
// (BatchVerifier::check_revocation_all fetching, parsing, and
// signature-checking the served CRL DER), bit-identical at every thread
// count. Also covers the notary serving layer: kRevocationQuery singles
// and batches against a world's published statuses.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/revocation.h"
#include "bignum/biguint.h"
#include "corpus/corpus_index.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/service.h"
#include "pki/crl_store.h"
#include "pki/root_store.h"
#include "pki/verifier.h"
#include "revocation/ecosystem.h"
#include "simworld/world.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "x509/builder.h"
#include "x509/crl.h"

namespace sm {
namespace {

using revocation::AuthorityProfile;
using revocation::Ecosystem;
using revocation::EcosystemConfig;
using x509::Name;

crypto::SigningKey sim_key(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
}

x509::Certificate make_ca(const std::string& cn,
                          const crypto::SigningKey& key) {
  return x509::CertificateBuilder()
      .set_serial(bignum::BigUint(1))
      .set_issuer(Name::with_common_name(cn))
      .set_subject(Name::with_common_name(cn))
      .set_validity(util::make_date(2010, 1, 1), util::make_date(2035, 1, 1))
      .set_public_key(key.pub)
      .set_basic_constraints(true)
      .sign(key);
}

const util::UnixTime kCheckTime = util::make_date(2014, 9, 1);

// A synthetic ecosystem exercising every pathology: a dozen CAs whose
// profiles are drawn with fractions large enough that each bucket is hit,
// plus one deliberately untrusted CA (publishes fine, nobody can verify).
struct Synthetic {
  std::shared_ptr<Ecosystem> eco;
  pki::RootStore roots;
  pki::IntermediatePool intermediates;
  std::vector<pki::RevocationQuery> queries;
  std::vector<std::string> authority_keys;  // parallel to registration
};

Synthetic make_synthetic(std::uint64_t seed) {
  Synthetic s;
  EcosystemConfig config;
  config.seed = seed;
  config.check_time = kCheckTime;
  config.stale_fraction = 0.3;
  config.unreachable_fraction = 0.2;
  config.ocsp_unknown_fraction = 0.25;
  config.ocsp_unreachable_fraction = 0.25;
  config.baseline_revoked_fraction = 0.15;
  config.mass_event_enabled = true;
  config.mass_event_issuer = Name::with_common_name("Synthetic CA 3")
                                 .to_string();
  config.mass_event_fraction = 0.6;
  config.mass_event_time = util::make_date(2014, 5, 1);
  s.eco = std::make_shared<Ecosystem>(config);

  for (int i = 0; i < 12; ++i) {
    const std::string cn = "Synthetic CA " + std::to_string(i);
    const auto key = sim_key(1000 + static_cast<std::uint64_t>(i));
    const auto cert = make_ca(cn, key);
    const std::string issuer_key = cert.subject.to_string();
    // CA 11 is the untrusted publisher: registered, but its certificate
    // is in neither client store, so its CRLs cannot be verified.
    const bool trusted = i != 11;
    s.eco->add_authority(issuer_key, cert, key, trusted);
    if (trusted) {
      // Split the trust anchors across both stores the verifier searches.
      if (i % 2 == 0) {
        s.roots.add(cert);
      } else {
        s.intermediates.add(cert);
      }
    }
    s.authority_keys.push_back(issuer_key);

    for (int j = 0; j < 40; ++j) {
      const std::string serial_hex =
          bignum::BigUint(static_cast<std::uint64_t>(100 + j)).to_hex();
      // Issue dates straddle the mass event so only part of CA 3's
      // population is eligible.
      const util::UnixTime not_before =
          util::make_date(2014, 1 + (j % 8), 1);
      s.eco->add_certificate(issuer_key, serial_hex, not_before);
      // Endpoint advertisement varies per certificate: some CRL-only,
      // some OCSP-only, some both, some neither.
      s.queries.push_back({issuer_key, serial_hex, j % 5 != 0, j % 3 != 0});
    }
  }
  // Queries against an issuer nobody registered (a dangling distribution
  // point): whatever is advertised is unreachable or unknown.
  s.queries.push_back({"CN=No Such CA", "0a", true, false});
  s.queries.push_back({"CN=No Such CA", "0a", false, true});
  s.queries.push_back({"CN=No Such CA", "0a", false, false});
  s.eco->publish();
  return s;
}

TEST(RevocationEcosystem, MechanismMatchesOracleAtEveryThreadCount) {
  const Synthetic s = make_synthetic(7);
  const pki::BatchVerifier verifier(s.roots, s.intermediates);

  std::vector<std::vector<pki::RevocationStatus>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    runs.push_back(verifier.check_revocation_all(s.queries, *s.eco,
                                                 kCheckTime, &pool));
  }
  ASSERT_EQ(runs[0].size(), s.queries.size());
  // Bit-identical across thread counts.
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);

  // And equal to the intent-path oracle on every certificate: two
  // independent implementations (set membership vs. signed-DER parsing)
  // agreeing pointwise.
  std::set<pki::RevocationStatus> seen;
  for (std::size_t i = 0; i < s.queries.size(); ++i) {
    const pki::RevocationQuery& q = s.queries[i];
    EXPECT_EQ(runs[0][i],
              s.eco->expected_status(q.issuer_key, q.serial_hex, q.has_crl,
                                     q.has_ocsp))
        << "query " << i << " issuer " << q.issuer_key << " serial "
        << q.serial_hex;
    seen.insert(runs[0][i]);
  }
  // The synthetic config is tuned so every status actually occurs — a
  // test that never produces kStaleCrl proves nothing about staleness.
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RevocationEcosystem, SameSeedReproducesEcosystemExactly) {
  const Synthetic a = make_synthetic(21);
  const Synthetic b = make_synthetic(21);
  for (const std::string& key : a.authority_keys) {
    const AuthorityProfile* pa = a.eco->profile(key);
    const AuthorityProfile* pb = b.eco->profile(key);
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pa->crl_health, pb->crl_health) << key;
    EXPECT_EQ(pa->ocsp_mode, pb->ocsp_mode) << key;
    const auto ea = a.eco->editions(key);
    const auto eb = b.eco->editions(key);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].der, eb[k].der) << key << " edition " << k;
    }
  }

  // A different seed draws a different ecosystem (some profile or CRL
  // must differ across 12 authorities).
  const Synthetic c = make_synthetic(22);
  bool any_difference = false;
  for (const std::string& key : a.authority_keys) {
    const AuthorityProfile* pa = a.eco->profile(key);
    const AuthorityProfile* pc = c.eco->profile(key);
    any_difference |= pa->crl_health != pc->crl_health ||
                      pa->ocsp_mode != pc->ocsp_mode ||
                      a.eco->editions(key).back().der !=
                          c.eco->editions(key).back().der;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RevocationEcosystem, EditionsRoundTripThroughCrlStore) {
  const Synthetic s = make_synthetic(33);
  std::size_t checked = 0;
  for (const std::string& key : s.authority_keys) {
    const auto editions = s.eco->editions(key);
    ASSERT_EQ(editions.size(), 3u) << key;  // config default
    // Editions are chronological, each independently parseable from DER
    // (the builder round-trips through the asn1 writer/reader).
    for (std::size_t k = 0; k < editions.size(); ++k) {
      const auto reparsed = x509::parse_crl(editions[k].der);
      ASSERT_TRUE(reparsed.has_value()) << key << " edition " << k;
      EXPECT_EQ(reparsed->revoked, editions[k].revoked);
      if (k > 0) {
        EXPECT_GT(editions[k].this_update, editions[k - 1].this_update);
      }
      // Every edition's revocations are a superset of the previous one's
      // (decisions accumulate; editions never un-revoke).
      if (k > 0) {
        for (const x509::RevokedEntry& entry : editions[k - 1].revoked) {
          EXPECT_TRUE(editions[k].is_revoked(entry.serial));
        }
      }
    }
    // Replayed through the CrlStore in publication order, each edition
    // replaces the previous; replayed backwards, the stale ones bounce.
    pki::CrlStore store;
    for (const x509::Crl& edition : editions) {
      EXPECT_TRUE(store.add_unverified(edition));
    }
    EXPECT_EQ(store.size(), 1u);
    EXPECT_FALSE(store.add_unverified(editions.front()));
    const x509::Crl* kept = store.find(editions.back().issuer);
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->this_update, editions.back().this_update);
    ++checked;
  }
  EXPECT_EQ(checked, 12u);
}

TEST(RevocationEcosystem, PathologyProfilesBehaveAsDrawn) {
  const Synthetic s = make_synthetic(5);
  std::size_t stale = 0, unreachable = 0, ocsp_unknown = 0,
              ocsp_unreachable = 0;
  for (const std::string& key : s.authority_keys) {
    const AuthorityProfile* profile = s.eco->profile(key);
    ASSERT_NE(profile, nullptr);
    util::Bytes der;
    const bool fetched = s.eco->fetch_crl(key, der);
    switch (profile->crl_health) {
      case AuthorityProfile::CrlHealth::kUnreachable:
        ++unreachable;
        EXPECT_FALSE(fetched) << key;
        break;
      case AuthorityProfile::CrlHealth::kStale: {
        ++stale;
        ASSERT_TRUE(fetched) << key;
        const auto crl = x509::parse_crl(der);
        ASSERT_TRUE(crl.has_value());
        ASSERT_TRUE(crl->next_update.has_value());
        EXPECT_LT(*crl->next_update, kCheckTime) << key;
        break;
      }
      case AuthorityProfile::CrlHealth::kOk: {
        ASSERT_TRUE(fetched) << key;
        const auto crl = x509::parse_crl(der);
        ASSERT_TRUE(crl.has_value());
        ASSERT_TRUE(crl->next_update.has_value());
        EXPECT_GE(*crl->next_update, kCheckTime) << key;
        break;
      }
    }
    switch (profile->ocsp_mode) {
      case AuthorityProfile::OcspMode::kUnknown:
        ++ocsp_unknown;
        EXPECT_EQ(s.eco->ocsp(key, "64"),
                  pki::RevocationSource::OcspAnswer::kUnknown);
        break;
      case AuthorityProfile::OcspMode::kUnreachable:
        ++ocsp_unreachable;
        EXPECT_EQ(s.eco->ocsp(key, "64"),
                  pki::RevocationSource::OcspAnswer::kUnreachable);
        break;
      case AuthorityProfile::OcspMode::kOk: {
        const auto answer = s.eco->ocsp(key, "64");  // serial 100's hex
        EXPECT_EQ(answer, s.eco->is_revoked_intent(key, "64")
                              ? pki::RevocationSource::OcspAnswer::kRevoked
                              : pki::RevocationSource::OcspAnswer::kGood);
        break;
      }
    }
  }
  const revocation::EcosystemStats stats = s.eco->stats();
  EXPECT_EQ(stats.authorities, 12u);
  EXPECT_EQ(stats.stale_authorities, stale);
  EXPECT_EQ(stats.unreachable_authorities, unreachable);
  // Fractions are tuned so each pathology bucket is populated.
  EXPECT_GT(stale, 0u);
  EXPECT_GT(unreachable, 0u);
  EXPECT_GT(ocsp_unknown, 0u);
  EXPECT_GT(ocsp_unreachable, 0u);
}

TEST(RevocationEcosystem, MassEventRevokesEligibleFractionOnly) {
  const Synthetic s = make_synthetic(7);
  const std::string victim = Name::with_common_name("Synthetic CA 3")
                                 .to_string();
  const revocation::EcosystemStats stats = s.eco->stats();
  EXPECT_GT(stats.revoked_mass_event, 0u);
  EXPECT_GE(stats.revoked_intent, stats.revoked_mass_event);
  // The victim's served CRL (its health permitting) or intent set must
  // carry far more than the baseline rate; eyeball via intent count.
  std::size_t victim_revoked = 0;
  for (int j = 0; j < 40; ++j) {
    const std::string serial_hex =
        bignum::BigUint(static_cast<std::uint64_t>(100 + j)).to_hex();
    if (s.eco->is_revoked_intent(victim, serial_hex)) ++victim_revoked;
  }
  // 0.6 of eligible (issued before May) + 0.15 baseline on the rest;
  // with 40 serials the count is far above the all-baseline expectation.
  EXPECT_GT(victim_revoked, 8u);
}

TEST(RevocationEcosystem, UntrustedPublisherYieldsUnknownOnCrlPath) {
  const Synthetic s = make_synthetic(7);
  const std::string untrusted = Name::with_common_name("Synthetic CA 11")
                                    .to_string();
  const AuthorityProfile* profile = s.eco->profile(untrusted);
  ASSERT_NE(profile, nullptr);
  EXPECT_FALSE(profile->trusted);
  if (profile->crl_health != AuthorityProfile::CrlHealth::kUnreachable) {
    // Fetchable, signed, fresh or stale — and still unclassifiable,
    // because no client store holds the issuer certificate.
    EXPECT_EQ(s.eco->expected_status(untrusted, "64", /*has_crl=*/true,
                                     /*has_ocsp=*/false),
              pki::RevocationStatus::kUnknown);
  }
}

// ---- world-level integration --------------------------------------------

simworld::WorldConfig tiny_config() {
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  return config;
}

const simworld::WorldResult& tiny_world() {
  static const simworld::WorldResult world =
      simworld::World(tiny_config()).run();
  return world;
}

TEST(WorldRevocation, EveryArchivedCertHasAStatusMatchingTheOracle) {
  const simworld::WorldResult& world = tiny_world();
  ASSERT_NE(world.revocation.ecosystem, nullptr);
  const Ecosystem& eco = *world.revocation.ecosystem;
  const auto& statuses = world.revocation.statuses;
  ASSERT_EQ(statuses.size(), world.archive.certs().size());

  std::map<pki::RevocationStatus, std::size_t> histogram;
  for (const scan::CertRecord& rec : world.archive.certs()) {
    const auto it = statuses.find(rec.fingerprint);
    ASSERT_NE(it, statuses.end());
    EXPECT_EQ(it->second,
              eco.expected_status(rec.issuer_dn, rec.serial_hex,
                                  !rec.crl_url.empty(),
                                  !rec.ocsp_url.empty()))
        << rec.issuer_dn << " serial " << rec.serial_hex;
    ++histogram[it->second];
  }
  // The default knobs populate multiple buckets in a tiny world —
  // revocation must not degenerate to all-unknown.
  EXPECT_GT(histogram[pki::RevocationStatus::kGood], 0u);
  EXPECT_GT(histogram[pki::RevocationStatus::kRevoked], 0u);
  EXPECT_GE(histogram.size(), 3u);
}

TEST(WorldRevocation, MassEventStrikesTheConfiguredCa) {
  const simworld::WorldResult& world = tiny_world();
  const Ecosystem& eco = *world.revocation.ecosystem;
  EXPECT_GT(eco.stats().revoked_mass_event, 0u);
  EXPECT_EQ(eco.config().mass_event_issuer,
            Name::with_common_name(tiny_config().revocation.mass_event_ca)
                .to_string());
}

TEST(WorldRevocation, DisabledKnobSkipsThePass) {
  simworld::WorldConfig config = tiny_config();
  config.device_count = 10;
  config.website_count = 5;
  config.revocation.enabled = false;
  const simworld::WorldResult world = simworld::World(config).run();
  EXPECT_EQ(world.revocation.ecosystem, nullptr);
  EXPECT_TRUE(world.revocation.statuses.empty());
}

TEST(WorldRevocation, AnalysisBreakdownMatchesGroundTruth) {
  const simworld::WorldResult& world = tiny_world();
  const analysis::RevocationBreakdown breakdown =
      analysis::compute_revocation_breakdown(world.archive,
                                             world.revocation.statuses);

  // Recount from scratch.
  std::array<std::uint64_t, 5> valid{}, invalid{};
  std::map<std::string, std::uint64_t> revoked_by_issuer;
  for (const scan::CertRecord& rec : world.archive.certs()) {
    const auto status = world.revocation.statuses.at(rec.fingerprint);
    const auto i = static_cast<std::size_t>(status);
    (rec.valid ? valid : invalid)[i] += 1;
    if (status == pki::RevocationStatus::kRevoked) {
      ++revoked_by_issuer[rec.issuer_cn];
    }
  }
  EXPECT_EQ(breakdown.valid, valid);
  EXPECT_EQ(breakdown.invalid, invalid);
  std::uint64_t valid_total = 0, invalid_total = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    valid_total += valid[i];
    invalid_total += invalid[i];
  }
  EXPECT_EQ(breakdown.valid_total, valid_total);
  EXPECT_EQ(breakdown.invalid_total, invalid_total);

  // The mass event makes its victim the top revoked issuer by a margin.
  ASSERT_FALSE(breakdown.top_revoked_issuers.empty());
  EXPECT_EQ(breakdown.top_revoked_issuers.front().issuer_cn,
            tiny_config().revocation.mass_event_ca);
  std::uint64_t max_revoked = 0;
  for (const auto& [issuer, revoked] : revoked_by_issuer) {
    max_revoked = std::max(max_revoked, revoked);
  }
  EXPECT_EQ(breakdown.top_revoked_issuers.front().revoked, max_revoked);

  const std::string table = analysis::render_revocation_table(breakdown);
  EXPECT_NE(table.find("revocation statuses: invalid vs. valid certs"),
            std::string::npos);
  for (const char* status :
       {"good", "revoked", "stale-crl", "unreachable", "unknown"}) {
    EXPECT_NE(table.find(status), std::string::npos) << status;
  }
}

// ---- notary serving ------------------------------------------------------

std::string fp_payload(const scan::CertFingerprint& fp) {
  return std::string(reinterpret_cast<const char*>(fp.data()), fp.size());
}

TEST(NotaryRevocation, ServesInjectedStatusesForSinglesAndBatches) {
  const simworld::WorldResult& world = tiny_world();
  const corpus::CorpusIndex spine(world.archive);
  notary::NotaryIndexOptions options;
  options.revocation_statuses = &world.revocation.statuses;
  const notary::NotaryIndex index(spine, options);
  notary::NotaryService service(index);

  const auto& certs = world.archive.certs();
  ASSERT_GE(certs.size(), 8u);
  std::vector<scan::CertFingerprint> fps;
  for (std::size_t i = 0; i < 8; ++i) fps.push_back(certs[i].fingerprint);
  scan::CertFingerprint unknown{};
  unknown.fill(0xfe);
  fps.push_back(unknown);

  // Singles: two-line body carrying the injected status.
  std::vector<netio::Frame> singles;
  for (const scan::CertFingerprint& fp : fps) {
    singles.push_back(service.handle(netio::FrameType::kRevocationQuery,
                                     fp_payload(fp)));
  }
  for (std::size_t i = 0; i + 1 < fps.size(); ++i) {
    ASSERT_EQ(singles[i].type, netio::FrameType::kRevocationInfo);
    const auto status = world.revocation.statuses.at(certs[i].fingerprint);
    const std::string expected_line =
        std::string("revocation: ") + pki::revocation_status_cstr(status) +
        "\n";
    EXPECT_NE(singles[i].payload.find(expected_line), std::string::npos)
        << singles[i].payload;
    EXPECT_NE(singles[i].payload.find("fingerprint: "), std::string::npos);
  }
  EXPECT_EQ(singles.back().type, netio::FrameType::kNotFound);

  // Batch == sequence of singles, byte for byte.
  const netio::Frame batch = service.handle(
      netio::FrameType::kRevocationQuery, notary::encode_batch_query(fps));
  ASSERT_EQ(batch.type, netio::FrameType::kBatchInfo);
  std::vector<notary::BatchEntry> entries;
  ASSERT_TRUE(notary::parse_batch_info(batch.payload, entries));
  ASSERT_EQ(entries.size(), fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    EXPECT_EQ(entries[i].status, singles[i].type) << i;
    EXPECT_EQ(entries[i].body, singles[i].payload) << i;
  }

  // Malformed payload (neither a fingerprint nor a batch) answers kError
  // without wedging the service.
  const netio::Frame bad =
      service.handle(netio::FrameType::kRevocationQuery, "short");
  EXPECT_EQ(bad.type, netio::FrameType::kError);
  EXPECT_EQ(service
                .handle(netio::FrameType::kRevocationQuery,
                        fp_payload(fps.front()))
                .type,
            netio::FrameType::kRevocationInfo);
  EXPECT_EQ(service.metrics().revocation_queries,
            fps.size() + 3);  // singles + batch + bad + retry
}

TEST(NotaryRevocation, DefaultsToUnknownWithoutInjection) {
  const simworld::WorldResult& world = tiny_world();
  const corpus::CorpusIndex spine(world.archive);
  const notary::NotaryIndex index(spine);
  notary::NotaryService service(index);
  const netio::Frame response =
      service.handle(netio::FrameType::kRevocationQuery,
                     fp_payload(world.archive.certs().front().fingerprint));
  ASSERT_EQ(response.type, netio::FrameType::kRevocationInfo);
  EXPECT_NE(response.payload.find("revocation: unknown"), std::string::npos);
}

TEST(NotaryRevocation, UnknownRequestTypeAnswersErrorAndServiceStaysUp) {
  const simworld::WorldResult& world = tiny_world();
  const corpus::CorpusIndex spine(world.archive);
  const notary::NotaryIndex index(spine);
  notary::NotaryService service(index);
  // A well-framed frame of a future type reaches the handler (the decoder
  // no longer rejects unknown type bytes) and is answered kError.
  const netio::Frame response =
      service.handle(static_cast<netio::FrameType>(0x7f), "payload");
  EXPECT_EQ(response.type, netio::FrameType::kError);
  EXPECT_EQ(service.metrics().bad_requests, 1u);
  // The service keeps serving.
  EXPECT_EQ(service
                .handle(netio::FrameType::kQuery,
                        fp_payload(world.archive.certs().front().fingerprint))
                .type,
            netio::FrameType::kCertInfo);
}

}  // namespace
}  // namespace sm
