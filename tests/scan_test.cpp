// Tests for sm::scan — permutation bijectivity, probe timing, schedules,
// prefix sets, certificate records, and the archive/lifetime machinery.
#include <gtest/gtest.h>

#include <set>

#include "crypto/signature.h"
#include "scan/archive.h"
#include "scan/permutation.h"
#include "scan/prefix_set.h"
#include "scan/schedule.h"
#include "util/prng.h"
#include "x509/builder.h"

namespace sm::scan {
namespace {

// --- AddressPermutation -----------------------------------------------------

TEST(Permutation, InverseOfForwardIsIdentity) {
  const AddressPermutation perm(12345);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(perm.inverse(perm.forward(x)), x);
    EXPECT_EQ(perm.forward(perm.inverse(x)), x);
  }
}

TEST(Permutation, IsInjectiveOnSample) {
  const AddressPermutation perm(99);
  std::set<std::uint32_t> images;
  for (std::uint32_t x = 0; x < 20000; ++x) images.insert(perm.forward(x));
  EXPECT_EQ(images.size(), 20000u);
}

TEST(Permutation, DifferentKeysDiffer) {
  const AddressPermutation a(1), b(2);
  int same = 0;
  for (std::uint32_t x = 0; x < 1000; ++x) {
    if (a.forward(x) == b.forward(x)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Permutation, ScattersAdjacentInputs) {
  // Consecutive scan indices should hit unrelated /8s (ZMap's property of
  // not hammering one network).
  const AddressPermutation perm(7);
  std::set<std::uint32_t> first_octets;
  for (std::uint32_t x = 0; x < 64; ++x) {
    first_octets.insert(perm.forward(x) >> 24);
  }
  EXPECT_GT(first_octets.size(), 32u);
}

// --- probe_time -----------------------------------------------------------------

TEST(ProbeTime, WithinScanWindow) {
  const AddressPermutation perm(5);
  const util::UnixTime start = util::make_date(2013, 5, 1);
  const std::int64_t duration = 10 * 3600;
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const net::Ipv4Address ip(static_cast<std::uint32_t>(rng()));
    const util::UnixTime t = probe_time(perm, ip, start, duration);
    EXPECT_GE(t, start);
    EXPECT_LT(t, start + duration);
  }
}

TEST(ProbeTime, ProportionalToPermutationIndex) {
  const AddressPermutation perm(5);
  const util::UnixTime start = 0;
  const std::int64_t duration = 36000;
  // The first address in scan order is probed at the very start.
  const net::Ipv4Address first(perm.forward(0));
  EXPECT_EQ(probe_time(perm, first, start, duration), 0);
  // An address halfway through the order is probed near the middle.
  const net::Ipv4Address mid(perm.forward(0x80000000u));
  const util::UnixTime t = probe_time(perm, mid, start, duration);
  EXPECT_NEAR(static_cast<double>(t), duration / 2.0, 2.0);
}

TEST(ProbeTime, DifferentScanKeysReorder) {
  const AddressPermutation a(1), b(2);
  const net::Ipv4Address ip(0x12345678);
  const util::UnixTime ta = probe_time(a, ip, 0, 36000);
  const util::UnixTime tb = probe_time(b, ip, 0, 36000);
  EXPECT_NE(ta, tb);  // astronomically unlikely to collide
}

// --- schedule --------------------------------------------------------------------

TEST(Schedule, FullScaleShape) {
  ScheduleConfig config;
  util::Rng rng(3);
  const auto events = make_paper_schedule(config, rng);
  std::size_t umich = 0, rapid7 = 0;
  for (const ScanEvent& e : events) {
    (e.campaign == Campaign::kUMich ? umich : rapid7)++;
  }
  // The paper: 156 UMich scans, 74 Rapid7 scans.
  EXPECT_GT(umich, 100u);
  EXPECT_LT(umich, 260u);
  EXPECT_GT(rapid7, 60u);
  EXPECT_LT(rapid7, 90u);
  // Chronologically sorted.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start, events[i].start);
  }
  // Campaign windows respected.
  for (const ScanEvent& e : events) {
    if (e.campaign == Campaign::kUMich) {
      EXPECT_GE(e.start, config.umich_start);
      EXPECT_LE(e.start, config.umich_end + util::kSecondsPerDay);
    } else {
      EXPECT_GE(e.start, config.rapid7_start);
      EXPECT_LE(e.start, config.rapid7_end + util::kSecondsPerDay);
    }
  }
}

TEST(Schedule, ScaleReducesScanCount) {
  ScheduleConfig full, half;
  half.scale = 0.5;
  util::Rng rng1(4), rng2(4);
  const auto full_events = make_paper_schedule(full, rng1);
  const auto half_events = make_paper_schedule(half, rng2);
  EXPECT_LT(half_events.size(), full_events.size());
  EXPECT_GT(half_events.size(), full_events.size() / 4);
}

TEST(Schedule, DualScanDaysExist) {
  ScheduleConfig config;
  util::Rng rng(5);
  const auto events = make_paper_schedule(config, rng);
  const auto dual = dual_scan_days(events);
  // The paper had 8 dual days; the simulated cadence should produce at
  // least one in the overlap window.
  EXPECT_GE(dual.size(), 1u);
}

TEST(Schedule, CampaignNames) {
  EXPECT_EQ(to_string(Campaign::kUMich), "umich");
  EXPECT_EQ(to_string(Campaign::kRapid7), "rapid7");
}

// --- PrefixSet -------------------------------------------------------------------

TEST(PrefixSet, CoversMembers) {
  PrefixSet set;
  EXPECT_TRUE(set.empty());
  set.add(*net::Prefix::parse("10.1.0.0/16"));
  set.add(*net::Prefix::parse("20.0.0.0/8"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.covers(*net::Ipv4Address::parse("10.1.2.3")));
  EXPECT_TRUE(set.covers(*net::Ipv4Address::parse("20.200.1.1")));
  EXPECT_FALSE(set.covers(*net::Ipv4Address::parse("10.2.0.1")));
  EXPECT_EQ(set.prefixes().size(), 2u);
}

// --- CertRecord --------------------------------------------------------------------

x509::Certificate make_test_cert(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto key = crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
  return x509::CertificateBuilder()
      .set_serial(bignum::BigUint(seed))
      .set_issuer(x509::Name::with_common_name("device"))
      .set_subject(x509::Name::with_common_name("device"))
      .set_validity(util::make_date(2013, 1, 1), util::make_date(2033, 1, 1))
      .set_public_key(key.pub)
      .set_subject_alt_names({{x509::GeneralName::Kind::kDns, "b.example"},
                              {x509::GeneralName::Kind::kDns, "a.example"}})
      .sign(key);
}

TEST(CertRecord, ExtractsFields) {
  const x509::Certificate cert = make_test_cert(10);
  pki::ValidationResult validation;
  validation.valid = false;
  validation.reason = pki::InvalidReason::kSelfSigned;
  const CertRecord rec = make_cert_record(cert, validation);
  EXPECT_EQ(rec.subject_cn, "device");
  EXPECT_EQ(rec.issuer_cn, "device");
  EXPECT_EQ(rec.serial_hex, "a");
  EXPECT_EQ(rec.not_before, util::make_date(2013, 1, 1));
  EXPECT_FALSE(rec.valid);
  EXPECT_EQ(rec.invalid_reason, pki::InvalidReason::kSelfSigned);
  EXPECT_NEAR(rec.validity_period_days(), 7305.0, 1.0);  // ~20 years
  EXPECT_EQ(rec.san.size(), 2u);
}

TEST(CertRecord, SanJoinedIsSorted) {
  const x509::Certificate cert = make_test_cert(11);
  const CertRecord rec = make_cert_record(cert, {});
  EXPECT_EQ(rec.san_joined(), "dns:a.example|dns:b.example");
  CertRecord empty;
  EXPECT_EQ(empty.san_joined(), "");
}

TEST(CertRecord, FingerprintsDistinguishCerts) {
  const CertRecord a = make_cert_record(make_test_cert(1), {});
  const CertRecord b = make_cert_record(make_test_cert(2), {});
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.key_fingerprint, b.key_fingerprint);
}

// --- ScanArchive -------------------------------------------------------------------

TEST(Archive, InternDeduplicates) {
  ScanArchive archive;
  const CertRecord rec = make_cert_record(make_test_cert(20), {});
  const CertId a = archive.intern(rec);
  const CertId b = archive.intern(rec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(archive.certs().size(), 1u);
  CertId found = 999;
  EXPECT_TRUE(archive.find(rec.fingerprint, found));
  EXPECT_EQ(found, a);
  CertFingerprint missing{};
  EXPECT_FALSE(archive.find(missing, found));
}

TEST(Archive, ScansMustBeChronological) {
  ScanArchive archive;
  ScanEvent e1{Campaign::kUMich, 1000};
  ScanEvent e2{Campaign::kUMich, 500};
  archive.begin_scan(e1);
  EXPECT_THROW(archive.begin_scan(e2), std::logic_error);
}

TEST(Archive, ObservationBookkeeping) {
  ScanArchive archive;
  const CertId cert = archive.intern(make_cert_record(make_test_cert(30), {}));
  const std::size_t s0 = archive.begin_scan(ScanEvent{Campaign::kUMich, 100});
  const std::size_t s1 = archive.begin_scan(ScanEvent{Campaign::kRapid7, 200});
  archive.add_observation(s0, cert, 0x01020304, 7);
  archive.add_observation(s1, cert, 0x01020305, 7);
  archive.add_observation(s1, cert, 0x01020306, 8);
  EXPECT_EQ(archive.observation_count(), 3u);
  EXPECT_EQ(archive.scans()[s0].observations.size(), 1u);
  EXPECT_EQ(archive.scans()[s1].observations.size(), 2u);
  EXPECT_EQ(archive.scans()[s1].observations[0].device, 7u);
}

// --- lifetimes --------------------------------------------------------------------

TEST(Lifetimes, PaperSemantics) {
  ScanArchive archive;
  const CertId once = archive.intern(make_cert_record(make_test_cert(40), {}));
  const CertId spans = archive.intern(make_cert_record(make_test_cert(41), {}));
  const CertId unseen = archive.intern(make_cert_record(make_test_cert(42), {}));

  const util::UnixTime day = util::kSecondsPerDay;
  const std::size_t s0 = archive.begin_scan(ScanEvent{Campaign::kUMich, 0});
  const std::size_t s1 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 7 * day});
  const std::size_t s2 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 10 * day});
  archive.add_observation(s0, once, 1, 1);
  archive.add_observation(s0, spans, 2, 2);
  archive.add_observation(s1, spans, 2, 2);
  archive.add_observation(s2, spans, 2, 2);
  // `spans` also observed twice in one scan; must count once.
  archive.add_observation(s2, spans, 3, 2);

  const auto lifetimes = compute_lifetimes(archive);
  // Seen once => 1 day (the paper's rule).
  EXPECT_DOUBLE_EQ(lifetimes[once].days(archive.scans()), 1.0);
  EXPECT_EQ(lifetimes[once].scans_seen, 1u);
  // Seen on day 0 and day 10 => 11 days inclusive.
  EXPECT_DOUBLE_EQ(lifetimes[spans].days(archive.scans()), 11.0);
  EXPECT_EQ(lifetimes[spans].scans_seen, 3u);
  EXPECT_EQ(lifetimes[spans].first_scan, s0);
  EXPECT_EQ(lifetimes[spans].last_scan, s2);
  // Interned but never observed.
  EXPECT_EQ(lifetimes[unseen].scans_seen, 0u);
  EXPECT_DOUBLE_EQ(lifetimes[unseen].days(archive.scans()), 0.0);
}

}  // namespace
}  // namespace sm::scan
