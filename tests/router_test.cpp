// Tests for the sharded notary deployment: four in-process sm_notaryd
// shapes (prefix-sliced NotaryService behind a TcpServer) behind a
// RouterService, validated against a single-process oracle built over the
// unsliced corpus. The suite shares one simulated world via
// SetUpTestSuite and is registered as a single ctest entry (it also runs
// under TSan/ASan in scripts/tier1.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "loopback_client.h"
#include "netio/client_pool.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/router.h"
#include "notary/service.h"
#include "simworld/world.h"

namespace sm::notary {
namespace {

using testing::LoopbackClient;

constexpr std::size_t kShardCount = 4;

std::string fp_payload(const scan::CertFingerprint& fp) {
  return {reinterpret_cast<const char*>(fp.data()), fp.size()};
}

/// One in-process backend: the --shard-prefix sm_notaryd shape.
struct Backend {
  std::optional<corpus::CorpusIndex> spine;
  std::optional<NotaryIndex> index;
  std::optional<NotaryService> service;
  std::optional<netio::TcpServer> server;
  scan::ScanArchive slice;
  std::uint16_t port = 0;

  void serve(std::uint16_t on_port = 0) {
    netio::ServerConfig config;
    config.workers = 2;
    config.port = on_port;
    server.emplace(config, [this](netio::FrameType type,
                                  std::string_view payload) {
      return service->handle(type, payload);
    });
    std::string error;
    ASSERT_TRUE(server->start(&error)) << error;
    port = server->port();
  }
};

class RouterWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simworld::WorldConfig config;
    config.seed = 11;
    config.device_count = 120;
    config.website_count = 40;
    config.schedule.scale = 0.1;
    world_ = new simworld::WorldResult(simworld::World(config).run());
    const scan::ScanArchive& full = world_->archive;

    // Full-corpus key-sharing degrees: what sm_notaryd --shard-prefix
    // injects so a slice's responses match the unsliced oracle's.
    key_counts_ =
        new std::unordered_map<scan::KeyFingerprint, std::uint32_t>();
    for (const scan::CertRecord& cert : full.certs()) {
      ++(*key_counts_)[cert.key_fingerprint];
    }

    oracle_spine_ = new corpus::CorpusIndex(
        full, corpus::CorpusOptions{&world_->routing, nullptr});
    NotaryIndexOptions oracle_options;
    oracle_options.revocation_statuses = &world_->revocation.statuses;
    oracle_index_ = new NotaryIndex(*oracle_spine_, oracle_options);
    oracle_ = new NotaryService(*oracle_index_);

    backends_ = new std::array<Backend, kShardCount>();
    RouterConfig router_config;
    for (std::size_t s = 0; s < kShardCount; ++s) {
      Backend& backend = (*backends_)[s];
      const auto lo = static_cast<std::uint8_t>(s * 256 / kShardCount);
      const auto hi =
          static_cast<std::uint8_t>((s + 1) * 256 / kShardCount - 1);
      backend.slice = corpus::extract_prefix_slice(full, lo, hi);
      backend.spine.emplace(backend.slice,
                            corpus::CorpusOptions{&world_->routing, nullptr});
      NotaryIndexOptions options;
      options.key_counts = key_counts_;
      // Fingerprint-keyed, so each slice picks out its own subset.
      options.revocation_statuses = &world_->revocation.statuses;
      backend.index.emplace(*backend.spine, options);
      backend.service.emplace(*backend.index);
      backend.serve();
      router_config.shards.push_back(
          {{{"127.0.0.1", backend.port}}});
    }
    router_config.pool.ping_interval_ms = 50;  // fast health detection
    router_ = new RouterService(std::move(router_config));

    netio::ServerConfig server_config;
    server_config.workers = 4;
    router_server_ = new netio::TcpServer(
        server_config, [](netio::FrameType type, std::string_view payload) {
          return router_->handle(type, payload);
        });
    ASSERT_TRUE(router_server_->start());
  }

  static void TearDownTestSuite() {
    delete router_server_;
    router_server_ = nullptr;
    delete router_;
    router_ = nullptr;
    delete backends_;
    backends_ = nullptr;
    delete oracle_;
    oracle_ = nullptr;
    delete oracle_index_;
    oracle_index_ = nullptr;
    delete oracle_spine_;
    oracle_spine_ = nullptr;
    delete key_counts_;
    key_counts_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  static std::uint16_t router_port() { return router_server_->port(); }

  /// One round-trip through the routed deployment.
  static netio::Frame ask_router(netio::FrameType type,
                                 std::string_view payload) {
    LoopbackClient client(router_port());
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.send_frame(type, payload));
    netio::Frame response;
    EXPECT_TRUE(client.read_frame(response));
    return response;
  }

  static simworld::WorldResult* world_;
  static std::unordered_map<scan::KeyFingerprint, std::uint32_t>*
      key_counts_;
  static corpus::CorpusIndex* oracle_spine_;
  static NotaryIndex* oracle_index_;
  static NotaryService* oracle_;
  static std::array<Backend, kShardCount>* backends_;
  static RouterService* router_;
  static netio::TcpServer* router_server_;
};

simworld::WorldResult* RouterWorldTest::world_ = nullptr;
std::unordered_map<scan::KeyFingerprint, std::uint32_t>*
    RouterWorldTest::key_counts_ = nullptr;
corpus::CorpusIndex* RouterWorldTest::oracle_spine_ = nullptr;
NotaryIndex* RouterWorldTest::oracle_index_ = nullptr;
NotaryService* RouterWorldTest::oracle_ = nullptr;
std::array<Backend, kShardCount>* RouterWorldTest::backends_ = nullptr;
RouterService* RouterWorldTest::router_ = nullptr;
netio::TcpServer* RouterWorldTest::router_server_ = nullptr;

TEST_F(RouterWorldTest, SlicesPartitionTheArchive) {
  std::size_t total = 0;
  for (const Backend& backend : *backends_) {
    total += backend.slice.certs().size();
  }
  EXPECT_EQ(total, world_->archive.certs().size());
}

// The tentpole acceptance bar: for every certificate in the corpus AND a
// fuzzed sample of unknown fingerprints, the routed deployment answers
// byte-identically to one unsharded process over the full archive.
TEST_F(RouterWorldTest, PrefixRoutingMatchesSingleProcessOracle) {
  LoopbackClient client(router_port());
  ASSERT_TRUE(client.connected());

  std::vector<scan::CertFingerprint> probes;
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    probes.push_back(cert.fingerprint);
  }
  std::mt19937_64 rng(0xfaded);  // deterministic fuzz, mostly misses
  for (int i = 0; i < 500; ++i) {
    scan::CertFingerprint fp;
    for (auto& b : fp) b = static_cast<std::uint8_t>(rng());
    probes.push_back(fp);
  }

  netio::Frame routed;
  for (const scan::CertFingerprint& fp : probes) {
    const std::string payload = fp_payload(fp);
    ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, payload));
    ASSERT_TRUE(client.read_frame(routed));
    const netio::Frame direct =
        oracle_->handle(netio::FrameType::kQuery, payload);
    ASSERT_EQ(routed.type, direct.type);
    ASSERT_EQ(routed.payload, direct.payload);
  }
}

// A batch scattered over four shards and reassembled must be
// byte-identical to the oracle's single-process batch response — which
// is itself entry-by-entry identical to standalone queries.
TEST_F(RouterWorldTest, BatchEqualsSequenceOfSingles) {
  std::vector<scan::CertFingerprint> fps;
  // Interleave hits from every shard range with misses.
  for (std::size_t i = 0; i < world_->archive.certs().size() && i < 40;
       ++i) {
    fps.push_back(world_->archive.cert(static_cast<scan::CertId>(i))
                      .fingerprint);
  }
  std::mt19937_64 rng(0xbeef);
  for (int i = 0; i < 20; ++i) {
    scan::CertFingerprint fp;
    for (auto& b : fp) b = static_cast<std::uint8_t>(rng());
    fps.insert(fps.begin() + static_cast<long>(rng() % fps.size()), fp);
  }

  const std::string request = encode_batch_query(fps);
  const netio::Frame routed =
      ask_router(netio::FrameType::kBatchQuery, request);
  ASSERT_EQ(routed.type, netio::FrameType::kBatchInfo);
  const netio::Frame direct =
      oracle_->handle(netio::FrameType::kBatchQuery, request);
  EXPECT_EQ(routed.payload, direct.payload);  // literal byte equivalence

  // And both equal the sequence of singles, entry by entry.
  std::vector<BatchEntry> entries;
  ASSERT_TRUE(parse_batch_info(routed.payload, entries));
  ASSERT_EQ(entries.size(), fps.size());
  LoopbackClient client(router_port());
  ASSERT_TRUE(client.connected());
  netio::Frame single;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    ASSERT_TRUE(
        client.send_frame(netio::FrameType::kQuery, fp_payload(fps[i])));
    ASSERT_TRUE(client.read_frame(single));
    EXPECT_EQ(entries[i].status, single.type) << "entry " << i;
    EXPECT_EQ(entries[i].body, single.payload) << "entry " << i;
  }
}

// Revocation queries route exactly like certificate queries: every
// corpus fingerprint plus fuzzed misses, singles and one all-shard
// batch, each byte-identical to the unsharded oracle.
TEST_F(RouterWorldTest, RevocationRoutingMatchesSingleProcessOracle) {
  LoopbackClient client(router_port());
  ASSERT_TRUE(client.connected());

  std::vector<scan::CertFingerprint> probes;
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    probes.push_back(cert.fingerprint);
  }
  std::mt19937_64 rng(0x5eed);
  for (int i = 0; i < 100; ++i) {
    scan::CertFingerprint fp;
    for (auto& b : fp) b = static_cast<std::uint8_t>(rng());
    probes.push_back(fp);
  }

  bool saw_revoked = false;
  netio::Frame routed;
  for (const scan::CertFingerprint& fp : probes) {
    const std::string payload = fp_payload(fp);
    ASSERT_TRUE(
        client.send_frame(netio::FrameType::kRevocationQuery, payload));
    ASSERT_TRUE(client.read_frame(routed));
    const netio::Frame direct =
        oracle_->handle(netio::FrameType::kRevocationQuery, payload);
    ASSERT_EQ(routed.type, direct.type);
    ASSERT_EQ(routed.payload, direct.payload);
    saw_revoked |= routed.payload.find("revocation: revoked") !=
                   std::string::npos;
  }
  // The injected world statuses actually flow through the shards — the
  // suite must not pass vacuously on all-unknown.
  EXPECT_TRUE(saw_revoked);

  const std::string request = encode_batch_query(probes);
  const netio::Frame batched =
      ask_router(netio::FrameType::kRevocationQuery, request);
  ASSERT_EQ(batched.type, netio::FrameType::kBatchInfo);
  const netio::Frame direct =
      oracle_->handle(netio::FrameType::kRevocationQuery, request);
  EXPECT_EQ(batched.payload, direct.payload);
}

// Protocol forward compatibility, end to end over real sockets: a
// well-framed frame of a type this build does not know must be answered
// kError — and the connection must stay healthy for the next request.
TEST_F(RouterWorldTest, UnknownTypeAnswersErrorAndConnectionSurvives) {
  LoopbackClient client(router_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(static_cast<netio::FrameType>(0x7f),
                                "from the future"));
  netio::Frame response;
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kError);

  // Same connection, normal service.
  const scan::CertFingerprint fp = world_->archive.certs().front().fingerprint;
  ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, fp_payload(fp)));
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kCertInfo);

  // And straight against a backend daemon shape, bypassing the router.
  LoopbackClient direct((*backends_)[0].port);
  ASSERT_TRUE(direct.connected());
  ASSERT_TRUE(direct.send_frame(static_cast<netio::FrameType>(0x70), ""));
  ASSERT_TRUE(direct.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kError);
  ASSERT_TRUE(direct.send_frame(netio::FrameType::kPing, "still here"));
  ASSERT_TRUE(direct.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kPong);
  EXPECT_EQ(response.payload, "still here");
}

TEST_F(RouterWorldTest, StatsAndSnapshotAggregateAcrossShards) {
  const netio::Frame stats = ask_router(netio::FrameType::kStats, "");
  ASSERT_EQ(stats.type, netio::FrameType::kStatsText);
  EXPECT_NE(stats.payload.find("router-stats"), std::string::npos);
  EXPECT_NE(stats.payload.find("shards: 4"), std::string::npos);
  EXPECT_NE(stats.payload.find("shard 0 (prefix 0-63)"), std::string::npos);
  EXPECT_NE(stats.payload.find("shard 3 (prefix 192-255)"),
            std::string::npos);
  for (const Backend& backend : *backends_) {
    EXPECT_NE(stats.payload.find("backend 127.0.0.1:" +
                                 std::to_string(backend.port)),
              std::string::npos);
  }
  EXPECT_NE(stats.payload.find("pings-ok"), std::string::npos);

  const netio::Frame snapshot = ask_router(netio::FrameType::kSnapshot, "");
  ASSERT_EQ(snapshot.type, netio::FrameType::kSnapshotInfo);
  for (std::size_t s = 0; s < kShardCount; ++s) {
    EXPECT_NE(snapshot.payload.find("shard " + std::to_string(s)),
              std::string::npos);
  }
  EXPECT_NE(snapshot.payload.find("scans:"), std::string::npos);

  const netio::Frame pong = ask_router(netio::FrameType::kPing, "hi");
  EXPECT_EQ(pong.type, netio::FrameType::kPong);
  EXPECT_EQ(pong.payload, "hi");
}

// The resilience bar: killing one backend mid-load must error only that
// shard's prefix range (counted per shard in ROUTER-STATS); restarting it
// restores byte-identical service.
TEST_F(RouterWorldTest, BackendKillAndRestartMidLoad) {
  constexpr std::size_t kVictim = 2;  // prefix range [128, 191]
  Backend& victim = (*backends_)[kVictim];
  const std::uint16_t victim_port = victim.port;
  const auto in_victim_range = [](const scan::CertFingerprint& fp) {
    return fp[0] >= 128 && fp[0] <= 191;
  };

  // Load before, during, and after the kill: a mixed probe set covering
  // every shard, replayed round-robin by a client thread.
  std::vector<scan::CertFingerprint> probes;
  for (const scan::CertRecord& cert : world_->archive.certs()) {
    probes.push_back(cert.fingerprint);
  }

  victim.server->shutdown();
  victim.server.reset();

  // Drive load against the degraded deployment. Shard 2's prefix range
  // answers kError; every other range answers exactly like the oracle.
  LoopbackClient client(router_port());
  ASSERT_TRUE(client.connected());
  std::size_t victim_errors = 0;
  netio::Frame routed;
  for (const scan::CertFingerprint& fp : probes) {
    const std::string payload = fp_payload(fp);
    ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, payload));
    ASSERT_TRUE(client.read_frame(routed));
    if (in_victim_range(fp)) {
      ASSERT_EQ(routed.type, netio::FrameType::kError);
      EXPECT_NE(routed.payload.find("shard 2"), std::string::npos);
      EXPECT_NE(routed.payload.find("unavailable"), std::string::npos);
      ++victim_errors;
    } else {
      const netio::Frame direct =
          oracle_->handle(netio::FrameType::kQuery, payload);
      ASSERT_EQ(routed.type, direct.type) << "prefix " << int(fp[0]);
      ASSERT_EQ(routed.payload, direct.payload);
    }
  }
  ASSERT_GT(victim_errors, 0u);

  // A batch spanning all shards degrades per-entry, not wholesale.
  const netio::Frame batched = ask_router(
      netio::FrameType::kBatchQuery,
      encode_batch_query({probes.begin(), probes.begin() + 50}));
  ASSERT_EQ(batched.type, netio::FrameType::kBatchInfo);
  std::vector<BatchEntry> entries;
  ASSERT_TRUE(parse_batch_info(batched.payload, entries));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].status == netio::FrameType::kError,
              in_victim_range(probes[i]))
        << "entry " << i;
  }

  // The outage is visible in ROUTER-STATS, attributed to shard 2.
  const netio::Frame stats = ask_router(netio::FrameType::kStats, "");
  const std::string label = "shard 2 (prefix 128-191): unavailable ";
  const std::size_t at = stats.payload.find(label);
  ASSERT_NE(at, std::string::npos);
  EXPECT_GT(std::atoi(stats.payload.c_str() + at + label.size()), 0);

  // Restart on the same port; the prober marks the backend healthy again
  // and full byte-identical service resumes.
  victim.serve(victim_port);
  ASSERT_EQ(victim.port, victim_port);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!router_->pool().healthy(kVictim) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(router_->pool().healthy(kVictim));

  for (const scan::CertFingerprint& fp : probes) {
    if (!in_victim_range(fp)) continue;
    const std::string payload = fp_payload(fp);
    ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, payload));
    ASSERT_TRUE(client.read_frame(routed));
    const netio::Frame direct =
        oracle_->handle(netio::FrameType::kQuery, payload);
    ASSERT_EQ(routed.type, direct.type);
    ASSERT_EQ(routed.payload, direct.payload);
  }
}

}  // namespace
}  // namespace sm::notary
