// Tests for sm::x509 PEM/base64 — codec vectors, armor round-trips, and
// lenient multi-block parsing of messy bundles.
#include <gtest/gtest.h>

#include <cstring>

#include "crypto/signature.h"
#include "util/prng.h"
#include "x509/builder.h"
#include "x509/pem.h"

namespace sm::x509 {
namespace {

using util::Bytes;
using util::to_bytes;

// --- base64 (RFC 4648 vectors) ------------------------------------------------

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), to_bytes("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), to_bytes("f"));
  EXPECT_EQ(base64_decode(""), Bytes{});
}

TEST(Base64, IgnoresWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\nYmFy"), to_bytes("foobar"));
  EXPECT_EQ(base64_decode("  Zm9v YmFy \r\n"), to_bytes("foobar"));
}

TEST(Base64, RejectsBadInput) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
  EXPECT_FALSE(base64_decode("Zg==Zg").has_value());  // data after padding
  EXPECT_FALSE(base64_decode("====").has_value());
}

TEST(Base64, RoundTripBinary) {
  util::Rng rng(5);
  for (std::size_t size : {1u, 2u, 3u, 4u, 31u, 32u, 33u, 255u, 1000u}) {
    Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const auto back = base64_decode(base64_encode(data));
    ASSERT_TRUE(back.has_value()) << size;
    EXPECT_EQ(*back, data) << size;
  }
}

// --- PEM --------------------------------------------------------------------

Certificate sample_cert() {
  util::Rng rng(9);
  const auto key =
      crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
  return CertificateBuilder()
      .set_serial(bignum::BigUint(5))
      .set_issuer(Name::with_common_name("pem test"))
      .set_subject(Name::with_common_name("pem test"))
      .set_validity(0, util::make_date(2033, 1, 1))
      .set_public_key(key.pub)
      .sign(key);
}

TEST(Pem, CertificateRoundTrip) {
  const Certificate cert = sample_cert();
  const std::string pem = to_pem(cert);
  EXPECT_EQ(pem.rfind("-----BEGIN CERTIFICATE-----\n", 0), 0u);
  EXPECT_NE(pem.find("-----END CERTIFICATE-----"), std::string::npos);
  // Body lines wrapped at 64 columns.
  std::size_t line_start = pem.find('\n') + 1;
  const std::size_t line_end = pem.find('\n', line_start);
  EXPECT_LE(line_end - line_start, 64u);

  const auto certs = certificates_from_pem(pem);
  ASSERT_EQ(certs.size(), 1u);
  EXPECT_EQ(certs[0].der, cert.der);
  EXPECT_EQ(certs[0].subject.common_name(), "pem test");
}

TEST(Pem, MultipleBlocksWithProse) {
  const Certificate cert = sample_cert();
  const std::string bundle = "# Root bundle, updated 2014\n" + to_pem(cert) +
                             "\nsome commentary between blocks\n" +
                             to_pem(cert) + "trailing junk";
  const auto blocks = pem_decode_all(bundle);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].label, "CERTIFICATE");
  EXPECT_EQ(blocks[0].der, cert.der);
  EXPECT_EQ(certificates_from_pem(bundle).size(), 2u);
}

TEST(Pem, NonCertificateBlocksAreSkippedByCertParser) {
  const std::string key_block =
      pem_encode(to_bytes("not really a key"), "PRIVATE KEY");
  const auto blocks = pem_decode_all(key_block);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].label, "PRIVATE KEY");
  EXPECT_TRUE(certificates_from_pem(key_block).empty());
}

TEST(Pem, MalformedBlocksSkipped) {
  // Unterminated block, garbage body, and label mismatch.
  EXPECT_TRUE(pem_decode_all("-----BEGIN CERTIFICATE-----\nZm9v").empty());
  EXPECT_TRUE(
      pem_decode_all("-----BEGIN CERTIFICATE-----\n!!!\n"
                     "-----END CERTIFICATE-----\n")
          .empty());
  const Certificate cert = sample_cert();
  std::string wrong_label = to_pem(cert);
  const std::size_t end = wrong_label.find("-----END CERTIFICATE-----");
  wrong_label.replace(end, std::strlen("-----END CERTIFICATE-----"),
                      "-----END X509 CRL-----");
  EXPECT_TRUE(pem_decode_all(wrong_label).empty());
}

TEST(Pem, StructurallyInvalidCertificateSkipped) {
  const std::string pem = pem_encode(to_bytes("not der at all"), "CERTIFICATE");
  EXPECT_EQ(pem_decode_all(pem).size(), 1u);   // block decodes...
  EXPECT_TRUE(certificates_from_pem(pem).empty());  // ...cert parse fails
}

}  // namespace
}  // namespace sm::x509
