// Tests for sm::scan archive persistence — v1/v2 binary and TSV
// round-trips, hostile-string (adversarial) round-trip properties, format
// limit enforcement, v1 byte-format pinning + v1→v2 migration, parallel
// determinism, trailing-garbage detection, the streaming ArchiveReader,
// and a full simulated-world round-trip. The truncation/bit-flip
// corruption sweeps live in archive_corruption_test.cpp.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "scan/archive_io.h"
#include "simworld/world.h"
#include "util/thread_pool.h"

namespace sm::scan {
namespace {

CertRecord sample_record(std::uint64_t id) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.fingerprint[12] = 0xDD;
  rec.key_fingerprint = 0xABCD0000 + id;
  rec.subject_cn = "host-" + std::to_string(id);
  rec.issuer_cn = "issuer with\ttab and\nnewline and % percent";
  rec.issuer_dn = "CN=" + rec.issuer_cn;
  rec.serial_hex = "deadbeef";
  rec.not_before = util::make_date(2013, 4, 1);
  rec.not_after = util::make_date(2033, 4, 1);
  rec.san = {"dns:a.example", "ip:192.168.1.1"};
  rec.aki_hex = "00aa11bb";
  rec.crl_url = "http://crl.example/x.crl";
  rec.aia_url = "http://ca.example/ca.crt";
  rec.ocsp_url = "http://ocsp.example";
  rec.policy_oid = "1.3.6.1.4.1.99999.2.1";
  rec.raw_version = 2;
  rec.is_ca = (id % 2) == 0;
  rec.valid = (id % 3) == 0;
  rec.transvalid = (id % 3) == 0 && (id % 2) == 1;
  rec.invalid_reason =
      rec.valid ? pki::InvalidReason::kNone : pki::InvalidReason::kSelfSigned;
  return rec;
}

// A record whose every string field attacks the TSV escaping: embedded
// delimiters, escape sequences that must not double-decode, and SAN
// entries containing the '|' join character, tabs, newlines, percent
// signs, and emptiness.
CertRecord hostile_record(std::uint64_t id) {
  CertRecord rec = sample_record(id);
  rec.fingerprint[15] = static_cast<std::uint8_t>(0xA0 + id);
  rec.subject_cn = "a|b\tc\nd%e%7cf";
  rec.issuer_cn = "%";
  rec.issuer_dn = "";
  rec.serial_hex = "%25%09%0a";
  rec.san = {"", "dns:pipe|inside", "tab\tentry", "line\nentry",
             "pct%entry", "%7c", "|", "trailing|"};
  rec.aki_hex = "aki\twith\ttabs|and%pipes\n";
  rec.crl_url = "||";
  rec.aia_url = "%%";
  rec.ocsp_url = "\t\n%|";
  rec.policy_oid = "1.2.3";
  return rec;
}

ScanArchive sample_archive() {
  ScanArchive archive;
  for (std::uint64_t i = 1; i <= 5; ++i) archive.intern(sample_record(i));
  const std::size_t s0 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 1000, 36000});
  const std::size_t s1 =
      archive.begin_scan(ScanEvent{Campaign::kRapid7, 700000, 36000});
  archive.add_observation(s0, 0, 0x0a000001, 1);
  archive.add_observation(s0, 1, 0x0a000002, 2);
  archive.add_observation(s1, 0, 0x0a000003, 1);
  archive.add_observation(s1, 4, 0x0a000004, kNoDevice);
  return archive;
}

ScanArchive hostile_archive() {
  ScanArchive archive;
  for (std::uint64_t i = 1; i <= 4; ++i) archive.intern(hostile_record(i));
  CertRecord empty_san = sample_record(50);
  empty_san.san.clear();  // must stay distinct from {""}
  archive.intern(empty_san);
  CertRecord one_empty_san = sample_record(51);
  one_empty_san.san = {""};
  archive.intern(one_empty_san);
  const std::size_t s0 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 2000, 36000});
  for (CertId c = 0; c < 6; ++c) archive.add_observation(s0, c, 100 + c, c);
  return archive;
}

void expect_equal(const ScanArchive& a, const ScanArchive& b) {
  ASSERT_EQ(a.certs().size(), b.certs().size());
  for (std::size_t i = 0; i < a.certs().size(); ++i) {
    const CertRecord& x = a.certs()[i];
    const CertRecord& y = b.certs()[i];
    EXPECT_EQ(x.fingerprint, y.fingerprint);
    EXPECT_EQ(x.key_fingerprint, y.key_fingerprint);
    EXPECT_EQ(x.subject_cn, y.subject_cn);
    EXPECT_EQ(x.issuer_cn, y.issuer_cn);
    EXPECT_EQ(x.issuer_dn, y.issuer_dn);
    EXPECT_EQ(x.serial_hex, y.serial_hex);
    EXPECT_EQ(x.not_before, y.not_before);
    EXPECT_EQ(x.not_after, y.not_after);
    EXPECT_EQ(x.san, y.san);
    EXPECT_EQ(x.aki_hex, y.aki_hex);
    EXPECT_EQ(x.crl_url, y.crl_url);
    EXPECT_EQ(x.aia_url, y.aia_url);
    EXPECT_EQ(x.ocsp_url, y.ocsp_url);
    EXPECT_EQ(x.policy_oid, y.policy_oid);
    EXPECT_EQ(x.raw_version, y.raw_version);
    EXPECT_EQ(x.is_ca, y.is_ca);
    EXPECT_EQ(x.valid, y.valid);
    EXPECT_EQ(x.transvalid, y.transvalid);
    EXPECT_EQ(x.invalid_reason, y.invalid_reason);
  }
  ASSERT_EQ(a.scans().size(), b.scans().size());
  for (std::size_t s = 0; s < a.scans().size(); ++s) {
    EXPECT_EQ(a.scans()[s].event, b.scans()[s].event);
    ASSERT_EQ(a.scans()[s].observations.size(),
              b.scans()[s].observations.size());
    for (std::size_t i = 0; i < a.scans()[s].observations.size(); ++i) {
      const Observation& x = a.scans()[s].observations[i];
      const Observation& y = b.scans()[s].observations[i];
      EXPECT_EQ(x.cert, y.cert);
      EXPECT_EQ(x.ip, y.ip);
      EXPECT_EQ(x.device, y.device);
    }
  }
}

std::string save_to_string(const ScanArchive& archive,
                           ArchiveVersion version = ArchiveVersion::kV2) {
  std::stringstream buffer;
  EXPECT_TRUE(save_archive(archive, buffer, version));
  return buffer.str();
}

// --- binary: v2 (default) ----------------------------------------------------

TEST(BinaryFormat, RoundTrip) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  ASSERT_TRUE(save_archive(original, buffer));
  const auto loaded = load_archive(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(BinaryFormat, HostileStringsRoundTrip) {
  const ScanArchive original = hostile_archive();
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream buffer(save_to_string(original, version));
    const auto loaded = load_archive(buffer);
    ASSERT_TRUE(loaded.has_value());
    expect_equal(original, *loaded);
  }
}

TEST(BinaryFormat, EmptyArchiveRoundTrip) {
  const ScanArchive empty;
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream buffer(save_to_string(empty, version));
    const auto loaded = load_archive(buffer);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->certs().empty());
    EXPECT_TRUE(loaded->scans().empty());
  }
}

TEST(BinaryFormat, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPE" << std::string(64, '\0');
  EXPECT_FALSE(load_archive(buffer).has_value());
}

TEST(BinaryFormat, RejectsUnsupportedVersion) {
  std::stringstream buffer;
  buffer << "SMAR";
  const std::uint32_t version = 3;
  buffer.write(reinterpret_cast<const char*>(&version), sizeof(version));
  buffer << std::string(64, '\0');
  EXPECT_FALSE(load_archive(buffer).has_value());
}

TEST(BinaryFormat, RejectsTruncation) {
  const std::string full = save_to_string(sample_archive());
  // Truncate at several points; none may crash, all must fail cleanly.
  // (The exhaustive sweep lives in archive_corruption_test.cpp.)
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{10}, full.size() / 2, full.size() - 3}) {
    std::stringstream cut_buffer(full.substr(0, cut));
    EXPECT_FALSE(load_archive(cut_buffer).has_value()) << "cut=" << cut;
  }
}

TEST(BinaryFormat, RejectsOutOfRangeCertIndex) {
  // v1 has no checksums, so this exercises the cert-index bound itself
  // (in v2 the frame CRC would already catch the mutation).
  std::string bytes = save_to_string(sample_archive(), ArchiveVersion::kV1);
  // The last observation's cert index is 12 bytes from the end.
  bytes[bytes.size() - 12] = static_cast<char>(0xff);
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(load_archive(corrupted).has_value());
}

TEST(BinaryFormat, FileRoundTrip) {
  const ScanArchive original = sample_archive();
  const std::string path = "/tmp/sm_archive_io_test.smar";
  ASSERT_TRUE(save_archive_file(original, path));
  const auto loaded = load_archive_file(path);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
  EXPECT_FALSE(load_archive_file("/tmp/does-not-exist.smar").has_value());
}

TEST(BinaryFormat, EmbeddedArchiveLeavesRemainderReadable) {
  // world_io embeds archives in a larger stream: the loader must consume
  // exactly the archive's bytes, for both versions.
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream buffer(save_to_string(sample_archive(), version) +
                             "REMAINDER");
    const auto loaded = load_archive(buffer);
    ASSERT_TRUE(loaded.has_value());
    std::string rest;
    buffer >> rest;
    EXPECT_EQ(rest, "REMAINDER");
  }
}

TEST(BinaryFormat, ReportsTrailingBytes) {
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream clean(save_to_string(sample_archive(), version));
    ArchiveLoadReport report;
    ASSERT_TRUE(load_archive(clean, &report).has_value());
    EXPECT_EQ(report.version, static_cast<std::uint32_t>(version));
    EXPECT_FALSE(report.trailing_bytes);

    std::stringstream tail(save_to_string(sample_archive(), version) + "x");
    ArchiveLoadReport tail_report;
    ASSERT_TRUE(load_archive(tail, &tail_report).has_value());
    EXPECT_TRUE(tail_report.trailing_bytes);
  }
}

TEST(BinaryFormat, FileLoadRejectsTrailingGarbage) {
  const std::string path = "/tmp/sm_archive_io_trailing.smar";
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::ofstream out(path, std::ios::binary);
    const std::string bytes = save_to_string(sample_archive(), version);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "trailing garbage";
    out.close();
    EXPECT_FALSE(load_archive_file(path).has_value());
  }
}

TEST(BinaryFormat, SaveRejectsOverLimitSanCount) {
  // A SAN list beyond the format limit must fail the save loudly instead
  // of writing a file the loader would reject (v1 previously truncated
  // counts via static_cast).
  ScanArchive archive;
  CertRecord rec = sample_record(1);
  rec.san.assign((1u << 16) + 1, "x");
  archive.intern(rec);
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream buffer;
    EXPECT_FALSE(save_archive(archive, buffer, version));
  }
  const std::string path = "/tmp/sm_archive_io_overlimit.smar";
  EXPECT_FALSE(save_archive_file(archive, path));
}

TEST(BinaryFormat, RejectsNonChronologicalScans) {
  // Hand-build a v1 stream whose second scan starts before the first; the
  // loader must reject it (it used to throw out of begin_scan).
  std::string bytes;
  const auto put32 = [&](std::uint32_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put64 = [&](std::int64_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  bytes += "SMAR";
  put32(1);  // version
  put32(0);  // no certs
  put32(2);  // two scans
  bytes.push_back(0);
  put64(5000);  // first scan at t=5000
  put64(36000);
  put32(0);
  bytes.push_back(0);
  put64(1000);  // second scan at t=1000: out of order
  put64(36000);
  put32(0);
  std::stringstream in(bytes);
  EXPECT_FALSE(load_archive(in).has_value());
}

// --- binary: v1 compatibility ------------------------------------------------

// A v1 archive serialized by the pre-v2 writer (1 cert, 1 scan, 1
// observation). Pins the v1 byte format: the v1 writer must still emit
// exactly these bytes and the loader must parse them.
constexpr char kGoldenV1Hex[] =
    "534d415201000000010000000102030405060708090a0b0c0d0e0f10887766554433"
    "22110c0000006465766963652e6c6f63616c0b0000003139322e3136382e312e310e"
    "000000434e3d3139322e3136382e312e31080000003062616463306465808aa85100"
    "00000000943577000000000200000010000000646e733a6465766963652e6c6f6361"
    "6c0b00000069703a31302e302e302e310400000061316232180000006874"
    "74703a2f2f63726c2e6578616d706c652f632e63726c000000001300000068747470"
    "3a2f2f6f6373702e6578616d706c6507000000312e322e332e340200000000010100"
    "00000080e3d34f00000000a08c00000000000001000000000000000100000a070000"
    "00";

ScanArchive golden_archive() {
  ScanArchive archive;
  CertRecord rec;
  rec.fingerprint = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  rec.key_fingerprint = 0x1122334455667788ull;
  rec.subject_cn = "device.local";
  rec.issuer_cn = "192.168.1.1";
  rec.issuer_dn = "CN=192.168.1.1";
  rec.serial_hex = "0badc0de";
  rec.not_before = 1370000000;
  rec.not_after = 2000000000;
  rec.san = {"dns:device.local", "ip:10.0.0.1"};
  rec.aki_hex = "a1b2";
  rec.crl_url = "http://crl.example/c.crl";
  rec.aia_url = "";
  rec.ocsp_url = "http://ocsp.example";
  rec.policy_oid = "1.2.3.4";
  rec.raw_version = 2;
  rec.is_ca = false;
  rec.valid = false;
  rec.transvalid = false;
  rec.invalid_reason = pki::InvalidReason::kSelfSigned;
  archive.intern(rec);
  const std::size_t s =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 1339286400, 36000});
  archive.add_observation(s, 0, 0x0a000001, 7);
  return archive;
}

std::string unhex(const std::string& hex) {
  std::string out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto nibble = [&](char c) {
      return c <= '9' ? c - '0' : c - 'a' + 10;
    };
    out.push_back(
        static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

TEST(V1Compat, GoldenBytesStillLoad) {
  std::stringstream in(unhex(kGoldenV1Hex));
  const auto loaded = load_archive(in);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(golden_archive(), *loaded);
}

TEST(V1Compat, WriterIsByteIdenticalToGolden) {
  EXPECT_EQ(save_to_string(golden_archive(), ArchiveVersion::kV1),
            unhex(kGoldenV1Hex));
}

TEST(V1Compat, V1RoundTrip) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer(save_to_string(original, ArchiveVersion::kV1));
  const auto loaded = load_archive(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(V1Compat, V1ToV2Migration) {
  const ScanArchive original = sample_archive();
  std::stringstream v1(save_to_string(original, ArchiveVersion::kV1));
  const auto from_v1 = load_archive(v1);
  ASSERT_TRUE(from_v1.has_value());
  std::stringstream v2(save_to_string(*from_v1, ArchiveVersion::kV2));
  const auto from_v2 = load_archive(v2);
  ASSERT_TRUE(from_v2.has_value());
  expect_equal(original, *from_v2);
}

// --- parallel determinism ----------------------------------------------------

TEST(ParallelArchiveIo, BitIdenticalAcrossThreadCounts) {
  // Sized to span several cert frames would be too slow here; several
  // scans is enough to exercise the per-frame parallel schedule.
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  config.device_count = 120;
  config.website_count = 40;
  const simworld::WorldResult world = simworld::World(config).run();

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    const std::string bytes = save_to_string(world.archive);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
    std::stringstream in(bytes);
    const auto loaded = load_archive(in);
    ASSERT_TRUE(loaded.has_value()) << "threads=" << threads;
    expect_equal(world.archive, *loaded);
  }
  util::ThreadPool::set_global_threads(0);
}

// --- streaming reader --------------------------------------------------------

TEST(ArchiveReaderTest, StreamsCertsAndScans) {
  const ScanArchive original = sample_archive();
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream in(save_to_string(original, version));
    ArchiveReader reader(in);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.version(), static_cast<std::uint32_t>(version));
    EXPECT_EQ(reader.cert_count(), original.certs().size());

    std::vector<CertRecord> certs;
    ASSERT_TRUE(reader.for_each_cert(
        [&](CertId id, const CertRecord& cert) {
          EXPECT_EQ(id, certs.size());
          certs.push_back(cert);
        }));
    EXPECT_EQ(certs.size(), original.certs().size());
    EXPECT_EQ(reader.scan_count(), original.scans().size());

    std::vector<ScanData> scans;
    ASSERT_TRUE(reader.for_each_scan(
        [&](const ScanData& scan) { scans.push_back(scan); }));
    EXPECT_TRUE(reader.finished());

    // The streamed view must match the materialized archive exactly.
    ScanArchive streamed;
    for (CertRecord& cert : certs) streamed.intern(std::move(cert));
    for (ScanData& scan : scans) streamed.add_scan(std::move(scan));
    expect_equal(original, streamed);
  }
}

TEST(ArchiveReaderTest, ScanOnlyVisitSkipsCertSection) {
  const ScanArchive original = sample_archive();
  for (const ArchiveVersion version :
       {ArchiveVersion::kV1, ArchiveVersion::kV2}) {
    std::stringstream in(save_to_string(original, version));
    ArchiveReader reader(in);
    ASSERT_TRUE(reader.ok());
    std::size_t observations = 0;
    ASSERT_TRUE(reader.for_each_scan(
        [&](const ScanData& scan) { observations += scan.observations.size(); }));
    EXPECT_EQ(observations, original.observation_count());
    EXPECT_TRUE(reader.finished());
    // The cert section is behind us now.
    EXPECT_FALSE(reader.for_each_cert(ArchiveReader::CertFn()));
  }
}

TEST(ArchiveReaderTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not an archive at all");
  ArchiveReader bad(garbage);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.for_each_cert(ArchiveReader::CertFn()));
  EXPECT_FALSE(bad.for_each_scan(ArchiveReader::ScanFn()));

  const std::string full = save_to_string(sample_archive());
  std::stringstream cut(full.substr(0, full.size() - 5));
  ArchiveReader reader(cut);
  ASSERT_TRUE(reader.ok());  // header intact
  EXPECT_TRUE(reader.for_each_cert(ArchiveReader::CertFn()));
  EXPECT_FALSE(reader.for_each_scan(ArchiveReader::ScanFn()));
  EXPECT_FALSE(reader.finished());
  EXPECT_FALSE(reader.ok());
}

// --- TSV ---------------------------------------------------------------------

TEST(TsvFormat, RoundTrip) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(TsvFormat, HostileStringsRoundTrip) {
  const ScanArchive original = hostile_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(TsvFormat, SanEntriesWithPipesRoundTrip) {
  // The '|' join delimiter used to pass through unescaped, silently
  // splitting one SAN entry into several on import.
  ScanArchive archive;
  CertRecord rec = sample_record(1);
  rec.san = {"dns:a|b.example", "uri:http://x/?q=1|2"};
  archive.intern(rec);
  std::stringstream buffer;
  export_tsv(archive, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->certs().size(), 1u);
  EXPECT_EQ(loaded->certs()[0].san, rec.san);
}

TEST(TsvFormat, LegacySanEncodingStillImports) {
  // Pre-escaping exports joined entries with bare '|' and no terminator.
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  std::string tsv = buffer.str();
  // Rewrite the current terminated encoding of sample SANs back to the
  // legacy join to simulate an old file.
  const std::string current = "dns:a.example|ip:192.168.1.1|";
  const std::string legacy = "dns:a.example|ip:192.168.1.1";
  for (std::size_t pos = 0; (pos = tsv.find(current, pos)) != std::string::npos;) {
    tsv.replace(pos, current.size(), legacy);
    pos += legacy.size();
  }
  std::stringstream rewritten(tsv);
  const auto loaded = import_tsv(rewritten);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(TsvFormat, AkiEscapingIsSymmetric) {
  // aki_hex used to be written raw and read without unescape(): a tab
  // inside it corrupted the row, and escaped exports re-imported wrong.
  ScanArchive archive;
  CertRecord rec = sample_record(1);
  rec.aki_hex = "00aa\t11bb%7c";
  archive.intern(rec);
  std::stringstream buffer;
  export_tsv(archive, buffer);
  EXPECT_EQ(buffer.str().find('\t' + std::string("00aa\t")), std::string::npos);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->certs().size(), 1u);
  EXPECT_EQ(loaded->certs()[0].aki_hex, rec.aki_hex);
}

TEST(TsvFormat, RejectsMalformedEscapes) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  std::string tsv = buffer.str();
  // Corrupt the aki field of the first cert row with a bad escape.
  const std::size_t aki = tsv.find("00aa11bb");
  ASSERT_NE(aki, std::string::npos);
  tsv.replace(aki, 8, "%zz");
  std::stringstream corrupted(tsv);
  EXPECT_FALSE(import_tsv(corrupted).has_value());
}

TEST(TsvFormat, EscapesSpecialCharacters) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  // Raw tab/newline inside a field would corrupt the format; the escaped
  // encodings must appear instead.
  EXPECT_NE(buffer.str().find("%09"), std::string::npos);
  EXPECT_NE(buffer.str().find("%0a"), std::string::npos);
  EXPECT_NE(buffer.str().find("%25"), std::string::npos);
}

TEST(TsvFormat, RejectsGarbage) {
  std::stringstream garbage("X\tnot\ta\tvalid\trow\n");
  EXPECT_FALSE(import_tsv(garbage).has_value());
  std::stringstream bad_cert("C\tzz\t1\n");
  EXPECT_FALSE(import_tsv(bad_cert).has_value());
  std::stringstream bad_obs("O\t0\t9\t0\t0\t0\t0\t0\n");
  EXPECT_FALSE(import_tsv(bad_obs).has_value());
}

TEST(TsvFormat, RejectsNonChronologicalScans) {
  // Scan 1 starting before scan 0 must fail the import (it used to throw
  // out of begin_scan).
  std::stringstream ordered(
      "C\tffffffffffffffffffffffffffffffff\t1\ts\ti\td\tsn\t0\t1\t\t\t\t\t\t"
      "\t2\t0\t0\t0\t1\n"
      "O\t0\t0\t5000\t36000\t0\t1\t1\n"
      "O\t1\t0\t1000\t36000\t0\t1\t1\n");
  EXPECT_FALSE(import_tsv(ordered).has_value());
}

TEST(TsvFormat, CommentsAndBlankLinesIgnored) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  buffer << "# a comment\n\n";
  export_tsv(original, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
}

// --- end-to-end --------------------------------------------------------------

TEST(RoundTrip, SimulatedWorldSurvives) {
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  config.device_count = 80;
  config.website_count = 30;
  const simworld::WorldResult world = simworld::World(config).run();
  std::stringstream buffer;
  ASSERT_TRUE(save_archive(world.archive, buffer));
  const auto loaded = load_archive(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(world.archive, *loaded);
}

}  // namespace
}  // namespace sm::scan
