// Tests for sm::scan archive persistence — binary and TSV round-trips,
// malformed-input rejection, and a full simulated-world round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "scan/archive_io.h"
#include "simworld/world.h"

namespace sm::scan {
namespace {

CertRecord sample_record(std::uint64_t id) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.fingerprint[12] = 0xDD;
  rec.key_fingerprint = 0xABCD0000 + id;
  rec.subject_cn = "host-" + std::to_string(id);
  rec.issuer_cn = "issuer with\ttab and\nnewline and % percent";
  rec.issuer_dn = "CN=" + rec.issuer_cn;
  rec.serial_hex = "deadbeef";
  rec.not_before = util::make_date(2013, 4, 1);
  rec.not_after = util::make_date(2033, 4, 1);
  rec.san = {"dns:a.example", "ip:192.168.1.1"};
  rec.aki_hex = "00aa11bb";
  rec.crl_url = "http://crl.example/x.crl";
  rec.aia_url = "http://ca.example/ca.crt";
  rec.ocsp_url = "http://ocsp.example";
  rec.policy_oid = "1.3.6.1.4.1.99999.2.1";
  rec.raw_version = 2;
  rec.is_ca = (id % 2) == 0;
  rec.valid = (id % 3) == 0;
  rec.transvalid = (id % 3) == 0 && (id % 2) == 1;
  rec.invalid_reason =
      rec.valid ? pki::InvalidReason::kNone : pki::InvalidReason::kSelfSigned;
  return rec;
}

ScanArchive sample_archive() {
  ScanArchive archive;
  for (std::uint64_t i = 1; i <= 5; ++i) archive.intern(sample_record(i));
  const std::size_t s0 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 1000, 36000});
  const std::size_t s1 =
      archive.begin_scan(ScanEvent{Campaign::kRapid7, 700000, 36000});
  archive.add_observation(s0, 0, 0x0a000001, 1);
  archive.add_observation(s0, 1, 0x0a000002, 2);
  archive.add_observation(s1, 0, 0x0a000003, 1);
  archive.add_observation(s1, 4, 0x0a000004, kNoDevice);
  return archive;
}

void expect_equal(const ScanArchive& a, const ScanArchive& b) {
  ASSERT_EQ(a.certs().size(), b.certs().size());
  for (std::size_t i = 0; i < a.certs().size(); ++i) {
    const CertRecord& x = a.certs()[i];
    const CertRecord& y = b.certs()[i];
    EXPECT_EQ(x.fingerprint, y.fingerprint);
    EXPECT_EQ(x.key_fingerprint, y.key_fingerprint);
    EXPECT_EQ(x.subject_cn, y.subject_cn);
    EXPECT_EQ(x.issuer_cn, y.issuer_cn);
    EXPECT_EQ(x.issuer_dn, y.issuer_dn);
    EXPECT_EQ(x.serial_hex, y.serial_hex);
    EXPECT_EQ(x.not_before, y.not_before);
    EXPECT_EQ(x.not_after, y.not_after);
    EXPECT_EQ(x.san, y.san);
    EXPECT_EQ(x.aki_hex, y.aki_hex);
    EXPECT_EQ(x.crl_url, y.crl_url);
    EXPECT_EQ(x.aia_url, y.aia_url);
    EXPECT_EQ(x.ocsp_url, y.ocsp_url);
    EXPECT_EQ(x.policy_oid, y.policy_oid);
    EXPECT_EQ(x.raw_version, y.raw_version);
    EXPECT_EQ(x.is_ca, y.is_ca);
    EXPECT_EQ(x.valid, y.valid);
    EXPECT_EQ(x.transvalid, y.transvalid);
    EXPECT_EQ(x.invalid_reason, y.invalid_reason);
  }
  ASSERT_EQ(a.scans().size(), b.scans().size());
  for (std::size_t s = 0; s < a.scans().size(); ++s) {
    EXPECT_EQ(a.scans()[s].event, b.scans()[s].event);
    ASSERT_EQ(a.scans()[s].observations.size(),
              b.scans()[s].observations.size());
    for (std::size_t i = 0; i < a.scans()[s].observations.size(); ++i) {
      const Observation& x = a.scans()[s].observations[i];
      const Observation& y = b.scans()[s].observations[i];
      EXPECT_EQ(x.cert, y.cert);
      EXPECT_EQ(x.ip, y.ip);
      EXPECT_EQ(x.device, y.device);
    }
  }
}

TEST(BinaryFormat, RoundTrip) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  save_archive(original, buffer);
  const auto loaded = load_archive(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(BinaryFormat, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPE" << std::string(64, '\0');
  EXPECT_FALSE(load_archive(buffer).has_value());
}

TEST(BinaryFormat, RejectsTruncation) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  save_archive(original, buffer);
  const std::string full = buffer.str();
  // Truncate at several points; none may crash, all must fail cleanly.
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{10}, full.size() / 2, full.size() - 3}) {
    std::stringstream cut_buffer(full.substr(0, cut));
    EXPECT_FALSE(load_archive(cut_buffer).has_value()) << "cut=" << cut;
  }
}

TEST(BinaryFormat, RejectsOutOfRangeCertIndex) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  save_archive(original, buffer);
  std::string bytes = buffer.str();
  // The last observation's cert index lives near the end; blast it.
  bytes[bytes.size() - 12] = static_cast<char>(0xff);
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(load_archive(corrupted).has_value());
}

TEST(BinaryFormat, FileRoundTrip) {
  const ScanArchive original = sample_archive();
  const std::string path = "/tmp/sm_archive_io_test.smar";
  ASSERT_TRUE(save_archive_file(original, path));
  const auto loaded = load_archive_file(path);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
  EXPECT_FALSE(load_archive_file("/tmp/does-not-exist.smar").has_value());
}

TEST(TsvFormat, RoundTrip) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);
}

TEST(TsvFormat, EscapesSpecialCharacters) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  export_tsv(original, buffer);
  // Raw tab/newline inside a field would corrupt the format; the escaped
  // encodings must appear instead.
  EXPECT_NE(buffer.str().find("%09"), std::string::npos);
  EXPECT_NE(buffer.str().find("%0a"), std::string::npos);
  EXPECT_NE(buffer.str().find("%25"), std::string::npos);
}

TEST(TsvFormat, RejectsGarbage) {
  std::stringstream garbage("X\tnot\ta\tvalid\trow\n");
  EXPECT_FALSE(import_tsv(garbage).has_value());
  std::stringstream bad_cert("C\tzz\t1\n");
  EXPECT_FALSE(import_tsv(bad_cert).has_value());
  std::stringstream bad_obs("O\t0\t9\t0\t0\t0\t0\t0\n");
  EXPECT_FALSE(import_tsv(bad_obs).has_value());
}

TEST(TsvFormat, CommentsAndBlankLinesIgnored) {
  const ScanArchive original = sample_archive();
  std::stringstream buffer;
  buffer << "# a comment\n\n";
  export_tsv(original, buffer);
  const auto loaded = import_tsv(buffer);
  ASSERT_TRUE(loaded.has_value());
}

TEST(RoundTrip, SimulatedWorldSurvives) {
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  config.device_count = 80;
  config.website_count = 30;
  const simworld::WorldResult world = simworld::World(config).run();
  std::stringstream buffer;
  save_archive(world.archive, buffer);
  const auto loaded = load_archive(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(world.archive, *loaded);
}

}  // namespace
}  // namespace sm::scan
