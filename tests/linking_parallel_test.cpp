// Determinism of the parallel linking pipeline: on a seeded simworld
// archive, DatasetIndex, Linker, evaluate_all_fields(), and
// link_iteratively() must produce byte-identical results at 1, 2, and 8
// threads (the 1-thread pool IS the serial path — it never spawns).
#include <gtest/gtest.h>

#include <optional>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"
#include "util/thread_pool.h"

namespace sm::linking {
namespace {

void expect_same_field_results(const std::vector<FieldResult>& a,
                               const std::vector<FieldResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feature, b[i].feature);
    EXPECT_EQ(a[i].total_linked, b[i].total_linked);
    EXPECT_EQ(a[i].uniquely_linked, b[i].uniquely_linked);
    EXPECT_DOUBLE_EQ(a[i].consistency.ip, b[i].consistency.ip);
    EXPECT_DOUBLE_EQ(a[i].consistency.slash24, b[i].consistency.slash24);
    EXPECT_DOUBLE_EQ(a[i].consistency.as_level, b[i].consistency.as_level);
    ASSERT_EQ(a[i].groups.size(), b[i].groups.size());
    for (std::size_t g = 0; g < a[i].groups.size(); ++g) {
      EXPECT_EQ(a[i].groups[g].feature, b[i].groups[g].feature);
      EXPECT_EQ(a[i].groups[g].certs, b[i].groups[g].certs);
    }
  }
}

void expect_same_iterative(const IterativeResult& a, const IterativeResult& b) {
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.linked_certs, b.linked_certs);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].feature, b.groups[g].feature);
    EXPECT_EQ(a.groups[g].certs, b.groups[g].certs);
  }
}

class LinkingDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new simworld::WorldResult(
        simworld::World(simworld::WorldConfig::tiny()).run());
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static simworld::WorldResult* world_;
};

simworld::WorldResult* LinkingDeterminism::world_ = nullptr;

TEST_F(LinkingDeterminism, IdenticalAcrossThreadCounts) {
  std::optional<std::vector<FieldResult>> reference_fields;
  std::optional<IterativeResult> reference_linked;
  std::optional<std::vector<analysis::CertStats>> reference_stats;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const analysis::DatasetIndex index(world_->archive, world_->routing,
                                       &pool);
    const Linker linker(index, LinkerConfig{}, &pool);
    const std::vector<FieldResult> fields = linker.evaluate_all_fields();
    const IterativeResult linked = linker.link_iteratively();
    if (!reference_fields) {
      reference_stats = index.all_stats();
      reference_fields = fields;
      reference_linked = linked;
      // The serial run must actually link something, or this test proves
      // nothing.
      EXPECT_GT(linked.linked_certs, 0u);
      continue;
    }
    // DatasetIndex stats are thread-count-invariant.
    ASSERT_EQ(reference_stats->size(), index.all_stats().size());
    for (std::size_t i = 0; i < reference_stats->size(); ++i) {
      const analysis::CertStats& r = (*reference_stats)[i];
      const analysis::CertStats& s = index.all_stats()[i];
      EXPECT_EQ(r.scans_seen, s.scans_seen);
      EXPECT_EQ(r.first_scan, s.first_scan);
      EXPECT_EQ(r.last_scan, s.last_scan);
      EXPECT_EQ(r.total_ip_scan_slots, s.total_ip_scan_slots);
      EXPECT_EQ(r.max_ips_in_scan, s.max_ips_in_scan);
      EXPECT_EQ(r.min_ips_in_scan, s.min_ips_in_scan);
      EXPECT_EQ(r.distinct_as_count, s.distinct_as_count);
      EXPECT_EQ(r.majority_as, s.majority_as);
    }
    expect_same_field_results(*reference_fields, fields);
    expect_same_iterative(*reference_linked, linked);
  }
}

TEST_F(LinkingDeterminism, FeatureUniquenessAndTruthScoreStable) {
  util::ThreadPool serial(1);
  util::ThreadPool wide(8);
  const analysis::DatasetIndex index_s(world_->archive, world_->routing,
                                       &serial);
  const analysis::DatasetIndex index_w(world_->archive, world_->routing,
                                       &wide);
  const Linker linker_s(index_s, LinkerConfig{}, &serial);
  const Linker linker_w(index_w, LinkerConfig{}, &wide);

  const auto uniq_s = linker_s.feature_uniqueness();
  const auto uniq_w = linker_w.feature_uniqueness();
  ASSERT_EQ(uniq_s.size(), uniq_w.size());
  for (std::size_t i = 0; i < uniq_s.size(); ++i) {
    EXPECT_EQ(uniq_s[i].feature, uniq_w[i].feature);
    EXPECT_EQ(uniq_s[i].applicable, uniq_w[i].applicable);
    EXPECT_EQ(uniq_s[i].non_unique, uniq_w[i].non_unique);
  }

  const IterativeResult linked_s = linker_s.link_iteratively();
  const IterativeResult linked_w = linker_w.link_iteratively();
  const TruthScore truth_s = linker_s.score_against_truth(linked_s);
  const TruthScore truth_w = linker_w.score_against_truth(linked_w);
  EXPECT_EQ(truth_s.linked_pairs, truth_w.linked_pairs);
  EXPECT_EQ(truth_s.correct_pairs, truth_w.correct_pairs);
  EXPECT_EQ(truth_s.possible_pairs, truth_w.possible_pairs);
}

TEST_F(LinkingDeterminism, TrackerEntitiesStableAcrossThreadCounts) {
  std::optional<std::uint64_t> reference_with, reference_without;
  std::optional<std::size_t> reference_entities;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const analysis::DatasetIndex index(world_->archive, world_->routing,
                                       &pool);
    const Linker linker(index, LinkerConfig{}, &pool);
    const IterativeResult linked = linker.link_iteratively();
    const tracking::DeviceTracker tracker(index, linker, linked,
                                          world_->as_db, {}, &pool);
    const auto summary = tracker.summary();
    if (!reference_entities) {
      reference_entities = tracker.entities().size();
      reference_with = summary.trackable_with_linking;
      reference_without = summary.trackable_without_linking;
      continue;
    }
    EXPECT_EQ(tracker.entities().size(), *reference_entities);
    EXPECT_EQ(summary.trackable_with_linking, *reference_with);
    EXPECT_EQ(summary.trackable_without_linking, *reference_without);
  }
}

}  // namespace
}  // namespace sm::linking
