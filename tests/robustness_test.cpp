// Robustness and property tests across modules: hostile-input fuzzing of
// the DER/X.509/PEM parsers, reference-checked bignum division, permutation
// bijectivity sweeps, and linker invariants across random worlds.
#include <gtest/gtest.h>

#include <set>

#include "analysis/dataset.h"
#include "bignum/biguint.h"
#include "crypto/signature.h"
#include "linking/linker.h"
#include "scan/permutation.h"
#include "simworld/world.h"
#include "util/prng.h"
#include "x509/builder.h"
#include "x509/pem.h"

namespace sm {
namespace {

x509::Certificate sample_cert(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto key =
      crypto::generate_keypair(crypto::SigScheme::kSimSha256, rng);
  return x509::CertificateBuilder()
      .set_serial(bignum::BigUint(seed))
      .set_issuer(x509::Name::with_common_name("fuzz ca"))
      .set_subject(x509::Name::with_common_name("fuzz.device.local"))
      .set_validity(util::make_date(2013, 1, 1), util::make_date(2033, 1, 1))
      .set_public_key(key.pub)
      .set_subject_alt_names({{x509::GeneralName::Kind::kDns, "a.b"},
                              {x509::GeneralName::Kind::kIp, "10.0.0.1"}})
      .set_crl_distribution_points({"http://crl.fuzz/x.crl"})
      .set_basic_constraints(false)
      .sign(key);
}

// Exercise every accessor; the point is "no crash / no UB", not values.
void poke_certificate(const x509::Certificate& cert) {
  volatile std::size_t sink = 0;
  sink += cert.subject.common_name().size();
  sink += cert.issuer.to_string().size();
  sink += cert.subject_alt_names().size();
  sink += cert.crl_distribution_points().size();
  sink += cert.authority_info_access().ocsp.size();
  sink += cert.policy_oids().size();
  sink += cert.authority_key_id().has_value() ? 1 : 0;
  sink += cert.subject_key_id().has_value() ? 1 : 0;
  sink += cert.basic_constraints().has_value() ? 1 : 0;
  sink += cert.fingerprint_sha256().size();
  (void)sink;
}

// --- parser fuzzing ------------------------------------------------------------

TEST(Fuzz, RandomNoiseNeverCrashesParser) {
  util::Rng rng(1);
  for (int round = 0; round < 500; ++round) {
    util::Bytes noise(rng.below(600));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
    if (const auto cert = x509::parse_certificate(noise)) {
      poke_certificate(*cert);
    }
  }
}

TEST(Fuzz, SingleByteMutationsNeverCrashParser) {
  const x509::Certificate cert = sample_cert(1);
  for (std::size_t position = 0; position < cert.der.size(); ++position) {
    for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
      util::Bytes mutated = cert.der;
      mutated[position] ^= delta;
      if (const auto parsed = x509::parse_certificate(mutated)) {
        poke_certificate(*parsed);
      }
    }
  }
}

TEST(Fuzz, TruncationsNeverCrashParser) {
  const x509::Certificate cert = sample_cert(2);
  for (std::size_t length = 0; length <= cert.der.size(); ++length) {
    const util::BytesView prefix(cert.der.data(), length);
    if (const auto parsed = x509::parse_certificate(prefix)) {
      // Only the full buffer is a complete certificate.
      EXPECT_EQ(length, cert.der.size());
      poke_certificate(*parsed);
    }
  }
}

TEST(Fuzz, MutatedCertNeverVerifies) {
  // A parseable mutation must never still verify under the original key —
  // the signature must cover every TBS byte.
  const x509::Certificate cert = sample_cert(3);
  util::Rng rng(3);
  int parsed_mutants = 0;
  for (int round = 0; round < 2000; ++round) {
    util::Bytes mutated = cert.der;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    const auto parsed = x509::parse_certificate(mutated);
    if (!parsed || parsed->der == cert.der) continue;
    ++parsed_mutants;
    if (parsed->tbs_der != cert.tbs_der) {
      EXPECT_FALSE(crypto::verify(cert.spki, parsed->tbs_der,
                                  parsed->signature))
          << "mutation accepted at round " << round;
    }
  }
  EXPECT_GT(parsed_mutants, 0);  // the sweep must actually exercise parses
}

TEST(Fuzz, PemMutationsNeverCrash) {
  const std::string pem = x509::to_pem(sample_cert(4));
  util::Rng rng(4);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = pem;
    mutated[rng.below(mutated.size())] =
        static_cast<char>(rng.below(256));
    auto blocks = x509::pem_decode_all(mutated);
    auto certs = x509::certificates_from_pem(mutated);
    (void)blocks;
    (void)certs;
  }
}

// --- bignum division vs 128-bit reference ------------------------------------------

class DivmodReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DivmodReference, MatchesInt128) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    const unsigned __int128 num =
        (static_cast<unsigned __int128>(rng()) << 64) | rng();
    std::uint64_t den64 = rng();
    if (rng.chance(0.3)) den64 >>= rng.below(48);  // vary divisor magnitude
    if (den64 == 0) den64 = 1;
    // Build BigUints from the raw words.
    util::Bytes num_bytes(16);
    for (int i = 0; i < 16; ++i) {
      num_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(num >> (120 - 8 * i));
    }
    const auto big_num = bignum::BigUint::from_bytes(num_bytes);
    const bignum::BigUint big_den(den64);
    const auto [quotient, remainder] =
        bignum::BigUint::divmod(big_num, big_den);
    const unsigned __int128 expected_q = num / den64;
    const unsigned __int128 expected_r = num % den64;
    EXPECT_EQ(quotient.low64(),
              static_cast<std::uint64_t>(expected_q & ~0ULL));
    EXPECT_EQ((quotient >> 64).low64(),
              static_cast<std::uint64_t>(expected_q >> 64));
    EXPECT_EQ(remainder.low64(), static_cast<std::uint64_t>(expected_r));
  }
}

TEST_P(DivmodReference, MultiLimbInvariantHolds) {
  util::Rng rng(GetParam() + 100);
  for (int round = 0; round < 300; ++round) {
    util::Bytes num_bytes(1 + rng.below(96));
    util::Bytes den_bytes(1 + rng.below(48));
    for (auto& b : num_bytes) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : den_bytes) b = static_cast<std::uint8_t>(rng.below(256));
    const auto num = bignum::BigUint::from_bytes(num_bytes);
    auto den = bignum::BigUint::from_bytes(den_bytes);
    if (den.is_zero()) den = bignum::BigUint(7);
    const auto [quotient, remainder] = bignum::BigUint::divmod(num, den);
    EXPECT_LT(remainder, den);
    EXPECT_EQ(quotient * den + remainder, num);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivmodReference, ::testing::Values(1, 2, 3));

// --- permutation sweep ---------------------------------------------------------------

TEST(PermutationSweep, BijectiveOnDenseSubdomain) {
  // Exhaustively check a dense 2^16 block: all outputs distinct, all
  // inverses correct.
  const scan::AddressPermutation perm(0x5eed);
  std::set<std::uint32_t> images;
  for (std::uint32_t x = 0xabcd0000; x < 0xabce0000; ++x) {
    const std::uint32_t y = perm.forward(x);
    EXPECT_TRUE(images.insert(y).second);
    EXPECT_EQ(perm.inverse(y), x);
  }
  EXPECT_EQ(images.size(), 0x10000u);
}

// --- linker invariants across random worlds -----------------------------------------

class LinkerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkerInvariants, HoldOnRandomWorld) {
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  config.seed = GetParam();
  config.device_count = 150;
  config.website_count = 50;
  config.schedule.scale = 0.1;
  const simworld::WorldResult world = simworld::World(config).run();
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);
  const linking::IterativeResult linked = linker.link_iteratively();

  // Invariant 1: every linked certificate is eligible, and no certificate
  // appears in two groups.
  std::set<scan::CertId> seen;
  std::uint64_t total = 0;
  for (const linking::LinkedGroup& group : linked.groups) {
    EXPECT_GE(group.certs.size(), 2u);
    for (const scan::CertId id : group.certs) {
      EXPECT_TRUE(linker.eligible()[id]);
      EXPECT_TRUE(seen.insert(id).second) << "cert in two groups";
      ++total;
    }
  }
  EXPECT_EQ(total, linked.linked_certs);

  // Invariant 2: every group obeys the lifetime-overlap rule.
  for (const linking::LinkedGroup& group : linked.groups) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
    for (const scan::CertId id : group.certs) {
      spans.emplace_back(index.stats(id).first_scan,
                         index.stats(id).last_scan);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const std::int64_t overlap =
            static_cast<std::int64_t>(
                std::min(spans[i].second, spans[j].second)) -
            static_cast<std::int64_t>(spans[j].first) + 1;
        EXPECT_LE(overlap, 1);
      }
    }
  }

  // Invariant 3: with the paper's configuration, linking on this simulated
  // population is near-perfect precision (the fields that would confuse it
  // are excluded by design).
  const linking::TruthScore truth = linker.score_against_truth(linked);
  EXPECT_GE(truth.precision(), 0.99);
  EXPECT_GT(truth.recall(), 0.15);

  // Invariant 4: the before/after comparison conserves entities.
  const linking::LinkingGain gain = linker.compare_with_original(linked);
  EXPECT_EQ(gain.entities_after,
            gain.eligible_certs - linked.linked_certs + linked.groups.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkerInvariants,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace sm
