// Tests for sm::pki — chain building, transvalid completion, self-signed
// detection (both halves), expiry handling, and the invalid-reason taxonomy.
#include <gtest/gtest.h>

#include "pki/root_store.h"
#include "pki/verifier.h"
#include "util/prng.h"
#include "x509/builder.h"

namespace sm::pki {
namespace {

using crypto::SigScheme;
using crypto::SigningKey;
using util::Rng;
using x509::Certificate;
using x509::CertificateBuilder;
using x509::Name;

struct TestPki {
  SigningKey root_key;
  SigningKey intermediate_key;
  SigningKey leaf_key;
  Certificate root;
  Certificate intermediate;
  Certificate leaf;
  RootStore roots;
  IntermediatePool pool;
};

SigningKey make_key(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::generate_keypair(SigScheme::kSimSha256, rng);
}

Certificate make_cert(const Name& subject, const Name& issuer,
                      const crypto::PublicKeyInfo& subject_key,
                      const SigningKey& issuer_key, std::uint64_t serial = 1,
                      util::UnixTime nb = util::make_date(2012, 1, 1),
                      util::UnixTime na = util::make_date(2020, 1, 1)) {
  return CertificateBuilder()
      .set_serial(bignum::BigUint(serial))
      .set_issuer(issuer)
      .set_subject(subject)
      .set_validity(nb, na)
      .set_public_key(subject_key)
      .sign(issuer_key);
}

TestPki make_test_pki() {
  TestPki t;
  t.root_key = make_key(1);
  t.intermediate_key = make_key(2);
  t.leaf_key = make_key(3);
  const Name root_name = Name::with_common_name("Test Root CA");
  const Name int_name = Name::with_common_name("Test Intermediate CA");
  const Name leaf_name = Name::with_common_name("www.example.com");
  t.root = make_cert(root_name, root_name, t.root_key.pub, t.root_key);
  t.intermediate =
      make_cert(int_name, root_name, t.intermediate_key.pub, t.root_key, 2);
  t.leaf =
      make_cert(leaf_name, int_name, t.leaf_key.pub, t.intermediate_key, 3);
  t.roots.add(t.root);
  return t;
}

// --- RootStore ----------------------------------------------------------------

TEST(RootStore, AddAndLookup) {
  TestPki t = make_test_pki();
  EXPECT_EQ(t.roots.size(), 1u);
  EXPECT_TRUE(t.roots.contains(t.root.fingerprint_sha256()));
  EXPECT_FALSE(t.roots.contains(t.leaf.fingerprint_sha256()));
  EXPECT_EQ(t.roots.find_by_subject(t.root.subject).size(), 1u);
  EXPECT_TRUE(t.roots.find_by_subject(t.leaf.subject).empty());
}

TEST(RootStore, DeduplicatesByFingerprint) {
  TestPki t = make_test_pki();
  t.roots.add(t.root);
  EXPECT_EQ(t.roots.size(), 1u);
}

TEST(RootStore, MultipleRootsSameSubject) {
  // Root key rolls produce several trusted certs with one subject.
  TestPki t = make_test_pki();
  const SigningKey new_key = make_key(99);
  const Certificate rolled = make_cert(t.root.subject, t.root.subject,
                                       new_key.pub, new_key, 7);
  t.roots.add(rolled);
  EXPECT_EQ(t.roots.size(), 2u);
  EXPECT_EQ(t.roots.find_by_subject(t.root.subject).size(), 2u);
}

TEST(RootStore, MatchesSpanAgreesWithFindBySubject) {
  // The non-allocating lookup the chain walk uses must see exactly the
  // candidates find_by_subject returns, in the same order.
  TestPki t = make_test_pki();
  const SigningKey new_key = make_key(98);
  t.roots.add(make_cert(t.root.subject, t.root.subject, new_key.pub, new_key,
                        8));
  const auto expected = t.roots.find_by_subject(t.root.subject);
  const auto indices = t.roots.matches(subject_lookup_key(t.root.subject));
  ASSERT_EQ(indices.size(), expected.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(&t.roots.at(indices[i]), expected[i]);
  }
  EXPECT_TRUE(t.roots.matches(subject_lookup_key(t.leaf.subject)).empty());
}

TEST(IntermediatePool, MatchesSpanAgreesWithFindBySubject) {
  TestPki t = make_test_pki();
  t.pool.add(t.intermediate);
  const auto indices =
      t.pool.matches(subject_lookup_key(t.intermediate.subject));
  ASSERT_EQ(indices.size(), 1u);
  EXPECT_EQ(&t.pool.at(indices[0]),
            t.pool.find_by_subject(t.intermediate.subject)[0]);
  EXPECT_TRUE(t.pool.matches(subject_lookup_key(t.leaf.subject)).empty());
}

// --- chain validation ----------------------------------------------------------

TEST(Verifier, FullPresentedChainValidates) {
  TestPki t = make_test_pki();
  const Verifier v(t.roots, t.pool);
  const std::vector<Certificate> presented = {t.intermediate};
  const ValidationResult r = v.verify(t.leaf, presented);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.reason, InvalidReason::kNone);
  EXPECT_EQ(r.chain_length, 3);
  EXPECT_FALSE(r.transvalid);
}

TEST(Verifier, RootSignedLeafValidates) {
  TestPki t = make_test_pki();
  const Certificate leaf = make_cert(Name::with_common_name("direct.com"),
                                     t.root.subject, t.leaf_key.pub,
                                     t.root_key, 9);
  const Verifier v(t.roots, t.pool);
  const ValidationResult r = v.verify(leaf);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.chain_length, 2);
}

TEST(Verifier, TransvalidChainCompletesFromPool) {
  // Server presents a broken (empty) chain, but the intermediate is in the
  // pool — the paper's "transvalid" case must validate.
  TestPki t = make_test_pki();
  t.pool.add(t.intermediate);
  const Verifier v(t.roots, t.pool);
  const ValidationResult r = v.verify(t.leaf);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.transvalid);
  EXPECT_EQ(r.chain_length, 3);
}

TEST(Verifier, MissingIntermediateIsUntrusted) {
  TestPki t = make_test_pki();
  const Verifier v(t.roots, t.pool);  // pool empty, nothing presented
  const ValidationResult r = v.verify(t.leaf);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.reason, InvalidReason::kUntrustedIssuer);
}

TEST(Verifier, TrustedRootItselfIsValid) {
  TestPki t = make_test_pki();
  const Verifier v(t.roots, t.pool);
  const ValidationResult r = v.verify(t.root);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.chain_length, 1);
}

// --- self-signed detection -------------------------------------------------------

TEST(Verifier, SelfSignedLeafIsInvalidSelfSigned) {
  TestPki t = make_test_pki();
  const SigningKey device_key = make_key(42);
  const Certificate cert =
      make_cert(Name::with_common_name("192.168.1.1"),
                Name::with_common_name("192.168.1.1"), device_key.pub,
                device_key);
  const Verifier v(t.roots, t.pool);
  const ValidationResult r = v.verify(cert);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.reason, InvalidReason::kSelfSigned);
}

TEST(Verifier, Footnote7SelfSignedWithMismatchedNames) {
  // Signature verifies under the cert's own key although subject != issuer:
  // openssl would not report error 19, but the paper's manual check catches
  // it. We must classify it self-signed too.
  TestPki t = make_test_pki();
  const SigningKey device_key = make_key(43);
  const Certificate cert = make_cert(
      Name::with_common_name("device.local"),
      Name::with_common_name("Totally Separate CA"), device_key.pub,
      device_key);
  EXPECT_TRUE(is_self_signature(cert));
  EXPECT_FALSE(cert.subject_matches_issuer());
  const Verifier v(t.roots, t.pool);
  EXPECT_EQ(v.verify(cert).reason, InvalidReason::kSelfSigned);
}

TEST(Verifier, UntrustedCaSignedLeaf) {
  // Signed by a self-signed CA that is not in the root store: the chain
  // roots at an untrusted certificate.
  TestPki t = make_test_pki();
  const SigningKey rogue_key = make_key(44);
  const Name rogue_name = Name::with_common_name("Rogue CA");
  const Certificate rogue_ca =
      make_cert(rogue_name, rogue_name, rogue_key.pub, rogue_key);
  const SigningKey device_key = make_key(45);
  const Certificate leaf =
      make_cert(Name::with_common_name("device"), rogue_name, device_key.pub,
                rogue_key, 5);
  const Verifier v(t.roots, t.pool);
  const std::vector<Certificate> presented = {rogue_ca};
  const ValidationResult r = v.verify(leaf, presented);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.reason, InvalidReason::kUntrustedIssuer);
}

TEST(Verifier, BadSignatureDetected) {
  // Issuer name matches a root but the signature does not verify.
  TestPki t = make_test_pki();
  const SigningKey wrong_key = make_key(46);
  const Certificate forged =
      make_cert(Name::with_common_name("forged.com"), t.root.subject,
                make_key(47).pub, wrong_key, 6);
  const Verifier v(t.roots, t.pool);
  const ValidationResult r = v.verify(forged);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.reason, InvalidReason::kBadSignature);
}

// --- version / validity handling ---------------------------------------------

TEST(Verifier, MalformedVersionRejected) {
  TestPki t = make_test_pki();
  const SigningKey key = make_key(48);
  const Certificate cert = CertificateBuilder()
                               .set_raw_version(12)  // displayed version 13
                               .set_serial(bignum::BigUint(1))
                               .set_issuer(Name::with_common_name("v13"))
                               .set_subject(Name::with_common_name("v13"))
                               .set_validity(0, 1)
                               .set_public_key(key.pub)
                               .sign(key);
  const Verifier v(t.roots, t.pool);
  EXPECT_EQ(v.verify(cert).reason, InvalidReason::kMalformedVersion);
}

TEST(Verifier, NegativeValidityIsNeverValid) {
  TestPki t = make_test_pki();
  const Certificate cert = make_cert(
      Name::with_common_name("backwards"), t.root.subject, make_key(49).pub,
      t.root_key, 8, util::make_date(2015, 1, 1), util::make_date(2014, 1, 1));
  const Verifier v(t.roots, t.pool);
  EXPECT_EQ(v.verify(cert).reason, InvalidReason::kNeverValid);
}

TEST(Verifier, ExpiryIgnoredByDefault) {
  // The paper treats certificates valid at *some* point as valid.
  TestPki t = make_test_pki();
  const Certificate cert = make_cert(
      Name::with_common_name("expired.com"), t.root.subject, make_key(50).pub,
      t.root_key, 9, util::make_date(2000, 1, 1), util::make_date(2001, 1, 1));
  const Verifier v(t.roots, t.pool);
  EXPECT_TRUE(v.verify(cert).valid);
}

TEST(Verifier, ExpiryEnforcedInStrictMode) {
  // Leaf valid 2013-2014, root valid 2012-2020 (see make_test_pki): the
  // whole chain is inside its windows during 2013 but the leaf is expired
  // by 2016.
  TestPki t = make_test_pki();
  const Certificate cert = make_cert(
      Name::with_common_name("expired.com"), t.root.subject, make_key(51).pub,
      t.root_key, 9, util::make_date(2013, 1, 1), util::make_date(2014, 1, 1));
  VerifyOptions opts;
  opts.enforce_expiry = true;
  opts.at_time = util::make_date(2016, 6, 1);
  const Verifier strict(t.roots, t.pool, opts);
  EXPECT_EQ(strict.verify(cert).reason, InvalidReason::kExpired);
  opts.at_time = util::make_date(2013, 6, 1);
  const Verifier in_window(t.roots, t.pool, opts);
  EXPECT_TRUE(in_window.verify(cert).valid);
}

TEST(Verifier, ChainLengthLimitEnforced) {
  // Build a chain longer than max_chain_length and confirm rejection.
  TestPki t = make_test_pki();
  VerifyOptions opts;
  opts.max_chain_length = 3;
  std::vector<Certificate> presented;
  SigningKey parent_key = t.root_key;
  Name parent_name = t.root.subject;
  SigningKey current_key;
  Certificate leaf;
  for (int i = 0; i < 4; ++i) {
    current_key = make_key(100 + static_cast<std::uint64_t>(i));
    const Name name =
        Name::with_common_name("Level " + std::to_string(i));
    leaf = make_cert(name, parent_name, current_key.pub, parent_key,
                     10 + static_cast<std::uint64_t>(i));
    presented.push_back(leaf);
    parent_key = current_key;
    parent_name = leaf.subject;
  }
  const Verifier v(t.roots, t.pool, opts);
  const ValidationResult r = v.verify(leaf, presented);
  EXPECT_FALSE(r.valid);
  VerifyOptions relaxed;
  relaxed.max_chain_length = 8;
  const Verifier v2(t.roots, t.pool, relaxed);
  EXPECT_TRUE(v2.verify(leaf, presented).valid);
}

TEST(InvalidReason, Labels) {
  EXPECT_EQ(to_string(InvalidReason::kSelfSigned), "self-signed");
  EXPECT_EQ(to_string(InvalidReason::kUntrustedIssuer), "untrusted-issuer");
  EXPECT_EQ(to_string(InvalidReason::kNone), "none");
}

}  // namespace
}  // namespace sm::pki
