// BatchVerifier must agree with Verifier::verify bit-for-bit over a mixed
// population — valid, self-signed, transvalid, revoked, bad-signature,
// malformed-version, never-valid — at any thread count, while its memo
// actually absorbs the repeated CA-level work.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "pki/crl_store.h"
#include "pki/root_store.h"
#include "pki/verifier.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "x509/builder.h"
#include "x509/crl.h"

namespace sm::pki {
namespace {

using crypto::SigScheme;
using crypto::SigningKey;
using util::Rng;
using x509::Certificate;
using x509::CertificateBuilder;
using x509::Name;

SigningKey make_key(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::generate_keypair(SigScheme::kSimSha256, rng);
}

struct Fixture {
  SigningKey root_key = make_key(1);
  SigningKey intermediate_key = make_key(2);
  SigningKey vendor_key = make_key(3);
  SigningKey stranger_key = make_key(4);
  Certificate root;
  Certificate intermediate;
  Certificate vendor_ca;
  RootStore roots;
  IntermediatePool pool;
  CrlStore crls;

  Fixture() {
    const Name root_name = Name::with_common_name("Batch Root CA");
    const Name int_name = Name::with_common_name("Batch Intermediate CA");
    const Name vendor_name = Name::with_common_name("Vendor Device CA");
    root = ca_cert(root_name, root_name, root_key.pub, root_key, 1);
    intermediate = ca_cert(int_name, root_name, intermediate_key.pub,
                           root_key, 2);
    // Untrusted self-signed device CA — chains ending here are
    // untrusted-issuer, exactly the vendor-CA shape the simulator uses.
    vendor_ca = ca_cert(vendor_name, vendor_name, vendor_key.pub,
                        vendor_key, 3);
    roots.add(root);
    pool.add(intermediate);
    pool.add(vendor_ca);
    crls.add_unverified(x509::CrlBuilder()
                            .set_issuer(int_name)
                            .set_this_update(util::make_date(2015, 6, 1))
                            .add_revoked(bignum::BigUint(7777),
                                         util::make_date(2015, 5, 1))
                            .sign(intermediate_key));
  }

  static Certificate ca_cert(const Name& subject, const Name& issuer,
                             const crypto::PublicKeyInfo& subject_key,
                             const SigningKey& issuer_key,
                             std::uint64_t serial) {
    return CertificateBuilder()
        .set_serial(bignum::BigUint(serial))
        .set_issuer(issuer)
        .set_subject(subject)
        .set_validity(util::make_date(2005, 1, 1),
                      util::make_date(2035, 1, 1))
        .set_public_key(subject_key)
        .set_basic_constraints(true)
        .sign(issuer_key);
  }
};

// A mixed population cycling through every InvalidReason the verifier can
// produce (plus valid and transvalid chains).
std::vector<Certificate> make_population(const Fixture& f, std::size_t count) {
  std::vector<Certificate> certs;
  certs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SigningKey leaf_key = make_key(100 + i);
    const Name subject =
        Name::with_common_name("device-" + std::to_string(i) + ".example");
    CertificateBuilder builder;
    builder.set_serial(bignum::BigUint(10000 + i))
        .set_subject(subject)
        .set_validity(util::make_date(2014, 1, 1),
                      util::make_date(2024, 1, 1))
        .set_public_key(leaf_key.pub);
    switch (i % 7) {
      case 0:  // transvalid: intermediate-signed, chain completed from pool
        builder.set_issuer(f.intermediate.subject);
        certs.push_back(builder.sign(f.intermediate_key));
        break;
      case 1:  // self-signed (the 88% bucket)
      case 2:
        builder.set_issuer(subject);
        certs.push_back(builder.sign(leaf_key));
        break;
      case 3:  // untrusted issuer via the vendor CA
        builder.set_issuer(f.vendor_ca.subject);
        certs.push_back(builder.sign(f.vendor_key));
        break;
      case 4:  // bad signature: claims the intermediate, signed by stranger
        builder.set_issuer(f.intermediate.subject);
        certs.push_back(builder.sign(f.stranger_key));
        break;
      case 5:  // malformed version
        builder.set_issuer(subject).set_raw_version(12);
        certs.push_back(builder.sign(leaf_key));
        break;
      case 6:  // revoked serial under the intermediate's CRL
        builder.set_serial(bignum::BigUint(7777))
            .set_issuer(f.intermediate.subject);
        certs.push_back(builder.sign(f.intermediate_key));
        break;
    }
  }
  // One never-valid leaf chained to the intermediate (backwards validity on
  // a CA-signed cert; self-signed backwards certs classify self-signed).
  SigningKey nv_key = make_key(99);
  certs.push_back(CertificateBuilder()
                      .set_serial(bignum::BigUint(424242))
                      .set_subject(Name::with_common_name("never.example"))
                      .set_issuer(f.intermediate.subject)
                      .set_validity(util::make_date(2024, 1, 1),
                                    util::make_date(2014, 1, 1))
                      .set_public_key(nv_key.pub)
                      .sign(f.intermediate_key));
  return certs;
}

TEST(BatchVerifier, MatchesSerialVerifierAtAnyThreadCount) {
  const Fixture f;
  VerifyOptions options;
  options.crl_store = &f.crls;
  const std::vector<Certificate> certs = make_population(f, 140);

  const Verifier serial(f.roots, f.pool, options);
  std::vector<ValidationResult> expected;
  expected.reserve(certs.size());
  for (const Certificate& cert : certs) {
    expected.push_back(serial.verify(cert));
  }
  // Sanity: the population really exercises the whole taxonomy.
  bool saw_valid = false, saw_transvalid = false;
  std::set<InvalidReason> reasons;
  for (const ValidationResult& r : expected) {
    saw_valid |= r.valid;
    saw_transvalid |= r.transvalid;
    if (!r.valid) reasons.insert(r.reason);
  }
  EXPECT_TRUE(saw_valid);
  EXPECT_TRUE(saw_transvalid);
  EXPECT_TRUE(reasons.contains(InvalidReason::kSelfSigned));
  EXPECT_TRUE(reasons.contains(InvalidReason::kUntrustedIssuer));
  EXPECT_TRUE(reasons.contains(InvalidReason::kBadSignature));
  EXPECT_TRUE(reasons.contains(InvalidReason::kMalformedVersion));
  EXPECT_TRUE(reasons.contains(InvalidReason::kNeverValid));
  EXPECT_TRUE(reasons.contains(InvalidReason::kRevoked));

  for (const std::size_t threads : {1u, 8u}) {
    util::ThreadPool workers(threads);
    const BatchVerifier batch(f.roots, f.pool, options);
    const std::vector<ValidationResult> got =
        batch.verify_all(certs, &workers);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "cert " << i << ", " << threads
                                     << " threads";
    }
    const BatchVerifyStats stats = batch.stats();
    EXPECT_EQ(stats.verified, certs.size());
    // Every transvalid leaf re-walks intermediate->root; the memo must
    // absorb those repeats, so computed checks stay well below one per
    // verification.
    EXPECT_GT(stats.sig_cache_hits, 0u);
    EXPECT_LT(stats.sig_checks, stats.verified + stats.sig_cache_hits);
  }
}

TEST(BatchVerifier, PresentedChainsMatchSerialVerifier) {
  const Fixture f;
  const Verifier serial(f.roots, f.pool);
  const BatchVerifier batch(f.roots, f.pool);
  SigningKey leaf_key = make_key(500);
  const Certificate leaf =
      Fixture::ca_cert(Name::with_common_name("presented.example"),
                       f.intermediate.subject, leaf_key.pub,
                       f.intermediate_key, 9);
  const std::vector<Certificate> presented = {f.intermediate};
  const ValidationResult expected = serial.verify(leaf, presented);
  const ValidationResult got = batch.verify(leaf, presented);
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(got.valid);
  EXPECT_FALSE(got.transvalid);  // chain was presented, not pool-completed
}

TEST(BatchVerifier, MemoDoesNotLeakAcrossDistinctLeaves) {
  // Two leaves with the same subject but different keys: one genuinely
  // self-signed, one signed by the intermediate. Leaf-level checks are
  // unmemoized, so the two must classify independently.
  const Fixture f;
  const BatchVerifier batch(f.roots, f.pool);
  SigningKey key_a = make_key(600);
  SigningKey key_b = make_key(601);
  const Name subject = Name::with_common_name("twin.example");
  const Certificate self_signed =
      Fixture::ca_cert(subject, subject, key_a.pub, key_a, 11);
  const Certificate chained =
      Fixture::ca_cert(subject, f.intermediate.subject, key_b.pub,
                       f.intermediate_key, 12);
  EXPECT_EQ(batch.verify(self_signed).reason, InvalidReason::kSelfSigned);
  EXPECT_TRUE(batch.verify(chained).valid);
  EXPECT_EQ(batch.verify(self_signed).reason, InvalidReason::kSelfSigned);
}

}  // namespace
}  // namespace sm::pki
