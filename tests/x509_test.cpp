// Tests for sm::x509 — names, SANs, builder/parser round-trips, extension
// accessors, and the pathological certificates the paper's dataset contains
// (negative validity, year-3000 expiry, empty issuers, illegal versions).
#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "util/prng.h"
#include "x509/builder.h"
#include "x509/certificate.h"

namespace sm::x509 {
namespace {

using crypto::SigScheme;
using util::Rng;

crypto::SigningKey sim_key(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::generate_keypair(SigScheme::kSimSha256, rng);
}

// --- Name ----------------------------------------------------------------

TEST(Name, CommonNameAccessors) {
  const Name n = Name::with_common_name("192.168.1.1");
  EXPECT_EQ(n.common_name(), "192.168.1.1");
  EXPECT_EQ(n.get(asn1::oids::common_name()), "192.168.1.1");
  EXPECT_FALSE(n.get(asn1::oids::organization()).has_value());
}

TEST(Name, EmptyName) {
  const Name n;
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.common_name(), "");
  EXPECT_EQ(n.to_string(), "");
  // Empty RDNSequence still encodes/decodes.
  const auto back = Name::decode(n.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Name, MultiAttributeRoundTrip) {
  Name n;
  n.add(asn1::oids::common_name(), "www.lancom-systems.de")
      .add(asn1::oids::organization(), "LANCOM Systems")
      .add(asn1::oids::country(), "DE");
  const auto back = Name::decode(n.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, n);
  EXPECT_EQ(back->to_string(), "CN=www.lancom-systems.de, O=LANCOM Systems, C=DE");
}

TEST(Name, OrderingIsStableForMaps) {
  const Name a = Name::with_common_name("a");
  const Name b = Name::with_common_name("b");
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
}

// --- GeneralName ----------------------------------------------------------

TEST(GeneralNames, RoundTripAllKinds) {
  const std::vector<GeneralName> names = {
      {GeneralName::Kind::kDns, "fritz.fonwlan.box"},
      {GeneralName::Kind::kIp, "192.168.178.1"},
      {GeneralName::Kind::kUri, "https://myfritz.net"},
      {GeneralName::Kind::kEmail, "admin@fritz.box"},
  };
  const auto back = decode_general_names(encode_general_names(names));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, names);
}

TEST(GeneralNames, ToStringPrefixes) {
  EXPECT_EQ((GeneralName{GeneralName::Kind::kDns, "a.b"}).to_string(),
            "dns:a.b");
  EXPECT_EQ((GeneralName{GeneralName::Kind::kIp, "10.0.0.1"}).to_string(),
            "ip:10.0.0.1");
}

TEST(GeneralNames, MalformedIpKeptAsText) {
  const std::vector<GeneralName> names = {
      {GeneralName::Kind::kIp, "not-an-ip"}};
  const auto back = decode_general_names(encode_general_names(names));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].value, "not-an-ip");
}

// --- builder / parser ---------------------------------------------------------

TEST(Builder, SelfSignedRoundTrip) {
  const crypto::SigningKey key = sim_key(1);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(12345))
          .set_issuer(Name::with_common_name("fritz.box"))
          .set_subject(Name::with_common_name("fritz.box"))
          .set_validity(util::make_date(2013, 1, 1),
                        util::make_date(2033, 1, 1))
          .set_public_key(key.pub)
          .sign(key);

  EXPECT_EQ(cert.display_version(), 3);
  EXPECT_EQ(cert.serial, bignum::BigUint(12345));
  EXPECT_EQ(cert.subject.common_name(), "fritz.box");
  EXPECT_TRUE(cert.subject_matches_issuer());
  EXPECT_EQ(cert.validity.not_before, util::make_date(2013, 1, 1));
  EXPECT_EQ(cert.spki, key.pub);

  // An independent parse of the DER gives the same certificate.
  const auto reparsed = parse_certificate(cert.der);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->der, cert.der);
  EXPECT_EQ(reparsed->subject, cert.subject);
  EXPECT_EQ(reparsed->signature, cert.signature);
}

TEST(Builder, RsaSignedCertificateVerifies) {
  Rng rng(55);
  const crypto::SigningKey key =
      crypto::generate_keypair(SigScheme::kRsaSha256, rng, 512);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(7))
          .set_issuer(Name::with_common_name("Example CA"))
          .set_subject(Name::with_common_name("example.com"))
          .set_validity(util::make_date(2014, 1, 1),
                        util::make_date(2015, 1, 1))
          .set_public_key(key.pub)
          .sign(key);
  EXPECT_EQ(cert.signature_algorithm, asn1::oids::sha256_with_rsa());
  EXPECT_TRUE(crypto::verify(key.pub, cert.tbs_der, cert.signature));
}

TEST(Builder, V1CertificateOmitsVersionAndExtensions) {
  const crypto::SigningKey key = sim_key(2);
  const Certificate cert =
      CertificateBuilder()
          .set_raw_version(0)
          .set_serial(bignum::BigUint(1))
          .set_issuer(Name::with_common_name("old device"))
          .set_subject(Name::with_common_name("old device"))
          .set_validity(0, util::make_date(2038, 1, 1))
          .set_public_key(key.pub)
          .set_subject_alt_names({{GeneralName::Kind::kDns, "ignored"}})
          .sign(key);
  EXPECT_EQ(cert.display_version(), 1);
  EXPECT_TRUE(cert.version_is_legal());
  EXPECT_TRUE(cert.extensions.empty());
  EXPECT_TRUE(cert.subject_alt_names().empty());
}

TEST(Builder, IllegalVersionRepresentable) {
  // The paper found 89,667 certificates with invalid versions (2, 4, 13
  // displayed); these must build and re-parse, then fail validation later.
  const crypto::SigningKey key = sim_key(3);
  for (const std::int64_t raw : {1, 3, 12}) {
    const Certificate cert = CertificateBuilder()
                                 .set_raw_version(raw)
                                 .set_serial(bignum::BigUint(1))
                                 .set_issuer(Name::with_common_name("x"))
                                 .set_subject(Name::with_common_name("x"))
                                 .set_validity(0, 1)
                                 .set_public_key(key.pub)
                                 .sign(key);
    EXPECT_EQ(cert.raw_version, raw);
    EXPECT_EQ(cert.version_is_legal(), raw <= 2);
  }
}

TEST(Builder, NegativeValidityPeriodRepresentable) {
  const crypto::SigningKey key = sim_key(4);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(2))
          .set_issuer(Name::with_common_name("broken clock"))
          .set_subject(Name::with_common_name("broken clock"))
          .set_validity(util::make_date(2014, 6, 1),
                        util::make_date(2013, 6, 1))
          .set_public_key(key.pub)
          .sign(key);
  EXPECT_LT(cert.validity.not_after, cert.validity.not_before);
  EXPECT_LT(cert.validity.period_days(), 0);
}

TEST(Builder, Year3000ExpiryRepresentable) {
  const crypto::SigningKey key = sim_key(5);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(3))
          .set_issuer(Name::with_common_name("eternal"))
          .set_subject(Name::with_common_name("eternal"))
          .set_validity(util::make_date(2012, 1, 1),
                        util::make_date(3012, 1, 1))
          .set_public_key(key.pub)
          .sign(key);
  EXPECT_GT(cert.validity.period_days(), 300000);  // > 1000 years in days
}

TEST(Builder, EmptyIssuerName) {
  const crypto::SigningKey key = sim_key(6);
  const Certificate cert = CertificateBuilder()
                               .set_serial(bignum::BigUint(4))
                               .set_issuer(Name{})
                               .set_subject(Name{})
                               .set_validity(0, 1)
                               .set_public_key(key.pub)
                               .sign(key);
  EXPECT_TRUE(cert.issuer.empty());
  EXPECT_EQ(cert.issuer.common_name(), "");
}

TEST(Builder, MissingPublicKeyThrows) {
  EXPECT_THROW(CertificateBuilder().sign(sim_key(7)), std::logic_error);
}

// --- extensions ------------------------------------------------------------

TEST(Extensions, SubjectAltNames) {
  const crypto::SigningKey key = sim_key(8);
  const std::vector<GeneralName> sans = {
      {GeneralName::Kind::kDns, "fritz.fonwlan.box"},
      {GeneralName::Kind::kDns, "www.myfritz.net"},
  };
  const Certificate cert = CertificateBuilder()
                               .set_serial(bignum::BigUint(5))
                               .set_issuer(Name::with_common_name("f"))
                               .set_subject(Name::with_common_name("f"))
                               .set_validity(0, 1)
                               .set_public_key(key.pub)
                               .set_subject_alt_names(sans)
                               .sign(key);
  EXPECT_EQ(cert.subject_alt_names(), sans);
}

TEST(Extensions, KeyIdentifiers) {
  const crypto::SigningKey key = sim_key(9);
  const util::Bytes ski = {1, 2, 3, 4};
  const util::Bytes aki = {9, 8, 7};
  const Certificate cert = CertificateBuilder()
                               .set_serial(bignum::BigUint(6))
                               .set_issuer(Name::with_common_name("ca"))
                               .set_subject(Name::with_common_name("leaf"))
                               .set_validity(0, 1)
                               .set_public_key(key.pub)
                               .set_subject_key_id(ski)
                               .set_authority_key_id(aki)
                               .sign(key);
  EXPECT_EQ(cert.subject_key_id(), ski);
  EXPECT_EQ(cert.authority_key_id(), aki);
}

TEST(Extensions, BasicConstraints) {
  const crypto::SigningKey key = sim_key(10);
  const Certificate ca = CertificateBuilder()
                             .set_serial(bignum::BigUint(7))
                             .set_issuer(Name::with_common_name("root"))
                             .set_subject(Name::with_common_name("root"))
                             .set_validity(0, 1)
                             .set_public_key(key.pub)
                             .set_basic_constraints(true, 3)
                             .sign(key);
  const auto bc = ca.basic_constraints();
  ASSERT_TRUE(bc.has_value());
  EXPECT_TRUE(bc->is_ca);
  EXPECT_EQ(bc->path_len, 3);
  const Extension* raw = ca.find_extension(asn1::oids::basic_constraints());
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->critical);
}

TEST(Extensions, CrlAiaOcspAndPolicies) {
  const crypto::SigningKey key = sim_key(11);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(8))
          .set_issuer(Name::with_common_name("ca"))
          .set_subject(Name::with_common_name("site"))
          .set_validity(0, 1)
          .set_public_key(key.pub)
          .set_crl_distribution_points({"http://crl.ca.example/ca.crl"})
          .set_authority_info_access({"http://ocsp.ca.example"},
                                     {"http://ca.example/ca.crt"})
          .set_policy_oids({*asn1::Oid::from_string("2.23.140.1.2.1")})
          .sign(key);
  EXPECT_EQ(cert.crl_distribution_points(),
            std::vector<std::string>{"http://crl.ca.example/ca.crl"});
  const auto aia = cert.authority_info_access();
  EXPECT_EQ(aia.ocsp, std::vector<std::string>{"http://ocsp.ca.example"});
  EXPECT_EQ(aia.ca_issuers,
            std::vector<std::string>{"http://ca.example/ca.crt"});
  const auto policies = cert.policy_oids();
  ASSERT_EQ(policies.size(), 1u);
  EXPECT_EQ(policies[0].to_string(), "2.23.140.1.2.1");
}

TEST(Extensions, ExtendedKeyUsage) {
  const crypto::SigningKey key = sim_key(21);
  const Certificate cert =
      CertificateBuilder()
          .set_serial(bignum::BigUint(11))
          .set_issuer(Name::with_common_name("ca"))
          .set_subject(Name::with_common_name("tls.example"))
          .set_validity(0, 1)
          .set_public_key(key.pub)
          .set_extended_key_usage(
              {asn1::oids::kp_server_auth(), asn1::oids::kp_client_auth()})
          .sign(key);
  const auto purposes = cert.extended_key_usage();
  ASSERT_EQ(purposes.size(), 2u);
  EXPECT_EQ(purposes[0], asn1::oids::kp_server_auth());
  EXPECT_EQ(purposes[1], asn1::oids::kp_client_auth());
}

TEST(Extensions, AbsentExtensionsGiveEmptyResults) {
  const crypto::SigningKey key = sim_key(12);
  const Certificate cert = CertificateBuilder()
                               .set_serial(bignum::BigUint(9))
                               .set_issuer(Name::with_common_name("bare"))
                               .set_subject(Name::with_common_name("bare"))
                               .set_validity(0, 1)
                               .set_public_key(key.pub)
                               .sign(key);
  EXPECT_TRUE(cert.subject_alt_names().empty());
  EXPECT_FALSE(cert.authority_key_id().has_value());
  EXPECT_FALSE(cert.subject_key_id().has_value());
  EXPECT_TRUE(cert.crl_distribution_points().empty());
  EXPECT_TRUE(cert.authority_info_access().ocsp.empty());
  EXPECT_FALSE(cert.basic_constraints().has_value());
  EXPECT_TRUE(cert.policy_oids().empty());
  EXPECT_TRUE(cert.extended_key_usage().empty());
  EXPECT_FALSE(cert.key_usage().has_value());
}

// --- fingerprints / identity -------------------------------------------------

TEST(Fingerprints, DistinctCertsDistinctFingerprints) {
  const crypto::SigningKey key = sim_key(13);
  const auto make = [&](std::uint64_t serial) {
    return CertificateBuilder()
        .set_serial(bignum::BigUint(serial))
        .set_issuer(Name::with_common_name("d"))
        .set_subject(Name::with_common_name("d"))
        .set_validity(0, 1)
        .set_public_key(key.pub)
        .sign(key);
  };
  const Certificate a = make(1), b = make(2);
  EXPECT_NE(a.fingerprint_sha256(), b.fingerprint_sha256());
  EXPECT_EQ(a.fingerprint_sha256(), make(1).fingerprint_sha256());
  EXPECT_EQ(a.fingerprint_sha256().size(), 32u);
  EXPECT_EQ(a.fingerprint_sha1().size(), 20u);
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(parse_certificate(util::to_bytes("not der")).has_value());
  EXPECT_FALSE(parse_certificate({}).has_value());
}

TEST(Parser, RejectsTruncatedCertificate) {
  const crypto::SigningKey key = sim_key(14);
  Certificate cert = CertificateBuilder()
                         .set_serial(bignum::BigUint(1))
                         .set_issuer(Name::with_common_name("t"))
                         .set_subject(Name::with_common_name("t"))
                         .set_validity(0, 1)
                         .set_public_key(key.pub)
                         .sign(key);
  util::Bytes der = cert.der;
  der.resize(der.size() / 2);
  EXPECT_FALSE(parse_certificate(der).has_value());
}

}  // namespace
}  // namespace sm::x509
