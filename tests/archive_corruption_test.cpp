// Corruption harness for the binary archive loaders: exhaustive
// truncation (every prefix of a valid archive) and bit-flip sweeps (every
// bit of every byte) over both format versions. The contract under attack
// input is: return std::nullopt (v2 must catch *every* single-bit flip via
// its CRCs; v1 has no checksums, so a flip may legitimately decode), never
// crash, never hang, never over-allocate. Run under ASan by
// scripts/tier1.sh.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scan/archive_io.h"

namespace sm::scan {
namespace {

CertRecord small_record(std::uint64_t id) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.key_fingerprint = 0x1000 + id;
  rec.subject_cn = "h" + std::to_string(id);
  rec.issuer_cn = "issuer";
  rec.issuer_dn = "CN=issuer";
  rec.serial_hex = "01";
  rec.not_before = 1000000000;
  rec.not_after = 2000000000;
  rec.san = {"dns:h.example"};
  rec.aki_hex = "aa";
  rec.crl_url = "http://c";
  rec.aia_url = "";
  rec.ocsp_url = "http://o";
  rec.policy_oid = "1.2";
  rec.raw_version = 2;
  rec.invalid_reason = pki::InvalidReason::kSelfSigned;
  return rec;
}

// Small on purpose: the sweeps are O(bits × parse), so keep the archive a
// few hundred bytes while still covering every frame type (header, two
// cert-bearing records, two scans, end marker).
ScanArchive small_archive() {
  ScanArchive archive;
  archive.intern(small_record(1));
  archive.intern(small_record(2));
  const std::size_t s0 =
      archive.begin_scan(ScanEvent{Campaign::kUMich, 1000, 3600});
  const std::size_t s1 =
      archive.begin_scan(ScanEvent{Campaign::kRapid7, 2000, 3600});
  archive.add_observation(s0, 0, 0x0a000001, 0);
  archive.add_observation(s0, 1, 0x0a000002, 1);
  archive.add_observation(s1, 1, 0x0a000003, kNoDevice);
  return archive;
}

std::string serialize(ArchiveVersion version) {
  std::stringstream out;
  EXPECT_TRUE(save_archive(small_archive(), out, version));
  return out.str();
}

TEST(CorruptionSweep, EveryTruncationRejectedV1) {
  const std::string full = serialize(ArchiveVersion::kV1);
  ASSERT_GT(full.size(), 100u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream in(full.substr(0, cut));
    EXPECT_FALSE(load_archive(in).has_value()) << "cut=" << cut;
  }
  std::stringstream intact(full);
  EXPECT_TRUE(load_archive(intact).has_value());
}

TEST(CorruptionSweep, EveryTruncationRejectedV2) {
  const std::string full = serialize(ArchiveVersion::kV2);
  ASSERT_GT(full.size(), 100u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream in(full.substr(0, cut));
    EXPECT_FALSE(load_archive(in).has_value()) << "cut=" << cut;
  }
  std::stringstream intact(full);
  EXPECT_TRUE(load_archive(intact).has_value());
}

TEST(CorruptionSweep, EveryBitFlipRejectedV2) {
  // v2 checksums every frame, so any single-bit corruption — in the magic,
  // a frame header, a payload, or a CRC itself — must yield nullopt.
  const std::string full = serialize(ArchiveVersion::kV2);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::stringstream in(mutated);
      EXPECT_FALSE(load_archive(in).has_value())
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(CorruptionSweep, EveryBitFlipSurvivedV1) {
  // v1 has no checksums: a flipped bit may still decode to a (different)
  // valid archive. The guarantee is weaker but still firm: no crash, no
  // hang, no runaway allocation — just parse and return.
  const std::string full = serialize(ArchiveVersion::kV1);
  std::size_t accepted = 0;
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::stringstream in(mutated);
      if (load_archive(in).has_value()) ++accepted;
    }
  }
  // Sanity: flips in the magic/version alone guarantee some rejections.
  EXPECT_LT(accepted, full.size() * 8);
}

TEST(CorruptionSweep, StreamingReaderRejectsCorruptionV2) {
  const std::string full = serialize(ArchiveVersion::kV2);
  // Truncations: the reader must fail by the end of the walk, never crash.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream in(full.substr(0, cut));
    ArchiveReader reader(in);
    if (!reader.ok()) continue;
    reader.for_each_cert(ArchiveReader::CertFn());
    reader.for_each_scan(ArchiveReader::ScanFn());
    EXPECT_FALSE(reader.finished()) << "cut=" << cut;
  }
  // Bit flips: same contract — a corrupted stream never finishes cleanly.
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::stringstream in(mutated);
      ArchiveReader reader(in);
      if (reader.ok()) {
        reader.for_each_cert(ArchiveReader::CertFn());
        reader.for_each_scan(ArchiveReader::ScanFn());
      }
      EXPECT_FALSE(reader.finished()) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(CorruptionSweep, HostileLengthClaimsAreBounded) {
  // A frame that claims a huge payload on a tiny stream must fail fast
  // without allocating the claimed size (read_exact grows in chunks).
  std::string bytes;
  bytes += "SMAR";
  const std::uint32_t version = 2;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.push_back('H');
  const std::uint64_t huge = 1ull << 29;  // within kMaxFrameBytes, but absent
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes += "only a few actual bytes";
  std::stringstream in(bytes);
  EXPECT_FALSE(load_archive(in).has_value());

  // Same attack on the v1 path: a cert count of ~4 billion with no data.
  std::string v1;
  v1 += "SMAR";
  const std::uint32_t v1_version = 1;
  v1.append(reinterpret_cast<const char*>(&v1_version), sizeof(v1_version));
  const std::uint32_t bogus_count = 0xfffffffe;
  v1.append(reinterpret_cast<const char*>(&bogus_count), sizeof(bogus_count));
  std::stringstream v1_in(v1);
  EXPECT_FALSE(load_archive(v1_in).has_value());
}

}  // namespace
}  // namespace sm::scan
