// Live-ingestion tests: LiveCorpus appends must replay to the same bytes
// a cold build produces, deltas must cover exactly the certificates whose
// knowledge changed, NotaryService::publish must drop only those cached
// renders, and — the core epoch/RCU guarantee — queries racing a snapshot
// swap over real loopback TCP must see either the old or the new epoch's
// bytes, never a torn mix. This binary also runs under TSan and ASan in
// scripts/tier1.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "loopback_client.h"
#include "corpus/corpus_index.h"
#include "corpus/live.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "notary/index.h"
#include "notary/service.h"
#include "scan/archive_io.h"
#include "simworld/world.h"

namespace sm::corpus {
namespace {

using notary::NotaryIndex;
using notary::NotaryService;
using notary::NotaryServiceConfig;
using notary::render_knowledge;
using sm::testing::LoopbackClient;

constexpr std::size_t kSegments = 3;
constexpr std::size_t kScansPerSegment = 2;

// One micro world split once: a base corpus plus three serialized SMAR
// segments every test appends. Same world as notary_loopback_test.
class LiveIngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simworld::WorldConfig config;
    config.seed = 11;
    config.device_count = 120;
    config.website_count = 40;
    config.schedule.scale = 0.1;
    world_ = new simworld::WorldResult(simworld::World(config).run());

    const std::size_t total = world_->archive.scans().size();
    ASSERT_GT(total, kSegments * kScansPerSegment + 2);
    base_count_ = total - kSegments * kScansPerSegment;
    base_ = new scan::ScanArchive(
        extract_segment(world_->archive, 0, base_count_));
    segments_ = new std::vector<std::string>();
    for (std::size_t k = 0; k < kSegments; ++k) {
      const std::size_t first = base_count_ + k * kScansPerSegment;
      std::ostringstream out;
      ASSERT_TRUE(scan::save_archive(
          extract_segment(world_->archive, first, first + kScansPerSegment),
          out));
      segments_->push_back(std::move(out).str());
    }
  }

  static void TearDownTestSuite() {
    delete segments_;
    segments_ = nullptr;
    delete base_;
    base_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  static std::unique_ptr<LiveCorpus> make_live() {
    return std::make_unique<LiveCorpus>(*base_, &world_->routing);
  }

  static AppendResult append(LiveCorpus& live, std::size_t k) {
    std::istringstream in((*segments_)[k]);
    return live.append_segment(in);
  }

  static std::shared_ptr<const NotaryIndex> index_of(
      const LiveSnapshot& snap) {
    return std::make_shared<const NotaryIndex>(*snap.spine);
  }

  static std::string fp_payload(const scan::ScanArchive& archive,
                                scan::CertId id) {
    const auto& fp = archive.cert(id).fingerprint;
    return std::string(reinterpret_cast<const char*>(fp.data()), fp.size());
  }

  static simworld::WorldResult* world_;
  static scan::ScanArchive* base_;
  static std::vector<std::string>* segments_;
  static std::size_t base_count_;
};

simworld::WorldResult* LiveIngestTest::world_ = nullptr;
scan::ScanArchive* LiveIngestTest::base_ = nullptr;
std::vector<std::string>* LiveIngestTest::segments_ = nullptr;
std::size_t LiveIngestTest::base_count_ = 0;

// Appending the three segments must converge on exactly what a cold build
// over the full scan range produces: same certificates (ids included —
// interning is first-observation order in both), same scan count, and
// byte-identical rendered knowledge for every certificate.
TEST_F(LiveIngestTest, ReplayedAppendsMatchTheColdBuild) {
  const auto live = make_live();
  EXPECT_EQ(live->snapshot()->epoch, 0u);
  for (std::size_t k = 0; k < kSegments; ++k) {
    const AppendResult result = append(*live, k);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.scans_appended, kScansPerSegment);
    EXPECT_EQ(live->snapshot()->epoch, k + 1);
  }

  const scan::ScanArchive cold_archive =
      extract_segment(world_->archive, 0, world_->archive.scans().size());
  const CorpusIndex cold_spine(cold_archive,
                               CorpusOptions{&world_->routing, nullptr});
  const NotaryIndex cold(cold_spine);

  const auto snap = live->snapshot();
  const NotaryIndex hot(*snap->spine);
  EXPECT_EQ(snap->archive->scans().size(), cold_archive.scans().size());
  ASSERT_EQ(hot.size(), cold.size());
  for (scan::CertId id = 0; id < hot.size(); ++id) {
    ASSERT_EQ(snap->archive->cert(id).fingerprint,
              cold_archive.cert(id).fingerprint)
        << "cert " << id;
    ASSERT_EQ(render_knowledge(hot.knowledge(id)),
              render_knowledge(cold.knowledge(id)))
        << "cert " << id;
  }
}

// A corrupt segment publishes nothing — the snapshot object itself is
// untouched — and leaves the ingest state healthy enough that the real
// segment still appends afterwards.
TEST_F(LiveIngestTest, FailedAppendPublishesNothing) {
  const auto live = make_live();
  const auto before = live->snapshot();

  std::istringstream garbage("this is not an SMAR segment");
  const AppendResult bad = live->append_segment(garbage);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(live->snapshot().get(), before.get());

  // Truncated real bytes fail too (streamed reader catches it).
  std::istringstream cut((*segments_)[0].substr(0, 40));
  EXPECT_FALSE(live->append_segment(cut).ok);
  EXPECT_EQ(live->snapshot().get(), before.get());

  const AppendResult good = append(*live, 0);
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_EQ(live->snapshot()->epoch, 1u);
}

// The delta must be sound for cache invalidation: any certificate *not*
// in it renders byte-identically in the previous and the new epoch, and
// every certificate new to the epoch is in it.
TEST_F(LiveIngestTest, DeltaCoversEveryChangedCertificate) {
  const auto live = make_live();
  auto prev_snap = live->snapshot();
  auto prev_index = index_of(*prev_snap);
  for (std::size_t k = 0; k < kSegments; ++k) {
    const AppendResult result = append(*live, k);
    ASSERT_TRUE(result.ok) << result.error;
    const auto snap = live->snapshot();
    const auto index = index_of(*snap);
    EXPECT_EQ(result.delta_size, snap->delta.size());
    ASSERT_TRUE(std::is_sorted(snap->delta.begin(), snap->delta.end()));
    ASSERT_TRUE(std::adjacent_find(snap->delta.begin(), snap->delta.end()) ==
                snap->delta.end());

    const auto in_delta = [&](scan::CertId id) {
      return std::binary_search(snap->delta.begin(), snap->delta.end(), id);
    };
    for (scan::CertId id = 0; id < index->size(); ++id) {
      if (id >= prev_index->size()) {
        EXPECT_TRUE(in_delta(id)) << "new cert " << id << " not in delta";
      } else if (!in_delta(id)) {
        ASSERT_EQ(render_knowledge(prev_index->knowledge(id)),
                  render_knowledge(index->knowledge(id)))
            << "cert " << id << " changed between epochs " << prev_snap->epoch
            << " and " << snap->epoch << " but is not in the delta";
      }
    }
    prev_snap = snap;
    prev_index = index;
  }
}

// publish() drops exactly the delta's cached renders: untouched
// certificates keep serving from cache across the swap, and everything
// answered after the swap matches the new epoch's bytes.
TEST_F(LiveIngestTest, CacheKeepsUntouchedRendersAcrossSwaps) {
  const auto live = make_live();
  const auto snap0 = live->snapshot();
  const auto index0 = index_of(*snap0);

  NotaryServiceConfig config;
  config.cache_bytes = 32u << 20;  // roomy: nothing is evicted by size
  NotaryService service(index0, config);

  // Warm the cache with every epoch-0 certificate, then prove it's warm.
  const std::size_t size0 = index0->size();
  for (scan::CertId id = 0; id < size0; ++id) {
    const auto frame = service.handle(netio::FrameType::kQuery,
                                      fp_payload(*snap0->archive, id));
    ASSERT_EQ(frame.type, netio::FrameType::kCertInfo);
  }
  for (scan::CertId id = 0; id < size0; ++id) {
    service.handle(netio::FrameType::kQuery, fp_payload(*snap0->archive, id));
  }
  const auto warm = service.metrics();
  ASSERT_EQ(warm.cache_hits, size0);

  const AppendResult result = append(*live, 0);
  ASSERT_TRUE(result.ok) << result.error;
  const auto snap1 = live->snapshot();
  const auto index1 = index_of(*snap1);
  service.publish(index1, snap1->delta);

  const std::size_t stale =
      static_cast<std::size_t>(std::count_if(
          snap1->delta.begin(), snap1->delta.end(),
          [&](scan::CertId id) { return id < size0; }));

  // Every cached pre-swap render of a delta certificate was dropped.
  const auto after_swap = service.metrics();
  EXPECT_EQ(after_swap.epoch, 1u);
  EXPECT_EQ(after_swap.snapshot_swaps, 1u);
  EXPECT_EQ(after_swap.cache_invalidations, stale);

  // Query the full new epoch: old untouched certs hit cache, delta certs
  // and brand-new certs miss — and every byte matches the new epoch.
  for (scan::CertId id = 0; id < index1->size(); ++id) {
    const auto frame = service.handle(netio::FrameType::kQuery,
                                      fp_payload(*snap1->archive, id));
    ASSERT_EQ(frame.type, netio::FrameType::kCertInfo);
    ASSERT_EQ(frame.payload, render_knowledge(index1->knowledge(id)))
        << "cert " << id;
  }
  const auto done = service.metrics();
  EXPECT_EQ(done.cache_hits - warm.cache_hits, size0 - stale);
  EXPECT_EQ(done.cache_misses - warm.cache_misses,
            index1->size() - (size0 - stale));
}

// The tentpole guarantee, over real loopback TCP: clients hammering the
// notary while three epochs publish must read, for every response, bytes
// that are exactly one epoch's render — old or new, never a torn mix —
// and per-connection epochs only move forward. Runs under TSan/ASan.
TEST_F(LiveIngestTest, QueriesRacingPublishesAreNeverTorn) {
  // Pre-build every epoch (snapshot + index + rendered bytes) so clients
  // can verify against the full set while the live publishes race them.
  const auto live = make_live();
  std::vector<std::shared_ptr<const LiveSnapshot>> snaps{live->snapshot()};
  std::vector<std::shared_ptr<const NotaryIndex>> indexes{
      index_of(*snaps[0])};
  for (std::size_t k = 0; k < kSegments; ++k) {
    ASSERT_TRUE(append(*live, k).ok);
    snaps.push_back(live->snapshot());
    indexes.push_back(index_of(*snaps.back()));
  }
  const auto& final_archive = *snaps.back()->archive;
  const std::size_t universe = indexes.back()->size();
  // expected[e][id]: rendered bytes in epoch e, empty when the cert does
  // not exist there yet (a kNotFound answer is the correct response).
  std::vector<std::vector<std::string>> expected(snaps.size());
  for (std::size_t e = 0; e < snaps.size(); ++e) {
    expected[e].resize(universe);
    for (scan::CertId id = 0; id < indexes[e]->size(); ++id) {
      expected[e][id] = render_knowledge(indexes[e]->knowledge(id));
    }
  }

  NotaryServiceConfig config;
  config.cache_bytes = 8u << 20;
  NotaryService service(indexes[0], config);
  netio::ServerConfig server_config;
  server_config.workers = 4;
  netio::TcpServer server(
      server_config, [&service](netio::FrameType type,
                                std::string_view payload) {
        return service.handle(type, payload);
      });
  ASSERT_TRUE(server.start());

  constexpr int kClients = 3;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<int> torn{0};
  std::atomic<int> regressed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LoopbackClient client(server.port());
      if (!client.connected()) return;
      netio::Frame response;
      std::uint64_t last_epoch = 0;
      for (std::uint64_t i = 0; !done.load(std::memory_order_relaxed); ++i) {
        const auto id =
            static_cast<scan::CertId>((i + c * 193) % universe);
        if (!client.send_frame(netio::FrameType::kQuery,
                               fp_payload(final_archive, id)) ||
            !client.read_frame(response)) {
          return;
        }
        bool matched = false;
        for (const auto& epoch : expected) {
          if (epoch[id].empty()
                  ? response.type == netio::FrameType::kNotFound
                  : (response.type == netio::FrameType::kCertInfo &&
                     response.payload == epoch[id])) {
            matched = true;
            break;
          }
        }
        if (!matched) torn.fetch_add(1, std::memory_order_relaxed);
        answered.fetch_add(1, std::memory_order_relaxed);
        if (i % 64 == 0) {
          if (!client.send_frame(netio::FrameType::kSnapshot, "") ||
              !client.read_frame(response)) {
            return;
          }
          if (response.type != netio::FrameType::kSnapshotInfo) {
            torn.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const auto pos = response.payload.find("epoch: ");
          const std::uint64_t epoch =
              pos == std::string::npos
                  ? ~0ull
                  : std::strtoull(response.payload.c_str() + pos + 7,
                                  nullptr, 10);
          if (epoch < last_epoch || epoch > kSegments) {
            regressed.fetch_add(1, std::memory_order_relaxed);
          }
          last_epoch = epoch;
        }
      }
    });
  }

  // Publish each epoch only once the clients have demonstrably queried
  // against the previous one, so every swap genuinely races live traffic.
  for (std::size_t k = 1; k <= kSegments; ++k) {
    const std::uint64_t target = answered.load() + 300;
    while (answered.load(std::memory_order_relaxed) < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.publish(indexes[k], snaps[k]->delta);
  }
  const std::uint64_t tail = answered.load() + 300;
  while (answered.load(std::memory_order_relaxed) < tail) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true);
  for (auto& client : clients) client.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(regressed.load(), 0);
  EXPECT_GE(answered.load(), 1200u);

  // With all publishes retired, every response must be epoch-3 exactly.
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  netio::Frame response;
  for (scan::CertId id = 0; id < universe; ++id) {
    ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery,
                                  fp_payload(final_archive, id)));
    ASSERT_TRUE(client.read_frame(response));
    ASSERT_EQ(response.type, netio::FrameType::kCertInfo);
    ASSERT_EQ(response.payload, expected.back()[id]) << "cert " << id;
  }

  server.shutdown();
  const auto metrics = service.metrics();
  EXPECT_EQ(metrics.epoch, kSegments);
  EXPECT_EQ(metrics.snapshot_swaps, kSegments);
}

// Regression: a certificate revoked mid-ingestion — its new status
// arriving in a segment's status sidecar, not in the scans themselves —
// must join the delta, evict the stale cached render, and flip both
// query forms to "revoked" after the publish.
TEST_F(LiveIngestTest, RevocationLearnedMidIngestionInvalidatesCache) {
  const auto live = make_live();
  const auto snap0 = live->snapshot();
  EXPECT_EQ(snap0->statuses, nullptr);

  NotaryServiceConfig config;
  config.cache_bytes = 8u << 20;
  NotaryService service(index_of(*snap0), config);

  const scan::CertId victim = 0;  // interned by the base corpus
  const auto& fp = snap0->archive->cert(victim).fingerprint;
  const std::string payload = fp_payload(*snap0->archive, victim);

  // Warm the kCertInfo cache; with no status map the revocation render
  // says "unknown".
  netio::Frame frame = service.handle(netio::FrameType::kQuery, payload);
  ASSERT_EQ(frame.type, netio::FrameType::kCertInfo);
  frame = service.handle(netio::FrameType::kRevocationQuery, payload);
  ASSERT_EQ(frame.type, netio::FrameType::kRevocationInfo);
  EXPECT_NE(frame.payload.find("revocation: unknown"), std::string::npos);
  service.handle(netio::FrameType::kQuery, payload);
  ASSERT_GE(service.metrics().cache_hits, 1u);

  // The next segment's sidecar carries the revocation.
  RevocationStatusMap learned;
  learned[fp] = pki::RevocationStatus::kRevoked;
  std::istringstream in((*segments_)[0]);
  const AppendResult result = live->append_segment(in, &learned);
  ASSERT_TRUE(result.ok) << result.error;

  const auto snap1 = live->snapshot();
  ASSERT_NE(snap1->statuses, nullptr);
  EXPECT_EQ(snap1->statuses->at(fp), pki::RevocationStatus::kRevoked);
  // The status change alone — no new observation of it — puts the
  // already-known certificate in the delta.
  EXPECT_TRUE(
      std::binary_search(snap1->delta.begin(), snap1->delta.end(), victim));

  notary::NotaryIndexOptions options;
  options.revocation_statuses = snap1->statuses.get();
  service.publish(
      std::make_shared<const NotaryIndex>(*snap1->spine, options),
      snap1->delta);

  // The publish dropped the victim's cached full render (it was in the
  // delta) and the revocation render flipped.
  EXPECT_GE(service.metrics().cache_invalidations, 1u);
  frame = service.handle(netio::FrameType::kQuery, payload);
  ASSERT_EQ(frame.type, netio::FrameType::kCertInfo);
  frame = service.handle(netio::FrameType::kRevocationQuery, payload);
  ASSERT_EQ(frame.type, netio::FrameType::kRevocationInfo);
  EXPECT_NE(frame.payload.find("revocation: revoked"), std::string::npos)
      << frame.payload;
}

// The kSnapshot request reports the live epoch and its scan horizon over
// the wire, advancing with each publish — the staleness bound a polling
// client keys off.
TEST_F(LiveIngestTest, SnapshotInfoReportsTheLiveEpoch) {
  const auto live = make_live();
  NotaryService service(index_of(*live->snapshot()));
  netio::ServerConfig server_config;
  server_config.workers = 1;
  netio::TcpServer server(
      server_config, [&service](netio::FrameType type,
                                std::string_view payload) {
        return service.handle(type, payload);
      });
  ASSERT_TRUE(server.start());
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());

  netio::Frame response;
  ASSERT_TRUE(client.send_frame(netio::FrameType::kSnapshot, ""));
  ASSERT_TRUE(client.read_frame(response));
  ASSERT_EQ(response.type, netio::FrameType::kSnapshotInfo);
  EXPECT_NE(response.payload.find("epoch: 0\n"), std::string::npos);
  EXPECT_NE(response.payload.find(
                "scans: " + std::to_string(base_count_) + "\n"),
            std::string::npos);

  ASSERT_TRUE(append(*live, 0).ok);
  const auto snap = live->snapshot();
  service.publish(index_of(*snap), snap->delta);

  ASSERT_TRUE(client.send_frame(netio::FrameType::kSnapshot, ""));
  ASSERT_TRUE(client.read_frame(response));
  ASSERT_EQ(response.type, netio::FrameType::kSnapshotInfo);
  EXPECT_NE(response.payload.find("epoch: 1\n"), std::string::npos);
  EXPECT_NE(response.payload.find(
                "scans: " + std::to_string(base_count_ + kScansPerSegment) +
                "\n"),
            std::string::npos);
  EXPECT_NE(response.payload.find(
                "certs: " + std::to_string(service.index().size()) + "\n"),
            std::string::npos);

  server.shutdown();
  EXPECT_EQ(service.metrics().snapshot_requests, 2u);
}

}  // namespace
}  // namespace sm::corpus
