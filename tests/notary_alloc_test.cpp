// Allocation accounting for the notary hot path. This binary links
// sm_alloc_hook, whose counting operator new/delete replacement lets the
// tests assert the tentpole property directly: a cache-hit query renders
// into a warm output buffer with ZERO heap allocations (the only work is
// one arena->outbuf memcpy), and a miss stays within a small fixed
// bound. Deliberately absent from the TSan/ASan target lists in
// scripts/tier1.sh — sanitizer runtimes interpose their own allocators
// and the replacement set would fight them.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus_index.h"
#include "netio/frame.h"
#include "notary/batch.h"
#include "notary/index.h"
#include "notary/service.h"
#include "simworld/world.h"
#include "util/alloc_hook.h"

namespace sm::notary {
namespace {

simworld::WorldConfig micro_config() {
  simworld::WorldConfig config;
  config.seed = 11;
  config.device_count = 120;
  config.website_count = 40;
  config.schedule.scale = 0.1;
  return config;
}

const simworld::WorldResult& micro_world() {
  static const simworld::WorldResult world =
      simworld::World(micro_config()).run();
  return world;
}

const corpus::CorpusIndex& micro_spine() {
  static const corpus::CorpusIndex spine(
      micro_world().archive,
      corpus::CorpusOptions{&micro_world().routing, nullptr});
  return spine;
}

std::string fp_payload(const scan::CertFingerprint& fp) {
  return std::string(reinterpret_cast<const char*>(fp.data()), fp.size());
}

/// Heap allocations performed by `fn` on this thread.
template <typename Fn>
std::uint64_t allocs_during(Fn&& fn) {
  const std::uint64_t before = util::alloc_hook::thread_new_count();
  fn();
  return util::alloc_hook::thread_new_count() - before;
}

class NotaryAllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::alloc_hook::active()) {
      GTEST_SKIP() << "allocation hook not linked";
    }
  }
};

TEST_F(NotaryAllocTest, CacheHitQueryPathIsAllocationFree) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryServiceConfig config;
  config.cache_bytes = 16 << 20;
  NotaryService service(index, config);

  const std::string known = fp_payload(world.archive.cert(0).fingerprint);
  std::string out;
  out.reserve(64 << 10);

  // Warm: the first query misses, renders, and caches.
  out.clear();
  service.handle_into(netio::FrameType::kQuery, known, out);
  ASSERT_EQ(service.metrics().cache_misses, 1u);

  // Hot: every subsequent query is a cache hit into a warm buffer.
  for (int i = 0; i < 16; ++i) {
    out.clear();
    const std::uint64_t allocs = allocs_during([&] {
      service.handle_into(netio::FrameType::kQuery, known, out);
    });
    EXPECT_EQ(allocs, 0u) << "iteration " << i;
  }
  EXPECT_EQ(service.metrics().cache_hits, 16u);
  // Sanity: the responses were real frames, not empty buffers.
  EXPECT_EQ(static_cast<std::uint8_t>(out[0]),
            static_cast<std::uint8_t>(netio::FrameType::kCertInfo));
}

TEST_F(NotaryAllocTest, NotFoundAndPingPathsAreAllocationFree) {
  const NotaryIndex index(micro_spine());
  NotaryServiceConfig config;
  config.cache_bytes = 16 << 20;
  NotaryService service(index, config);

  scan::CertFingerprint missing{};
  missing.fill(0xfe);
  const std::string unknown = fp_payload(missing);
  const std::string ping_payload = "probe";
  std::string out;
  out.reserve(64 << 10);

  // Warm both paths once (first pass may touch cold data).
  out.clear();
  service.handle_into(netio::FrameType::kQuery, unknown, out);
  out.clear();
  service.handle_into(netio::FrameType::kPing, ping_payload, out);

  for (int i = 0; i < 8; ++i) {
    out.clear();
    EXPECT_EQ(allocs_during([&] {
                service.handle_into(netio::FrameType::kQuery, unknown, out);
              }),
              0u)
        << "kNotFound iteration " << i;
    out.clear();
    EXPECT_EQ(allocs_during([&] {
                service.handle_into(netio::FrameType::kPing, ping_payload,
                                    out);
              }),
              0u)
        << "kPong iteration " << i;
  }
}

TEST_F(NotaryAllocTest, BatchHitPathIsAllocationFree) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryServiceConfig config;
  config.cache_bytes = 16 << 20;
  NotaryService service(index, config);

  std::vector<scan::CertFingerprint> fps;
  for (scan::CertId id = 0; id < 32 && id < index.size(); ++id) {
    fps.push_back(world.archive.cert(id).fingerprint);
  }
  const std::string batch = encode_batch_query(fps);
  std::string out;
  out.reserve(1 << 20);

  // Warm: first pass renders and caches every entry.
  out.clear();
  service.handle_into(netio::FrameType::kBatchQuery, batch, out);
  ASSERT_EQ(service.metrics().cache_misses, fps.size());

  for (int i = 0; i < 8; ++i) {
    out.clear();
    EXPECT_EQ(allocs_during([&] {
                service.handle_into(netio::FrameType::kBatchQuery, batch,
                                    out);
              }),
              0u)
        << "iteration " << i;
  }
  EXPECT_EQ(service.metrics().cache_hits, 8u * fps.size());
}

TEST_F(NotaryAllocTest, RevocationQueryPathIsAllocationFree) {
  const auto& world = micro_world();
  NotaryIndexOptions options;
  options.revocation_statuses = &world.revocation.statuses;
  const NotaryIndex index(micro_spine(), options);
  NotaryServiceConfig config;
  config.cache_bytes = 16 << 20;
  NotaryService service(index, config);

  const std::string known = fp_payload(world.archive.cert(0).fingerprint);
  scan::CertFingerprint missing{};
  missing.fill(0xfe);
  const std::string unknown = fp_payload(missing);
  std::string out;
  out.reserve(64 << 10);

  // Warm once: the revocation render bypasses the response cache — the
  // status byte lives in the flat knowledge row — so after the buffer is
  // warm EVERY revocation query is allocation-free, not just repeats.
  out.clear();
  service.handle_into(netio::FrameType::kRevocationQuery, known, out);

  for (int i = 0; i < 8; ++i) {
    out.clear();
    EXPECT_EQ(allocs_during([&] {
                service.handle_into(netio::FrameType::kRevocationQuery,
                                    known, out);
              }),
              0u)
        << "hit iteration " << i;
    out.clear();
    EXPECT_EQ(allocs_during([&] {
                service.handle_into(netio::FrameType::kRevocationQuery,
                                    unknown, out);
              }),
              0u)
        << "miss iteration " << i;
  }
  EXPECT_EQ(static_cast<std::uint8_t>(out[0]),
            static_cast<std::uint8_t>(netio::FrameType::kNotFound));
  EXPECT_EQ(service.metrics().revocation_queries, 17u);
}

TEST_F(NotaryAllocTest, CacheMissStaysWithinFixedAllocationBound) {
  const auto& world = micro_world();
  const NotaryIndex index(micro_spine());
  NotaryServiceConfig config;
  config.cache_bytes = 0;  // every query is a full render
  NotaryService service(index, config);

  std::string out;
  out.reserve(64 << 10);
  // Warm once so lazily-initialized library state is off the books.
  out.clear();
  service.handle_into(netio::FrameType::kQuery,
                      fp_payload(world.archive.cert(0).fingerprint), out);

  for (scan::CertId id = 0; id < 16 && id < index.size(); ++id) {
    const std::string payload =
        fp_payload(world.archive.cert(id).fingerprint);
    out.clear();
    const std::uint64_t allocs = allocs_during([&] {
      service.handle_into(netio::FrameType::kQuery, payload, out);
    });
    // A miss renders straight into the warm buffer; the bound is small
    // and fixed (no per-line or per-field strings).
    EXPECT_LE(allocs, 8u) << "cert " << id;
  }
}

}  // namespace
}  // namespace sm::notary
