// Tests for sm::crypto — RSA keygen/sign/verify, the simulated scheme, key
// serialization, and fingerprints.
#include <gtest/gtest.h>

#include "crypto/rsa.h"
#include "crypto/signature.h"
#include "util/prng.h"

namespace sm::crypto {
namespace {

using util::Bytes;
using util::Rng;
using util::to_bytes;

// --- raw RSA ----------------------------------------------------------------

TEST(Rsa, KeypairHasRequestedModulusBits) {
  Rng rng(101);
  const RsaPrivateKey key = generate_rsa_keypair(256, rng);
  EXPECT_EQ(key.pub.n.bit_length(), 256u);
  EXPECT_EQ(key.pub.e, bignum::BigUint(65537));
  EXPECT_EQ(key.p * key.q, key.pub.n);
}

TEST(Rsa, SignVerifyRoundTrip) {
  Rng rng(102);
  const RsaPrivateKey key = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("tbs certificate bytes");
  const Bytes sig = rsa_sign_sha256(key, msg);
  EXPECT_EQ(sig.size(), 64u);
  EXPECT_TRUE(rsa_verify_sha256(key.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsTamperedMessage) {
  Rng rng(103);
  const RsaPrivateKey key = generate_rsa_keypair(512, rng);
  const Bytes sig = rsa_sign_sha256(key, to_bytes("original"));
  EXPECT_FALSE(rsa_verify_sha256(key.pub, to_bytes("tampered"), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  Rng rng(104);
  const RsaPrivateKey key = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_sha256(key, msg);
  sig[10] ^= 0x01;
  EXPECT_FALSE(rsa_verify_sha256(key.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  Rng rng(105);
  const RsaPrivateKey key1 = generate_rsa_keypair(512, rng);
  const RsaPrivateKey key2 = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("message");
  const Bytes sig = rsa_sign_sha256(key1, msg);
  EXPECT_FALSE(rsa_verify_sha256(key2.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongLengthSignature) {
  Rng rng(106);
  const RsaPrivateKey key = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_sha256(key, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify_sha256(key.pub, msg, sig));
}

TEST(Rsa, TooSmallModulusThrowsOnSign) {
  Rng rng(107);
  const RsaPrivateKey key = generate_rsa_keypair(128, rng);
  // 128-bit modulus = 16 bytes < 51-byte PKCS1/SHA-256 minimum.
  EXPECT_THROW(rsa_sign_sha256(key, to_bytes("m")), std::invalid_argument);
}

TEST(Rsa, PublicKeyCodecRoundTrip) {
  Rng rng(108);
  const RsaPrivateKey key = generate_rsa_keypair(256, rng);
  const Bytes encoded = encode_rsa_public_key(key.pub);
  RsaPublicKey decoded;
  ASSERT_TRUE(decode_rsa_public_key(encoded, decoded));
  EXPECT_EQ(decoded, key.pub);
}

TEST(Rsa, PublicKeyCodecRejectsTruncation) {
  Rng rng(109);
  const RsaPrivateKey key = generate_rsa_keypair(256, rng);
  Bytes encoded = encode_rsa_public_key(key.pub);
  encoded.resize(encoded.size() - 3);
  RsaPublicKey decoded;
  EXPECT_FALSE(decode_rsa_public_key(encoded, decoded));
}

TEST(Rsa, DeterministicSignature) {
  Rng rng(110);
  const RsaPrivateKey key = generate_rsa_keypair(512, rng);
  const Bytes msg = to_bytes("same input");
  EXPECT_EQ(rsa_sign_sha256(key, msg), rsa_sign_sha256(key, msg));
}

// --- unified signature interface ---------------------------------------------

class SchemeTest : public ::testing::TestWithParam<SigScheme> {};

TEST_P(SchemeTest, SignVerifyRoundTrip) {
  Rng rng(200);
  const SigningKey key = generate_keypair(GetParam(), rng, 512);
  const Bytes msg = to_bytes("any message");
  const Bytes sig = sign(key, msg);
  EXPECT_TRUE(verify(key.pub, msg, sig));
  EXPECT_FALSE(verify(key.pub, to_bytes("other message"), sig));
}

TEST_P(SchemeTest, CrossKeyVerifyFails) {
  Rng rng(201);
  const SigningKey key1 = generate_keypair(GetParam(), rng, 512);
  const SigningKey key2 = generate_keypair(GetParam(), rng, 512);
  const Bytes msg = to_bytes("message");
  EXPECT_FALSE(verify(key2.pub, msg, sign(key1, msg)));
}

TEST_P(SchemeTest, FingerprintStableAndDistinct) {
  Rng rng(202);
  const SigningKey key1 = generate_keypair(GetParam(), rng, 512);
  const SigningKey key2 = generate_keypair(GetParam(), rng, 512);
  EXPECT_EQ(key1.pub.fingerprint(), key1.pub.fingerprint());
  EXPECT_NE(key1.pub.fingerprint(), key2.pub.fingerprint());
  EXPECT_EQ(key1.pub.fingerprint().size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeTest,
                         ::testing::Values(SigScheme::kRsaSha256,
                                           SigScheme::kSimSha256),
                         [](const auto& info) {
                           return to_string(info.param) == "rsa-sha256"
                                      ? std::string("Rsa")
                                      : std::string("Sim");
                         });

TEST(SimScheme, KeypairIsFastAndDeterministicPerSeed) {
  Rng rng1(303), rng2(303);
  const SigningKey a = generate_keypair(SigScheme::kSimSha256, rng1);
  const SigningKey b = generate_keypair(SigScheme::kSimSha256, rng2);
  EXPECT_EQ(a.pub.key, b.pub.key);
  EXPECT_EQ(a.secret, b.secret);
  EXPECT_EQ(a.pub.key.size(), 32u);
}

TEST(SimScheme, SchemesDoNotCrossVerify) {
  Rng rng(304);
  const SigningKey rsa = generate_keypair(SigScheme::kRsaSha256, rng, 512);
  const SigningKey sim = generate_keypair(SigScheme::kSimSha256, rng);
  const Bytes msg = to_bytes("msg");
  EXPECT_FALSE(verify(rsa.pub, msg, sign(sim, msg)));
  EXPECT_FALSE(verify(sim.pub, msg, sign(rsa, msg)));
}

TEST(SchemeNames, ToString) {
  EXPECT_EQ(to_string(SigScheme::kRsaSha256), "rsa-sha256");
  EXPECT_EQ(to_string(SigScheme::kSimSha256), "sim-sha256");
}

TEST(Verify, MalformedKeyMaterialReturnsFalse) {
  PublicKeyInfo bad;
  bad.scheme = SigScheme::kRsaSha256;
  bad.key = to_bytes("not a key");
  EXPECT_FALSE(verify(bad, to_bytes("m"), to_bytes("sig")));
  bad.scheme = SigScheme::kSimSha256;
  bad.key = to_bytes("short");  // wrong size for sim scheme
  EXPECT_FALSE(verify(bad, to_bytes("m"), to_bytes("sig")));
}

}  // namespace
}  // namespace sm::crypto
