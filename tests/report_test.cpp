// Tests for sm::report — section selection and content sanity of the
// consolidated text report.
#include <gtest/gtest.h>

#include "report/report.h"
#include "simworld/world.h"

namespace sm::report {
namespace {

class ReportWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simworld::WorldConfig config = simworld::WorldConfig::tiny();
    config.device_count = 150;
    config.website_count = 60;
    world_ = new simworld::WorldResult(simworld::World(config).run());
    index_ = new analysis::DatasetIndex(world_->archive, world_->routing);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete world_;
    index_ = nullptr;
    world_ = nullptr;
  }

  static simworld::WorldResult* world_;
  static analysis::DatasetIndex* index_;
};

simworld::WorldResult* ReportWorld::world_ = nullptr;
analysis::DatasetIndex* ReportWorld::index_ = nullptr;

TEST_F(ReportWorld, DefaultSectionsPresent) {
  const std::string report = render_report(*index_, world_->as_db);
  EXPECT_NE(report.find("-- validity (paper 4.2) --"), std::string::npos);
  EXPECT_NE(report.find("-- longevity (figures 3-4) --"), std::string::npos);
  EXPECT_NE(report.find("-- top invalid issuers (table 1) --"),
            std::string::npos);
  EXPECT_NE(report.find("-- top invalid ASes (table 3) --"),
            std::string::npos);
  // Linking/tracking are opt-in.
  EXPECT_EQ(report.find("-- linking"), std::string::npos);
  EXPECT_EQ(report.find("-- tracking"), std::string::npos);
  // The dominant invalid issuers of the simulated world show up.
  EXPECT_NE(report.find("www.lancom-systems.de"), std::string::npos);
}

TEST_F(ReportWorld, SectionToggles) {
  ReportOptions options;
  options.validity = false;
  options.longevity = false;
  options.diversity = false;
  options.linking = true;
  options.tracking = true;
  const std::string report = render_report(*index_, world_->as_db, options);
  EXPECT_EQ(report.find("-- validity"), std::string::npos);
  EXPECT_NE(report.find("-- linking (6.4.3 / 6.4.4) --"), std::string::npos);
  EXPECT_NE(report.find("-- tracking (7.2 / 7.3) --"), std::string::npos);
  EXPECT_NE(report.find("single-scan"), std::string::npos);
  EXPECT_NE(report.find("trackable"), std::string::npos);
}

TEST_F(ReportWorld, TopNControlsTableSize) {
  ReportOptions options;
  options.top_n = 2;
  const std::string report = render_report(*index_, world_->as_db, options);
  // Count issuer rows between the table-1 header and the next header.
  const std::size_t start = report.find("-- top invalid issuers");
  const std::size_t end = report.find("-- top invalid ASes");
  ASSERT_NE(start, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::size_t rows = 0;
  for (std::size_t pos = start; pos < end; ++pos) {
    if (report.compare(pos, 3, "\n  ") == 0) ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

}  // namespace
}  // namespace sm::report
