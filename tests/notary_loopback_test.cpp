// End-to-end tests of the notary over real loopback TCP: multi-threaded
// clients byte-compare responses against render_knowledge, responses are
// invariant to the worker-thread count and the cache, corrupted frames
// (truncations and single-bit flips) are all rejected without hurting the
// server, and a graceful shutdown mid-load never tears a frame. This
// binary also runs under TSan and ASan in scripts/tier1.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "loopback_client.h"
#include "netio/frame.h"
#include "netio/server.h"
#include "corpus/corpus_index.h"
#include "notary/index.h"
#include "notary/service.h"
#include "simworld/world.h"

namespace sm::notary {
namespace {

using testing::LoopbackClient;

// One micro world + index shared by every test in the suite (built once).
class NotaryLoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simworld::WorldConfig config;
    config.seed = 11;
    config.device_count = 120;
    config.website_count = 40;
    config.schedule.scale = 0.1;
    world_ = new simworld::WorldResult(simworld::World(config).run());
    spine_ = new corpus::CorpusIndex(
        world_->archive, corpus::CorpusOptions{&world_->routing, nullptr});
    index_ = new NotaryIndex(*spine_);
  }

  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete spine_;
    spine_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  // Starts a server around a fresh service; returns the server (caller
  // keeps the service alive).
  static std::unique_ptr<netio::TcpServer> start_server(
      NotaryService& service, std::size_t workers,
      int idle_timeout_ms = 60'000) {
    netio::ServerConfig config;
    config.workers = workers;
    config.idle_timeout_ms = idle_timeout_ms;
    auto server = std::make_unique<netio::TcpServer>(
        config, [&service](netio::FrameType type, std::string_view payload,
                           std::string& out) {
          service.handle_into(type, payload, out);
        });
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
    return server;
  }

  static std::string fp_payload(scan::CertId id) {
    const auto& fp = world_->archive.cert(id).fingerprint;
    return std::string(reinterpret_cast<const char*>(fp.data()), fp.size());
  }

  static simworld::WorldResult* world_;
  static corpus::CorpusIndex* spine_;
  static NotaryIndex* index_;
};

simworld::WorldResult* NotaryLoopbackTest::world_ = nullptr;
corpus::CorpusIndex* NotaryLoopbackTest::spine_ = nullptr;
NotaryIndex* NotaryLoopbackTest::index_ = nullptr;

TEST_F(NotaryLoopbackTest, ConcurrentClientsGetByteExactResponses) {
  NotaryServiceConfig config;
  config.cache_bytes = 8 << 20;
  NotaryService service(*index_, config);
  const auto server = start_server(service, /*workers=*/4);

  constexpr int kClients = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LoopbackClient client(server->port());
      if (!client.connected()) return;
      netio::Frame response;
      // Each client walks the whole corpus from a different offset, so
      // cache hits and misses interleave across connections.
      const std::size_t n = index_->size();
      for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<scan::CertId>((i + c * 131) % n);
        if (!client.send_frame(netio::FrameType::kQuery, fp_payload(id)) ||
            !client.read_frame(response)) {
          return;
        }
        if (response.type != netio::FrameType::kCertInfo ||
            response.payload != render_knowledge(index_->knowledge(id))) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(answered.load(), kClients * static_cast<int>(index_->size()));
}

TEST_F(NotaryLoopbackTest, ResponsesInvariantToWorkersAndCache) {
  // Reference bytes: the pure render, no server involved.
  std::vector<std::string> expected;
  expected.reserve(index_->size());
  for (scan::CertId id = 0; id < index_->size(); ++id) {
    expected.push_back(render_knowledge(index_->knowledge(id)));
  }

  const struct {
    std::size_t workers;
    std::size_t cache_bytes;
  } variants[] = {{1, 0}, {1, 8 << 20}, {4, 0}, {4, 8 << 20}};
  for (const auto& variant : variants) {
    NotaryServiceConfig config;
    config.cache_bytes = variant.cache_bytes;
    NotaryService service(*index_, config);
    const auto server = start_server(service, variant.workers);
    LoopbackClient client(server->port());
    ASSERT_TRUE(client.connected());
    netio::Frame response;
    for (scan::CertId id = 0; id < index_->size(); ++id) {
      ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, fp_payload(id)));
      ASSERT_TRUE(client.read_frame(response));
      ASSERT_EQ(response.type, netio::FrameType::kCertInfo);
      ASSERT_EQ(response.payload, expected[id])
          << "workers=" << variant.workers
          << " cache=" << variant.cache_bytes << " cert " << id;
    }
  }
}

// Satellite: the corruption sweep over notary frames, mirroring
// archive_corruption_test — every truncation and every single-bit flip of
// a valid query frame is rejected (kError or a plain close, never a
// kCertInfo), and the server keeps serving afterwards.
TEST_F(NotaryLoopbackTest, CorruptionSweepRejectsEveryDamagedFrame) {
  NotaryService service(*index_);
  const auto server = start_server(service, /*workers=*/2);
  const std::string wire =
      netio::encode_frame(netio::FrameType::kQuery, fp_payload(0));

  const auto expect_rejected = [&](const std::string& bytes,
                                   const std::string& what) {
    LoopbackClient client(server->port());
    ASSERT_TRUE(client.connected()) << what;
    ASSERT_TRUE(client.send_raw(bytes)) << what;
    // Half-close: the server sees EOF after the damaged bytes, so even a
    // "still waiting for the rest" truncation resolves to a close.
    client.shutdown_write();
    std::vector<netio::Frame> frames;
    ASSERT_TRUE(client.read_until_eof(frames)) << what;
    for (const netio::Frame& frame : frames) {
      EXPECT_NE(frame.type, netio::FrameType::kCertInfo) << what;
      EXPECT_NE(frame.type, netio::FrameType::kNotFound) << what;
    }
  };

  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    expect_rejected(wire.substr(0, cut),
                    "truncation at " + std::to_string(cut));
  }
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      expect_rejected(corrupt, "bit flip at byte " + std::to_string(byte) +
                                   " bit " + std::to_string(bit));
    }
  }

  // The server survived the entire sweep: a clean query still works.
  LoopbackClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(wire));
  netio::Frame response;
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kCertInfo);
  EXPECT_EQ(response.payload, render_knowledge(index_->knowledge(0)));

  server->shutdown();
  const netio::ServerCounters counters = server->counters();
  EXPECT_EQ(counters.connections_closed, counters.connections_accepted);
  EXPECT_GT(counters.malformed_frames, 0u);
}

TEST_F(NotaryLoopbackTest, StatsFrameReportsOverTheWire) {
  NotaryServiceConfig config;
  config.cache_bytes = 1 << 20;
  NotaryService service(*index_, config);
  const auto server = start_server(service, /*workers=*/2);

  LoopbackClient client(server->port());
  ASSERT_TRUE(client.connected());
  netio::Frame response;
  ASSERT_TRUE(client.send_frame(netio::FrameType::kQuery, fp_payload(0)));
  ASSERT_TRUE(client.read_frame(response));
  ASSERT_TRUE(client.send_frame(netio::FrameType::kPing, "probe"));
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.type, netio::FrameType::kPong);
  EXPECT_EQ(response.payload, "probe");

  ASSERT_TRUE(client.send_frame(netio::FrameType::kStats, ""));
  ASSERT_TRUE(client.read_frame(response));
  ASSERT_EQ(response.type, netio::FrameType::kStatsText);
  EXPECT_NE(response.payload.find("notary-stats"), std::string::npos);
  EXPECT_NE(response.payload.find(
                "index-size: " + std::to_string(index_->size())),
            std::string::npos);
  EXPECT_NE(response.payload.find("queries: 1 (found 1, unknown 0)"),
            std::string::npos);
}

TEST_F(NotaryLoopbackTest, GracefulShutdownMidLoadNeverTearsAFrame) {
  NotaryServiceConfig config;
  config.cache_bytes = 4 << 20;
  NotaryService service(*index_, config);
  auto server = start_server(service, /*workers=*/4);

  constexpr int kClients = 4;
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LoopbackClient client(server->port());
      if (!client.connected()) return;
      netio::Frame response;
      for (std::uint64_t i = 0;; ++i) {
        const auto id =
            static_cast<scan::CertId>((i + c) % index_->size());
        if (!client.send_frame(netio::FrameType::kQuery, fp_payload(id))) {
          break;  // server closed: expected once shutdown starts
        }
        if (!client.read_frame(response)) break;
        if (response.type != netio::FrameType::kCertInfo ||
            response.payload != render_knowledge(index_->knowledge(id))) {
          torn.store(true, std::memory_order_relaxed);
          break;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      // Whatever remains on the wire must still be whole frames.
      std::vector<netio::Frame> tail;
      if (!client.read_until_eof(tail)) {
        torn.store(true, std::memory_order_relaxed);
      }
    });
  }
  // Let the load ramp, then pull the plug mid-flight.
  while (completed.load(std::memory_order_relaxed) < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->shutdown();
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GE(completed.load(), 200u);
  const netio::ServerCounters counters = server->counters();
  EXPECT_EQ(counters.connections_accepted, kClients);
  EXPECT_EQ(counters.connections_closed, counters.connections_accepted);
  EXPECT_EQ(counters.malformed_frames, 0u);
}

}  // namespace
}  // namespace sm::notary
