// Tests for sm::asn1 — DER encode/decode round-trips, known encodings, and
// malformed-input rejection.
#include <gtest/gtest.h>

#include "asn1/der.h"
#include "asn1/print.h"
#include "asn1/oid.h"
#include "util/datetime.h"
#include "util/hex.h"

namespace sm::asn1 {
namespace {

using util::Bytes;
using util::hex_encode;

// --- OIDs -------------------------------------------------------------------

TEST(Oid, DottedStringRoundTrip) {
  const auto oid = Oid::from_string("1.2.840.113549.1.1.11");
  ASSERT_TRUE(oid.has_value());
  EXPECT_EQ(oid->to_string(), "1.2.840.113549.1.1.11");
}

TEST(Oid, FromStringRejectsBadInput) {
  EXPECT_FALSE(Oid::from_string("").has_value());
  EXPECT_FALSE(Oid::from_string("1").has_value());
  EXPECT_FALSE(Oid::from_string("3.1").has_value());     // first arc > 2
  EXPECT_FALSE(Oid::from_string("1.40").has_value());    // second arc >= 40
  EXPECT_FALSE(Oid::from_string("1.2.x").has_value());
}

TEST(Oid, KnownEncoding) {
  // sha256WithRSAEncryption: 06 09 2a 86 48 86 f7 0d 01 01 0b
  EXPECT_EQ(hex_encode(oids::sha256_with_rsa().encode()),
            "2a864886f70d01010b");
  // id-at-commonName: 55 04 03
  EXPECT_EQ(hex_encode(oids::common_name().encode()), "550403");
}

TEST(Oid, EncodeDecodeRoundTrip) {
  for (const Oid& oid :
       {oids::common_name(), oids::subject_alt_name(), oids::ad_ocsp(),
        oids::sim_signature(), oids::authority_info_access()}) {
    const auto back = Oid::decode(oid.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, oid);
  }
}

TEST(Oid, DecodeRejectsTruncatedBase128) {
  // A continuation byte with nothing after it.
  EXPECT_FALSE(Oid::decode(Bytes{0x2a, 0x86}).has_value());
  EXPECT_FALSE(Oid::decode(Bytes{}).has_value());
}

// --- primitive encodings ------------------------------------------------------

TEST(Der, IntegerKnownEncodings) {
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{0})), "020100");
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{127})), "02017f");
  // 128 needs a leading zero octet to stay positive.
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{128})), "02020080");
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{-1})), "0201ff");
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{-129})), "0202ff7f");
}

TEST(Der, BigIntegerPadsHighBit) {
  const auto der = encode_integer(bignum::BigUint::from_hex("80"));
  EXPECT_EQ(hex_encode(der), "02020080");
}

TEST(Der, BooleanAndNull) {
  EXPECT_EQ(hex_encode(encode_boolean(true)), "0101ff");
  EXPECT_EQ(hex_encode(encode_boolean(false)), "010100");
  EXPECT_EQ(hex_encode(encode_null()), "0500");
}

TEST(Der, LongFormLength) {
  const Bytes content(200, 0xab);
  const Bytes der = encode_octet_string(content);
  // 04 81 C8 <200 bytes>
  EXPECT_EQ(der[0], 0x04);
  EXPECT_EQ(der[1], 0x81);
  EXPECT_EQ(der[2], 200);
  EXPECT_EQ(der.size(), 203u);
}

TEST(Der, VeryLongFormLength) {
  const Bytes content(70000, 0x01);
  const Bytes der = encode_octet_string(content);
  EXPECT_EQ(der[1], 0x83);  // three length octets
  Reader r(der);
  const auto tlv = r.read(Tag::kOctetString);
  ASSERT_TRUE(tlv.has_value());
  EXPECT_EQ(tlv->content.size(), 70000u);
}

TEST(Der, BitStringPrependsUnusedBits) {
  const Bytes der = encode_bit_string(Bytes{0xde, 0xad});
  EXPECT_EQ(hex_encode(der), "030300dead");
}

// --- reader ------------------------------------------------------------------

TEST(Reader, ReadsNestedSequence) {
  Bytes inner;
  util::append(inner, encode_integer(std::int64_t{42}));
  util::append(inner, encode_boolean(true));
  const Bytes der = encode_sequence(inner);
  Reader r(der);
  const auto seq = r.read(Tag::kSequence);
  ASSERT_TRUE(seq.has_value());
  EXPECT_TRUE(r.at_end());
  Reader body(seq->content);
  EXPECT_EQ(body.read_small_integer(), 42);
  EXPECT_EQ(body.read_boolean(), true);
  EXPECT_TRUE(body.at_end());
}

TEST(Reader, TagMismatchDoesNotConsume) {
  const Bytes der = encode_boolean(true);
  Reader r(der);
  EXPECT_FALSE(r.read(Tag::kInteger).has_value());
  EXPECT_EQ(r.read_boolean(), true);  // still readable
}

TEST(Reader, RejectsTruncatedLength) {
  Bytes der = encode_octet_string(Bytes(200, 1));
  der.resize(2);  // tag + first length byte, missing the rest
  Reader r(der);
  EXPECT_FALSE(r.read_any().has_value());
}

TEST(Reader, RejectsContentOverrun) {
  Bytes der = {0x04, 0x05, 0x01, 0x02};  // claims 5 bytes, has 2
  Reader r(der);
  EXPECT_FALSE(r.read_any().has_value());
}

TEST(Reader, RejectsIndefiniteLength) {
  const Bytes der = {0x30, 0x80, 0x00, 0x00};
  Reader r(der);
  EXPECT_FALSE(r.read_any().has_value());
}

TEST(Reader, RejectsHighTagNumberForm) {
  const Bytes der = {0x1f, 0x81, 0x01, 0x00};
  Reader r(der);
  EXPECT_FALSE(r.read_any().has_value());
}

TEST(Reader, IntegerRejectsNegativeAsBignum) {
  const Bytes der = encode_integer(std::int64_t{-5});
  Reader r(der);
  EXPECT_FALSE(r.read_integer().has_value());
}

TEST(Reader, SmallIntegerSignExtends) {
  const Bytes der = encode_integer(std::int64_t{-42});
  Reader r(der);
  EXPECT_EQ(r.read_small_integer(), -42);
}

TEST(Reader, FullBufferParseRejectsTrailing) {
  Bytes der = encode_null();
  der.push_back(0x00);
  EXPECT_FALSE(parse_single(der).has_value());
}

// --- time --------------------------------------------------------------------

TEST(DerTime, UtcTimeRange) {
  const util::UnixTime t = util::make_date(2014, 7, 1) + 3661;
  const Bytes der = encode_time(t);
  EXPECT_EQ(der[0], static_cast<std::uint8_t>(Tag::kUtcTime));
  Reader r(der);
  EXPECT_EQ(r.read_time(), t);
}

TEST(DerTime, GeneralizedTimeBefore1950) {
  const util::UnixTime t = util::make_date(1940, 1, 2);
  const Bytes der = encode_time(t);
  EXPECT_EQ(der[0], static_cast<std::uint8_t>(Tag::kGeneralizedTime));
  Reader r(der);
  EXPECT_EQ(r.read_time(), t);
}

TEST(DerTime, GeneralizedTimeFarFuture) {
  const util::UnixTime t = util::make_date(3000, 6, 15);
  const Bytes der = encode_time(t);
  EXPECT_EQ(der[0], static_cast<std::uint8_t>(Tag::kGeneralizedTime));
  Reader r(der);
  EXPECT_EQ(r.read_time(), t);
}

TEST(DerTime, Year10000ClampsTo9999) {
  const util::UnixTime t = util::make_date(12000, 1, 1);
  const Bytes der = encode_time(t);
  Reader r(der);
  const auto back = r.read_time();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(util::from_unix(*back).year, 9999);
}

TEST(DerTime, UtcTimeCenturyPivot) {
  // YY >= 50 is 19YY, YY < 50 is 20YY (RFC 5280).
  {
    const Bytes der = encode_time(util::make_date(1975, 3, 3));
    Reader r(der);
    EXPECT_EQ(util::from_unix(*r.read_time()).year, 1975);
  }
  {
    const Bytes der = encode_time(util::make_date(2049, 3, 3));
    Reader r(der);
    EXPECT_EQ(util::from_unix(*r.read_time()).year, 2049);
  }
}

TEST(DerTime, RejectsMalformedTimeStrings) {
  // Hand-build a UTCTime with a bad month.
  const std::string bad = "149913073000Z";  // month 99... wait: YYMMDD
  Bytes der;
  der.push_back(static_cast<std::uint8_t>(Tag::kUtcTime));
  der.push_back(static_cast<std::uint8_t>(bad.size()));
  for (char c : bad) der.push_back(static_cast<std::uint8_t>(c));
  Reader r(der);
  EXPECT_FALSE(r.read_time().has_value());
}

// Property sweep: encode_time/read_time round-trips across eras.
class TimeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TimeRoundTrip, RoundTrips) {
  const util::UnixTime t =
      util::make_date(GetParam(), 5, 17) + 11 * 3600 + 22 * 60 + 33;
  const Bytes der = encode_time(t);
  Reader r(der);
  EXPECT_EQ(r.read_time(), t);
}

INSTANTIATE_TEST_SUITE_P(Years, TimeRoundTrip,
                         ::testing::Values(1951, 1970, 1999, 2000, 2012, 2049,
                                           2050, 2100, 3000, 4750, 9999));

// --- context tags --------------------------------------------------------------

TEST(Der, ContextTags) {
  const Bytes inner = encode_integer(std::int64_t{2});
  const Bytes wrapped = encode_context(0, inner);
  EXPECT_EQ(wrapped[0], 0xa0);
  Reader r(wrapped);
  const auto tlv = r.read_tag(context_constructed(0));
  ASSERT_TRUE(tlv.has_value());
  Reader body(tlv->content);
  EXPECT_EQ(body.read_small_integer(), 2);
}

TEST(Der, StringTypes) {
  const Bytes utf8_der = encode_utf8_string("fritz.box");
  Reader utf8(utf8_der);
  EXPECT_EQ(utf8.read_string(), "fritz.box");
  const Bytes printable_der = encode_printable_string("US");
  Reader printable(printable_der);
  EXPECT_EQ(printable.read_string(), "US");
  const Bytes ia5_der = encode_ia5_string("http://crl.example.com");
  Reader ia5(ia5_der);
  EXPECT_EQ(ia5.read_string(), "http://crl.example.com");
}

TEST(Der, TlvFullCoversHeaderAndContent) {
  const Bytes der = encode_octet_string(Bytes{1, 2, 3});
  Reader r(der);
  const auto tlv = r.read_any();
  ASSERT_TRUE(tlv.has_value());
  EXPECT_EQ(tlv->full.size(), der.size());
  EXPECT_EQ(tlv->content.size(), 3u);
}

// --- pretty-printer -------------------------------------------------------------

TEST(Print, TagNames) {
  EXPECT_EQ(tag_name(0x30), "SEQUENCE");
  EXPECT_EQ(tag_name(0x02), "INTEGER");
  EXPECT_EQ(tag_name(0xa0), "[0]");
  EXPECT_EQ(tag_name(0x82), "[2] (primitive)");
  EXPECT_EQ(tag_name(0x7f), "tag 0x7f");
}

TEST(Print, RendersDecodedPrimitives) {
  Bytes children;
  util::append(children, encode_integer(std::int64_t{12345}));
  util::append(children, encode_oid(oids::common_name()));
  util::append(children, encode_utf8_string("fritz.box"));
  util::append(children, encode_boolean(true));
  util::append(children, encode_time(util::make_date(2014, 7, 1)));
  const Bytes der = encode_sequence(children);
  const std::string text = to_text(der);
  EXPECT_NE(text.find("SEQUENCE"), std::string::npos);
  EXPECT_NE(text.find("INTEGER 12345"), std::string::npos);
  EXPECT_NE(text.find("OBJECT IDENTIFIER 2.5.4.3"), std::string::npos);
  EXPECT_NE(text.find("UTF8String \"fritz.box\""), std::string::npos);
  EXPECT_NE(text.find("BOOLEAN TRUE"), std::string::npos);
  EXPECT_NE(text.find("2014-07-01"), std::string::npos);
  // Children are indented under the sequence.
  EXPECT_NE(text.find("\n  INTEGER"), std::string::npos);
}

TEST(Print, MalformedDegradesToHex) {
  const Bytes junk = {0x30, 0x10, 0x02};  // sequence claiming 16 bytes
  const std::string text = to_text(junk);
  EXPECT_NE(text.find("!malformed"), std::string::npos);
}

TEST(Print, DepthGuard) {
  Bytes der = encode_null();
  for (int i = 0; i < 40; ++i) der = encode_sequence(der);
  PrintOptions options;
  options.max_depth = 5;
  const std::string text = to_text(der, options);
  EXPECT_NE(text.find("(max depth)"), std::string::npos);
}

TEST(Print, LongValuesTruncated) {
  const Bytes der = encode_octet_string(Bytes(100, 0xab));
  const std::string text = to_text(der);
  EXPECT_NE(text.find(".."), std::string::npos);
  EXPECT_NE(text.find("(100 bytes)"), std::string::npos);
}

}  // namespace
}  // namespace sm::asn1
