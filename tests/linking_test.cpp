// Tests for sm::linking — feature extraction, the §6.2 duplicate filter,
// the lifetime-overlap rule (including the paper's Figure 9 scenario),
// consistency evaluation, iterative linking, and ground-truth scoring.
#include <gtest/gtest.h>

#include "analysis/dataset.h"
#include "linking/feature.h"
#include "linking/linker.h"

namespace sm::linking {
namespace {

using scan::Campaign;
using scan::CertId;
using scan::CertRecord;
using scan::ScanArchive;
using scan::ScanEvent;

constexpr std::int64_t kDay = util::kSecondsPerDay;

// Builds a CertRecord with a unique fingerprint derived from `id`.
CertRecord make_record(std::uint64_t id) {
  CertRecord rec;
  for (int i = 0; i < 8; ++i) {
    rec.fingerprint[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  rec.fingerprint[15] = 0xAA;  // distinguish from default
  rec.key_fingerprint = 0x1000 + id;
  rec.subject_cn = "device-" + std::to_string(id);
  rec.issuer_cn = rec.subject_cn;
  rec.issuer_dn = "CN=" + rec.subject_cn;
  rec.serial_hex = "1";
  rec.not_before = util::make_date(2013, 1, 1);
  rec.not_after = util::make_date(2033, 1, 1);
  rec.valid = false;
  rec.invalid_reason = pki::InvalidReason::kSelfSigned;
  return rec;
}

/// A small test-world builder: scans 30 days apart, one /16 = one AS.
struct TestWorld {
  ScanArchive archive;
  net::RoutingHistory routing;

  TestWorld() {
    net::RouteTable table;
    // AS = second octet of 10.x/16 for easy control.
    for (std::uint32_t x = 0; x < 8; ++x) {
      table.announce(
          net::Prefix(net::Ipv4Address((10u << 24) | (x << 16)), 16), 100 + x);
    }
    routing.add_snapshot(0, table);
  }

  std::size_t add_scan(int day) {
    return archive.begin_scan(
        ScanEvent{Campaign::kUMich, day * kDay, 10 * 3600});
  }

  /// IP helper: 10.<as_octet>.0.<host>.
  static std::uint32_t ip(std::uint32_t as_octet, std::uint32_t host) {
    return (10u << 24) | (as_octet << 16) | host;
  }
};

// --- feature extraction ------------------------------------------------------

TEST(Feature, ValuesAndApplicability) {
  CertRecord rec = make_record(1);
  rec.san = {"dns:b", "dns:a"};
  rec.crl_url = "http://crl";
  rec.aia_url = "http://aia";
  rec.ocsp_url = "http://ocsp";
  rec.policy_oid = "1.2.3";
  EXPECT_FALSE(feature_value(rec, Feature::kPublicKey).empty());
  EXPECT_EQ(feature_value(rec, Feature::kCommonName), "device-1");
  EXPECT_EQ(feature_value(rec, Feature::kNotBefore),
            std::to_string(rec.not_before));
  EXPECT_EQ(feature_value(rec, Feature::kNotAfter),
            std::to_string(rec.not_after));
  EXPECT_EQ(feature_value(rec, Feature::kIssuerSerial), "CN=device-1#1");
  EXPECT_EQ(feature_value(rec, Feature::kSan), "dns:a|dns:b");
  EXPECT_EQ(feature_value(rec, Feature::kCrl), "http://crl");
  EXPECT_EQ(feature_value(rec, Feature::kAia), "http://aia");
  EXPECT_EQ(feature_value(rec, Feature::kOcsp), "http://ocsp");
  EXPECT_EQ(feature_value(rec, Feature::kOid), "1.2.3");
}

TEST(Feature, IpCommonNamesExcluded) {
  CertRecord rec = make_record(2);
  rec.subject_cn = "192.168.1.1";
  EXPECT_TRUE(feature_value(rec, Feature::kCommonName, true).empty());
  EXPECT_EQ(feature_value(rec, Feature::kCommonName, false), "192.168.1.1");
}

TEST(Feature, EmptyValuesNotApplicable) {
  CertRecord rec = make_record(3);
  rec.subject_cn.clear();
  EXPECT_TRUE(feature_value(rec, Feature::kCommonName).empty());
  EXPECT_TRUE(feature_value(rec, Feature::kSan).empty());
  EXPECT_TRUE(feature_value(rec, Feature::kCrl).empty());
}

TEST(Feature, Names) {
  EXPECT_EQ(to_string(Feature::kPublicKey), "Public Key");
  EXPECT_EQ(to_string(Feature::kIssuerSerial), "IN + SN");
  EXPECT_EQ(kAllFeatures.size(), 10u);
}

// --- §6.2 duplicate filter -----------------------------------------------------

TEST(DuplicateFilter, ExcludesManyIpCerts) {
  TestWorld w;
  const CertId shared = w.archive.intern(make_record(1));
  const CertId normal = w.archive.intern(make_record(2));
  const std::size_t s0 = w.add_scan(0);
  // `shared` on three IPs in one scan; `normal` on one.
  w.archive.add_observation(s0, shared, TestWorld::ip(0, 1), 1);
  w.archive.add_observation(s0, shared, TestWorld::ip(0, 2), 2);
  w.archive.add_observation(s0, shared, TestWorld::ip(0, 3), 3);
  w.archive.add_observation(s0, normal, TestWorld::ip(0, 4), 4);
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  EXPECT_FALSE(linker.eligible()[shared]);
  EXPECT_TRUE(linker.eligible()[normal]);
  EXPECT_EQ(linker.eligible_count(), 1u);
}

TEST(DuplicateFilter, TwoIpsOnceIsAllowed) {
  // A device that changed IP mid-scan: two IPs in one scan, one in the next.
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  const std::size_t s0 = w.add_scan(0);
  const std::size_t s1 = w.add_scan(30);
  w.archive.add_observation(s0, cert, TestWorld::ip(0, 1), 1);
  w.archive.add_observation(s0, cert, TestWorld::ip(0, 2), 1);
  w.archive.add_observation(s1, cert, TestWorld::ip(0, 3), 1);
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  EXPECT_TRUE(linker.eligible()[cert]);
}

TEST(DuplicateFilter, TwoIpsInEveryScanExcluded) {
  // Exactly two IPs in *every* scan strongly suggests two devices share the
  // certificate (the paper's footnote 11).
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  for (int day : {0, 30, 60}) {
    const std::size_t s = w.add_scan(day);
    w.archive.add_observation(s, cert, TestWorld::ip(0, 1), 1);
    w.archive.add_observation(s, cert, TestWorld::ip(0, 2), 2);
  }
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  EXPECT_FALSE(linker.eligible()[cert]);
}

TEST(DuplicateFilter, ValidCertsNotEligible) {
  TestWorld w;
  CertRecord valid = make_record(1);
  valid.valid = true;
  valid.invalid_reason = pki::InvalidReason::kNone;
  const CertId cert = w.archive.intern(valid);
  const std::size_t s0 = w.add_scan(0);
  w.archive.add_observation(s0, cert, TestWorld::ip(0, 1), 1);
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  EXPECT_FALSE(linker.eligible()[cert]);
}

// --- Figure 9: the lifetime-overlap rule -----------------------------------------

class Figure9 : public ::testing::Test {
 protected:
  // Reproduces the paper's Figure 9 exactly:
  //  * PK1: cert1 (scans 0-1, IP a), cert2 (scans 1-3, IP b) — the pair
  //    overlaps on exactly one scan: linkable.
  //  * PK2: cert3 (scans 0-1), cert4 (scans 1-3), cert5 (scan 3) across
  //    three IPs — all pairwise overlaps <= 1 scan: linkable.
  //  * PK3: cert6 (scans 0-2, IP e), cert7 (scans 1-3, IP f) — overlap on
  //    two scans: NOT linkable.
  void SetUp() override {
    for (std::uint64_t i = 1; i <= 7; ++i) {
      CertRecord rec = make_record(i);
      rec.key_fingerprint = i <= 2 ? 0x111u : (i <= 5 ? 0x222u : 0x333u);
      certs_.push_back(w_.archive.intern(rec));
    }
    const std::size_t s0 = w_.add_scan(0);
    const std::size_t s1 = w_.add_scan(30);
    const std::size_t s2 = w_.add_scan(60);
    const std::size_t s3 = w_.add_scan(90);
    const auto obs = [&](std::size_t scan, std::uint64_t cert,
                         std::uint32_t host, scan::DeviceId device) {
      w_.archive.add_observation(scan, certs_[cert - 1],
                                 TestWorld::ip(0, host), device);
    };
    // PK1 group: one IP at a time, no overlap beyond a single scan.
    obs(s0, 1, 1, 10);
    obs(s1, 1, 1, 10);
    obs(s1, 2, 2, 10);
    obs(s2, 2, 2, 10);
    obs(s3, 2, 2, 10);
    // PK2 group: certs 3 and 4 overlap on exactly scan s1.
    obs(s0, 3, 3, 11);
    obs(s1, 3, 3, 11);
    obs(s1, 4, 4, 11);
    obs(s2, 4, 4, 11);
    obs(s3, 5, 5, 11);
    // PK3 group: certs 6 and 7 overlap on scans s1 and s2.
    obs(s0, 6, 6, 12);
    obs(s1, 6, 6, 12);
    obs(s2, 6, 6, 12);
    obs(s1, 7, 7, 13);
    obs(s2, 7, 7, 13);
    obs(s3, 7, 7, 13);
    index_.emplace(w_.archive, w_.routing);
    linker_.emplace(*index_);
  }

  TestWorld w_;
  std::vector<CertId> certs_;
  std::optional<analysis::DatasetIndex> index_;
  std::optional<Linker> linker_;
};

TEST_F(Figure9, LinksPk1AndPk2ButNotPk3) {
  const FieldResult result =
      linker_->link_field(Feature::kPublicKey, linker_->eligible());
  ASSERT_EQ(result.groups.size(), 2u);
  std::set<std::set<CertId>> groups;
  for (const LinkedGroup& group : result.groups) {
    groups.insert(std::set<CertId>(group.certs.begin(), group.certs.end()));
  }
  EXPECT_TRUE(groups.contains({certs_[0], certs_[1]}));
  EXPECT_TRUE(groups.contains({certs_[2], certs_[3], certs_[4]}));
  EXPECT_EQ(result.total_linked, 5u);
}

TEST_F(Figure9, OverlapThresholdZeroRejectsPk2Pair) {
  // With no overlap tolerance, cert pairs sharing one scan break apart.
  LinkerConfig config;
  config.max_overlap_scans = 0;
  const Linker strict(*index_, config);
  const FieldResult result =
      strict.link_field(Feature::kPublicKey, strict.eligible());
  // PK1's certs overlap on s1, PK2's on s1 — both rejected. Only cert5
  // remains single (no group).
  EXPECT_EQ(result.groups.size(), 0u);
}

TEST_F(Figure9, OverlapThresholdTwoAcceptsPk3) {
  LinkerConfig config;
  config.max_overlap_scans = 2;
  const Linker lax(*index_, config);
  const FieldResult result =
      lax.link_field(Feature::kPublicKey, lax.eligible());
  EXPECT_EQ(result.groups.size(), 3u);
}

TEST_F(Figure9, ConsistencyOfPk2GroupMatchesPaperExample) {
  // The paper's worked example: PK2 observed on 4 scans; modal IP appears
  // twice (cert3's and cert4's IPs each twice... here IPs 3,3,4,4,5 over
  // scans s0..s3 with s1 counting both 3 and 4).
  const FieldResult result =
      linker_->link_field(Feature::kPublicKey, linker_->eligible());
  for (const LinkedGroup& group : result.groups) {
    const Consistency c = linker_->group_consistency(group);
    EXPECT_GT(c.ip, 0.0);
    EXPECT_LE(c.ip, 1.0);
    EXPECT_GE(c.slash24, c.ip);
    EXPECT_GE(c.as_level, c.slash24);
    // All IPs share 10.0/16: AS-level consistency must be perfect.
    EXPECT_DOUBLE_EQ(c.as_level, 1.0);
  }
}

TEST_F(Figure9, TruthScoringFlagsBadLinks) {
  // Force PK3 into a group via a lax config: its two certs belong to
  // different true devices (12 and 13), so precision must drop.
  LinkerConfig config;
  config.max_overlap_scans = 2;
  const Linker lax(*index_, config);
  const IterativeResult result =
      lax.link_iteratively({Feature::kPublicKey});
  const TruthScore score = lax.score_against_truth(result);
  EXPECT_GT(score.linked_pairs, score.correct_pairs);
  EXPECT_LT(score.precision(), 1.0);
  // The default (paper) config links only true pairs here.
  const IterativeResult good = linker_->link_iteratively({Feature::kPublicKey});
  const TruthScore good_score = linker_->score_against_truth(good);
  EXPECT_DOUBLE_EQ(good_score.precision(), 1.0);
}

// --- consistency levels ----------------------------------------------------------

TEST(Consistency, DynamicIpStableAsShape) {
  // A device reissuing per scan from a German-style ISP: new IP every scan,
  // same AS — the Public Key row of Table 6.
  TestWorld w;
  std::vector<CertId> certs;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    CertRecord rec = make_record(i);
    rec.key_fingerprint = 0x5AFE;  // same device key
    certs.push_back(w.archive.intern(rec));
  }
  for (int i = 0; i < 4; ++i) {
    const std::size_t s = w.add_scan(i * 30);
    w.archive.add_observation(
        s, certs[static_cast<std::size_t>(i)],
        TestWorld::ip(2, static_cast<std::uint32_t>(i + 1)), 7);
  }
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  const FieldResult result =
      linker.link_field(Feature::kPublicKey, linker.eligible());
  ASSERT_EQ(result.groups.size(), 1u);
  const Consistency c = linker.group_consistency(result.groups[0]);
  EXPECT_DOUBLE_EQ(c.ip, 0.25);       // four distinct IPs over four scans
  EXPECT_DOUBLE_EQ(c.as_level, 1.0);  // one AS throughout
}

// --- iterative linking --------------------------------------------------------------

TEST(Iterative, RemovesLinkedCertsBetweenFields) {
  // Certs share both a key and a CN; iterative linking must count them once.
  TestWorld w;
  std::vector<CertId> certs;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    CertRecord rec = make_record(i);
    rec.key_fingerprint = 0xABC;
    rec.subject_cn = "shared-name";
    certs.push_back(w.archive.intern(rec));
  }
  for (int i = 0; i < 3; ++i) {
    const std::size_t s = w.add_scan(i * 30);
    w.archive.add_observation(s, certs[static_cast<std::size_t>(i)],
                              TestWorld::ip(0, 1), 5);
  }
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  const IterativeResult result = linker.link_iteratively(
      {Feature::kPublicKey, Feature::kCommonName});
  EXPECT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.linked_certs, 3u);
}

TEST(Iterative, DefaultOrderExcludesWeakFields) {
  TestWorld w;
  const CertId cert = w.archive.intern(make_record(1));
  const std::size_t s0 = w.add_scan(0);
  w.archive.add_observation(s0, cert, TestWorld::ip(0, 1), 1);
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  const IterativeResult result = linker.link_iteratively();
  for (const Feature feature : result.order) {
    EXPECT_NE(feature, Feature::kNotBefore);
    EXPECT_NE(feature, Feature::kNotAfter);
    EXPECT_NE(feature, Feature::kIssuerSerial);
  }
}

// --- Table 5 -------------------------------------------------------------------------

TEST(FeatureUniqueness, CountsSharedValues) {
  TestWorld w;
  CertRecord a = make_record(1);
  CertRecord b = make_record(2);
  CertRecord c = make_record(3);
  a.subject_cn = b.subject_cn = "same";
  c.subject_cn = "different";
  const CertId ia = w.archive.intern(a);
  const CertId ib = w.archive.intern(b);
  const CertId ic = w.archive.intern(c);
  const std::size_t s0 = w.add_scan(0);
  w.archive.add_observation(s0, ia, TestWorld::ip(0, 1), 1);
  w.archive.add_observation(s0, ib, TestWorld::ip(0, 2), 2);
  w.archive.add_observation(s0, ic, TestWorld::ip(0, 3), 3);
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  const auto rows = linker.feature_uniqueness();
  for (const FeatureUniqueness& row : rows) {
    if (row.feature == Feature::kCommonName) {
      EXPECT_EQ(row.applicable, 3u);
      EXPECT_EQ(row.non_unique, 2u);
      EXPECT_NEAR(row.non_unique_fraction(), 2.0 / 3.0, 1e-9);
    }
  }
}

// --- §6.4.4 --------------------------------------------------------------------------

TEST(LinkingGain, MergingReducesSingleScanFraction) {
  TestWorld w;
  // Three single-scan certs from one device (linkable by key) + one
  // single-scan cert from another device (unlinkable).
  std::vector<CertId> certs;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    CertRecord rec = make_record(i);
    if (i <= 3) rec.key_fingerprint = 0x77;
    certs.push_back(w.archive.intern(rec));
  }
  for (int i = 0; i < 3; ++i) {
    const std::size_t s = w.add_scan(i * 30);
    w.archive.add_observation(s, certs[static_cast<std::size_t>(i)],
                              TestWorld::ip(0, 1), 5);
    if (i == 0) {
      w.archive.add_observation(s, certs[3], TestWorld::ip(0, 9), 6);
    }
  }
  const analysis::DatasetIndex index(w.archive, w.routing);
  const Linker linker(index);
  const IterativeResult result =
      linker.link_iteratively({Feature::kPublicKey});
  const LinkingGain gain = linker.compare_with_original(result);
  EXPECT_EQ(gain.eligible_certs, 4u);
  EXPECT_DOUBLE_EQ(gain.single_scan_fraction_before, 1.0);
  // After linking: one 61-day entity + one single-scan entity.
  EXPECT_EQ(gain.entities_after, 2u);
  EXPECT_DOUBLE_EQ(gain.single_scan_fraction_after, 0.5);
  EXPECT_GT(gain.mean_lifetime_after_days, gain.mean_lifetime_before_days);
}

}  // namespace
}  // namespace sm::linking
