// Golden-shape integration test: runs the full pipeline on a medium world
// and asserts that every headline result from the paper holds in direction
// and rough magnitude. This is the regression net for the calibrated
// vendor/ISP models — if a refactor bends a distribution, it fails here
// before it reaches EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "analysis/discrepancy.h"
#include "analysis/diversity.h"
#include "analysis/longevity.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"

namespace sm {
namespace {

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The full experiment configuration: shape assertions are calibrated
    // against it and several (AS concentration, §6.4.4's single-scan drop)
    // are scale-sensitive below a few thousand devices.
    const simworld::WorldConfig config = simworld::WorldConfig::paper();
    world_ = new simworld::WorldResult(simworld::World(config).run());
    index_ = new analysis::DatasetIndex(world_->archive, world_->routing);
    linker_ = new linking::Linker(*index_);
    linked_ = new linking::IterativeResult(linker_->link_iteratively());
  }
  static void TearDownTestSuite() {
    delete linked_;
    delete linker_;
    delete index_;
    delete world_;
    linked_ = nullptr;
    linker_ = nullptr;
    index_ = nullptr;
    world_ = nullptr;
  }

  static simworld::WorldResult* world_;
  static analysis::DatasetIndex* index_;
  static linking::Linker* linker_;
  static linking::IterativeResult* linked_;
};

simworld::WorldResult* PaperShapes::world_ = nullptr;
analysis::DatasetIndex* PaperShapes::index_ = nullptr;
linking::Linker* PaperShapes::linker_ = nullptr;
linking::IterativeResult* PaperShapes::linked_ = nullptr;

TEST_F(PaperShapes, NoLeaseIntervalsDropped) {
  // The per-replica interval cap must never fire at the paper-scale
  // config; if it did, observations would vanish without signal.
  EXPECT_EQ(world_->dropped_lease_intervals, 0u);
}

TEST_F(PaperShapes, Section42ValidityBreakdown) {
  const auto vb = analysis::compute_validity_breakdown(world_->archive);
  // Paper: 87.9% invalid; 88.0% self-signed / 11.99% untrusted / 0.01%
  // other among invalid.
  EXPECT_GT(vb.invalid_fraction(), 0.80);
  EXPECT_LT(vb.invalid_fraction(), 0.95);
  const double denom = static_cast<double>(vb.invalid_certs);
  EXPECT_NEAR(static_cast<double>(vb.self_signed) / denom, 0.88, 0.06);
  EXPECT_NEAR(static_cast<double>(vb.untrusted_issuer) / denom, 0.12, 0.06);
  EXPECT_LT(static_cast<double>(vb.other_invalid) / denom, 0.01);
}

TEST_F(PaperShapes, Figure2PerScanFractions) {
  const auto series = analysis::compute_scan_series(world_->archive);
  double fraction_sum = 0;
  for (const auto& row : series) fraction_sum += row.invalid_fraction();
  const double mean = fraction_sum / static_cast<double>(series.size());
  // Paper: per-scan invalid fraction averages 65.0%, range 59.6-73.7%.
  EXPECT_GT(mean, 0.55);
  EXPECT_LT(mean, 0.75);
}

TEST_F(PaperShapes, Figure3ValidityPeriods) {
  const auto vp = analysis::compute_validity_periods(world_->archive);
  // Paper: valid median 1.1y; invalid median 20y; 5.38% negative.
  EXPECT_NEAR(vp.valid_days.median() / 365.0, 1.1, 0.3);
  EXPECT_NEAR(vp.invalid_days.median() / 365.0, 20.0, 3.0);
  EXPECT_GT(vp.invalid_negative_fraction, 0.02);
  EXPECT_LT(vp.invalid_negative_fraction, 0.09);
  EXPECT_GT(vp.invalid_days.max(), 300000);  // year-3000 tail
}

TEST_F(PaperShapes, Figure4Lifetimes) {
  const auto lt = analysis::compute_lifetimes(*index_);
  // Paper: valid median 274d; invalid median one day; ~60% single-scan.
  EXPECT_EQ(lt.invalid_days.median(), 1.0);
  EXPECT_GT(lt.valid_days.median(), 100.0);
  EXPECT_GT(lt.invalid_single_scan_fraction, 0.5);
  EXPECT_LT(lt.invalid_single_scan_fraction, 0.8);
}

TEST_F(PaperShapes, Figure5NotBeforeDeltas) {
  const auto nb = analysis::compute_notbefore_deltas(*index_);
  // Paper: bimodal — most under 4 days, a stuck-clock mode over 1000 days,
  // and a small negative tail.
  EXPECT_GT(nb.under_four_days_fraction, 0.4);
  EXPECT_GT(nb.over_thousand_days_fraction, 0.08);
  EXPECT_GT(nb.negative_fraction, 0.0);
  EXPECT_LT(nb.negative_fraction, 0.08);
}

TEST_F(PaperShapes, Figure6KeySharing) {
  const auto kd = analysis::compute_key_diversity(world_->archive);
  // Paper: >47% of invalid share keys; one key (Lancom) alone holds 6.5%.
  EXPECT_GT(kd.invalid_shared_fraction, 0.35);
  EXPECT_GT(kd.top_invalid_key_share, 0.03);
  EXPECT_LT(kd.top_invalid_key_share, 0.20);
  // Invalid certs share keys more than valid ones.
  EXPECT_GT(kd.invalid_shared_fraction, kd.valid_shared_fraction);
}

TEST_F(PaperShapes, Figures7And8HostAndAsDiversity) {
  const auto hd = analysis::compute_host_diversity(*index_);
  // Paper: invalid p99 = 2.0 IPs vs valid 11.3 (CDN replication).
  EXPECT_LE(hd.invalid_p99, 2.5);
  EXPECT_GT(hd.valid_p99, 3.0);
  EXPECT_GT(hd.valid_avg_ips.max(), hd.invalid_avg_ips.max());

  const auto ad = analysis::compute_as_diversity(*index_);
  // Invalid certs are more AS-concentrated than valid ones.
  EXPECT_LE(ad.invalid_ases_for_70, ad.valid_ases_for_70 + 1);
}

TEST_F(PaperShapes, Table1TopIssuers) {
  const auto id = analysis::compute_issuer_diversity(world_->archive);
  ASSERT_GE(id.top_invalid.size(), 3u);
  // Lancom leads, with 192.168.1.1 and the empty string close behind.
  EXPECT_EQ(id.top_invalid[0].issuer, "www.lancom-systems.de");
  std::set<std::string> top3 = {id.top_invalid[0].issuer,
                                id.top_invalid[1].issuer,
                                id.top_invalid[2].issuer};
  EXPECT_TRUE(top3.contains("192.168.1.1"));
  EXPECT_TRUE(top3.contains("(Empty string)"));
  // Valid issuers are the familiar CAs.
  ASSERT_FALSE(id.top_valid.empty());
  EXPECT_EQ(id.top_valid[0].issuer, "Go Daddy Secure Certification Authority");
}

TEST_F(PaperShapes, Table2AsTypes) {
  const auto breakdown =
      analysis::compute_as_type_breakdown(*index_, world_->as_db);
  // Paper: 94.1% of invalid from transit/access; content ASes mostly valid.
  EXPECT_GT(breakdown.shares.at(net::AsType::kTransitAccess).second, 0.85);
  EXPECT_GT(breakdown.shares.at(net::AsType::kContent).first,
            breakdown.shares.at(net::AsType::kContent).second);
}

TEST_F(PaperShapes, Table6LinkingShapes) {
  const auto fields = linker_->evaluate_all_fields();
  const auto find = [&](linking::Feature f) -> const linking::FieldResult& {
    for (const auto& field : fields) {
      if (field.feature == f) return field;
    }
    throw std::logic_error("missing");
  };
  const auto& pk = find(linking::Feature::kPublicKey);
  const auto& cn = find(linking::Feature::kCommonName);
  // Paper: Public Key links the most; AS-consistency far above IP-level.
  EXPECT_GE(pk.total_linked + 1000, cn.total_linked);
  EXPECT_GT(pk.consistency.as_level, 0.9);
  EXPECT_GT(pk.consistency.as_level, pk.consistency.ip + 0.2);
  EXPECT_GE(pk.consistency.slash24, pk.consistency.ip);
}

TEST_F(PaperShapes, Section64LinkingGain) {
  const auto gain = linker_->compare_with_original(*linked_);
  // Paper: linking merges ~39.4% of certs and lifts the mean lifetime.
  const double linked_fraction =
      static_cast<double>(linked_->linked_certs) /
      static_cast<double>(linker_->eligible_count());
  EXPECT_GT(linked_fraction, 0.3);
  EXPECT_LT(linked_fraction, 0.65);
  EXPECT_GT(gain.mean_lifetime_after_days, gain.mean_lifetime_before_days);
  EXPECT_LT(gain.single_scan_fraction_after,
            gain.single_scan_fraction_before);
  // Ground-truth precision stays essentially perfect.
  const auto truth = linker_->score_against_truth(*linked_);
  EXPECT_GE(truth.precision(), 0.99);
}

TEST_F(PaperShapes, Section7Tracking) {
  const tracking::DeviceTracker tracker(*index_, *linker_, *linked_,
                                        world_->as_db);
  const auto summary = tracker.summary();
  // Paper: +17.2% trackable devices from linking.
  EXPECT_GT(summary.trackable_with_linking,
            summary.trackable_without_linking);
  EXPECT_LT(summary.improvement(), 0.8);

  const auto movement = tracker.movement();
  EXPECT_GT(movement.devices_with_as_change, 0u);
  // Paper: most movers move exactly once.
  EXPECT_GT(movement.single_move_fraction, 0.5);

  const auto reassignment = tracker.reassignment();
  EXPECT_GT(reassignment.per_as.size(), 10u);
  // Paper: a majority-ish of ASes are >=90% static, and a handful of
  // fully-dynamic ASes exist.
  EXPECT_GT(static_cast<double>(reassignment.ases_90pct_static) /
                static_cast<double>(reassignment.per_as.size()),
            0.3);
  EXPECT_FALSE(reassignment.most_dynamic.empty());
}

TEST_F(PaperShapes, Figure1Discrepancy) {
  const auto disc = analysis::compute_scan_discrepancy(world_->archive);
  ASSERT_TRUE(disc.has_value());
  // Rapid7's blacklist is larger, so its scans see fewer hosts.
  EXPECT_LT(disc->rapid7_total_hosts, disc->umich_total_hosts);
  EXPECT_GT(disc->per_slash8.size(), 4u);
}

}  // namespace
}  // namespace sm
