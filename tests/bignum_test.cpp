// Unit + property tests for sm::bignum — arithmetic identities, division
// invariants, modular algebra, and primality.
#include <gtest/gtest.h>

#include "bignum/biguint.h"
#include "bignum/prime.h"
#include "util/prng.h"

namespace sm::bignum {
namespace {

using util::Rng;

BigUint random_biguint(Rng& rng, std::size_t max_bits) {
  const std::size_t bits = 1 + rng.below(max_bits);
  const std::size_t bytes = (bits + 7) / 8;
  util::Bytes buf(bytes);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
  return BigUint::from_bytes(buf);
}

// --- construction / formatting ---------------------------------------------

TEST(BigUint, ZeroProperties) {
  const BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(zero.to_bytes(), util::Bytes{0});
  EXPECT_EQ(zero.low64(), 0u);
}

TEST(BigUint, FromUint64) {
  const BigUint v(0x1234567890abcdefULL);
  EXPECT_EQ(v.to_hex(), "1234567890abcdef");
  EXPECT_EQ(v.low64(), 0x1234567890abcdefULL);
  EXPECT_EQ(v.bit_length(), 61u);
}

TEST(BigUint, HexRoundTrip) {
  const std::string hex = "deadbeefcafe0123456789abcdef00ff";
  EXPECT_EQ(BigUint::from_hex(hex).to_hex(), hex);
}

TEST(BigUint, FromHexRejectsGarbage) {
  EXPECT_THROW(BigUint::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUint, BytesRoundTripStripsLeadingZeros) {
  const util::Bytes padded = {0x00, 0x00, 0x12, 0x34};
  const BigUint v = BigUint::from_bytes(padded);
  EXPECT_EQ(v.to_bytes(), (util::Bytes{0x12, 0x34}));
}

// --- comparison ------------------------------------------------------------

TEST(BigUint, Ordering) {
  EXPECT_LT(BigUint(5), BigUint(7));
  EXPECT_GT(BigUint::from_hex("100000000"), BigUint(0xffffffffULL));
  EXPECT_EQ(BigUint(42), BigUint(42));
}

// --- arithmetic --------------------------------------------------------------

TEST(BigUint, AddCarriesAcrossLimbs) {
  const BigUint a = BigUint::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigUint(1)).to_hex(), "10000000000000000");
}

TEST(BigUint, SubBorrowsAcrossLimbs) {
  const BigUint a = BigUint::from_hex("10000000000000000");
  EXPECT_EQ((a - BigUint(1)).to_hex(), "ffffffffffffffff");
}

TEST(BigUint, SubUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::underflow_error);
}

TEST(BigUint, MultiplySchoolbook) {
  const BigUint a = BigUint::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
}

TEST(BigUint, DivModSmall) {
  const auto [q, r] = BigUint::divmod(BigUint(100), BigUint(7));
  EXPECT_EQ(q, BigUint(14));
  EXPECT_EQ(r, BigUint(2));
}

TEST(BigUint, DivByZeroThrows) {
  EXPECT_THROW(BigUint(1) / BigUint(0), std::domain_error);
  EXPECT_THROW(BigUint(1) % BigUint(0), std::domain_error);
}

TEST(BigUint, ShiftsInverse) {
  const BigUint v = BigUint::from_hex("123456789abcdef");
  EXPECT_EQ((v << 37) >> 37, v);
  EXPECT_EQ((v >> 200), BigUint(0));
}

// Property sweep: (a+b)-b == a, (a*b)/b == a, a == q*b + r with r < b.
class BigUintAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUintAlgebra, AdditionSubtractionInverse) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const BigUint a = random_biguint(rng, 256);
    const BigUint b = random_biguint(rng, 256);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigUintAlgebra, MultiplicationDivisionInverse) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 30; ++i) {
    const BigUint a = random_biguint(rng, 192);
    BigUint b = random_biguint(rng, 96);
    if (b.is_zero()) b = BigUint(3);
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

TEST_P(BigUintAlgebra, DivModInvariant) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 30; ++i) {
    const BigUint a = random_biguint(rng, 256);
    BigUint b = random_biguint(rng, 128);
    if (b.is_zero()) b = BigUint(5);
    const auto [q, r] = BigUint::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST_P(BigUintAlgebra, MultiplicationCommutesAndDistributes) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 30; ++i) {
    const BigUint a = random_biguint(rng, 128);
    const BigUint b = random_biguint(rng, 128);
    const BigUint c = random_biguint(rng, 128);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUintAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- modular arithmetic ------------------------------------------------------

TEST(BigUint, ModPowSmall) {
  // 5^3 mod 13 = 125 mod 13 = 8
  EXPECT_EQ(BigUint::mod_pow(BigUint(5), BigUint(3), BigUint(13)), BigUint(8));
}

TEST(BigUint, ModPowFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
  const BigUint p(1000003);
  for (std::uint64_t a : {2ULL, 42ULL, 999999ULL}) {
    EXPECT_EQ(BigUint::mod_pow(BigUint(a), p - BigUint(1), p), BigUint(1));
  }
}

TEST(BigUint, ModPowZeroExponent) {
  EXPECT_EQ(BigUint::mod_pow(BigUint(7), BigUint(0), BigUint(13)), BigUint(1));
  EXPECT_EQ(BigUint::mod_pow(BigUint(7), BigUint(5), BigUint(1)), BigUint(0));
}

TEST(BigUint, Gcd) {
  EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(36)), BigUint(12));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)), BigUint(5));
}

TEST(BigUint, ModInverse) {
  const auto inv = BigUint::mod_inverse(BigUint(3), BigUint(11));
  ASSERT_TRUE(inv.ok);
  EXPECT_EQ(inv.value, BigUint(4));  // 3*4 = 12 = 1 mod 11
  const auto none = BigUint::mod_inverse(BigUint(6), BigUint(9));
  EXPECT_FALSE(none.ok);
}

TEST(BigUint, ModInverseProperty) {
  Rng rng(77);
  const BigUint m = BigUint::from_hex("fffffffb");  // prime
  for (int i = 0; i < 25; ++i) {
    BigUint a = random_biguint(rng, 64) % m;
    if (a.is_zero()) a = BigUint(2);
    const auto inv = BigUint::mod_inverse(a, m);
    ASSERT_TRUE(inv.ok);
    EXPECT_EQ((a * inv.value) % m, BigUint(1));
  }
}

// --- primality ---------------------------------------------------------------

TEST(Prime, SmallKnownPrimes) {
  Rng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 101ULL, 65537ULL, 1000003ULL}) {
    EXPECT_TRUE(is_probable_prime(BigUint(p), rng)) << p;
  }
}

TEST(Prime, SmallKnownComposites) {
  Rng rng(2);
  for (std::uint64_t c : {1ULL, 4ULL, 100ULL, 65539ULL * 3, 561ULL, 41041ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  Rng rng(3);
  // Classic Fermat pseudoprimes that Miller-Rabin must reject.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL, 6601ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), rng)) << c;
  }
}

TEST(Prime, LargeKnownPrime) {
  Rng rng(4);
  // 2^127 - 1 is a Mersenne prime.
  const BigUint m127 = (BigUint(1) << 127) - BigUint(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 factors (it is 3 * 5 * 17 * ...).
  EXPECT_FALSE(is_probable_prime((BigUint(1) << 128) - BigUint(1), rng));
}

class RandomPrimeBits : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomPrimeBits, HasExactBitLengthAndIsPrime) {
  Rng rng(GetParam() * 31 + 7);
  const BigUint p = random_prime(GetParam(), rng);
  EXPECT_EQ(p.bit_length(), GetParam());
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, rng));
}

INSTANTIATE_TEST_SUITE_P(Bits, RandomPrimeBits,
                         ::testing::Values(16, 24, 32, 48, 64, 96, 128));

TEST(Prime, RandomBelowRespectsBound) {
  Rng rng(5);
  const BigUint bound = BigUint::from_hex("1000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(random_below(bound, rng), bound);
  }
}

}  // namespace
}  // namespace sm::bignum
