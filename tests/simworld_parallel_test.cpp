// Determinism of the parallel scan simulation: the SMAR v2 archive bytes a
// World produces must be bit-identical at every thread count (and pinned to
// a golden hash so an accidental behaviour change to the simulator cannot
// hide behind "still self-consistent").
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "scan/archive_io.h"
#include "simworld/world.h"
#include "util/hex.h"
#include "util/sha256.h"
#include "util/thread_pool.h"

namespace sm::simworld {
namespace {

// SHA-256 of WorldConfig::tiny()'s archive in SMAR v2 bytes. Pinned from
// the serial (1-thread) run; any divergence at higher thread counts — or
// any unintended simulator change — trips this.
constexpr char kTinyArchiveSha256[] =
    "e937ad7875a755e0739cd5aa6fc14017230e3a0db3b417970b7a1de7422010a2";

std::string archive_sha256(const WorldResult& world) {
  std::ostringstream out;
  EXPECT_TRUE(scan::save_archive(world.archive, out));
  const std::string bytes = out.str();
  return util::hex_encode(util::Sha256::digest(util::BytesView(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size())));
}

TEST(WorldParallel, ArchiveBytesIdenticalAcrossThreadCounts) {
  std::string reference_digest;
  std::size_t reference_issued = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const WorldResult world = World(WorldConfig::tiny(), &pool).run();
    // The 12-interval lease cap must never fire at default lease configs.
    EXPECT_EQ(world.dropped_lease_intervals, 0u) << threads << " threads";
    const std::string digest = archive_sha256(world);
    if (reference_digest.empty()) {
      reference_digest = digest;
      reference_issued = world.issued_certificates;
    }
    EXPECT_EQ(digest, reference_digest) << threads << " threads";
    EXPECT_EQ(world.issued_certificates, reference_issued)
        << threads << " threads";
  }
  EXPECT_EQ(reference_digest, kTinyArchiveSha256);
}

TEST(WorldParallel, GlobalPoolDefaultMatchesExplicitPool) {
  util::ThreadPool pool(3);
  const WorldResult with_pool = World(WorldConfig::tiny(), &pool).run();
  const WorldResult with_global = World(WorldConfig::tiny()).run();
  EXPECT_EQ(archive_sha256(with_pool), archive_sha256(with_global));
  EXPECT_EQ(with_pool.issued_certificates, with_global.issued_certificates);
}

}  // namespace
}  // namespace sm::simworld
