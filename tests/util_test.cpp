// Unit tests for sm::util — hashes against published vectors, hex codec,
// civil-date conversions, PRNG behaviour, and statistics helpers.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string_view>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/datetime.h"
#include "util/hex.h"
#include "util/md5.h"
#include "util/prng.h"
#include "util/sha1.h"
#include "util/sha256.h"
#include "util/stats.h"

namespace sm::util {
namespace {

// --- hex ---------------------------------------------------------------

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_EQ(hex_decode(""), Bytes{});
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(hex_decode("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(hex_decode("zz").has_value()); }

// --- SHA-256 (FIPS 180-4 vectors) ---------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_encode(Sha256::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("The quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(h.finish(), Sha256::digest(data));
}

// --- SHA-1 ---------------------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_encode(Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_encode(Sha1::digest(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha1::digest(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

// --- MD5 (RFC 1321 vectors) ----------------------------------------------

TEST(Md5, EmptyString) {
  EXPECT_EQ(hex_encode(Md5::digest({})),
            "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, Abc) {
  EXPECT_EQ(hex_encode(Md5::digest(to_bytes("abc"))),
            "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, LongerVector) {
  EXPECT_EQ(hex_encode(Md5::digest(to_bytes(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456"
                "789"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

// --- datetime -------------------------------------------------------------

TEST(DateTime, EpochIsZero) { EXPECT_EQ(make_date(1970, 1, 1), 0); }

TEST(DateTime, KnownDate) {
  // 2012-06-10 (first UMich scan in the paper's dataset).
  EXPECT_EQ(make_date(2012, 6, 10), 1339286400);
}

TEST(DateTime, RoundTripThroughCivil) {
  const UnixTime t = make_date(2014, 3, 30) + 12 * 3600 + 34 * 60 + 56;
  const CivilDateTime c = from_unix(t);
  EXPECT_EQ(c.year, 2014);
  EXPECT_EQ(c.month, 3u);
  EXPECT_EQ(c.day, 30u);
  EXPECT_EQ(c.hour, 12u);
  EXPECT_EQ(c.minute, 34u);
  EXPECT_EQ(c.second, 56u);
  EXPECT_EQ(to_unix(c), t);
}

TEST(DateTime, NegativeTimes) {
  const CivilDateTime c = from_unix(-1);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12u);
  EXPECT_EQ(c.day, 31u);
  EXPECT_EQ(c.second, 59u);
}

TEST(DateTime, FarFutureYear3000) {
  // The paper sees Not After dates in year 3000+; conversions must hold.
  const UnixTime t = make_date(3000, 1, 1);
  EXPECT_EQ(from_unix(t).year, 3000);
  EXPECT_GT(t, make_date(2049, 12, 31));
}

TEST(DateTime, LeapYearHandling) {
  EXPECT_EQ(make_date(2012, 3, 1) - make_date(2012, 2, 28),
            2 * kSecondsPerDay);
  EXPECT_EQ(make_date(2013, 3, 1) - make_date(2013, 2, 28),
            1 * kSecondsPerDay);
  EXPECT_EQ(make_date(2000, 3, 1) - make_date(2000, 2, 28),
            2 * kSecondsPerDay);  // 2000 was a leap year (div by 400)
  EXPECT_EQ(make_date(2100, 3, 1) - make_date(2100, 2, 28),
            1 * kSecondsPerDay);  // 2100 is not
}

TEST(DateTime, FormatAndParseRoundTrip) {
  const UnixTime t = make_date(2013, 11, 5) + 7 * 3600 + 8 * 60 + 9;
  EXPECT_EQ(format_datetime(t), "2013-11-05 07:08:09");
  EXPECT_EQ(parse_datetime("2013-11-05 07:08:09"), t);
  EXPECT_EQ(parse_datetime("2013-11-05"), make_date(2013, 11, 5));
}

TEST(DateTime, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_datetime("not a date").has_value());
  EXPECT_FALSE(parse_datetime("2013-13-05").has_value());
  EXPECT_FALSE(parse_datetime("2013-02-30").has_value());
  EXPECT_FALSE(parse_datetime("2013-11-05 25:00:00").has_value());
}

TEST(DateTime, UtcTimeWindow) {
  EXPECT_TRUE(fits_utctime(make_date(1950, 1, 1)));
  EXPECT_TRUE(fits_utctime(make_date(2049, 12, 31)));
  EXPECT_FALSE(fits_utctime(make_date(2050, 1, 1)));
  EXPECT_FALSE(fits_utctime(make_date(1949, 12, 31)));
}

// Property sweep: day arithmetic round-trips across four centuries.
class CivilRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CivilRoundTrip, DaysRoundTrip) {
  const int year = GetParam();
  for (unsigned month = 1; month <= 12; ++month) {
    const std::int64_t days = days_from_civil(year, month, 15);
    const CivilDateTime c = civil_from_days(days);
    EXPECT_EQ(c.year, year);
    EXPECT_EQ(c.month, month);
    EXPECT_EQ(c.day, 15u);
  }
}

INSTANTIATE_TEST_SUITE_P(Years, CivilRoundTrip,
                         ::testing::Values(1900, 1970, 1999, 2000, 2012, 2038,
                                           2100, 2400, 3000, 4750, 9999));

// --- prng -------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Fnv1a, KnownValues) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("vendor:lancom"), fnv1a("vendor:avm"));
}

// --- stats ---------------------------------------------------------------

TEST(EmpiricalCdf, BasicQueries) {
  const EmpiricalCdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3);
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 5);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3);
}

TEST(EmpiricalCdf, PercentileNearestRank) {
  const EmpiricalCdf cdf({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 10);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 100);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.9), 90);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.0);
  EXPECT_THROW(cdf.percentile(0.5), std::logic_error);
}

TEST(EmpiricalCdf, CurveEndsAtOne) {
  const EmpiricalCdf cdf({5, 1, 3, 2, 4});
  const auto pts = cdf.curve(10);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 5.0);
}

TEST(EmpiricalCdf, CurveClosesOnYWithRepeatedSamples) {
  // Regression: {1, 1} at max_points 1 subsamples to a single point
  // (1, 0.5); the old x-based closing guard saw x == max and skipped the
  // closing point, leaving a CDF that never reached 1.
  const EmpiricalCdf cdf({1, 1});
  const auto pts = cdf.curve(1);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.back().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(EmpiricalCdf, CurveMonotoneAndClosedUnderSubsampling) {
  const EmpiricalCdf cdf({1, 1, 2, 2, 2, 3, 7, 7, 7, 7, 9});
  for (const std::size_t max_points : {1u, 2u, 3u, 5u, 100u}) {
    const auto pts = cdf.curve(max_points);
    ASSERT_FALSE(pts.empty());
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
    EXPECT_DOUBLE_EQ(pts.back().first, 9.0);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      EXPECT_GE(pts[i].first, pts[i - 1].first);
      EXPECT_GE(pts[i].second, pts[i - 1].second);
    }
  }
}

TEST(EmpiricalCdf, CurveZeroPointsIsEmpty) {
  const EmpiricalCdf cdf({1, 2, 3});
  EXPECT_TRUE(cdf.curve(0).empty());
}

TEST(Counter, TopAndTotals) {
  Counter c;
  c.add("godaddy", 5);
  c.add("rapidssl", 3);
  c.add("empty");
  EXPECT_EQ(c.total(), 9u);
  EXPECT_EQ(c.distinct(), 3u);
  const auto top = c.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "godaddy");
  EXPECT_EQ(top[1].first, "rapidssl");
  EXPECT_EQ(c.count("empty"), 1u);
  EXPECT_EQ(c.count("missing"), 0u);
}

TEST(Counter, KeysToCover) {
  Counter c;
  c.add("a", 50);
  c.add("b", 30);
  c.add("c", 10);
  c.add("d", 10);
  EXPECT_EQ(c.keys_to_cover(0.5), 1u);
  EXPECT_EQ(c.keys_to_cover(0.8), 2u);
  EXPECT_EQ(c.keys_to_cover(1.0), 4u);
}

TEST(CoverageCurve, UniformKeysAreLinear) {
  const auto pts = coverage_curve({1, 1, 1, 1}, 100);
  for (const auto& [x, y] : pts) EXPECT_DOUBLE_EQ(x, y);
}

TEST(CoverageCurve, SharedKeysBendAboveDiagonal) {
  // One key covering most items: y must exceed x early on.
  const auto pts = coverage_curve({97, 1, 1, 1}, 100);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.front().first, 0.25);
  EXPECT_DOUBLE_EQ(pts.front().second, 0.97);
}

TEST(CoverageCurve, ZeroMaxPointsIsEmpty) {
  // Regression: max_points == 0 divided by zero in the step computation.
  EXPECT_TRUE(coverage_curve({3, 2, 1}, 0).empty());
  EXPECT_TRUE(coverage_curve({}, 0).empty());
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.879), "87.9%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "count"});
  t.add_row({"lancom", "4691873"});
  t.add_row({"x", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("lancom  4691873"), std::string::npos);
}

TEST(TextTable, EmptyHeaderTableRendersEmpty) {
  // Regression: zero headers made the rule length underflow to SIZE_MAX
  // and str() tried to build a multi-exabyte string of dashes.
  TextTable t({});
  EXPECT_EQ(t.str(), "");
}

TEST(TextTable, OverWideRowThrows) {
  TextTable t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
  // Narrow rows still pad to the header width.
  TextTable u({"a", "b"});
  u.add_row({"x"});
  EXPECT_NE(u.str().find("x"), std::string::npos);
}

TEST(Crc32, StandardVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("")), 0x00000000u);
  EXPECT_EQ(crc32(std::string_view("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string_view(
                "The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data =
      "a longer buffer whose crc is computed in pieces of varying size to "
      "exercise the sliced fast path and the byte tail together.";
  const std::uint32_t whole = crc32(data.data(), data.size());
  // Every split point must agree with the one-shot value, including splits
  // that leave the second half unaligned for the 8-byte fold.
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t c = crc32(data.data(), split);
    c = crc32(data.data() + split, data.size() - split, c);
    EXPECT_EQ(c, whole) << "split=" << split;
  }
}

TEST(Crc32, EveryLengthAndOffset) {
  // Cross-check the sliced implementation against a reference bytewise
  // loop for every small length at every alignment offset.
  std::array<unsigned char, 96> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(31 * i + 7);
  }
  const auto reference = [](const unsigned char* p, std::size_t n) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i) {
      c ^= p[i];
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
    }
    return c ^ 0xFFFFFFFFu;
  };
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (std::size_t len = 0; len + offset <= data.size(); ++len) {
      EXPECT_EQ(crc32(data.data() + offset, len),
                reference(data.data() + offset, len))
          << "offset=" << offset << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace sm::util
