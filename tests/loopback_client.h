// Minimal blocking loopback client for the netio/notary tests: connect to
// a TcpServer under test, push raw bytes, and pull decoded frames. Tests
// exercise the server's non-blocking path; the client side can stay simple
// and synchronous.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string_view>
#include <vector>

#include "netio/frame.h"

namespace sm::testing {

/// A blocking TCP connection to 127.0.0.1:port.
class LoopbackClient {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting (the backpressure
  /// tests use a tiny receive window to keep response bytes queued on the
  /// server).
  explicit LoopbackClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~LoopbackClient() { close(); }
  LoopbackClient(const LoopbackClient&) = delete;
  LoopbackClient& operator=(const LoopbackClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Sends every byte (raw — callers encode frames themselves when they
  /// want to corrupt them).
  bool send_raw(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  bool send_frame(netio::FrameType type, std::string_view payload) {
    return send_raw(netio::encode_frame(type, payload));
  }

  /// Half-closes the write side so the server sees EOF while we can still
  /// read its final responses.
  void shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  /// Blocks until one well-formed frame arrives. False on EOF, error, or a
  /// framing violation from the server (which would be a server bug).
  bool read_frame(netio::Frame& out) {
    for (;;) {
      switch (decoder_.next(out)) {
        case netio::DecodeStatus::kFrame:
          return true;
        case netio::DecodeStatus::kMalformed:
          return false;
        case netio::DecodeStatus::kNeedMore:
          break;
      }
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads until the server closes, collecting every frame it sent. False
  /// if any received bytes failed to decode as frames.
  bool read_until_eof(std::vector<netio::Frame>& frames) {
    netio::Frame frame;
    for (;;) {
      const auto status = decoder_.next(frame);
      if (status == netio::DecodeStatus::kFrame) {
        frames.push_back(frame);
        continue;
      }
      if (status == netio::DecodeStatus::kMalformed) return false;
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return decoder_.buffered() == 0;  // no torn trailing bytes
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Aborts the connection: SO_LINGER(0) makes close() send RST instead
  /// of FIN, so the server sees EPOLLERR/EPOLLHUP rather than clean EOF —
  /// the fd-churn tests use this to recycle server-side fd numbers fast.
  void abortive_close() {
    if (fd_ < 0) return;
    const linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  netio::FrameDecoder decoder_;
};

}  // namespace sm::testing
