// Tests for sm::netio: the frame codec (round-trips, incremental decode,
// truncation/bit-flip rejection) and the epoll TcpServer (echo traffic,
// pipelining, malformed-frame handling, idle timeouts, graceful drain).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "loopback_client.h"
#include "netio/client_pool.h"
#include "netio/frame.h"
#include "netio/server.h"

namespace sm::netio {
namespace {

using testing::LoopbackClient;

std::string sample_payload(std::size_t size) {
  std::string out(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>((i * 131 + 7) & 0xff);
  }
  return out;
}

TEST(FrameCodec, RoundTripsEveryTypeAndSize) {
  const FrameType types[] = {
      FrameType::kQuery,    FrameType::kStats,        FrameType::kPing,
      FrameType::kSnapshot, FrameType::kCertInfo,     FrameType::kNotFound,
      FrameType::kStatsText, FrameType::kPong,
      FrameType::kSnapshotInfo, FrameType::kError,
  };
  const std::size_t sizes[] = {0, 1, 16, 255, 256, 4096};
  for (const FrameType type : types) {
    for (const std::size_t size : sizes) {
      const std::string payload = sample_payload(size);
      const std::string wire = encode_frame(type, payload);
      ASSERT_EQ(wire.size(), kFrameHeaderSize + size + kFrameTrailerSize);

      FrameDecoder decoder;
      decoder.feed(wire);
      Frame out;
      ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
      EXPECT_EQ(out.type, type);
      EXPECT_EQ(out.payload, payload);
      EXPECT_EQ(decoder.buffered(), 0u);
      EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore);
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(FrameCodec, DecodesByteByByte) {
  const std::string wire = encode_frame(FrameType::kPing, "incremental");
  FrameDecoder decoder;
  Frame out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.data() + i, 1);
    ASSERT_EQ(decoder.next(out), DecodeStatus::kNeedMore) << "byte " << i;
  }
  decoder.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.payload, "incremental");
}

TEST(FrameCodec, DrainsPipelinedFramesInOrder) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    wire += encode_frame(FrameType::kPing, "frame-" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
    EXPECT_EQ(out.payload, "frame-" + std::to_string(i));
  }
  EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore);
}

TEST(FrameCodec, DecodesUnknownTypeWhenWellFramed) {
  // Forward compatibility: a type byte this build does not know is NOT a
  // framing violation — a newer peer may legitimately send it, and the
  // handler answers kError without dropping the connection. The decoder
  // surfaces the frame; only the length limit and the CRC police garbage.
  const auto future_type = static_cast<FrameType>(0x7f);
  ASSERT_FALSE(is_known_frame_type(0x7f));
  FrameDecoder decoder;
  decoder.feed(encode_frame(future_type, "from the future"));
  Frame out;
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.type, future_type);
  EXPECT_EQ(out.payload, "from the future");
  EXPECT_FALSE(decoder.poisoned());
  // The stream stays healthy: a known frame decodes right after it.
  decoder.feed(encode_frame(FrameType::kPing, "y"));
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.type, FrameType::kPing);
}

TEST(FrameCodec, TypeByteIsChecksummed) {
  // Flipping the type byte on the wire without re-running the CRC is
  // corruption, not a future protocol — the checksum covers the type.
  std::string wire = encode_frame(FrameType::kPing, "x");
  wire[0] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("checksum"), std::string::npos);
}

TEST(FrameCodec, RejectsOversizedLengthBeforeBuffering) {
  FrameDecoder decoder(/*max_payload=*/64);
  // Header claims 65 payload bytes; rejection must not wait for them.
  std::string header;
  header.push_back(static_cast<char>(FrameType::kPing));
  const std::uint32_t size = 65;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((size >> (8 * i)) & 0xff));
  }
  decoder.feed(header);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos);
}

TEST(FrameCodec, RejectsChecksumMismatch) {
  std::string wire = encode_frame(FrameType::kQuery, sample_payload(16));
  wire[kFrameHeaderSize + 3] ^= 0x01;  // corrupt one payload byte
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_NE(decoder.error().find("checksum"), std::string::npos);
}

TEST(FrameCodec, NoTruncationDecodesAsAFrame) {
  const std::string wire = encode_frame(FrameType::kQuery, sample_payload(24));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(wire.data(), cut);
    Frame out;
    // A strict prefix never yields a frame; it either waits or (when the
    // type byte itself is absent/garbled) cannot fail yet either.
    EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore) << "cut " << cut;
  }
}

TEST(FrameCodec, NoSingleBitFlipDecodesAsAFrame) {
  const std::string wire = encode_frame(FrameType::kQuery, sample_payload(24));
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.feed(corrupt);
      Frame out;
      // Either detected immediately (kMalformed) or the flipped length
      // field demands bytes that never arrive (kNeedMore). Never a frame.
      EXPECT_NE(decoder.next(out), DecodeStatus::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ---- live server ---------------------------------------------------------

class EchoServerTest : public ::testing::Test {
 protected:
  ServerConfig config_ = [] {
    ServerConfig config;
    config.workers = 2;
    return config;
  }();

  // Echo handler: kPing -> kPong, anything else -> kError.
  static Frame echo(FrameType type, std::string_view payload) {
    if (type == FrameType::kPing) {
      return {FrameType::kPong, std::string(payload)};
    }
    return {FrameType::kError, "echo server only pings"};
  }
};

TEST_F(EchoServerTest, ServesSequentialRequests) {
  TcpServer server(config_, echo);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  Frame response;
  for (int i = 0; i < 20; ++i) {
    const std::string payload = "ping-" + std::to_string(i);
    ASSERT_TRUE(client.send_frame(FrameType::kPing, payload));
    ASSERT_TRUE(client.read_frame(response));
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, payload);
  }
  client.close();
  server.shutdown();
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.frames_handled, 20u);
  EXPECT_EQ(counters.malformed_frames, 0u);
}

TEST_F(EchoServerTest, StreamHandlerAppendsFramesDirectlyToOutput) {
  // The stream-handler form writes encoded frames straight into the
  // connection's output buffer — including several frames per request.
  TcpServer server(config_, [](FrameType type, std::string_view payload,
                               std::string& out) {
    if (type == FrameType::kPing) {
      encode_frame_into(out, FrameType::kPong, payload);
      encode_frame_into(out, FrameType::kPong, "tail");
    } else {
      encode_frame_into(out, FrameType::kError, "ping only");
    }
  });
  ASSERT_TRUE(server.start());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  Frame response;
  for (int i = 0; i < 8; ++i) {
    const std::string payload = "stream-" + std::to_string(i);
    ASSERT_TRUE(client.send_frame(FrameType::kPing, payload));
    ASSERT_TRUE(client.read_frame(response));
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, payload);
    ASSERT_TRUE(client.read_frame(response));
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, "tail");
  }
  client.close();
  server.shutdown();
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.frames_handled, 8u);
  // Every flushed response costs at least one sendmsg; the counter is
  // how bench_check tracks the vectored-write savings.
  EXPECT_GE(counters.send_syscalls, 1u);
  EXPECT_LE(counters.send_syscalls, 16u);
}

TEST_F(EchoServerTest, CallManyPipelinesABatchOverOneConnection) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  ClientPoolConfig pool_config;
  pool_config.connections_per_backend = 1;
  pool_config.ping_interval_ms = 0;
  ClientPool pool({{"127.0.0.1", server.port()}}, pool_config);

  std::vector<std::string> payloads;
  for (int i = 0; i < 32; ++i) {
    payloads.push_back("batch-" + std::to_string(i));
  }
  std::vector<std::string_view> views(payloads.begin(), payloads.end());
  auto futures = pool.call_many(0, FrameType::kPing, views);
  ASSERT_EQ(futures.size(), payloads.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    CallResult result = futures[i].get();
    ASSERT_TRUE(result.ok()) << "call " << i;
    EXPECT_EQ(result.response.type, FrameType::kPong);
    EXPECT_EQ(result.response.payload, payloads[i]);
  }
  const BackendCounters counters = pool.counters(0);
  EXPECT_EQ(counters.requests, payloads.size());
  EXPECT_EQ(counters.ok, payloads.size());
  server.shutdown();
}

// kRevocationQuery batches ride the same call_many pipelining as every
// other frame type. When the backend stalls mid-batch, correlation is
// positional, so the whole in-flight pipeline fails with kTimeout, the
// backend is marked down, and the connection resets — after which the
// next batch reconnects and succeeds (the health bit is advisory routing
// state, not a gate; with probing off nothing marks it back up).
TEST_F(EchoServerTest, CallManyRevocationBatchAndMidBatchMarkDown) {
  constexpr int kBatch = 12;
  std::atomic<int> handled{0};
  std::atomic<int> stall_at{-1};  // handler index that sleeps past timeout
  TcpServer server(config_, [&](FrameType type, std::string_view payload) {
    if (type != FrameType::kRevocationQuery) {
      return Frame{FrameType::kError, "revocation only"};
    }
    if (handled.fetch_add(1, std::memory_order_relaxed) ==
        stall_at.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    }
    return Frame{FrameType::kRevocationInfo,
                 "revocation: revoked " + std::string(payload)};
  });
  ASSERT_TRUE(server.start());

  ClientPoolConfig pool_config;
  pool_config.connections_per_backend = 1;  // one pipeline, strict order
  pool_config.request_timeout_ms = 150;
  pool_config.ping_interval_ms = 0;  // nobody marks it back up
  ClientPool pool({{"127.0.0.1", server.port()}}, pool_config);

  std::vector<std::string> payloads;
  for (int i = 0; i < kBatch; ++i) {
    payloads.push_back("fp-" + std::to_string(i));
  }
  std::vector<std::string_view> views(payloads.begin(), payloads.end());

  // A healthy batch pipelines in order over the one connection.
  auto futures = pool.call_many(0, FrameType::kRevocationQuery, views);
  ASSERT_EQ(futures.size(), payloads.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    CallResult result = futures[i].get();
    ASSERT_TRUE(result.ok()) << "call " << i;
    EXPECT_EQ(result.response.type, FrameType::kRevocationInfo);
    EXPECT_EQ(result.response.payload, "revocation: revoked " + payloads[i]);
  }
  EXPECT_TRUE(pool.healthy(0));
  EXPECT_EQ(pool.counters(0).ok, static_cast<std::uint64_t>(kBatch));

  // Now the backend stalls mid-batch: the oldest answer goes overdue,
  // and everything behind it on the pipeline is unidentifiable — the
  // whole flight fails and the backend is marked down.
  stall_at.store(kBatch + 4, std::memory_order_relaxed);
  auto stalled = pool.call_many(0, FrameType::kRevocationQuery, views);
  int failed = 0;
  for (auto& future : stalled) {
    const CallResult result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status, CallStatus::kTimeout);
      ++failed;
    }
  }
  EXPECT_GE(failed, kBatch - 4);
  EXPECT_FALSE(pool.healthy(0));
  const BackendCounters counters = pool.counters(0);
  EXPECT_GE(counters.timeouts, 1u);
  EXPECT_GE(counters.mark_downs, 1u);

  // Marked down is not gated off: the next batch reconnects the reset
  // connection and pipelines normally.
  stall_at.store(-1, std::memory_order_relaxed);
  auto retry = pool.call_many(0, FrameType::kRevocationQuery, views);
  for (std::size_t i = 0; i < retry.size(); ++i) {
    CallResult result = retry[i].get();
    ASSERT_TRUE(result.ok()) << "retry call " << i;
    EXPECT_EQ(result.response.payload, "revocation: revoked " + payloads[i]);
  }
  EXPECT_GE(pool.counters(0).reconnects, 2u);
  // Only a successful probe flips the health bit back, and probing is off.
  EXPECT_FALSE(pool.healthy(0));
  server.shutdown();
}

TEST_F(EchoServerTest, ServesPipelinedBurstInOrder) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    burst += encode_frame(FrameType::kPing, "burst-" + std::to_string(i));
  }
  ASSERT_TRUE(client.send_raw(burst));
  Frame response;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(client.read_frame(response)) << "response " << i;
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, "burst-" + std::to_string(i));
  }
}

TEST_F(EchoServerTest, ServesManyConcurrentConnections) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LoopbackClient client(server.port());
      if (!client.connected()) return;
      Frame response;
      for (int i = 0; i < kPerClient; ++i) {
        const std::string payload =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.send_frame(FrameType::kPing, payload)) return;
        if (!client.read_frame(response)) return;
        if (response.type != FrameType::kPong || response.payload != payload)
          return;
        ++ok[c];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok[c], kPerClient) << "client " << c;
  }
  server.shutdown();
  EXPECT_EQ(server.counters().frames_handled,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST_F(EchoServerTest, MalformedFrameGetsErrorThenCloseAndServerSurvives) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  {
    LoopbackClient bad(server.port());
    ASSERT_TRUE(bad.connected());
    // A healthy frame first, then garbage: response for the first, one
    // kError for the garbage, then close.
    ASSERT_TRUE(bad.send_frame(FrameType::kPing, "before"));
    ASSERT_TRUE(bad.send_raw("\xff\xff\xff\xff\xff\xff\xff\xff"));
    std::vector<Frame> frames;
    ASSERT_TRUE(bad.read_until_eof(frames));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::kPong);
    EXPECT_EQ(frames[0].payload, "before");
    EXPECT_EQ(frames[1].type, FrameType::kError);
  }

  // The worker is unharmed: a fresh connection still gets service.
  LoopbackClient good(server.port());
  ASSERT_TRUE(good.connected());
  ASSERT_TRUE(good.send_frame(FrameType::kPing, "after"));
  Frame response;
  ASSERT_TRUE(good.read_frame(response));
  EXPECT_EQ(response.payload, "after");

  good.close();
  server.shutdown();
  EXPECT_EQ(server.counters().malformed_frames, 1u);
}

TEST_F(EchoServerTest, IdleConnectionsAreClosed) {
  config_.idle_timeout_ms = 100;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  std::vector<Frame> frames;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_TRUE(idle.read_until_eof(frames));  // blocks until the server closes
  EXPECT_TRUE(frames.empty());
  EXPECT_LT(std::chrono::steady_clock::now() - begin, std::chrono::seconds(10));
  server.shutdown();
  EXPECT_GE(server.counters().idle_closed, 1u);
}

TEST_F(EchoServerTest, EofAfterRequestStillGetsTheResponse) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "parting"));
  client.shutdown_write();  // server sees EOF right behind the request
  std::vector<Frame> frames;
  ASSERT_TRUE(client.read_until_eof(frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPong);
  EXPECT_EQ(frames[0].payload, "parting");
}

TEST_F(EchoServerTest, ShutdownFlushesAndClosesCleanly) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  Frame response;
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "pre-shutdown"));
  ASSERT_TRUE(client.read_frame(response));

  server.shutdown();
  EXPECT_FALSE(server.running());
  // The drained connection reads EOF, not a reset or torn bytes.
  std::vector<Frame> frames;
  EXPECT_TRUE(client.read_until_eof(frames));
  EXPECT_TRUE(frames.empty());
  // Idempotent.
  server.shutdown();
  EXPECT_EQ(server.counters().connections_closed,
            server.counters().connections_accepted);
}

TEST_F(EchoServerTest, StartFailsOnUnbindableAddress) {
  config_.bind_address = "203.0.113.1";  // TEST-NET, not local
  TcpServer server(config_, echo);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
}

// ---- event-loop lifecycle regressions ------------------------------------

// Regression: a connection closed mid-batch (abortive RST) frees its fd
// number; if the same epoll_wait batch also carries a wake event, the old
// code adopted pending connections immediately, so a freshly adopted
// connection could be registered under the recycled fd — and a stale
// EPOLLHUP/EPOLLERR later in the same events[] array killed it. With
// adoption deferred to end-of-batch, fresh connections always survive
// this churn. One worker maximizes fd-number recycling.
TEST_F(EchoServerTest, FdChurnDoesNotKillFreshlyAdoptedConnections) {
  config_.workers = 1;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  constexpr int kIterations = 100;
  constexpr int kAborters = 4;
  for (int i = 0; i < kIterations; ++i) {
    // A burst of connections that RST right after sending a request: the
    // worker sees readable bytes and an error/hup for each, closes them,
    // and their fd numbers free up mid-batch.
    std::vector<std::unique_ptr<LoopbackClient>> aborters;
    for (int a = 0; a < kAborters; ++a) {
      auto aborter = std::make_unique<LoopbackClient>(server.port());
      ASSERT_TRUE(aborter->connected());
      ASSERT_TRUE(aborter->send_frame(FrameType::kPing, "doomed"));
      aborters.push_back(std::move(aborter));
    }
    for (auto& aborter : aborters) aborter->abortive_close();
    // Immediately behind the churn: a connection that must survive. Its
    // server-side fd typically recycles one of the aborted numbers.
    LoopbackClient fresh(server.port());
    ASSERT_TRUE(fresh.connected());
    const std::string payload = "alive-" + std::to_string(i);
    ASSERT_TRUE(fresh.send_frame(FrameType::kPing, payload));
    Frame response;
    ASSERT_TRUE(fresh.read_frame(response)) << "iteration " << i;
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, payload);
  }
  server.shutdown();
  EXPECT_EQ(server.counters().connections_closed,
            server.counters().connections_accepted);
}

namespace {

std::size_t count_open_fds() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

// Fills every free fd slot under the current RLIMIT_NOFILE with dup(0),
// then frees exactly `keep_free` of them. RAII-restores the dups and the
// original limit.
class FdExhauster {
 public:
  explicit FdExhauster(std::size_t keep_free) {
    getrlimit(RLIMIT_NOFILE, &old_);
    rlimit tight = old_;
    // A low ceiling keeps the fill cheap; every fd this process has open
    // sits far below 256.
    tight.rlim_cur = 256;
    setrlimit(RLIMIT_NOFILE, &tight);
    for (;;) {
      const int fd = ::dup(0);
      if (fd < 0) break;
      fillers_.push_back(fd);
    }
    while (keep_free > 0 && !fillers_.empty()) {
      ::close(fillers_.back());
      fillers_.pop_back();
      --keep_free;
    }
  }

  ~FdExhauster() {
    release_all();
    setrlimit(RLIMIT_NOFILE, &old_);
  }

  /// Frees `n` more slots (lets a backed-off acceptor make progress).
  void release(std::size_t n) {
    while (n > 0 && !fillers_.empty()) {
      ::close(fillers_.back());
      fillers_.pop_back();
      --n;
    }
  }

  void release_all() {
    for (const int fd : fillers_) ::close(fd);
    fillers_.clear();
  }

 private:
  rlimit old_{};
  std::vector<int> fillers_;
};

}  // namespace

// Regression: accept4 failing with EMFILE used to break straight back to
// poll(), which (level-triggered) reported POLLIN again immediately —
// a busy spin pinning a core for as long as the fd table stayed full. The
// acceptor now backs off ~10ms per failure and counts each backoff; once
// an fd frees up, the backlogged connection is accepted and served.
TEST_F(EchoServerTest, AcceptorBacksOffOnFdExhaustion) {
  config_.workers = 1;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  // Leave exactly one free slot — consumed by the client's own socket, so
  // the server-side accept4 is guaranteed to hit EMFILE.
  FdExhauster exhaust(/*keep_free=*/1);
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());  // SYN-ACKed from the backlog

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.counters().accept_backoffs == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.counters().accept_backoffs, 1u);

  // Free the table: the acceptor's next poll round adopts the backlogged
  // connection and service resumes.
  exhaust.release_all();
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "after-emfile"));
  Frame response;
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.type, FrameType::kPong);
  EXPECT_EQ(response.payload, "after-emfile");
}

// Regression: ServerConfig documents that a backpressured connection
// "resumes once half is flushed", but flush() only re-armed reading when
// the outbuf was completely empty. The hysteresis resume is observable as
// backpressure_resumes (counted only when reading resumes with bytes
// still queued). A pipelining client with a tiny receive buffer forces
// the pause; a slow drain forces the EAGAIN path where the half-drain
// resume lives.
TEST_F(EchoServerTest, BackpressureResumesAtHalfDrainNotEmpty) {
  config_.workers = 1;
  // The kernel autotunes the server connection's send buffer up to
  // tcp_wmem[2]; a single EPOLLOUT flush can therefore move that many
  // bytes at once. The resume band (half the cap) must span at least the
  // kernel buffer, or the drain can jump clean over it — from above the
  // band to an empty outbuf — without ever hitting EAGAIN inside it.
  std::size_t wmem_max = 4u << 20;
  {
    std::ifstream wmem("/proc/sys/net/ipv4/tcp_wmem");
    std::size_t lo = 0, def = 0, max = 0;
    if (wmem >> lo >> def >> max && max > 0) wmem_max = max;
  }
  config_.max_buffered_responses = 2 * wmem_max;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  // Small receive window: response bytes pile up in the server's outbuf
  // instead of the kernel buffers.
  LoopbackClient client(server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(client.connected());

  // Four caps' worth of pongs: enough to force a pause no matter how much
  // the kernel swallows, with a long EAGAIN-paced drain behind it.
  const std::string payload = sample_payload(16 * 1024);
  const int kFrames =
      static_cast<int>(4 * config_.max_buffered_responses / payload.size());
  std::thread writer([&] {
    std::string burst;
    for (int i = 0; i < kFrames; ++i) {
      burst += encode_frame(FrameType::kPing, payload);
    }
    client.send_raw(burst);
  });

  // Hold off reading until the server has actually paused. With the client
  // sitting on its receive window, the kernel absorbs a bounded amount
  // (server sndbuf + client rcvbuf) and everything else must pile up in
  // the outbuf — so the pause is reached no matter how slowly the server
  // runs relative to the drain (sanitizer builds are ~10x slower).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.counters().backpressure_pauses == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Drain every response; with the old all-or-nothing resume this still
  // completes (the server resumes on empty), but backpressure_resumes
  // stays 0 — the half-drain fix is what makes it positive.
  Frame response;
  int received = 0;
  for (; received < kFrames; ++received) {
    if (!client.read_frame(response)) break;
    ASSERT_EQ(response.type, FrameType::kPong);
    ASSERT_EQ(response.payload, payload) << "frame " << received;
  }
  writer.join();
  EXPECT_EQ(received, kFrames);
  server.shutdown();

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.frames_handled, static_cast<std::uint64_t>(kFrames));
  EXPECT_GE(counters.backpressure_pauses, 1u);
  EXPECT_GE(counters.backpressure_resumes, 1u);
}

// Regression: when a later worker's epoll_create1/eventfd failed during
// start(), the earlier workers' fds leaked — shutdown() early-returns
// while `started` is false, and the old failure path only closed the
// listen socket. Sweep every fd budget that makes start() fail partway
// and assert the fd table returns to its baseline each time.
TEST_F(EchoServerTest, PartialStartFailureLeaksNoFds) {
  config_.workers = 4;
  // Full start needs 10 fds: listen + stop eventfd + 4 x (epoll + wake).
  for (std::size_t budget = 1; budget < 10; ++budget) {
    FdExhauster exhaust(/*keep_free=*/budget);
    const std::size_t before = count_open_fds();
    TcpServer server(config_, echo);
    std::string error;
    EXPECT_FALSE(server.start(&error)) << "budget " << budget;
    EXPECT_FALSE(error.empty()) << "budget " << budget;
    EXPECT_EQ(count_open_fds(), before) << "budget " << budget;
  }
  // Sanity: with the table unconstrained the same config starts fine.
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());
  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "post-sweep"));
  Frame response;
  ASSERT_TRUE(client.read_frame(response));
  EXPECT_EQ(response.payload, "post-sweep");
}

namespace {

// fd -> readlink target. Keyed on both so a *new* fd that recycles a
// pre-existing number (e.g. the number this listing's own directory fd
// frees) is still recognized as new.
std::vector<std::pair<int, std::string>> list_open_fds() {
  std::vector<std::pair<int, std::string>> fds;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    std::error_code ec;
    const auto target = std::filesystem::read_symlink(entry.path(), ec);
    if (!ec) fds.emplace_back(std::stoi(entry.path().filename().string()),
                              target.string());
  }
  return fds;
}

}  // namespace

// Regression: none of the server's fds (listen socket, eventfds, epoll
// instances, accepted connections) carried FD_CLOEXEC, so every one of
// them leaked into any child the host process forked — sm_notaryd's
// shard/router deployments fork-exec freely. Every fd the server creates
// after this snapshot must be close-on-exec.
TEST_F(EchoServerTest, AllServerFdsAreCloexec) {
  config_.workers = 2;
  const auto before = list_open_fds();

  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());
  // An accepted connection adds the accept4'd fd to the set under test.
  // Raw client socket (not LoopbackClient) so the test can mark its own
  // fd CLOEXEC and then assert the property on *every* new fd.
  const int client = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr),
            0);
  const std::string ping = encode_frame(FrameType::kPing, "fd-audit");
  ASSERT_EQ(::send(client, ping.data(), ping.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(ping.size()));
  char buf[256];
  ASSERT_GT(::recv(client, buf, sizeof buf, 0), 0);  // conn fd exists now

  std::size_t audited = 0;
  for (const auto& [fd, target] : list_open_fds()) {
    if (std::find(before.begin(), before.end(),
                  std::make_pair(fd, target)) != before.end()) {
      continue;  // pre-existing (stdio, gtest, ...), not ours to judge
    }
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags < 0) continue;  // closed since listing (the /proc dir fd)
    EXPECT_TRUE(flags & FD_CLOEXEC) << "fd " << fd << " leaks across exec";
    ++audited;
  }
  // listen + stop eventfd + per-worker (epoll + wake) + conn + client.
  EXPECT_GE(audited, 2 + 2 * config_.workers + 2);
  ::close(client);
  server.shutdown();
}

// Regression: sweep_idle reaped connections purely by last_activity, and
// a backpressured connection whose peer drains slowly makes no write
// progress — so the sweep cut off connections mid-response with unsent
// bytes queued and EPOLLOUT armed. Such connections are now exempt (and
// counted); only truly idle connections are reaped.
TEST_F(EchoServerTest, IdleSweepSparesBackpressuredConnections) {
  config_.workers = 1;
  config_.idle_timeout_ms = 100;  // far below the time the pause lasts
  config_.max_buffered_responses = 256 * 1024;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  std::size_t wmem_max = 4u << 20;
  {
    std::ifstream wmem("/proc/sys/net/ipv4/tcp_wmem");
    std::size_t lo = 0, def = 0, max = 0;
    if (wmem >> lo >> def >> max && max > 0) wmem_max = max;
  }

  // Enough response bytes to fill the kernel buffers (forcing EAGAIN,
  // which arms EPOLLOUT) and then the outbuf cap (forcing the pause).
  // Encoded BEFORE connecting: under sanitizers the CRC/concat work takes
  // longer than idle_timeout_ms, and the sweep would reap a connection
  // that had not yet sent its first byte.
  const std::string payload = sample_payload(16 * 1024);
  const int kFrames = static_cast<int>(
      (wmem_max + 8 * config_.max_buffered_responses) / payload.size());
  std::string burst;
  burst.reserve(static_cast<std::size_t>(kFrames) * (payload.size() + 16));
  for (int i = 0; i < kFrames; ++i) {
    burst += encode_frame(FrameType::kPing, payload);
  }

  LoopbackClient client(server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(client.connected());
  std::thread writer([&] { client.send_raw(burst); });

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.counters().backpressure_pauses == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // EXPECT (not ASSERT) throughout: the drain below must run even on
  // failure so `writer` unblocks and joins instead of hitting terminate.
  EXPECT_GE(server.counters().backpressure_pauses, 1u);

  // Sit through several idle periods without reading: the sweep must see
  // the stalled-but-backpressured connection and spare it.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.counters().idle_exempted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.counters().idle_exempted, 1u);

  // The connection survived: every queued response is still deliverable.
  Frame response;
  int received = 0;
  for (; received < kFrames; ++received) {
    if (!client.read_frame(response)) break;
    ASSERT_EQ(response.type, FrameType::kPong);
  }
  writer.join();
  EXPECT_EQ(received, kFrames);
  server.shutdown();
  EXPECT_EQ(server.counters().frames_handled,
            static_cast<std::uint64_t>(kFrames));
}

// A graceful drain must deliver every response already queued on a
// backpressured connection — the peer is reading, just slowly — before
// closing, rather than cutting the stream at the first sweep.
TEST_F(EchoServerTest, DrainFlushesBackpressuredOutbufBeforeDeadline) {
  config_.workers = 1;
  config_.max_buffered_responses = 256 * 1024;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  std::size_t wmem_max = 4u << 20;
  {
    std::ifstream wmem("/proc/sys/net/ipv4/tcp_wmem");
    std::size_t lo = 0, def = 0, max = 0;
    if (wmem >> lo >> def >> max && max > 0) wmem_max = max;
  }

  LoopbackClient client(server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(client.connected());
  const std::string payload = sample_payload(16 * 1024);
  const int kFrames = static_cast<int>(
      (wmem_max + 8 * config_.max_buffered_responses) / payload.size());
  std::thread writer([&] {
    std::string burst;
    for (int i = 0; i < kFrames; ++i) {
      burst += encode_frame(FrameType::kPing, payload);
    }
    client.send_raw(burst);
  });

  // Initiate the drain while responses are still queued server-side.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.counters().backpressure_pauses == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(server.counters().backpressure_pauses, 1u);
  std::thread drainer([&] { server.shutdown(); });

  // The draining server delivers every response it accepted, then EOF —
  // even when it paused reading mid-burst and our unread request bytes
  // are still queued on its side (the lingering half-close; closing
  // outright there would RST and destroy the in-flight response tail).
  std::vector<Frame> frames;
  EXPECT_TRUE(client.read_until_eof(frames));
  writer.join();
  // Complete the linger: our EOF lets the server close instead of
  // holding the connection until the drain deadline.
  client.shutdown_write();
  drainer.join();
  const std::uint64_t handled = server.counters().frames_handled;
  EXPECT_EQ(frames.size(), handled);
  for (const Frame& frame : frames) {
    EXPECT_EQ(frame.type, FrameType::kPong);
  }
  EXPECT_EQ(server.counters().connections_closed,
            server.counters().connections_accepted);
}

}  // namespace
}  // namespace sm::netio
