// Tests for sm::netio: the frame codec (round-trips, incremental decode,
// truncation/bit-flip rejection) and the epoll TcpServer (echo traffic,
// pipelining, malformed-frame handling, idle timeouts, graceful drain).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "loopback_client.h"
#include "netio/frame.h"
#include "netio/server.h"

namespace sm::netio {
namespace {

using testing::LoopbackClient;

std::string sample_payload(std::size_t size) {
  std::string out(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>((i * 131 + 7) & 0xff);
  }
  return out;
}

TEST(FrameCodec, RoundTripsEveryTypeAndSize) {
  const FrameType types[] = {
      FrameType::kQuery,    FrameType::kStats,     FrameType::kPing,
      FrameType::kCertInfo, FrameType::kNotFound,  FrameType::kStatsText,
      FrameType::kPong,     FrameType::kError,
  };
  const std::size_t sizes[] = {0, 1, 16, 255, 256, 4096};
  for (const FrameType type : types) {
    for (const std::size_t size : sizes) {
      const std::string payload = sample_payload(size);
      const std::string wire = encode_frame(type, payload);
      ASSERT_EQ(wire.size(), kFrameHeaderSize + size + kFrameTrailerSize);

      FrameDecoder decoder;
      decoder.feed(wire);
      Frame out;
      ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
      EXPECT_EQ(out.type, type);
      EXPECT_EQ(out.payload, payload);
      EXPECT_EQ(decoder.buffered(), 0u);
      EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore);
      EXPECT_FALSE(decoder.poisoned());
    }
  }
}

TEST(FrameCodec, DecodesByteByByte) {
  const std::string wire = encode_frame(FrameType::kPing, "incremental");
  FrameDecoder decoder;
  Frame out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.data() + i, 1);
    ASSERT_EQ(decoder.next(out), DecodeStatus::kNeedMore) << "byte " << i;
  }
  decoder.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.payload, "incremental");
}

TEST(FrameCodec, DrainsPipelinedFramesInOrder) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    wire += encode_frame(FrameType::kPing, "frame-" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
    EXPECT_EQ(out.payload, "frame-" + std::to_string(i));
  }
  EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore);
}

TEST(FrameCodec, RejectsUnknownType) {
  std::string wire = encode_frame(FrameType::kPing, "x");
  wire[0] = 0x7f;  // not a FrameType
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("unknown"), std::string::npos);
  // Poisoning is sticky: more (valid) bytes do not revive the stream.
  decoder.feed(encode_frame(FrameType::kPing, "y"));
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
}

TEST(FrameCodec, RejectsOversizedLengthBeforeBuffering) {
  FrameDecoder decoder(/*max_payload=*/64);
  // Header claims 65 payload bytes; rejection must not wait for them.
  std::string header;
  header.push_back(static_cast<char>(FrameType::kPing));
  const std::uint32_t size = 65;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((size >> (8 * i)) & 0xff));
  }
  decoder.feed(header);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos);
}

TEST(FrameCodec, RejectsChecksumMismatch) {
  std::string wire = encode_frame(FrameType::kQuery, sample_payload(16));
  wire[kFrameHeaderSize + 3] ^= 0x01;  // corrupt one payload byte
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(out), DecodeStatus::kMalformed);
  EXPECT_NE(decoder.error().find("checksum"), std::string::npos);
}

TEST(FrameCodec, NoTruncationDecodesAsAFrame) {
  const std::string wire = encode_frame(FrameType::kQuery, sample_payload(24));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(wire.data(), cut);
    Frame out;
    // A strict prefix never yields a frame; it either waits or (when the
    // type byte itself is absent/garbled) cannot fail yet either.
    EXPECT_EQ(decoder.next(out), DecodeStatus::kNeedMore) << "cut " << cut;
  }
}

TEST(FrameCodec, NoSingleBitFlipDecodesAsAFrame) {
  const std::string wire = encode_frame(FrameType::kQuery, sample_payload(24));
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.feed(corrupt);
      Frame out;
      // Either detected immediately (kMalformed) or the flipped length
      // field demands bytes that never arrive (kNeedMore). Never a frame.
      EXPECT_NE(decoder.next(out), DecodeStatus::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ---- live server ---------------------------------------------------------

class EchoServerTest : public ::testing::Test {
 protected:
  ServerConfig config_ = [] {
    ServerConfig config;
    config.workers = 2;
    return config;
  }();

  // Echo handler: kPing -> kPong, anything else -> kError.
  static Frame echo(FrameType type, std::string_view payload) {
    if (type == FrameType::kPing) {
      return {FrameType::kPong, std::string(payload)};
    }
    return {FrameType::kError, "echo server only pings"};
  }
};

TEST_F(EchoServerTest, ServesSequentialRequests) {
  TcpServer server(config_, echo);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  Frame response;
  for (int i = 0; i < 20; ++i) {
    const std::string payload = "ping-" + std::to_string(i);
    ASSERT_TRUE(client.send_frame(FrameType::kPing, payload));
    ASSERT_TRUE(client.read_frame(response));
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, payload);
  }
  client.close();
  server.shutdown();
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.frames_handled, 20u);
  EXPECT_EQ(counters.malformed_frames, 0u);
}

TEST_F(EchoServerTest, ServesPipelinedBurstInOrder) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    burst += encode_frame(FrameType::kPing, "burst-" + std::to_string(i));
  }
  ASSERT_TRUE(client.send_raw(burst));
  Frame response;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(client.read_frame(response)) << "response " << i;
    EXPECT_EQ(response.type, FrameType::kPong);
    EXPECT_EQ(response.payload, "burst-" + std::to_string(i));
  }
}

TEST_F(EchoServerTest, ServesManyConcurrentConnections) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LoopbackClient client(server.port());
      if (!client.connected()) return;
      Frame response;
      for (int i = 0; i < kPerClient; ++i) {
        const std::string payload =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.send_frame(FrameType::kPing, payload)) return;
        if (!client.read_frame(response)) return;
        if (response.type != FrameType::kPong || response.payload != payload)
          return;
        ++ok[c];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok[c], kPerClient) << "client " << c;
  }
  server.shutdown();
  EXPECT_EQ(server.counters().frames_handled,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST_F(EchoServerTest, MalformedFrameGetsErrorThenCloseAndServerSurvives) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  {
    LoopbackClient bad(server.port());
    ASSERT_TRUE(bad.connected());
    // A healthy frame first, then garbage: response for the first, one
    // kError for the garbage, then close.
    ASSERT_TRUE(bad.send_frame(FrameType::kPing, "before"));
    ASSERT_TRUE(bad.send_raw("\xff\xff\xff\xff\xff\xff\xff\xff"));
    std::vector<Frame> frames;
    ASSERT_TRUE(bad.read_until_eof(frames));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::kPong);
    EXPECT_EQ(frames[0].payload, "before");
    EXPECT_EQ(frames[1].type, FrameType::kError);
  }

  // The worker is unharmed: a fresh connection still gets service.
  LoopbackClient good(server.port());
  ASSERT_TRUE(good.connected());
  ASSERT_TRUE(good.send_frame(FrameType::kPing, "after"));
  Frame response;
  ASSERT_TRUE(good.read_frame(response));
  EXPECT_EQ(response.payload, "after");

  good.close();
  server.shutdown();
  EXPECT_EQ(server.counters().malformed_frames, 1u);
}

TEST_F(EchoServerTest, IdleConnectionsAreClosed) {
  config_.idle_timeout_ms = 100;
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  std::vector<Frame> frames;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_TRUE(idle.read_until_eof(frames));  // blocks until the server closes
  EXPECT_TRUE(frames.empty());
  EXPECT_LT(std::chrono::steady_clock::now() - begin, std::chrono::seconds(10));
  server.shutdown();
  EXPECT_GE(server.counters().idle_closed, 1u);
}

TEST_F(EchoServerTest, EofAfterRequestStillGetsTheResponse) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "parting"));
  client.shutdown_write();  // server sees EOF right behind the request
  std::vector<Frame> frames;
  ASSERT_TRUE(client.read_until_eof(frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPong);
  EXPECT_EQ(frames[0].payload, "parting");
}

TEST_F(EchoServerTest, ShutdownFlushesAndClosesCleanly) {
  TcpServer server(config_, echo);
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());

  LoopbackClient client(server.port());
  ASSERT_TRUE(client.connected());
  Frame response;
  ASSERT_TRUE(client.send_frame(FrameType::kPing, "pre-shutdown"));
  ASSERT_TRUE(client.read_frame(response));

  server.shutdown();
  EXPECT_FALSE(server.running());
  // The drained connection reads EOF, not a reset or torn bytes.
  std::vector<Frame> frames;
  EXPECT_TRUE(client.read_until_eof(frames));
  EXPECT_TRUE(frames.empty());
  // Idempotent.
  server.shutdown();
  EXPECT_EQ(server.counters().connections_closed,
            server.counters().connections_accepted);
}

TEST_F(EchoServerTest, StartFailsOnUnbindableAddress) {
  config_.bind_address = "203.0.113.1";  // TEST-NET, not local
  TcpServer server(config_, echo);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sm::netio
