#include "net/ipv4.h"

#include <charconv>

namespace sm::net {

std::optional<Ipv4Address> Ipv4Address::parse(const std::string& dotted) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= dotted.size()) return std::nullopt;
    std::size_t dot = dotted.find('.', pos);
    if (i == 3) {
      if (dot != std::string::npos) return std::nullopt;
      dot = dotted.size();
    } else if (dot == std::string::npos) {
      return std::nullopt;
    }
    if (dot == pos || dot - pos > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(dotted.data() + pos, dotted.data() + dot, octet);
    if (ec != std::errc{} || ptr != dotted.data() + dot || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | octet;
    pos = dot + 1;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Prefix> Prefix::parse(const std::string& cidr) {
  const std::size_t slash = cidr.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(cidr.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const auto* begin = cidr.data() + slash + 1;
  const auto* end = cidr.data() + cidr.size();
  const auto [ptr, ec] = std::from_chars(begin, end, length);
  if (ec != std::errc{} || ptr != end || length > 32) return std::nullopt;
  return Prefix(*addr, length);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

bool looks_like_ipv4(const std::string& s) {
  return Ipv4Address::parse(s).has_value();
}

}  // namespace sm::net
