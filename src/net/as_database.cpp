#include "net/as_database.h"

#include <algorithm>

namespace sm::net {

std::string to_string(AsType type) {
  switch (type) {
    case AsType::kTransitAccess:
      return "Transit/Access";
    case AsType::kContent:
      return "Content";
    case AsType::kEnterprise:
      return "Enterprise";
    case AsType::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

void AsDatabase::add(AsInfo info) { info_[info.asn] = std::move(info); }

void AsDatabase::add_country_change(Asn asn, util::UnixTime from,
                                    std::string country) {
  auto& entries = moves_[asn];
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), from,
      [](const auto& entry, util::UnixTime t) { return entry.first < t; });
  entries.insert(it, {from, std::move(country)});
}

const AsInfo* AsDatabase::find(Asn asn) const {
  const auto it = info_.find(asn);
  return it == info_.end() ? nullptr : &it->second;
}

AsType AsDatabase::type_of(Asn asn) const {
  const AsInfo* info = find(asn);
  return info ? info->type : AsType::kUnknown;
}

std::string AsDatabase::country_at(Asn asn, util::UnixTime t) const {
  if (const auto it = moves_.find(asn); it != moves_.end()) {
    const auto& entries = it->second;
    const auto pos = std::upper_bound(
        entries.begin(), entries.end(), t,
        [](util::UnixTime time, const auto& entry) {
          return time < entry.first;
        });
    if (pos != entries.begin()) return std::prev(pos)->second;
  }
  const AsInfo* info = find(asn);
  return info ? info->country : std::string{};
}

std::string AsDatabase::label(Asn asn) const {
  const AsInfo* info = find(asn);
  if (!info) return "#" + std::to_string(asn) + " (unknown)";
  return "#" + std::to_string(asn) + " " + info->name + " (" + info->country +
         ")";
}

}  // namespace sm::net
