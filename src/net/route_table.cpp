#include "net/route_table.h"

#include <algorithm>

namespace sm::net {

RouteTable::RouteTable() { nodes_.emplace_back(); }

std::int32_t RouteTable::walk_insert(const Prefix& prefix) {
  std::int32_t node = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit = (prefix.address().value() >> (31 - depth)) & 1;
    if (nodes_[static_cast<std::size_t>(node)].child[bit] < 0) {
      nodes_[static_cast<std::size_t>(node)].child[bit] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[static_cast<std::size_t>(node)].child[bit];
  }
  return node;
}

void RouteTable::announce(const Prefix& prefix, Asn asn) {
  const std::int32_t node = walk_insert(prefix);
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.value < 0) {
    n.value = static_cast<std::int32_t>(values_.size());
    values_.push_back(asn);
    ++announced_;
  } else {
    values_[static_cast<std::size_t>(n.value)] = asn;
  }
}

bool RouteTable::withdraw(const Prefix& prefix) {
  std::int32_t node = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const unsigned bit = (prefix.address().value() >> (31 - depth)) & 1;
    node = nodes_[static_cast<std::size_t>(node)].child[bit];
    if (node < 0) return false;
  }
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.value < 0) return false;
  n.value = -1;
  --announced_;
  return true;
}

std::optional<Asn> RouteTable::lookup(Ipv4Address ip) const {
  std::optional<Asn> best;
  std::int32_t node = 0;
  for (unsigned depth = 0; depth <= 32; ++depth) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.value >= 0) best = values_[static_cast<std::size_t>(n.value)];
    if (depth == 32) break;
    const unsigned bit = (ip.value() >> (31 - depth)) & 1;
    node = n.child[bit];
    if (node < 0) break;
  }
  return best;
}

std::optional<Prefix> RouteTable::lookup_prefix(Ipv4Address ip) const {
  std::optional<Prefix> best;
  std::int32_t node = 0;
  for (unsigned depth = 0; depth <= 32; ++depth) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.value >= 0) best = Prefix(ip, depth);
    if (depth == 32) break;
    const unsigned bit = (ip.value() >> (31 - depth)) & 1;
    node = n.child[bit];
    if (node < 0) break;
  }
  return best;
}

std::vector<std::pair<Prefix, Asn>> RouteTable::entries() const {
  std::vector<std::pair<Prefix, Asn>> out;
  // Iterative DFS carrying the path bits.
  struct Frame {
    std::int32_t node;
    std::uint32_t bits;
    unsigned depth;
  };
  std::vector<Frame> stack = {{0, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(f.node)];
    if (n.value >= 0) {
      const std::uint32_t addr =
          f.depth == 0 ? 0 : (f.bits << (32 - f.depth));
      out.emplace_back(Prefix(Ipv4Address(addr), f.depth),
                       values_[static_cast<std::size_t>(n.value)]);
    }
    for (unsigned bit = 0; bit < 2; ++bit) {
      if (n.child[bit] >= 0 && f.depth < 32) {
        stack.push_back(
            Frame{n.child[bit], (f.bits << 1) | bit, f.depth + 1});
      }
    }
  }
  return out;
}

void RoutingHistory::add_snapshot(util::UnixTime from, RouteTable table) {
  const auto it = std::lower_bound(
      snapshots_.begin(), snapshots_.end(), from,
      [](const auto& entry, util::UnixTime t) { return entry.first < t; });
  snapshots_.insert(it, {from, std::move(table)});
}

const RouteTable* RoutingHistory::at(util::UnixTime t) const {
  if (snapshots_.empty()) return nullptr;
  const auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), t,
      [](util::UnixTime time, const auto& entry) { return time < entry.first; });
  if (it == snapshots_.begin()) return &it->second;
  return &std::prev(it)->second;
}

}  // namespace sm::net
