// IPv4 addresses and CIDR prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace sm::net {

/// An IPv4 address as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}

  /// From four octets a.b.c.d.
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | d);
  }

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(const std::string& dotted);

  constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad rendering.
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (network address + length). The address is stored
/// canonicalized (host bits zeroed).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix, zeroing any host bits in `addr`. `length` must be
  /// 0..32 (clamped).
  constexpr Prefix(Ipv4Address addr, unsigned length)
      : length_(length > 32 ? 32 : length),
        addr_(Ipv4Address(addr.value() & mask())) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(const std::string& cidr);

  constexpr Ipv4Address address() const { return addr_; }
  constexpr unsigned length() const { return length_; }

  /// Network mask for this prefix length.
  constexpr std::uint32_t mask() const {
    return length_ == 0 ? 0 : (~std::uint32_t{0} << (32 - length_));
  }

  /// True when `ip` falls inside this prefix.
  constexpr bool contains(Ipv4Address ip) const {
    return (ip.value() & mask()) == addr_.value();
  }

  /// Number of addresses covered (2^(32-len)).
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// "a.b.c.d/len".
  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  unsigned length_ = 0;
  Ipv4Address addr_{};
};

/// The enclosing /8 of an address (used by the paper's Figure 1).
constexpr Prefix slash8(Ipv4Address ip) { return Prefix(ip, 8); }

/// The enclosing /24 of an address (used for /24-level consistency).
constexpr Prefix slash24(Ipv4Address ip) { return Prefix(ip, 24); }

/// True when the address lies in RFC 1918 private space — these appear as
/// Common Names on millions of invalid device certificates.
constexpr bool is_private(Ipv4Address ip) {
  const std::uint32_t v = ip.value();
  return (v & 0xff000000) == 0x0a000000 ||   // 10/8
         (v & 0xfff00000) == 0xac100000 ||   // 172.16/12
         (v & 0xffff0000) == 0xc0a80000;     // 192.168/16
}

/// True when the string parses as a dotted-quad IPv4 address. The linking
/// methodology uses this to exclude IP-valued Common Names (§6.4.1).
bool looks_like_ipv4(const std::string& s);

}  // namespace sm::net
