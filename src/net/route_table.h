// Longest-prefix-match routing tables and their evolution over time —
// the stand-in for the RouteViews prefix-to-AS snapshots the paper joins
// against each scan date.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "util/datetime.h"

namespace sm::net {

/// An autonomous-system number.
using Asn = std::uint32_t;

/// A binary-trie IP-to-ASN map with longest-prefix-match lookup.
class RouteTable {
 public:
  RouteTable();

  /// Announces `prefix` as originated by `asn`. Re-announcing an existing
  /// prefix overwrites its origin (the mechanism behind prefix transfers).
  void announce(const Prefix& prefix, Asn asn);

  /// Withdraws a prefix; lookups then fall back to any covering prefix.
  /// Returns false when the exact prefix was not announced.
  bool withdraw(const Prefix& prefix);

  /// Longest-prefix-match origin AS for `ip`, or nullopt when no announced
  /// prefix covers it.
  std::optional<Asn> lookup(Ipv4Address ip) const;

  /// The most-specific announced prefix covering `ip`, if any.
  std::optional<Prefix> lookup_prefix(Ipv4Address ip) const;

  /// Number of announced prefixes.
  std::size_t size() const { return announced_; }

  /// All announced (prefix, asn) pairs, in trie order.
  std::vector<std::pair<Prefix, Asn>> entries() const;

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t value = -1;  // index into values_, -1 = no announcement
  };

  std::int32_t walk_insert(const Prefix& prefix);

  std::vector<Node> nodes_;
  std::vector<Asn> values_;
  std::size_t announced_ = 0;
};

/// A time-indexed sequence of routing tables. The paper uses historic
/// RouteViews snapshots to map IPs to ASes "using the entry closest to each
/// scan"; this class does the same with simulated snapshots and supports
/// mid-study prefix transfers (e.g. Verizon moving blocks to MCI).
class RoutingHistory {
 public:
  /// Adds a snapshot effective from `from` (inclusive). Snapshots must not
  /// share an effective time.
  void add_snapshot(util::UnixTime from, RouteTable table);

  /// The snapshot in effect at time `t` (the latest snapshot whose
  /// effective time is <= t, or the earliest snapshot when t precedes all).
  /// Returns nullptr when empty.
  const RouteTable* at(util::UnixTime t) const;

  std::size_t snapshot_count() const { return snapshots_.size(); }

 private:
  std::vector<std::pair<util::UnixTime, RouteTable>> snapshots_;  // sorted
};

}  // namespace sm::net
