// Autonomous-system metadata — the stand-in for CAIDA's AS classification
// and AS-to-organization datasets (paper §5.4, §7.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/route_table.h"
#include "util/datetime.h"

namespace sm::net {

/// CAIDA-style AS business type (paper Table 2).
enum class AsType : std::uint8_t {
  kTransitAccess = 0,  ///< ISPs and access networks
  kContent,            ///< hosting/CDN/content
  kEnterprise,         ///< enterprise stub networks
  kUnknown,
};

/// Human-readable type label, matching the paper's Table 2 wording.
std::string to_string(AsType type);

/// Static metadata for one AS.
struct AsInfo {
  Asn asn = 0;
  std::string name;          ///< e.g. "Deutsche Telekom AG"
  std::string country;       ///< ISO alpha-3 as the paper prints, e.g. "DEU"
  AsType type = AsType::kUnknown;
};

/// Lookup table of AS metadata, with optional dated country overrides to
/// model CAIDA's quarterly AS-to-organization snapshots (the paper notes a
/// 3-4 month resolution for AS-to-country mapping).
class AsDatabase {
 public:
  /// Registers (or replaces) an AS entry.
  void add(AsInfo info);

  /// Records that `asn` is located in `country` from `from` onwards.
  void add_country_change(Asn asn, util::UnixTime from, std::string country);

  /// Static info for `asn`, or nullptr when unknown.
  const AsInfo* find(Asn asn) const;

  /// The AS type, kUnknown for unregistered ASes.
  AsType type_of(Asn asn) const;

  /// The country of `asn` at time `t`, honouring dated overrides; "" when
  /// unknown.
  std::string country_at(Asn asn, util::UnixTime t) const;

  /// Display label "#3320 Deutsche Telekom AG (DEU)" as in Table 3.
  std::string label(Asn asn) const;

  std::size_t size() const { return info_.size(); }

 private:
  std::map<Asn, AsInfo> info_;
  // Per-AS sorted list of (effective-from, country).
  std::map<Asn, std::vector<std::pair<util::UnixTime, std::string>>> moves_;
};

}  // namespace sm::net
