// A consolidated plain-text report over a dataset: the §4/§5 analyses, the
// §6 linking summary, and the §7 tracking summary, rendered the way the
// sm_survey CLI prints them. Library consumers get one call; the CLI and
// tests share the same formatting.
#pragma once

#include <string>
#include <unordered_map>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "net/as_database.h"
#include "pki/verifier.h"
#include "tracking/tracker.h"

namespace sm::report {

/// Which report sections to render.
struct ReportOptions {
  bool validity = true;    ///< §4.2 breakdown
  bool longevity = true;   ///< Figures 3-4
  bool diversity = true;   ///< Figure 6, Tables 1 and 3
  bool linking = false;    ///< Tables 5-6, §6.4 (runs the linker)
  bool tracking = false;   ///< §7 (runs linker + tracker)
  std::size_t top_n = 5;   ///< rows in top-issuer / top-AS tables
  /// Revocation statuses per fingerprint (borrowed; e.g.
  /// simworld::WorldResult::revocation.statuses). Non-null adds the
  /// "revocation statuses: invalid vs. valid certs" table.
  const std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                           scan::FingerprintHash>* revocation_statuses =
      nullptr;
};

/// Renders the selected sections for `archive`/`index` into one string.
/// Linking/tracking sections construct their own Linker/DeviceTracker.
std::string render_report(const analysis::DatasetIndex& index,
                          const net::AsDatabase& as_db,
                          const ReportOptions& options = {});

}  // namespace sm::report
