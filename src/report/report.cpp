#include "report/report.h"

#include <cstdarg>

#include <cstdio>

#include "analysis/diversity.h"
#include "analysis/longevity.h"
#include "analysis/revocation.h"

namespace sm::report {

using namespace sm::analysis;

namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out += buffer;
}

}  // namespace

std::string render_report(const analysis::DatasetIndex& index,
                          const net::AsDatabase& as_db,
                          const ReportOptions& options) {
  const scan::ScanArchive& archive = index.archive();
  std::string out;

  if (options.validity) {
    const ValidityBreakdown vb = compute_validity_breakdown(archive);
    out += "-- validity (paper 4.2) --\n";
    appendf(out,
            "certificates %llu | invalid %s | self-signed %s | untrusted %s "
            "| other %s | transvalid %llu\n",
            static_cast<unsigned long long>(vb.total_certs),
            util::percent(vb.invalid_fraction()).c_str(),
            util::percent(vb.invalid_certs == 0
                              ? 0.0
                              : static_cast<double>(vb.self_signed) /
                                    static_cast<double>(vb.invalid_certs))
                .c_str(),
            util::percent(vb.invalid_certs == 0
                              ? 0.0
                              : static_cast<double>(vb.untrusted_issuer) /
                                    static_cast<double>(vb.invalid_certs))
                .c_str(),
            util::percent(vb.invalid_certs == 0
                              ? 0.0
                              : static_cast<double>(vb.other_invalid) /
                                    static_cast<double>(vb.invalid_certs))
                .c_str(),
            static_cast<unsigned long long>(vb.transvalid));
  }

  if (options.longevity) {
    const ValidityPeriods vp = compute_validity_periods(archive);
    const Lifetimes lt = compute_lifetimes(index);
    out += "\n-- longevity (figures 3-4) --\n";
    appendf(out,
            "validity period median: valid %.2fy, invalid %.1fy "
            "(negative %s)\n",
            vp.valid_days.empty() ? 0.0 : vp.valid_days.median() / 365,
            vp.invalid_days.empty() ? 0.0 : vp.invalid_days.median() / 365,
            util::percent(vp.invalid_negative_fraction).c_str());
    appendf(out,
            "lifetime median: valid %.0fd, invalid %.0fd (single-scan %s)\n",
            lt.valid_days.empty() ? 0.0 : lt.valid_days.median(),
            lt.invalid_days.empty() ? 0.0 : lt.invalid_days.median(),
            util::percent(lt.invalid_single_scan_fraction).c_str());
  }

  if (options.diversity) {
    const KeyDiversity kd = compute_key_diversity(archive);
    out += "\n-- key diversity (figure 6) --\n";
    appendf(out, "invalid certs sharing a key: %s (top key %s of invalid)\n",
            util::percent(kd.invalid_shared_fraction).c_str(),
            util::percent(kd.top_invalid_key_share).c_str());
    const IssuerDiversity id = compute_issuer_diversity(archive, options.top_n);
    out += "\n-- top invalid issuers (table 1) --\n";
    for (const IssuerRow& row : id.top_invalid) {
      appendf(out, "  %-40s %llu\n", row.issuer.c_str(),
              static_cast<unsigned long long>(row.certs));
    }
    const TopAses top = compute_top_ases(index, as_db, options.top_n);
    out += "\n-- top invalid ASes (table 3) --\n";
    for (const TopAsRow& row : top.invalid) {
      appendf(out, "  %-46s %llu\n", row.label.c_str(),
              static_cast<unsigned long long>(row.certs));
    }
  }

  if (options.revocation_statuses != nullptr) {
    const RevocationBreakdown rb = compute_revocation_breakdown(
        archive, *options.revocation_statuses, options.top_n);
    out += "\n-- revocation (CRL/OCSP ecosystem) --\n";
    out += render_revocation_table(rb);
  }

  if (options.linking || options.tracking) {
    const linking::Linker linker(index);
    const linking::IterativeResult linked = linker.link_iteratively();
    if (options.linking) {
      out += "\n-- linking (6.4.3 / 6.4.4) --\n";
      const linking::LinkingGain gain = linker.compare_with_original(linked);
      appendf(out, "eligible %llu | linked %llu (%s) | groups %zu\n",
              static_cast<unsigned long long>(linker.eligible_count()),
              static_cast<unsigned long long>(linked.linked_certs),
              util::percent(linker.eligible_count() == 0
                                ? 0.0
                                : static_cast<double>(linked.linked_certs) /
                                      static_cast<double>(
                                          linker.eligible_count()))
                  .c_str(),
              linked.groups.size());
      appendf(out,
              "single-scan %s -> %s | mean lifetime %.1f -> %.1f days\n",
              util::percent(gain.single_scan_fraction_before).c_str(),
              util::percent(gain.single_scan_fraction_after).c_str(),
              gain.mean_lifetime_before_days, gain.mean_lifetime_after_days);
    }
    if (options.tracking) {
      const tracking::DeviceTracker tracker(index, linker, linked, as_db);
      const tracking::TrackableSummary summary = tracker.summary();
      const tracking::MovementStats movement = tracker.movement();
      out += "\n-- tracking (7.2 / 7.3) --\n";
      appendf(out, "trackable %llu -> %llu (+%s) | movers %llu | "
                   "country-crossers %llu\n",
              static_cast<unsigned long long>(
                  summary.trackable_without_linking),
              static_cast<unsigned long long>(summary.trackable_with_linking),
              util::percent(summary.improvement()).c_str(),
              static_cast<unsigned long long>(
                  movement.devices_with_as_change),
              static_cast<unsigned long long>(
                  movement.devices_crossing_countries));
    }
  }
  return out;
}

}  // namespace sm::report
