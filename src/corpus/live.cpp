#include "corpus/live.h"

#include <algorithm>
#include <istream>
#include <utility>

#include "scan/archive_io.h"

namespace sm::corpus {
namespace {

constexpr scan::CertId kUnmapped = scan::CertId{0xffffffff};

bool strictly_increasing(const std::vector<scan::ScanData>& scans) {
  for (std::size_t i = 1; i < scans.size(); ++i) {
    if (scans[i].event.start <= scans[i - 1].event.start) return false;
  }
  return true;
}

/// Parses one SMAR stream into cert/scan vectors without touching any
/// corpus state; the error string is set on failure. Shared by
/// append_segment and merge_slice so both keep the parse-everything-
/// before-mutating discipline.
bool parse_smar(std::istream& in, const char* what,
                std::vector<scan::CertRecord>& certs,
                std::vector<scan::ScanData>& scans, std::string& error) {
  scan::ArchiveReader reader(in);
  if (!reader.ok()) {
    error = std::string(what) + ": bad archive header";
    return false;
  }
  certs.reserve(reader.cert_count());
  if (!reader.for_each_cert(
          [&](scan::CertId, const scan::CertRecord& cert) {
            certs.push_back(cert);
          })) {
    error = std::string(what) + ": corrupt certificate section";
    return false;
  }
  if (!reader.for_each_scan(
          [&](const scan::ScanData& scan) { scans.push_back(scan); })) {
    error = std::string(what) + ": corrupt scan section";
    return false;
  }
  for (const scan::ScanData& scan : scans) {
    for (const scan::Observation& obs : scan.observations) {
      if (obs.cert >= certs.size()) {
        error = std::string(what) + ": observation references unknown cert";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

struct LiveCorpus::PendingPublish {
  std::shared_ptr<scan::ScanArchive> archive;
  std::vector<scan::CertId> delta;
};

void LiveCorpus::publish(PendingPublish&& pending) {
  const std::shared_ptr<const LiveSnapshot> cur = snapshot();
  auto snap = std::make_shared<LiveSnapshot>();
  snap->epoch = cur ? cur->epoch + 1 : 0;
  // Build the new spine (the expensive part — readers keep serving the
  // old epoch throughout) and publish. The release store pairs with
  // snapshot()'s acquire load.
  snap->spine = std::make_shared<const CorpusIndex>(
      *pending.archive, CorpusOptions{routing_, pool_});
  snap->archive = std::move(pending.archive);
  snap->delta = std::move(pending.delta);
  snap->statuses = statuses_;
  snap->key_counts = key_counts_;
  snapshot_.store(std::move(snap), std::memory_order_release);
}

LiveCorpus::LiveCorpus(scan::ScanArchive initial,
                       const net::RoutingHistory* routing,
                       util::ThreadPool* pool, RevocationStatusMap statuses,
                       KeyCountMap key_counts)
    : routing_(routing), pool_(pool) {
  if (!statuses.empty()) {
    statuses_ =
        std::make_shared<const RevocationStatusMap>(std::move(statuses));
  }
  if (!key_counts.empty()) {
    key_counts_ = std::make_shared<const KeyCountMap>(std::move(key_counts));
  }
  auto archive = std::make_shared<scan::ScanArchive>(std::move(initial));
  keys_.reserve(archive->certs().size());
  for (std::size_t i = 0; i < archive->certs().size(); ++i) {
    keys_[archive->certs()[i].key_fingerprint].push_back(
        static_cast<scan::CertId>(i));
  }
  publish(PendingPublish{std::move(archive), {}});
}

AppendResult LiveCorpus::append_segment(std::istream& in,
                                        const RevocationStatusMap* statuses) {
  std::lock_guard lock(append_mutex_);
  AppendResult result;
  const std::shared_ptr<const LiveSnapshot> cur = snapshot();

  // Parse the whole segment up front: any framing/checksum/ordering
  // failure must leave the published snapshot untouched, so nothing is
  // interned until the reader has validated every byte.
  std::vector<scan::CertRecord> segment_certs;
  std::vector<scan::ScanData> segment_scans;
  if (!parse_smar(in, "segment", segment_certs, segment_scans,
                  result.error)) {
    return result;
  }
  if (segment_scans.empty()) {
    result.error = "segment: no scans";
    return result;
  }
  // Chronology: the archive's own append path rejects out-of-order
  // scans with an exception; pre-check so a stale segment is a clean
  // error instead.
  if (!cur->archive->scans().empty() &&
      segment_scans.front().event.start <
          cur->archive->scans().back().event.start) {
    result.error = "segment: scans predate the current corpus";
    return result;
  }

  // Copy-on-append: the new epoch gets its own archive; every snapshot
  // already handed out keeps (and owns) the previous one.
  auto next = std::make_shared<scan::ScanArchive>(*cur->archive);
  const std::size_t old_cert_count = next->certs().size();

  // Re-intern the segment's certificates. Intern order follows the
  // segment's id order, so the resulting global ids are deterministic.
  std::vector<scan::CertId> global_id(segment_certs.size());
  std::vector<char> changed(old_cert_count, 0);
  std::vector<std::pair<scan::KeyFingerprint, scan::CertId>> new_keys;
  for (std::size_t i = 0; i < segment_certs.size(); ++i) {
    const scan::KeyFingerprint key = segment_certs[i].key_fingerprint;
    const scan::CertId id = next->intern(std::move(segment_certs[i]));
    global_id[i] = id;
    if (id >= old_cert_count) {
      ++result.new_certs;
      new_keys.emplace_back(key, id);
      // A new holder of an existing SPKI raises the key-sharing degree
      // of every certificate already holding it.
      const auto it = keys_.find(key);
      if (it != keys_.end()) {
        for (const scan::CertId peer : it->second) changed[peer] = 1;
      }
    }
  }

  // Append the scans with observations remapped to global ids; every
  // observed certificate's history (and stats row) changes.
  for (scan::ScanData& scan : segment_scans) {
    for (scan::Observation& obs : scan.observations) {
      obs.cert = global_id[obs.cert];
      if (obs.cert < old_cert_count) changed[obs.cert] = 1;
    }
    result.observations += scan.observations.size();
    next->add_scan(std::move(scan));
    ++result.scans_appended;
  }

  // Sidecar statuses: a changed status alters a certificate's rendered
  // knowledge, so already-known certs whose status moved join the delta
  // exactly like certs the scans re-observed.
  if (statuses != nullptr && !statuses->empty()) {
    auto next_statuses =
        statuses_ ? std::make_shared<RevocationStatusMap>(*statuses_)
                  : std::make_shared<RevocationStatusMap>();
    bool dirty = false;
    for (const auto& [fp, status] : *statuses) {
      const auto it = next_statuses->find(fp);
      if (it != next_statuses->end() && it->second == status) continue;
      (*next_statuses)[fp] = status;
      dirty = true;
      scan::CertId id = 0;
      if (next->find(fp, id) && id < old_cert_count) changed[id] = 1;
    }
    if (dirty) statuses_ = std::move(next_statuses);
  }
  // Injected full-corpus degrees: every newly interned certificate is a
  // new holder of its key corpus-wide.
  if (key_counts_ != nullptr && !new_keys.empty()) {
    auto next_counts = std::make_shared<KeyCountMap>(*key_counts_);
    for (const auto& [key, id] : new_keys) ++(*next_counts)[key];
    key_counts_ = std::move(next_counts);
  }

  // The delta: every pre-existing cert marked above plus every new one.
  std::vector<scan::CertId> delta;
  for (std::size_t i = 0; i < old_cert_count; ++i) {
    if (changed[i] != 0) delta.push_back(static_cast<scan::CertId>(i));
  }
  for (std::size_t i = old_cert_count; i < next->certs().size(); ++i) {
    delta.push_back(static_cast<scan::CertId>(i));
  }
  result.delta_size = delta.size();

  // Commit the append-side key map only now that nothing can fail.
  for (const auto& [key, id] : new_keys) keys_[key].push_back(id);
  publish(PendingPublish{std::move(next), std::move(delta)});
  result.ok = true;
  return result;
}

AppendResult LiveCorpus::merge_slice(std::istream& in,
                                     const KeyCountMap* key_counts,
                                     const RevocationStatusMap* statuses) {
  std::lock_guard lock(append_mutex_);
  AppendResult result;
  const std::shared_ptr<const LiveSnapshot> cur = snapshot();

  std::vector<scan::CertRecord> slice_certs;
  std::vector<scan::ScanData> slice_scans;
  if (!parse_smar(in, "slice", slice_certs, slice_scans, result.error)) {
    return result;
  }
  // Scans merge by start time, so starts must identify scans uniquely on
  // both sides of the merge.
  if (!strictly_increasing(slice_scans)) {
    result.error = "slice: scan start times are not strictly increasing";
    return result;
  }
  if (!strictly_increasing(cur->archive->scans())) {
    result.error =
        "corpus: scan start times are not strictly increasing; cannot "
        "merge by timeline";
    return result;
  }

  // Rebuild rather than copy: merging appends observations into existing
  // scans, which the archive's append-only API cannot express in place.
  // Interning the current certs first, in id order, keeps every existing
  // id stable; slice certs follow (duplicates dedup, new ones append).
  auto next = std::make_shared<scan::ScanArchive>();
  next->reserve_certs(cur->archive->certs().size() + slice_certs.size());
  for (const scan::CertRecord& cert : cur->archive->certs()) {
    next->intern(cert);
  }
  const std::size_t old_cert_count = next->certs().size();
  std::vector<char> changed(old_cert_count, 0);
  std::vector<scan::CertId> global_id(slice_certs.size());
  std::vector<std::pair<scan::KeyFingerprint, scan::CertId>> new_keys;
  for (std::size_t i = 0; i < slice_certs.size(); ++i) {
    const scan::KeyFingerprint key = slice_certs[i].key_fingerprint;
    const scan::CertId id = next->intern(std::move(slice_certs[i]));
    global_id[i] = id;
    if (id >= old_cert_count) {
      ++result.new_certs;
      new_keys.emplace_back(key, id);
      const auto it = keys_.find(key);
      if (it != keys_.end()) {
        for (const scan::CertId peer : it->second) changed[peer] = 1;
      }
    }
  }

  // Two-pointer walk over both timelines in start order. A start present
  // on both sides is the same scan: local observations first, then the
  // slice's (remapped) — every per-cert aggregate downstream is
  // order-independent, so concatenation preserves byte-identical
  // renders. A start only the slice knows becomes a new scan.
  const std::vector<scan::ScanData>& cur_scans = cur->archive->scans();
  std::size_t ci = 0;
  std::size_t si = 0;
  while (ci < cur_scans.size() || si < slice_scans.size()) {
    const bool have_cur = ci < cur_scans.size();
    const bool have_slice = si < slice_scans.size();
    const bool take_cur =
        have_cur && (!have_slice || cur_scans[ci].event.start <=
                                        slice_scans[si].event.start);
    const bool take_slice =
        have_slice && (!have_cur || slice_scans[si].event.start <=
                                        cur_scans[ci].event.start);
    scan::ScanData merged;
    if (take_cur) {
      merged.event = cur_scans[ci].event;
      merged.observations = cur_scans[ci].observations;
      ++ci;
    } else {
      merged.event = slice_scans[si].event;
      ++result.scans_appended;
    }
    if (take_slice) {
      merged.observations.reserve(merged.observations.size() +
                                  slice_scans[si].observations.size());
      for (const scan::Observation& obs : slice_scans[si].observations) {
        const scan::CertId id = global_id[obs.cert];
        merged.observations.push_back({id, obs.ip, obs.device});
        if (id < old_cert_count) changed[id] = 1;
        ++result.observations;
      }
      ++si;
    }
    next->add_scan(std::move(merged));
  }

  // Sidecars: statuses overwrite (the sender's are authoritative for its
  // certs), degrees take the larger value — both sides derive from the
  // same full corpus, so the larger one is the fresher count. A degree
  // change re-renders every local holder of that key.
  if (statuses != nullptr && !statuses->empty()) {
    auto next_statuses =
        statuses_ ? std::make_shared<RevocationStatusMap>(*statuses_)
                  : std::make_shared<RevocationStatusMap>();
    bool dirty = false;
    for (const auto& [fp, status] : *statuses) {
      const auto it = next_statuses->find(fp);
      if (it != next_statuses->end() && it->second == status) continue;
      (*next_statuses)[fp] = status;
      dirty = true;
      scan::CertId id = 0;
      if (next->find(fp, id) && id < old_cert_count) changed[id] = 1;
    }
    if (dirty) statuses_ = std::move(next_statuses);
  }
  if (key_counts != nullptr && !key_counts->empty()) {
    auto next_counts = key_counts_
                           ? std::make_shared<KeyCountMap>(*key_counts_)
                           : std::make_shared<KeyCountMap>();
    for (const auto& [key, count] : *key_counts) {
      std::uint32_t& slot = (*next_counts)[key];
      if (count > slot) {
        slot = count;
        const auto it = keys_.find(key);
        if (it != keys_.end()) {
          for (const scan::CertId peer : it->second) changed[peer] = 1;
        }
      }
    }
    key_counts_ = std::move(next_counts);
  }

  std::vector<scan::CertId> delta;
  for (std::size_t i = 0; i < old_cert_count; ++i) {
    if (changed[i] != 0) delta.push_back(static_cast<scan::CertId>(i));
  }
  for (std::size_t i = old_cert_count; i < next->certs().size(); ++i) {
    delta.push_back(static_cast<scan::CertId>(i));
  }
  result.delta_size = delta.size();

  for (const auto& [key, id] : new_keys) keys_[key].push_back(id);
  publish(PendingPublish{std::move(next), std::move(delta)});
  result.ok = true;
  return result;
}

AppendResult LiveCorpus::retire_prefix(std::uint8_t lo, std::uint8_t hi) {
  std::lock_guard lock(append_mutex_);
  AppendResult result;
  const std::shared_ptr<const LiveSnapshot> cur = snapshot();
  const scan::ScanArchive& full = *cur->archive;

  auto next = std::make_shared<scan::ScanArchive>();
  std::vector<scan::CertId> local(full.certs().size(), kUnmapped);
  for (std::size_t id = 0; id < full.certs().size(); ++id) {
    const scan::CertRecord& cert = full.cert(static_cast<scan::CertId>(id));
    if (cert.fingerprint[0] >= lo && cert.fingerprint[0] <= hi) continue;
    local[id] = next->intern(cert);
  }
  for (const scan::ScanData& scan : full.scans()) {
    scan::ScanData copy;
    copy.event = scan.event;
    for (const scan::Observation& obs : scan.observations) {
      if (local[obs.cert] == kUnmapped) continue;
      copy.observations.push_back({local[obs.cert], obs.ip, obs.device});
    }
    next->add_scan(std::move(copy));
  }

  // Ids were remapped: rebuild the key map and invalidate everything —
  // the delta spans every id either epoch ever used, so no stale render
  // survives under a reused id.
  keys_.clear();
  keys_.reserve(next->certs().size());
  for (std::size_t i = 0; i < next->certs().size(); ++i) {
    keys_[next->certs()[i].key_fingerprint].push_back(
        static_cast<scan::CertId>(i));
  }
  if (statuses_) {
    auto next_statuses = std::make_shared<RevocationStatusMap>();
    next_statuses->reserve(statuses_->size());
    for (const auto& [fp, status] : *statuses_) {
      if (fp[0] >= lo && fp[0] <= hi) continue;
      next_statuses->emplace(fp, status);
    }
    statuses_ = next_statuses->empty() ? nullptr : std::move(next_statuses);
  }
  // key_counts_ stays: full-corpus degrees are true regardless of which
  // slice this daemon serves.

  const std::size_t span =
      std::max(full.certs().size(), next->certs().size());
  std::vector<scan::CertId> delta(span);
  for (std::size_t i = 0; i < span; ++i) {
    delta[i] = static_cast<scan::CertId>(i);
  }
  result.delta_size = delta.size();

  publish(PendingPublish{std::move(next), std::move(delta)});
  result.ok = true;
  return result;
}

scan::ScanArchive extract_segment(const scan::ScanArchive& full,
                                  std::size_t first, std::size_t last) {
  scan::ScanArchive segment;
  last = std::min(last, full.scans().size());
  // Dense re-intern: only the certificates these scans observe, in
  // first-observation order.
  std::vector<scan::CertId> local(full.certs().size(), kUnmapped);
  for (std::size_t s = first; s < last; ++s) {
    const scan::ScanData& scan = full.scans()[s];
    scan::ScanData copy;
    copy.event = scan.event;
    copy.observations.reserve(scan.observations.size());
    for (const scan::Observation& obs : scan.observations) {
      if (local[obs.cert] == kUnmapped) {
        local[obs.cert] = segment.intern(full.cert(obs.cert));
      }
      copy.observations.push_back({local[obs.cert], obs.ip, obs.device});
    }
    segment.add_scan(std::move(copy));
  }
  return segment;
}

scan::ScanArchive extract_prefix_slice(const scan::ScanArchive& full,
                                       std::uint8_t lo, std::uint8_t hi,
                                       std::size_t first_scan) {
  scan::ScanArchive slice;
  // Intern pass first, in original id order: a shard must know every
  // in-range certificate the full corpus interned, observed or not.
  std::vector<scan::CertId> local(full.certs().size(), kUnmapped);
  for (std::size_t id = 0; id < full.certs().size(); ++id) {
    const scan::CertRecord& cert = full.cert(static_cast<scan::CertId>(id));
    if (cert.fingerprint[0] < lo || cert.fingerprint[0] > hi) continue;
    local[id] = slice.intern(cert);
  }
  for (std::size_t s = first_scan; s < full.scans().size(); ++s) {
    const scan::ScanData& scan = full.scans()[s];
    scan::ScanData copy;
    copy.event = scan.event;
    for (const scan::Observation& obs : scan.observations) {
      if (local[obs.cert] == kUnmapped) continue;
      copy.observations.push_back({local[obs.cert], obs.ip, obs.device});
    }
    slice.add_scan(std::move(copy));
  }
  return slice;
}

}  // namespace sm::corpus
