#include "corpus/live.h"

#include <algorithm>
#include <istream>
#include <utility>

#include "scan/archive_io.h"

namespace sm::corpus {

LiveCorpus::LiveCorpus(scan::ScanArchive initial,
                       const net::RoutingHistory* routing,
                       util::ThreadPool* pool)
    : routing_(routing), pool_(pool) {
  auto archive =
      std::make_shared<const scan::ScanArchive>(std::move(initial));
  keys_.reserve(archive->certs().size());
  for (std::size_t i = 0; i < archive->certs().size(); ++i) {
    keys_[archive->certs()[i].key_fingerprint].push_back(
        static_cast<scan::CertId>(i));
  }
  auto snap = std::make_shared<LiveSnapshot>();
  snap->epoch = 0;
  snap->spine = std::make_shared<const CorpusIndex>(
      *archive, CorpusOptions{routing_, pool_});
  snap->archive = std::move(archive);
  snapshot_.store(std::move(snap), std::memory_order_release);
}

AppendResult LiveCorpus::append_segment(std::istream& in) {
  std::lock_guard lock(append_mutex_);
  AppendResult result;
  const std::shared_ptr<const LiveSnapshot> cur = snapshot();

  // Parse the whole segment up front: any framing/checksum/ordering
  // failure must leave the published snapshot untouched, so nothing is
  // interned until the reader has validated every byte.
  scan::ArchiveReader reader(in);
  if (!reader.ok()) {
    result.error = "segment: bad archive header";
    return result;
  }
  std::vector<scan::CertRecord> segment_certs;
  segment_certs.reserve(reader.cert_count());
  if (!reader.for_each_cert(
          [&](scan::CertId, const scan::CertRecord& cert) {
            segment_certs.push_back(cert);
          })) {
    result.error = "segment: corrupt certificate section";
    return result;
  }
  std::vector<scan::ScanData> segment_scans;
  if (!reader.for_each_scan([&](const scan::ScanData& scan) {
        segment_scans.push_back(scan);
      })) {
    result.error = "segment: corrupt scan section";
    return result;
  }
  if (segment_scans.empty()) {
    result.error = "segment: no scans";
    return result;
  }
  // Chronology: the archive's own append path rejects out-of-order
  // scans with an exception; pre-check so a stale segment is a clean
  // error instead.
  if (!cur->archive->scans().empty() &&
      segment_scans.front().event.start <
          cur->archive->scans().back().event.start) {
    result.error = "segment: scans predate the current corpus";
    return result;
  }
  for (const scan::ScanData& scan : segment_scans) {
    for (const scan::Observation& obs : scan.observations) {
      if (obs.cert >= segment_certs.size()) {
        result.error = "segment: observation references unknown cert";
        return result;
      }
    }
  }

  // Copy-on-append: the new epoch gets its own archive; every snapshot
  // already handed out keeps (and owns) the previous one.
  auto next = std::make_shared<scan::ScanArchive>(*cur->archive);
  const std::size_t old_cert_count = next->certs().size();

  // Re-intern the segment's certificates. Intern order follows the
  // segment's id order, so the resulting global ids are deterministic.
  std::vector<scan::CertId> global_id(segment_certs.size());
  std::vector<char> changed(old_cert_count, 0);
  std::vector<std::pair<scan::KeyFingerprint, scan::CertId>> new_keys;
  for (std::size_t i = 0; i < segment_certs.size(); ++i) {
    const scan::KeyFingerprint key = segment_certs[i].key_fingerprint;
    const scan::CertId id = next->intern(std::move(segment_certs[i]));
    global_id[i] = id;
    if (id >= old_cert_count) {
      ++result.new_certs;
      new_keys.emplace_back(key, id);
      // A new holder of an existing SPKI raises the key-sharing degree
      // of every certificate already holding it.
      const auto it = keys_.find(key);
      if (it != keys_.end()) {
        for (const scan::CertId peer : it->second) changed[peer] = 1;
      }
    }
  }

  // Append the scans with observations remapped to global ids; every
  // observed certificate's history (and stats row) changes.
  for (scan::ScanData& scan : segment_scans) {
    for (scan::Observation& obs : scan.observations) {
      obs.cert = global_id[obs.cert];
      if (obs.cert < old_cert_count) changed[obs.cert] = 1;
    }
    result.observations += scan.observations.size();
    next->add_scan(std::move(scan));
    ++result.scans_appended;
  }

  // The delta: every pre-existing cert marked above plus every new one.
  std::vector<scan::CertId> delta;
  for (std::size_t i = 0; i < old_cert_count; ++i) {
    if (changed[i] != 0) delta.push_back(static_cast<scan::CertId>(i));
  }
  for (std::size_t i = old_cert_count; i < next->certs().size(); ++i) {
    delta.push_back(static_cast<scan::CertId>(i));
  }
  result.delta_size = delta.size();

  // Build the new spine (the expensive part — readers keep serving the
  // old epoch throughout) and publish. The release store pairs with
  // snapshot()'s acquire load.
  auto snap = std::make_shared<LiveSnapshot>();
  snap->epoch = cur->epoch + 1;
  snap->spine = std::make_shared<const CorpusIndex>(
      *next, CorpusOptions{routing_, pool_});
  snap->archive = std::move(next);
  snap->delta = std::move(delta);

  // Commit the append-side key map only now that nothing can fail.
  for (const auto& [key, id] : new_keys) keys_[key].push_back(id);
  snapshot_.store(std::move(snap), std::memory_order_release);
  result.ok = true;
  return result;
}

scan::ScanArchive extract_segment(const scan::ScanArchive& full,
                                  std::size_t first, std::size_t last) {
  scan::ScanArchive segment;
  last = std::min(last, full.scans().size());
  // Dense re-intern: only the certificates these scans observe, in
  // first-observation order.
  std::vector<scan::CertId> local(full.certs().size(),
                                  scan::CertId{0xffffffff});
  for (std::size_t s = first; s < last; ++s) {
    const scan::ScanData& scan = full.scans()[s];
    scan::ScanData copy;
    copy.event = scan.event;
    copy.observations.reserve(scan.observations.size());
    for (const scan::Observation& obs : scan.observations) {
      if (local[obs.cert] == scan::CertId{0xffffffff}) {
        local[obs.cert] = segment.intern(full.cert(obs.cert));
      }
      copy.observations.push_back({local[obs.cert], obs.ip, obs.device});
    }
    segment.add_scan(std::move(copy));
  }
  return segment;
}

scan::ScanArchive extract_prefix_slice(const scan::ScanArchive& full,
                                       std::uint8_t lo, std::uint8_t hi) {
  scan::ScanArchive slice;
  // Intern pass first, in original id order: a shard must know every
  // in-range certificate the full corpus interned, observed or not.
  std::vector<scan::CertId> local(full.certs().size(),
                                  scan::CertId{0xffffffff});
  for (std::size_t id = 0; id < full.certs().size(); ++id) {
    const scan::CertRecord& cert = full.cert(static_cast<scan::CertId>(id));
    if (cert.fingerprint[0] < lo || cert.fingerprint[0] > hi) continue;
    local[id] = slice.intern(cert);
  }
  for (const scan::ScanData& scan : full.scans()) {
    scan::ScanData copy;
    copy.event = scan.event;
    for (const scan::Observation& obs : scan.observations) {
      if (local[obs.cert] == scan::CertId{0xffffffff}) continue;
      copy.observations.push_back({local[obs.cert], obs.ip, obs.device});
    }
    slice.add_scan(std::move(copy));
  }
  return slice;
}

}  // namespace sm::corpus
