// LiveCorpus — the growing corpus behind a continuously updating notary.
//
// The paper's §8 notary is inherently a live service: the scan corpus
// keeps growing while clients query it (the Certificate Transparency
// delivery shape — an append-only log that monitors poll). Everything
// else in this repository builds once from a finished archive;
// LiveCorpus is the bridge between those immutable builds and a stream
// of new scan segments:
//
//   * ingest: append_segment() streams one SMAR segment (certificates +
//     scans) through scan::ArchiveReader, re-interns its certificates
//     into a *copy* of the current archive, appends its scans, and
//     builds a fresh immutable corpus::CorpusIndex spine on the shared
//     util::ThreadPool;
//   * publish: the new (archive, spine, delta) triple becomes a
//     LiveSnapshot published through one epoch/RCU-style shared_ptr
//     swap (std::atomic<std::shared_ptr>, release store). Readers take
//     acquire loads and hold zero locks: a snapshot() caller keeps the
//     whole epoch alive via its shared_ptr while queries render, and
//     old epochs retire automatically when the last reader drops them;
//   * delta: each snapshot carries the exact set of certificate ids
//     whose knowledge changed in that epoch — certificates observed by
//     the new scans, newly interned certificates, and every existing
//     certificate sharing an SPKI key with a new one (its key-sharing
//     degree grew). Downstream caches (NotaryService's per-shard LRU)
//     invalidate precisely this set and keep everything else.
//
// Certificate ids are stable across epochs: interning is append-only
// and deduplicates by fingerprint, so id N means the same certificate
// in every snapshot that contains it. Appends are serialized by a
// writer mutex; failed appends (corrupt segment, non-chronological
// scans) leave the published snapshot and all ingest state untouched.
//
// Two additions serve the sharded deployment:
//
//   * sidecar maps: each snapshot can carry fingerprint-keyed revocation
//     statuses and full-corpus key-sharing degrees, versioned with the
//     same copy-on-write discipline as the archive. append_segment and
//     merge_slice update them (a cert revoked mid-ingestion invalidates
//     its cache entry through the delta like any other change), and
//     NotaryIndex builds inject them so a slice answers byte-identically
//     to the unsharded oracle;
//   * resharding: merge_slice() absorbs another shard's prefix slice
//     (matching scans by start time and concatenating observations), and
//     retire_prefix() drops a handed-off range. retire rebuilds the
//     intern table, so it is the one operation that breaks cert-id
//     stability — its delta deliberately spans every id of both the old
//     and new epoch, forcing a full downstream cache flush.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus_index.h"
#include "net/route_table.h"
#include "scan/archive.h"

namespace sm::corpus {

/// Revocation status per certificate fingerprint (fingerprint-keyed so
/// entries survive re-interning across slices; mirrors
/// NotaryIndexOptions::revocation_statuses).
using RevocationStatusMap =
    std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                       scan::FingerprintHash>;

/// Full-corpus key-sharing degree per SPKI key (mirrors
/// NotaryIndexOptions::key_counts). A prefix slice cannot derive these
/// from its own certificates, so sharded daemons carry them alongside.
using KeyCountMap = std::unordered_map<scan::KeyFingerprint, std::uint32_t>;

/// One immutable published epoch of the growing corpus. Everything here
/// is safe to read from any thread for as long as the shared_ptr that
/// delivered it lives. Member order matters: `spine` borrows `*archive`,
/// so it is declared after (destroyed before) the archive.
struct LiveSnapshot {
  /// 0 for the initial snapshot; +1 per successful publish (append,
  /// slice merge, or prefix retire).
  std::uint64_t epoch = 0;
  std::shared_ptr<const scan::ScanArchive> archive;
  std::shared_ptr<const CorpusIndex> spine;
  /// Certificate ids whose derived knowledge changed in this epoch
  /// (ascending, deduplicated; empty for epoch 0). After retire_prefix
  /// this spans every id of the old AND new epoch — ids were remapped,
  /// so nothing cached under the old numbering may survive.
  std::vector<scan::CertId> delta;
  /// Revocation statuses in effect for this epoch (null = none known).
  std::shared_ptr<const RevocationStatusMap> statuses;
  /// Injected full-corpus key-sharing degrees (null = derive from the
  /// archive itself, the unsharded case).
  std::shared_ptr<const KeyCountMap> key_counts;
};

/// Outcome of one append_segment() call.
struct AppendResult {
  bool ok = false;
  std::string error;             ///< set when !ok
  std::size_t scans_appended = 0;
  std::size_t new_certs = 0;     ///< certificates first seen in this segment
  std::size_t observations = 0;  ///< observations appended
  std::size_t delta_size = 0;    ///< |snapshot()->delta| after the append
};

class LiveCorpus {
 public:
  /// Seeds the corpus with an initial archive and publishes epoch 0.
  /// `routing` (optional, borrowed) enables the spine's AS resolution;
  /// `pool` (optional) runs the spine builds (null = global pool).
  /// `statuses` seeds the revocation sidecar; a non-empty `key_counts`
  /// marks this corpus as a prefix slice carrying injected full-corpus
  /// degrees (sm_notaryd --shard-prefix passes both).
  explicit LiveCorpus(scan::ScanArchive initial,
                      const net::RoutingHistory* routing = nullptr,
                      util::ThreadPool* pool = nullptr,
                      RevocationStatusMap statuses = {},
                      KeyCountMap key_counts = {});

  LiveCorpus(const LiveCorpus&) = delete;
  LiveCorpus& operator=(const LiveCorpus&) = delete;

  /// The current epoch — one lock-free acquire load. The returned
  /// shared_ptr keeps the snapshot (archive + spine) alive for the
  /// caller regardless of later publishes.
  std::shared_ptr<const LiveSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Streams one SMAR segment from `in` and publishes a new epoch.
  /// Serializes with other appends; never blocks readers. On any
  /// failure (corrupt segment, scans not after the current last scan)
  /// nothing is published and the result carries the reason.
  /// `statuses` (optional) carries revocation statuses learned with the
  /// segment — typically for its newly interned certificates, but a
  /// changed status for an already-known certificate is applied too and
  /// lands in the delta, so a cert revoked mid-ingestion invalidates its
  /// cached render.
  AppendResult append_segment(std::istream& in,
                              const RevocationStatusMap* statuses = nullptr);

  /// Streams another shard's prefix slice (SMAR bytes from `in`) and
  /// merges it: certificates are re-interned (new ones appended, so
  /// existing ids stay stable), scans are matched to the local timeline
  /// by start time — observations concatenate for a shared scan, scans
  /// unknown locally are inserted — and the sidecar maps absorb
  /// `key_counts` (taking the larger degree) and `statuses`. Both
  /// archives must keep strictly increasing scan start times; the caller
  /// guarantees the slice's prefix range is disjoint from ranges already
  /// ingested in full (the sender protocol does). An empty local archive
  /// (a fresh successor daemon) adopts the slice wholesale.
  AppendResult merge_slice(std::istream& in,
                           const KeyCountMap* key_counts = nullptr,
                           const RevocationStatusMap* statuses = nullptr);

  /// Drops every certificate whose fingerprint starts with a byte in
  /// [lo, hi] (inclusive) and their observations; scans and the rest of
  /// the corpus survive. The intern table is rebuilt, so cert ids are
  /// remapped: the published delta covers every id of the old and new
  /// epoch, and downstream caches must flush accordingly (LiveSnapshot
  /// delta semantics make that automatic).
  AppendResult retire_prefix(std::uint8_t lo, std::uint8_t hi);

  /// Successful publishes so far (== snapshot()->epoch).
  std::uint64_t epochs_published() const {
    return snapshot()->epoch;
  }

 private:
  struct PendingPublish;
  void publish(PendingPublish&& pending);

  const net::RoutingHistory* routing_;
  util::ThreadPool* pool_;

  std::mutex append_mutex_;  ///< serializes writers; readers never take it
  /// SPKI key -> certificate ids holding it, over the *current* epoch's
  /// certificates (append-side state, guarded by append_mutex_). Used to
  /// find the existing certs whose key-sharing degree a new cert changes.
  std::unordered_map<scan::KeyFingerprint, std::vector<scan::CertId>> keys_;
  /// Current sidecar versions (append-side; published by pointer, copied
  /// on change). statuses_ null means empty; key_counts_ null means "not
  /// a slice — derive degrees locally".
  std::shared_ptr<const RevocationStatusMap> statuses_;
  std::shared_ptr<const KeyCountMap> key_counts_;

  std::atomic<std::shared_ptr<const LiveSnapshot>> snapshot_;
};

/// Builds a standalone archive containing scans [first, last) of `full`
/// and exactly the certificates they observe, re-interned densely. The
/// segment-producer helper: sm_notaryd's ingest bench and the tests use
/// it to split a simulated archive into an initial corpus plus a stream
/// of appendable SMAR segments.
scan::ScanArchive extract_segment(const scan::ScanArchive& full,
                                  std::size_t first, std::size_t last);

/// Builds the fingerprint-prefix slice of `full` for one notary shard:
/// every certificate whose fingerprint's first byte lies in [lo, hi]
/// (inclusive), re-interned densely in original id order — including
/// interned-but-never-observed certificates, so the N slices of a
/// partition cover the archive exactly. Scans from `first_scan` on are
/// kept (with only the in-range observations); the default 0 keeps ALL
/// scans, so each shard reports the same staleness bound (scan count,
/// last scan start) as the unsliced corpus. A nonzero `first_scan` is
/// the slice-handoff catch-up form: all in-range certificates (intern
/// dedups re-sends on the receiving side) but only the scans the
/// receiver has not yet merged.
scan::ScanArchive extract_prefix_slice(const scan::ScanArchive& full,
                                       std::uint8_t lo, std::uint8_t hi,
                                       std::size_t first_scan = 0);

}  // namespace sm::corpus
