// LiveCorpus — the growing corpus behind a continuously updating notary.
//
// The paper's §8 notary is inherently a live service: the scan corpus
// keeps growing while clients query it (the Certificate Transparency
// delivery shape — an append-only log that monitors poll). Everything
// else in this repository builds once from a finished archive;
// LiveCorpus is the bridge between those immutable builds and a stream
// of new scan segments:
//
//   * ingest: append_segment() streams one SMAR segment (certificates +
//     scans) through scan::ArchiveReader, re-interns its certificates
//     into a *copy* of the current archive, appends its scans, and
//     builds a fresh immutable corpus::CorpusIndex spine on the shared
//     util::ThreadPool;
//   * publish: the new (archive, spine, delta) triple becomes a
//     LiveSnapshot published through one epoch/RCU-style shared_ptr
//     swap (std::atomic<std::shared_ptr>, release store). Readers take
//     acquire loads and hold zero locks: a snapshot() caller keeps the
//     whole epoch alive via its shared_ptr while queries render, and
//     old epochs retire automatically when the last reader drops them;
//   * delta: each snapshot carries the exact set of certificate ids
//     whose knowledge changed in that epoch — certificates observed by
//     the new scans, newly interned certificates, and every existing
//     certificate sharing an SPKI key with a new one (its key-sharing
//     degree grew). Downstream caches (NotaryService's per-shard LRU)
//     invalidate precisely this set and keep everything else.
//
// Certificate ids are stable across epochs: interning is append-only
// and deduplicates by fingerprint, so id N means the same certificate
// in every snapshot that contains it. Appends are serialized by a
// writer mutex; failed appends (corrupt segment, non-chronological
// scans) leave the published snapshot and all ingest state untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus_index.h"
#include "net/route_table.h"
#include "scan/archive.h"

namespace sm::corpus {

/// One immutable published epoch of the growing corpus. Everything here
/// is safe to read from any thread for as long as the shared_ptr that
/// delivered it lives. Member order matters: `spine` borrows `*archive`,
/// so it is declared after (destroyed before) the archive.
struct LiveSnapshot {
  /// 0 for the initial snapshot; +1 per successful append.
  std::uint64_t epoch = 0;
  std::shared_ptr<const scan::ScanArchive> archive;
  std::shared_ptr<const CorpusIndex> spine;
  /// Certificate ids whose derived knowledge changed in this epoch
  /// (ascending, deduplicated; empty for epoch 0).
  std::vector<scan::CertId> delta;
};

/// Outcome of one append_segment() call.
struct AppendResult {
  bool ok = false;
  std::string error;             ///< set when !ok
  std::size_t scans_appended = 0;
  std::size_t new_certs = 0;     ///< certificates first seen in this segment
  std::size_t observations = 0;  ///< observations appended
  std::size_t delta_size = 0;    ///< |snapshot()->delta| after the append
};

class LiveCorpus {
 public:
  /// Seeds the corpus with an initial archive and publishes epoch 0.
  /// `routing` (optional, borrowed) enables the spine's AS resolution;
  /// `pool` (optional) runs the spine builds (null = global pool).
  explicit LiveCorpus(scan::ScanArchive initial,
                      const net::RoutingHistory* routing = nullptr,
                      util::ThreadPool* pool = nullptr);

  LiveCorpus(const LiveCorpus&) = delete;
  LiveCorpus& operator=(const LiveCorpus&) = delete;

  /// The current epoch — one lock-free acquire load. The returned
  /// shared_ptr keeps the snapshot (archive + spine) alive for the
  /// caller regardless of later publishes.
  std::shared_ptr<const LiveSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Streams one SMAR segment from `in` and publishes a new epoch.
  /// Serializes with other appends; never blocks readers. On any
  /// failure (corrupt segment, scans not after the current last scan)
  /// nothing is published and the result carries the reason.
  AppendResult append_segment(std::istream& in);

  /// Successful appends so far (== snapshot()->epoch).
  std::uint64_t epochs_published() const {
    return snapshot()->epoch;
  }

 private:
  const net::RoutingHistory* routing_;
  util::ThreadPool* pool_;

  std::mutex append_mutex_;  ///< serializes writers; readers never take it
  /// SPKI key -> certificate ids holding it, over the *current* epoch's
  /// certificates (append-side state, guarded by append_mutex_). Used to
  /// find the existing certs whose key-sharing degree a new cert changes.
  std::unordered_map<scan::KeyFingerprint, std::vector<scan::CertId>> keys_;

  std::atomic<std::shared_ptr<const LiveSnapshot>> snapshot_;
};

/// Builds a standalone archive containing scans [first, last) of `full`
/// and exactly the certificates they observe, re-interned densely. The
/// segment-producer helper: sm_notaryd's ingest bench and the tests use
/// it to split a simulated archive into an initial corpus plus a stream
/// of appendable SMAR segments.
scan::ScanArchive extract_segment(const scan::ScanArchive& full,
                                  std::size_t first, std::size_t last);

/// Builds the fingerprint-prefix slice of `full` for one notary shard:
/// every certificate whose fingerprint's first byte lies in [lo, hi]
/// (inclusive), re-interned densely in original id order — including
/// interned-but-never-observed certificates, so the N slices of a
/// partition cover the archive exactly. ALL scans are kept (with only
/// the in-range observations), so each shard reports the same staleness
/// bound (scan count, last scan start) as the unsliced corpus.
scan::ScanArchive extract_prefix_slice(const scan::ScanArchive& full,
                                       std::uint8_t lo, std::uint8_t hi);

}  // namespace sm::corpus
