#include "corpus/corpus_index.h"

#include <algorithm>
#include <limits>

#include "util/datetime.h"

namespace sm::corpus {

namespace {

// Chunk sizes for the parallel passes. Observation chunks are large (the
// per-element work is one trie lookup); cert chunks are smaller because a
// single cert can own thousands of observations.
constexpr std::size_t kAsnChunk = 8192;
constexpr std::size_t kStatsChunk = 256;

}  // namespace

CorpusIndex::CorpusIndex(const scan::ScanArchive& archive,
                         const CorpusOptions& options)
    : archive_(&archive), routing_(options.routing) {
  util::ThreadPool* pool = options.pool;
  if (pool == nullptr) pool = &util::ThreadPool::global();

  const auto& scans = archive.scans();
  const std::size_t cert_count = archive.certs().size();

  scan_tables_.reserve(scans.size());
  for (const scan::ScanData& scan : scans) {
    scan_tables_.push_back(routing_ == nullptr ? nullptr
                                               : routing_->at(scan.event.start));
  }

  // Pass 1 (serial): count observations per cert, prefix-sum into the CSR
  // offsets. The layout depends only on archive order, never on threads.
  offsets_.assign(cert_count + 1, 0);
  for (const scan::ScanData& scan : scans) {
    for (const scan::Observation& obs : scan.observations) {
      ++offsets_[obs.cert + 1];
    }
  }
  for (std::size_t i = 1; i <= cert_count; ++i) offsets_[i] += offsets_[i - 1];

  // Pass 2 (serial): scatter observations into cert-major rows. Walking
  // scans in order makes every row sorted by (scan, intra-scan position),
  // and the first write to a row is the cert's first-ever observation.
  obs_.resize(offsets_[cert_count]);
  first_device_.assign(cert_count, scan::kNoDevice);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t scan_index = 0; scan_index < scans.size(); ++scan_index) {
    const auto scan32 = static_cast<std::uint32_t>(scan_index);
    for (const scan::Observation& obs : scans[scan_index].observations) {
      const std::uint64_t slot = cursor[obs.cert]++;
      if (slot == offsets_[obs.cert]) first_device_[obs.cert] = obs.device;
      obs_[slot] = Obs{scan32, obs.ip};
    }
  }

  // Pass 3 (parallel): resolve the ASN column. Each slot is written exactly
  // once from its own index, so the column is thread-count-invariant.
  obs_asn_.resize(obs_.size());
  pool->parallel_for(obs_.size(), kAsnChunk,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         const net::RouteTable* table =
                             scan_tables_[obs_[i].scan];
                         obs_asn_[i] =
                             table == nullptr
                                 ? 0
                                 : table->lookup(net::Ipv4Address(obs_[i].ip))
                                       .value_or(0);
                       }
                     });

  // Pass 4 (parallel): derive the per-cert stats row from the cert's own
  // CSR segment — again one writer per slot.
  stats_.assign(cert_count, CertStats{});
  pool->parallel_for(
      cert_count, kStatsChunk, [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint32_t> ips;  // scratch, reused across certs
        std::vector<net::Asn> ases;
        for (std::size_t id = begin; id < end; ++id) {
          const std::uint64_t lo = offsets_[id];
          const std::uint64_t hi = offsets_[id + 1];
          if (lo == hi) continue;  // interned but never observed
          CertStats& s = stats_[id];
          s.first_scan = obs_[lo].scan;
          s.last_scan = obs_[hi - 1].scan;
          s.min_ips_in_scan = std::numeric_limits<std::uint32_t>::max();
          // Per-scan runs: unique-IP counts feed the slot/min/max metrics.
          for (std::uint64_t i = lo; i < hi;) {
            const std::uint32_t scan = obs_[i].scan;
            ips.clear();
            while (i < hi && obs_[i].scan == scan) ips.push_back(obs_[i++].ip);
            std::sort(ips.begin(), ips.end());
            const auto ip_count = static_cast<std::uint32_t>(
                std::unique(ips.begin(), ips.end()) - ips.begin());
            ++s.scans_seen;
            s.total_ip_scan_slots += ip_count;
            s.max_ips_in_scan = std::max(s.max_ips_in_scan, ip_count);
            s.min_ips_in_scan = std::min(s.min_ips_in_scan, ip_count);
          }
          if (routing_ == nullptr) continue;
          // Observation-weighted AS tally. Scanning runs of the sorted
          // copy in ascending ASN order with a strictly-greater test makes
          // ties break toward the smallest AS number.
          ases.assign(obs_asn_.begin() + static_cast<std::ptrdiff_t>(lo),
                      obs_asn_.begin() + static_cast<std::ptrdiff_t>(hi));
          std::sort(ases.begin(), ases.end());
          std::size_t best_count = 0;
          for (std::size_t i = 0; i < ases.size();) {
            std::size_t j = i;
            while (j < ases.size() && ases[j] == ases[i]) ++j;
            ++s.distinct_as_count;
            if (j - i > best_count) {
              best_count = j - i;
              s.majority_as = ases[i];
            }
            i = j;
          }
        }
      });
}

double CorpusIndex::lifetime_days(scan::CertId id) const {
  const CertStats& s = stats_[id];
  if (s.scans_seen == 0) return 0;
  if (s.first_scan == s.last_scan) return 1;
  const auto& scans = archive_->scans();
  const double seconds = static_cast<double>(
      scans[s.last_scan].event.start - scans[s.first_scan].event.start);
  return seconds / static_cast<double>(util::kSecondsPerDay) + 1.0;
}

net::Asn CorpusIndex::as_of(std::size_t scan_index, std::uint32_t ip) const {
  const net::RouteTable* table = scan_tables_[scan_index];
  if (table == nullptr) return 0;
  return table->lookup(net::Ipv4Address(ip)).value_or(0);
}

}  // namespace sm::corpus
