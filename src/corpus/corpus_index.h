// CorpusIndex — the columnar spine every corpus consumer shares.
//
// The paper's whole pipeline is downstream of one logical table
// (certificate x scan x IP x AS): §5 population analysis reads per-cert
// stats, §6 linking reads per-cert observation lists and their origin
// ASes, §7 tracking reads per-cert (scan, ip) timelines, and the §8
// notary reads all of the above. Before this module existed each layer
// re-derived that table from the raw ScanArchive on its own — four
// independent cert→observation CSR builds and four rounds of IP→AS
// resolution per survey. The spine is built exactly once per archive:
//
//   offsets_   cert id -> [lo, hi) row into the flat columns (CSR)
//   obs_       {scan, ip} per observation, cert-major, sorted by scan
//              (and by intra-scan position within a scan) — the order the
//              archive itself stores observations in
//   obs_asn_   origin AS per observation, resolved through the routing
//              snapshot in effect at that observation's scan start
//              (0 = unroutable or no routing history supplied)
//   stats_     the derived per-certificate row (scans seen, first/last
//              scan, unique-IP slots, min/max IPs per scan, distinct
//              ASes, majority AS)
//
// Construction runs on a util::ThreadPool (the process-global pool when
// null) and is deterministic: the CSR layout is defined by archive order
// alone, and the parallel passes (ASN resolution, per-cert stats) write
// index-addressed slots, so every column is bit-identical at any thread
// count. After construction the index is immutable; all accessors are
// zero-copy spans safe to read from any number of threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/route_table.h"
#include "scan/archive.h"
#include "util/thread_pool.h"

namespace sm::corpus {

/// Derived per-certificate statistics (the paper's §5 metrics; consumed
/// by analysis, linking, and tracking).
struct CertStats {
  std::uint32_t scans_seen = 0;  ///< scans with >= 1 observation
  std::uint32_t first_scan = 0;
  std::uint32_t last_scan = 0;
  /// Sum over scans of the number of *unique* IPs advertising the cert.
  std::uint64_t total_ip_scan_slots = 0;
  std::uint32_t max_ips_in_scan = 0;
  std::uint32_t min_ips_in_scan = 0;
  std::uint32_t distinct_as_count = 0;
  /// The AS hosting this certificate most often (observation-weighted;
  /// ties break toward the smallest AS number).
  net::Asn majority_as = 0;

  /// Average unique IPs advertising the certificate per scan where seen
  /// (the paper's Figure 7 metric). 0 when never observed.
  double avg_ips_per_scan() const {
    return scans_seen == 0 ? 0.0
                           : static_cast<double>(total_ip_scan_slots) /
                                 static_cast<double>(scans_seen);
  }
};

/// One flattened observation: which scan, which IP. The ground-truth
/// device id stays in the archive (only the linker's truth scoring wants
/// it, via first_device()).
struct Obs {
  std::uint32_t scan = 0;
  std::uint32_t ip = 0;
};

/// Optional inputs for CorpusIndex construction.
struct CorpusOptions {
  /// Enables IP→AS resolution (each observation resolved through the
  /// snapshot in effect at its scan's start). Without it the ASN column
  /// is all zeros and distinct_as_count/majority_as stay 0.
  const net::RoutingHistory* routing = nullptr;
  /// Pool for the parallel build; null = the process-global pool.
  util::ThreadPool* pool = nullptr;
};

/// The immutable spine. Borrows `archive` (and `routing` when supplied)
/// for its lifetime.
class CorpusIndex {
 public:
  explicit CorpusIndex(const scan::ScanArchive& archive,
                       const CorpusOptions& options = {});

  CorpusIndex(const CorpusIndex&) = delete;
  CorpusIndex& operator=(const CorpusIndex&) = delete;

  const scan::ScanArchive& archive() const { return *archive_; }
  bool has_routing() const { return routing_ != nullptr; }

  std::size_t cert_count() const { return stats_.size(); }
  std::size_t scan_count() const { return archive_->scans().size(); }
  std::size_t observation_count() const { return obs_.size(); }

  /// All observations of certificate `id`, ordered by (scan, position in
  /// scan). Zero-copy; empty for interned-but-never-observed certs.
  std::span<const Obs> observations(scan::CertId id) const {
    return {obs_.data() + offsets_[id],
            obs_.data() + offsets_[id + 1]};
  }

  /// The origin-AS column parallel to observations(id): asns(id)[i] is
  /// the resolved AS of observations(id)[i] (0 = unroutable).
  std::span<const net::Asn> asns(scan::CertId id) const {
    return {obs_asn_.data() + offsets_[id],
            obs_asn_.data() + offsets_[id + 1]};
  }

  /// The derived stats row for certificate `id`.
  const CertStats& stats(scan::CertId id) const { return stats_[id]; }
  const std::vector<CertStats>& all_stats() const { return stats_; }

  /// Ground-truth device of the certificate's first observation
  /// (simulator-assigned; scan::kNoDevice when never observed).
  scan::DeviceId first_device(scan::CertId id) const {
    return first_device_[id];
  }

  /// Lifetime in days, computed the paper's way (1 day when seen once).
  double lifetime_days(scan::CertId id) const;

  /// Ad-hoc resolution: the origin AS of `ip` at scan `scan_index`
  /// (0 when unroutable). Per-observation consumers should read the
  /// precomputed asns() column instead.
  net::Asn as_of(std::size_t scan_index, std::uint32_t ip) const;

 private:
  const scan::ScanArchive* archive_;
  const net::RoutingHistory* routing_;
  std::vector<const net::RouteTable*> scan_tables_;  // per scan
  std::vector<std::uint64_t> offsets_;               // cert_count + 1
  std::vector<Obs> obs_;                             // flat {scan, ip}
  std::vector<net::Asn> obs_asn_;                    // parallel column
  std::vector<CertStats> stats_;                     // per cert
  std::vector<scan::DeviceId> first_device_;         // per cert
};

}  // namespace sm::corpus
