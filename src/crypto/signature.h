// Unified signature interface used by the X.509 layer.
//
// Two schemes are supported:
//
//  * kRsaSha256 — real RSA over sm::bignum with PKCS1-v1.5/SHA-256 padding.
//    Used in unit tests, examples, and small simulated worlds.
//
//  * kSimSha256 — a *simulated* signature for population-scale worlds:
//    the public key is an opaque 32-byte identifier and a signature is
//    SHA-256(pubkey || message). Verification needs only public data and
//    runs the same structural code path as RSA verification (fetch SPKI,
//    recompute, compare), but the scheme offers no unforgeability — it
//    exists so that simulating millions of devices does not require
//    millions of real RSA key generations. DESIGN.md documents this
//    substitution.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/prng.h"

namespace sm::crypto {

/// Which signature scheme a key or certificate uses.
enum class SigScheme : std::uint8_t {
  kRsaSha256 = 1,
  kSimSha256 = 2,
};

/// Human-readable name ("rsa-sha256" / "sim-sha256").
std::string to_string(SigScheme scheme);

/// A serialized public key plus its scheme; what an X.509
/// SubjectPublicKeyInfo carries.
struct PublicKeyInfo {
  SigScheme scheme = SigScheme::kSimSha256;
  util::Bytes key;  ///< RSA wire format or 32-byte sim identifier

  friend bool operator==(const PublicKeyInfo&, const PublicKeyInfo&) = default;

  /// SHA-256 fingerprint of (scheme byte || key bytes); the canonical key
  /// identity used for key-sharing analysis and SKI/AKI extensions.
  util::Bytes fingerprint() const;
};

/// A signing key: the public half plus secret material.
struct SigningKey {
  PublicKeyInfo pub;
  util::Bytes secret;  ///< serialized RSA private key or 32-byte sim seed
};

/// Generates a keypair. For kRsaSha256, `rsa_bits` selects the modulus size;
/// for kSimSha256 the key is derived from 32 bytes of `rng` output.
SigningKey generate_keypair(SigScheme scheme, util::Rng& rng,
                            std::size_t rsa_bits = 512);

/// Signs `message`; the format of the result depends on the scheme.
util::Bytes sign(const SigningKey& key, util::BytesView message);

/// Verifies `signature` over `message` against `pub`. Returns false for
/// malformed keys or signatures rather than throwing.
bool verify(const PublicKeyInfo& pub, util::BytesView message,
            util::BytesView signature);

}  // namespace sm::crypto
