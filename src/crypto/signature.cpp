#include "crypto/signature.h"

#include <stdexcept>

#include "crypto/rsa.h"
#include "util/sha256.h"

namespace sm::crypto {

namespace {

// Secret serialization for RSA: SSH-style chunks n, e, d (p/q dropped; the
// non-CRT exponent is all that signing needs).
util::Bytes encode_rsa_secret(const RsaPrivateKey& key) {
  util::Bytes out;
  for (const bignum::BigUint* part : {&key.pub.n, &key.pub.e, &key.d}) {
    const util::Bytes bytes = part->to_bytes();
    out.push_back(static_cast<std::uint8_t>(bytes.size() >> 24));
    out.push_back(static_cast<std::uint8_t>(bytes.size() >> 16));
    out.push_back(static_cast<std::uint8_t>(bytes.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(bytes.size()));
    util::append(out, bytes);
  }
  return out;
}

bool decode_rsa_secret(util::BytesView in, RsaPrivateKey& out) {
  std::size_t pos = 0;
  const auto read_chunk = [&](bignum::BigUint& value) -> bool {
    if (pos + 4 > in.size()) return false;
    const std::uint32_t len = (std::uint32_t{in[pos]} << 24) |
                              (std::uint32_t{in[pos + 1]} << 16) |
                              (std::uint32_t{in[pos + 2]} << 8) |
                              std::uint32_t{in[pos + 3]};
    pos += 4;
    if (pos + len > in.size()) return false;
    value = bignum::BigUint::from_bytes(in.subspan(pos, len));
    pos += len;
    return true;
  };
  return read_chunk(out.pub.n) && read_chunk(out.pub.e) &&
         read_chunk(out.d) && pos == in.size();
}

util::Bytes sim_sign(util::BytesView pub, util::BytesView message) {
  util::Sha256 h;
  h.update(pub).update(message);
  return h.finish();
}

}  // namespace

std::string to_string(SigScheme scheme) {
  switch (scheme) {
    case SigScheme::kRsaSha256:
      return "rsa-sha256";
    case SigScheme::kSimSha256:
      return "sim-sha256";
  }
  return "unknown";
}

util::Bytes PublicKeyInfo::fingerprint() const {
  util::Sha256 h;
  const std::uint8_t tag = static_cast<std::uint8_t>(scheme);
  h.update(util::BytesView(&tag, 1)).update(key);
  return h.finish();
}

SigningKey generate_keypair(SigScheme scheme, util::Rng& rng,
                            std::size_t rsa_bits) {
  SigningKey out;
  out.pub.scheme = scheme;
  switch (scheme) {
    case SigScheme::kRsaSha256: {
      const RsaPrivateKey key = generate_rsa_keypair(rsa_bits, rng);
      out.pub.key = encode_rsa_public_key(key.pub);
      out.secret = encode_rsa_secret(key);
      return out;
    }
    case SigScheme::kSimSha256: {
      util::Bytes seed(32);
      for (auto& b : seed) b = static_cast<std::uint8_t>(rng.below(256));
      // Public identifier is a hash of the seed so the "private" seed is not
      // directly visible in the certificate.
      out.pub.key = util::Sha256::digest(seed);
      out.secret = std::move(seed);
      return out;
    }
  }
  throw std::invalid_argument("unknown signature scheme");
}

util::Bytes sign(const SigningKey& key, util::BytesView message) {
  switch (key.pub.scheme) {
    case SigScheme::kRsaSha256: {
      RsaPrivateKey rsa;
      if (!decode_rsa_secret(key.secret, rsa)) {
        throw std::invalid_argument("corrupt RSA secret");
      }
      return rsa_sign_sha256(rsa, message);
    }
    case SigScheme::kSimSha256:
      return sim_sign(key.pub.key, message);
  }
  throw std::invalid_argument("unknown signature scheme");
}

bool verify(const PublicKeyInfo& pub, util::BytesView message,
            util::BytesView signature) {
  switch (pub.scheme) {
    case SigScheme::kRsaSha256: {
      RsaPublicKey key;
      if (!decode_rsa_public_key(pub.key, key)) return false;
      return rsa_verify_sha256(key, message, signature);
    }
    case SigScheme::kSimSha256: {
      if (pub.key.size() != util::Sha256::kDigestSize) return false;
      const util::Bytes expected = sim_sign(pub.key, message);
      return signature.size() == expected.size() &&
             std::equal(signature.begin(), signature.end(), expected.begin());
    }
  }
  return false;
}

}  // namespace sm::crypto
