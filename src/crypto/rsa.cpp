#include "crypto/rsa.h"

#include <stdexcept>

#include "bignum/prime.h"
#include "util/sha256.h"

namespace sm::crypto {

namespace {

using bignum::BigUint;

// DER prefix of DigestInfo for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfoPrefix[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// Builds the EMSA-PKCS1-v1_5 encoding of SHA-256(message) for a modulus of
// `em_len` bytes. Throws when the modulus is too small to hold the padding.
util::Bytes emsa_encode(util::BytesView message, std::size_t em_len) {
  const util::Bytes digest = util::Sha256::digest(message);
  const std::size_t t_len = sizeof(kSha256DigestInfoPrefix) + digest.size();
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA modulus too small for SHA-256 PKCS1");
  }
  util::Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), std::begin(kSha256DigestInfoPrefix),
            std::end(kSha256DigestInfoPrefix));
  util::append(em, digest);
  return em;
}

void put_u32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

RsaPrivateKey generate_rsa_keypair(std::size_t modulus_bits, util::Rng& rng) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("modulus_bits must be even and >= 128");
  }
  const BigUint e(65537);
  for (;;) {
    const BigUint p = bignum::random_prime(modulus_bits / 2, rng);
    const BigUint q = bignum::random_prime(modulus_bits / 2, rng);
    if (p == q) continue;
    const BigUint n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    const auto inv = BigUint::mod_inverse(e, phi);
    if (!inv.ok) continue;
    return RsaPrivateKey{RsaPublicKey{n, e}, inv.value, p, q};
  }
}

util::Bytes rsa_sign_sha256(const RsaPrivateKey& key,
                            util::BytesView message) {
  const std::size_t k = (key.pub.n.bit_length() + 7) / 8;
  const util::Bytes em = emsa_encode(message, k);
  const BigUint m = BigUint::from_bytes(em);
  const BigUint s = BigUint::mod_pow(m, key.d, key.pub.n);
  util::Bytes sig = s.to_bytes();
  // Left-pad to the modulus length.
  util::Bytes out(k - sig.size(), 0);
  util::append(out, sig);
  return out;
}

bool rsa_verify_sha256(const RsaPublicKey& key, util::BytesView message,
                       util::BytesView signature) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;
  const BigUint s = BigUint::from_bytes(signature);
  if (s >= key.n) return false;
  const BigUint m = BigUint::mod_pow(s, key.e, key.n);
  util::Bytes em = m.to_bytes();
  util::Bytes padded(k - em.size(), 0);
  util::append(padded, em);
  util::Bytes expected;
  try {
    expected = emsa_encode(message, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return padded == expected;
}

util::Bytes encode_rsa_public_key(const RsaPublicKey& key) {
  util::Bytes out;
  const util::Bytes n = key.n.to_bytes();
  const util::Bytes e = key.e.to_bytes();
  put_u32(out, static_cast<std::uint32_t>(n.size()));
  util::append(out, n);
  put_u32(out, static_cast<std::uint32_t>(e.size()));
  util::append(out, e);
  return out;
}

bool decode_rsa_public_key(util::BytesView in, RsaPublicKey& out) {
  std::size_t pos = 0;
  const auto read_chunk = [&](util::Bytes& chunk) -> bool {
    if (pos + 4 > in.size()) return false;
    const std::uint32_t len = (std::uint32_t{in[pos]} << 24) |
                              (std::uint32_t{in[pos + 1]} << 16) |
                              (std::uint32_t{in[pos + 2]} << 8) |
                              std::uint32_t{in[pos + 3]};
    pos += 4;
    if (pos + len > in.size()) return false;
    chunk.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
                 in.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return true;
  };
  util::Bytes n_bytes, e_bytes;
  if (!read_chunk(n_bytes) || !read_chunk(e_bytes)) return false;
  if (pos != in.size()) return false;
  out.n = bignum::BigUint::from_bytes(n_bytes);
  out.e = bignum::BigUint::from_bytes(e_bytes);
  return true;
}

}  // namespace sm::crypto
