// RSA key generation, signing, and verification, built on sm::bignum.
//
// Signing follows the EMSA-PKCS1-v1_5 shape (0x00 0x01 FF..FF 0x00 ||
// DigestInfo(SHA-256) || digest) so that signatures are deterministic and
// verification is an exact padded-message comparison, as in RFC 8017.
#pragma once

#include <cstddef>

#include "bignum/biguint.h"
#include "util/bytes.h"
#include "util/prng.h"

namespace sm::crypto {

/// An RSA public key (n, e).
struct RsaPublicKey {
  bignum::BigUint n;
  bignum::BigUint e;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

/// An RSA private key. Keeps the public half and the CRT-free exponent d.
struct RsaPrivateKey {
  RsaPublicKey pub;
  bignum::BigUint d;
  bignum::BigUint p;
  bignum::BigUint q;
};

/// Generates an RSA keypair with a modulus of exactly `modulus_bits` bits
/// (must be an even value >= 128; e = 65537, regenerating primes when
/// gcd(e, phi) != 1).
RsaPrivateKey generate_rsa_keypair(std::size_t modulus_bits, util::Rng& rng);

/// Signs SHA-256(message) with PKCS1-v1.5 padding. The result is exactly
/// the modulus length in bytes.
util::Bytes rsa_sign_sha256(const RsaPrivateKey& key, util::BytesView message);

/// Verifies a signature produced by rsa_sign_sha256.
bool rsa_verify_sha256(const RsaPublicKey& key, util::BytesView message,
                       util::BytesView signature);

/// Serializes a public key as SSH-style wire format:
/// uint32_be(len(n)) || n || uint32_be(len(e)) || e.
util::Bytes encode_rsa_public_key(const RsaPublicKey& key);

/// Parses encode_rsa_public_key output. Returns false on malformed input.
bool decode_rsa_public_key(util::BytesView in, RsaPublicKey& out);

}  // namespace sm::crypto
