#include "asn1/print.h"

#include <cstdio>

#include "asn1/der.h"
#include "util/datetime.h"
#include "util/hex.h"

namespace sm::asn1 {

namespace {

bool printable_text(util::BytesView content) {
  if (content.empty()) return false;
  for (const std::uint8_t b : content) {
    if (b < 0x20 || b > 0x7e) return false;
  }
  return true;
}

std::string hex_preview(util::BytesView content, std::size_t max_bytes) {
  if (content.size() <= max_bytes) return util::hex_encode(content);
  return util::hex_encode(content.subspan(0, max_bytes)) + "..";
}

void render(util::BytesView data, std::size_t depth,
            const PrintOptions& options, std::string& out) {
  Reader reader(data);
  while (!reader.at_end()) {
    const std::size_t before = reader.remaining();
    const auto tlv = reader.read_any();
    if (!tlv) {
      out.append(depth * 2, ' ');
      out += "!malformed (" + std::to_string(before) + " bytes): ";
      out += hex_preview(data.subspan(data.size() - before),
                         options.max_value_bytes);
      out += '\n';
      return;
    }
    out.append(depth * 2, ' ');
    out += tag_name(tlv->tag);

    const bool constructed = tlv->tag & 0x20;
    if (constructed) {
      out += " (" + std::to_string(tlv->content.size()) + " bytes)\n";
      if (depth + 1 >= options.max_depth) {
        out.append((depth + 1) * 2, ' ');
        out += "... (max depth)\n";
      } else {
        render(tlv->content, depth + 1, options, out);
      }
      continue;
    }

    // Primitive: decode the common universal types.
    Reader one(tlv->full);
    switch (static_cast<Tag>(tlv->tag)) {
      case Tag::kInteger: {
        if (const auto value = one.read_integer()) {
          const std::string hex = value->to_hex();
          out += hex.size() <= 16 ? " " + std::to_string(value->low64())
                                  : " 0x" + hex;
        } else {
          out += " (negative/raw) " +
                 hex_preview(tlv->content, options.max_value_bytes);
        }
        break;
      }
      case Tag::kBoolean:
        out += tlv->content.size() == 1 && tlv->content[0] ? " TRUE"
                                                           : " FALSE";
        break;
      case Tag::kNull:
        break;
      case Tag::kOid: {
        if (const auto oid = Oid::decode(tlv->content)) {
          out += " " + oid->to_string();
        } else {
          out += " !bad-oid " + hex_preview(tlv->content,
                                            options.max_value_bytes);
        }
        break;
      }
      case Tag::kUtf8String:
      case Tag::kPrintableString:
      case Tag::kIa5String:
        out += " \"" + util::to_string(tlv->content) + "\"";
        break;
      case Tag::kUtcTime:
      case Tag::kGeneralizedTime: {
        if (const auto t = one.read_time()) {
          out += " " + util::format_datetime(*t);
        } else {
          out += " !bad-time";
        }
        break;
      }
      default:
        if (printable_text(tlv->content)) {
          out += " \"" + util::to_string(tlv->content) + "\"";
        } else if (!tlv->content.empty()) {
          out += " " + hex_preview(tlv->content, options.max_value_bytes) +
                 " (" + std::to_string(tlv->content.size()) + " bytes)";
        }
    }
    out += '\n';
  }
}

}  // namespace

std::string tag_name(std::uint8_t tag) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kBoolean:
      return "BOOLEAN";
    case Tag::kInteger:
      return "INTEGER";
    case Tag::kBitString:
      return "BIT STRING";
    case Tag::kOctetString:
      return "OCTET STRING";
    case Tag::kNull:
      return "NULL";
    case Tag::kOid:
      return "OBJECT IDENTIFIER";
    case Tag::kUtf8String:
      return "UTF8String";
    case Tag::kPrintableString:
      return "PrintableString";
    case Tag::kIa5String:
      return "IA5String";
    case Tag::kUtcTime:
      return "UTCTime";
    case Tag::kGeneralizedTime:
      return "GeneralizedTime";
    case Tag::kSequence:
      return "SEQUENCE";
    case Tag::kSet:
      return "SET";
    default:
      break;
  }
  if ((tag & 0xc0) == 0x80) {  // context class
    char buf[16];
    std::snprintf(buf, sizeof(buf), "[%u]%s", tag & 0x1f,
                  (tag & 0x20) ? "" : " (primitive)");
    return buf;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "tag 0x%02x", tag);
  return buf;
}

std::string to_text(util::BytesView der, const PrintOptions& options) {
  std::string out;
  render(der, 0, options, out);
  return out;
}

}  // namespace sm::asn1
