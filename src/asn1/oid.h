// ASN.1 OBJECT IDENTIFIER values and the well-known OIDs the X.509 layer
// needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace sm::asn1 {

/// An OBJECT IDENTIFIER as a sequence of arcs, e.g. {2,5,4,3} = id-at-cn.
struct Oid {
  std::vector<std::uint32_t> arcs;

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;

  /// Dotted-decimal rendering, e.g. "2.5.4.3".
  std::string to_string() const;

  /// Parses dotted-decimal; requires at least two arcs, first in {0,1,2},
  /// second < 40 when first < 2 (per X.690 encoding constraints).
  static std::optional<Oid> from_string(const std::string& dotted);

  /// X.690 content-octet encoding (without tag/length).
  util::Bytes encode() const;

  /// Decodes X.690 content octets. Returns nullopt on malformed input.
  static std::optional<Oid> decode(util::BytesView content);
};

// -- Well-known OIDs used by the X.509 layer ---------------------------------

namespace oids {

/// id-at-commonName (2.5.4.3)
Oid common_name();
/// id-at-organizationName (2.5.4.10)
Oid organization();
/// id-at-organizationalUnitName (2.5.4.11)
Oid organizational_unit();
/// id-at-countryName (2.5.4.6)
Oid country();
/// id-at-localityName (2.5.4.7)
Oid locality();
/// id-at-stateOrProvinceName (2.5.4.8)
Oid state();

/// id-ce-subjectKeyIdentifier (2.5.29.14)
Oid subject_key_identifier();
/// id-ce-keyUsage (2.5.29.15)
Oid key_usage();
/// id-ce-subjectAltName (2.5.29.17)
Oid subject_alt_name();
/// id-ce-basicConstraints (2.5.29.19)
Oid basic_constraints();
/// id-ce-cRLDistributionPoints (2.5.29.31)
Oid crl_distribution_points();
/// id-ce-authorityKeyIdentifier (2.5.29.35)
Oid authority_key_identifier();
/// id-pe-authorityInfoAccess (1.3.6.1.5.5.7.1.1)
Oid authority_info_access();
/// id-ad-ocsp (1.3.6.1.5.5.7.48.1)
Oid ad_ocsp();
/// id-ad-caIssuers (1.3.6.1.5.5.7.48.2)
Oid ad_ca_issuers();

/// id-ce-certificatePolicies (2.5.29.32)
Oid certificate_policies();
/// id-ce-extKeyUsage (2.5.29.37)
Oid extended_key_usage();
/// id-kp-serverAuth (1.3.6.1.5.5.7.3.1)
Oid kp_server_auth();
/// id-kp-clientAuth (1.3.6.1.5.5.7.3.2)
Oid kp_client_auth();

/// rsaEncryption (1.2.840.113549.1.1.1) — SPKI algorithm for RSA keys
Oid rsa_encryption();
/// sha256WithRSAEncryption (1.2.840.113549.1.1.11)
Oid sha256_with_rsa();
/// A private-arc OID for the simulated signature scheme
/// (1.3.6.1.4.1.99999.1.1); see crypto::SigScheme::kSimSha256.
Oid sim_signature();

}  // namespace oids

}  // namespace sm::asn1
