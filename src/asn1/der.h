// DER (X.690 Distinguished Encoding Rules) writing and reading.
//
// The writer builds values bottom-up: each helper returns the complete TLV
// bytes for one value, and containers (SEQUENCE/SET/context tags) wrap the
// concatenation of their children. The reader is a cursor over a byte view
// with typed extractors that return std::optional on malformed input —
// parsing never throws.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "asn1/oid.h"
#include "bignum/biguint.h"
#include "util/bytes.h"
#include "util/datetime.h"

namespace sm::asn1 {

/// Universal class tags used by this library (X.680 §8).
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,  // constructed
  kSet = 0x31,       // constructed
};

/// Tag byte for [n] context-specific, constructed (e.g. the explicit
/// version wrapper in TBSCertificate).
constexpr std::uint8_t context_constructed(unsigned n) {
  return static_cast<std::uint8_t>(0xa0 | n);
}

/// Tag byte for [n] context-specific, primitive (e.g. SAN dNSName / iPAddress
/// choices).
constexpr std::uint8_t context_primitive(unsigned n) {
  return static_cast<std::uint8_t>(0x80 | n);
}

// --- Writing ----------------------------------------------------------------

/// Wraps `content` in a tag + definite length header.
util::Bytes encode_tlv(std::uint8_t tag, util::BytesView content);

/// INTEGER from a non-negative bignum (adds a 0x00 pad byte when the high
/// bit is set, per DER two's-complement rules).
util::Bytes encode_integer(const bignum::BigUint& value);

/// INTEGER from a machine integer (may be negative).
util::Bytes encode_integer(std::int64_t value);

/// BOOLEAN (DER: 0xff for true).
util::Bytes encode_boolean(bool value);

/// NULL.
util::Bytes encode_null();

/// OBJECT IDENTIFIER.
util::Bytes encode_oid(const Oid& oid);

/// OCTET STRING.
util::Bytes encode_octet_string(util::BytesView content);

/// BIT STRING with zero unused bits (keys, signatures).
util::Bytes encode_bit_string(util::BytesView content);

/// BIT STRING of named bits (DER: trailing zero bits are not encoded and
/// the unused-bit count is explicit). Bit 0 is the most significant bit of
/// the first content octet, per X.680. Used for KeyUsage.
util::Bytes encode_named_bit_string(std::uint32_t bits, unsigned bit_count);

/// Decodes a named-bit BIT STRING back into a bit mask (bit i of the
/// result = named bit i). Returns nullopt on malformed input or more than
/// 32 named bits.
std::optional<std::uint32_t> decode_named_bit_string(util::BytesView content);

/// UTF8String.
util::Bytes encode_utf8_string(const std::string& s);

/// PrintableString (no character-set check; callers pass known-safe text).
util::Bytes encode_printable_string(const std::string& s);

/// IA5String (used for dNSName / URI).
util::Bytes encode_ia5_string(const std::string& s);

/// Time as UTCTime when the year fits 1950-2049, else GeneralizedTime —
/// exactly the RFC 5280 rule. Years > 9999 are clamped to 9999-12-31
/// because GeneralizedTime cannot represent them.
util::Bytes encode_time(util::UnixTime t);

/// SEQUENCE wrapping already-encoded children.
util::Bytes encode_sequence(util::BytesView children);

/// SET wrapping already-encoded children (no re-sorting; callers emit
/// children in canonical order).
util::Bytes encode_set(util::BytesView children);

/// [n] EXPLICIT wrapper.
util::Bytes encode_context(unsigned n, util::BytesView children);

// --- Reading ----------------------------------------------------------------

/// One decoded TLV: its tag, its content bytes, and the full encoding
/// (header + content) for signature/fingerprint purposes.
struct Tlv {
  std::uint8_t tag = 0;
  util::BytesView content;
  util::BytesView full;
};

/// A non-owning DER cursor. Typical use:
///   Reader r(buffer);
///   auto seq = r.read(Tag::kSequence);
///   if (!seq) ... error ...
///   Reader inner(seq->content);
class Reader {
 public:
  explicit Reader(util::BytesView data) : data_(data) {}

  /// True when all input has been consumed.
  bool at_end() const { return pos_ >= data_.size(); }

  /// Bytes remaining.
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Tag byte of the next TLV without consuming it; nullopt at end.
  std::optional<std::uint8_t> peek_tag() const;

  /// Reads the next TLV whatever its tag.
  std::optional<Tlv> read_any();

  /// Reads the next TLV and requires the given tag.
  std::optional<Tlv> read(Tag tag);

  /// Reads the next TLV and requires the given raw tag byte.
  std::optional<Tlv> read_tag(std::uint8_t tag);

  /// Reads an INTEGER as a bignum; rejects negative values.
  std::optional<bignum::BigUint> read_integer();

  /// Reads an INTEGER that must fit in int64.
  std::optional<std::int64_t> read_small_integer();

  /// Reads a BOOLEAN.
  std::optional<bool> read_boolean();

  /// Reads an OBJECT IDENTIFIER.
  std::optional<Oid> read_oid();

  /// Reads a UTCTime or GeneralizedTime as Unix seconds.
  std::optional<util::UnixTime> read_time();

  /// Reads any of the string types as raw text.
  std::optional<std::string> read_string();

 private:
  util::BytesView data_;
  std::size_t pos_ = 0;
};

/// Parses a complete DER value that must span the whole buffer.
std::optional<Tlv> parse_single(util::BytesView data);

}  // namespace sm::asn1
