#include <charconv>

#include "asn1/der.h"

namespace sm::asn1 {

namespace {

// Decodes the definite length at data[pos]; advances pos past the length
// octets. Rejects indefinite lengths (not allowed in DER) and lengths that
// exceed the remaining buffer.
std::optional<std::size_t> read_length(util::BytesView data,
                                       std::size_t& pos) {
  if (pos >= data.size()) return std::nullopt;
  const std::uint8_t first = data[pos++];
  if (!(first & 0x80)) return first;
  const int num_octets = first & 0x7f;
  if (num_octets == 0 || num_octets > 8) return std::nullopt;
  if (pos + static_cast<std::size_t>(num_octets) > data.size()) {
    return std::nullopt;
  }
  std::size_t len = 0;
  for (int i = 0; i < num_octets; ++i) {
    len = (len << 8) | data[pos++];
  }
  return len;
}

std::optional<unsigned> parse_digits(util::BytesView content,
                                     std::size_t pos, std::size_t count) {
  unsigned v = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t c = content[pos + i];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

std::optional<std::uint8_t> Reader::peek_tag() const {
  if (at_end()) return std::nullopt;
  return data_[pos_];
}

std::optional<Tlv> Reader::read_any() {
  if (at_end()) return std::nullopt;
  const std::size_t start = pos_;
  const std::uint8_t tag = data_[pos_++];
  // Multi-byte tags are not used by X.509; reject them.
  if ((tag & 0x1f) == 0x1f) return std::nullopt;
  const auto len = read_length(data_, pos_);
  if (!len) return std::nullopt;
  if (pos_ + *len > data_.size()) return std::nullopt;
  Tlv out;
  out.tag = tag;
  out.content = data_.subspan(pos_, *len);
  out.full = data_.subspan(start, pos_ + *len - start);
  pos_ += *len;
  return out;
}

std::optional<Tlv> Reader::read(Tag tag) {
  return read_tag(static_cast<std::uint8_t>(tag));
}

std::optional<Tlv> Reader::read_tag(std::uint8_t tag) {
  const std::size_t saved = pos_;
  auto tlv = read_any();
  if (!tlv || tlv->tag != tag) {
    pos_ = saved;
    return std::nullopt;
  }
  return tlv;
}

std::optional<bignum::BigUint> Reader::read_integer() {
  const auto tlv = read(Tag::kInteger);
  if (!tlv || tlv->content.empty()) return std::nullopt;
  if (tlv->content[0] & 0x80) return std::nullopt;  // negative
  return bignum::BigUint::from_bytes(tlv->content);
}

std::optional<std::int64_t> Reader::read_small_integer() {
  const auto tlv = read(Tag::kInteger);
  if (!tlv || tlv->content.empty() || tlv->content.size() > 8) {
    return std::nullopt;
  }
  // Sign-extend from the first content byte.
  std::int64_t v = (tlv->content[0] & 0x80) ? -1 : 0;
  for (const std::uint8_t b : tlv->content) {
    v = (v << 8) | b;
  }
  return v;
}

std::optional<bool> Reader::read_boolean() {
  const auto tlv = read(Tag::kBoolean);
  if (!tlv || tlv->content.size() != 1) return std::nullopt;
  return tlv->content[0] != 0;
}

std::optional<Oid> Reader::read_oid() {
  const auto tlv = read(Tag::kOid);
  if (!tlv) return std::nullopt;
  return Oid::decode(tlv->content);
}

std::optional<util::UnixTime> Reader::read_time() {
  const std::size_t saved = pos_;
  auto tlv = read(Tag::kUtcTime);
  bool utc = true;
  if (!tlv) {
    pos_ = saved;
    tlv = read(Tag::kGeneralizedTime);
    utc = false;
    if (!tlv) return std::nullopt;
  }
  const util::BytesView c = tlv->content;
  util::CivilDateTime civil;
  std::size_t pos = 0;
  if (utc) {
    if (c.size() != 13 || c.back() != 'Z') return std::nullopt;
    const auto yy = parse_digits(c, 0, 2);
    if (!yy) return std::nullopt;
    civil.year = (*yy >= 50) ? 1900 + static_cast<int>(*yy)
                             : 2000 + static_cast<int>(*yy);
    pos = 2;
  } else {
    if (c.size() != 15 || c.back() != 'Z') return std::nullopt;
    const auto yyyy = parse_digits(c, 0, 4);
    if (!yyyy) return std::nullopt;
    civil.year = static_cast<int>(*yyyy);
    pos = 4;
  }
  const auto month = parse_digits(c, pos, 2);
  const auto day = parse_digits(c, pos + 2, 2);
  const auto hour = parse_digits(c, pos + 4, 2);
  const auto minute = parse_digits(c, pos + 6, 2);
  const auto second = parse_digits(c, pos + 8, 2);
  if (!month || !day || !hour || !minute || !second) return std::nullopt;
  if (*month < 1 || *month > 12 || *day < 1 || *day > 31 || *hour > 23 ||
      *minute > 59 || *second > 59) {
    return std::nullopt;
  }
  civil.month = *month;
  civil.day = *day;
  civil.hour = *hour;
  civil.minute = *minute;
  civil.second = *second;
  return util::to_unix(civil);
}

std::optional<std::string> Reader::read_string() {
  const auto tag = peek_tag();
  if (!tag) return std::nullopt;
  if (*tag != static_cast<std::uint8_t>(Tag::kUtf8String) &&
      *tag != static_cast<std::uint8_t>(Tag::kPrintableString) &&
      *tag != static_cast<std::uint8_t>(Tag::kIa5String)) {
    return std::nullopt;
  }
  const auto tlv = read_any();
  if (!tlv) return std::nullopt;
  return util::to_string(tlv->content);
}

std::optional<std::uint32_t> decode_named_bit_string(util::BytesView content) {
  if (content.empty()) return std::nullopt;
  const std::uint8_t unused = content[0];
  if (unused > 7) return std::nullopt;
  if (content.size() == 1) {
    return unused == 0 ? std::optional<std::uint32_t>(0) : std::nullopt;
  }
  if (content.size() > 5) return std::nullopt;  // > 32 named bits
  std::uint32_t bits = 0;
  const std::size_t octets = content.size() - 1;
  for (std::size_t octet = 0; octet < octets; ++octet) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      if (content[1 + octet] & (0x80 >> bit)) {
        const unsigned named = static_cast<unsigned>(octet) * 8 + bit;
        if (named >= 32) return std::nullopt;
        bits |= 1u << named;
      }
    }
  }
  // Unused bits must actually be zero in DER.
  const std::uint8_t last = content[octets];
  if (unused > 0 &&
      (last & static_cast<std::uint8_t>((1u << unused) - 1)) != 0) {
    return std::nullopt;
  }
  return bits;
}

std::optional<Tlv> parse_single(util::BytesView data) {
  Reader r(data);
  const auto tlv = r.read_any();
  if (!tlv || !r.at_end()) return std::nullopt;
  return tlv;
}

}  // namespace sm::asn1
