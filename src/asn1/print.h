// A dumpasn1-style DER pretty-printer: renders any DER blob as an indented
// TLV tree with decoded primitives (INTEGERs, OIDs, strings, times).
// Malformed regions degrade to hex dumps instead of failing, so the printer
// is safe on the hostile inputs a scan corpus contains.
#pragma once

#include <string>

#include "util/bytes.h"

namespace sm::asn1 {

/// Options for to_text.
struct PrintOptions {
  std::size_t max_depth = 16;        ///< recursion guard
  std::size_t max_value_bytes = 16;  ///< hex shown before truncating with ".."
};

/// Renders DER as an indented tree, one TLV per line:
///   SEQUENCE (142 bytes)
///     INTEGER 12345
///     OBJECT IDENTIFIER 2.5.4.3
///     UTF8String "fritz.box"
/// Unparseable bytes render as "!malformed (<n> bytes): <hex..>".
std::string to_text(util::BytesView der, const PrintOptions& options = {});

/// The conventional name of a tag byte ("SEQUENCE", "[0]", "BIT STRING"...).
std::string tag_name(std::uint8_t tag);

}  // namespace sm::asn1
