#include "asn1/oid.h"

#include <charconv>

namespace sm::asn1 {

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(arcs[i]);
  }
  return out;
}

std::optional<Oid> Oid::from_string(const std::string& dotted) {
  Oid out;
  std::size_t pos = 0;
  while (pos <= dotted.size()) {
    std::size_t dot = dotted.find('.', pos);
    if (dot == std::string::npos) dot = dotted.size();
    std::uint32_t arc = 0;
    const auto [ptr, ec] =
        std::from_chars(dotted.data() + pos, dotted.data() + dot, arc);
    if (ec != std::errc{} || ptr != dotted.data() + dot) return std::nullopt;
    out.arcs.push_back(arc);
    pos = dot + 1;
    if (dot == dotted.size()) break;
  }
  if (out.arcs.size() < 2) return std::nullopt;
  if (out.arcs[0] > 2) return std::nullopt;
  if (out.arcs[0] < 2 && out.arcs[1] >= 40) return std::nullopt;
  return out;
}

util::Bytes Oid::encode() const {
  util::Bytes out;
  if (arcs.size() < 2) return out;
  const auto put_base128 = [&](std::uint64_t v) {
    std::uint8_t tmp[10];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v);
    for (int i = n - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(tmp[i] | (i ? 0x80 : 0x00)));
    }
  };
  put_base128(std::uint64_t{arcs[0]} * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) put_base128(arcs[i]);
  return out;
}

std::optional<Oid> Oid::decode(util::BytesView content) {
  if (content.empty()) return std::nullopt;
  Oid out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    std::uint64_t v = 0;
    bool done = false;
    // Cap sub-identifier length to avoid overflow on hostile input.
    for (int i = 0; i < 9 && pos < content.size(); ++i) {
      const std::uint8_t b = content[pos++];
      v = (v << 7) | (b & 0x7f);
      if (!(b & 0x80)) {
        done = true;
        break;
      }
    }
    if (!done) return std::nullopt;
    if (first) {
      first = false;
      if (v < 40) {
        out.arcs.push_back(0);
        out.arcs.push_back(static_cast<std::uint32_t>(v));
      } else if (v < 80) {
        out.arcs.push_back(1);
        out.arcs.push_back(static_cast<std::uint32_t>(v - 40));
      } else {
        out.arcs.push_back(2);
        out.arcs.push_back(static_cast<std::uint32_t>(v - 80));
      }
    } else {
      if (v > 0xffffffffULL) return std::nullopt;
      out.arcs.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return out;
}

namespace oids {

Oid common_name() { return Oid{{2, 5, 4, 3}}; }
Oid organization() { return Oid{{2, 5, 4, 10}}; }
Oid organizational_unit() { return Oid{{2, 5, 4, 11}}; }
Oid country() { return Oid{{2, 5, 4, 6}}; }
Oid locality() { return Oid{{2, 5, 4, 7}}; }
Oid state() { return Oid{{2, 5, 4, 8}}; }

Oid subject_key_identifier() { return Oid{{2, 5, 29, 14}}; }
Oid key_usage() { return Oid{{2, 5, 29, 15}}; }
Oid subject_alt_name() { return Oid{{2, 5, 29, 17}}; }
Oid basic_constraints() { return Oid{{2, 5, 29, 19}}; }
Oid crl_distribution_points() { return Oid{{2, 5, 29, 31}}; }
Oid authority_key_identifier() { return Oid{{2, 5, 29, 35}}; }
Oid authority_info_access() { return Oid{{1, 3, 6, 1, 5, 5, 7, 1, 1}}; }
Oid ad_ocsp() { return Oid{{1, 3, 6, 1, 5, 5, 7, 48, 1}}; }
Oid ad_ca_issuers() { return Oid{{1, 3, 6, 1, 5, 5, 7, 48, 2}}; }

Oid certificate_policies() { return Oid{{2, 5, 29, 32}}; }
Oid extended_key_usage() { return Oid{{2, 5, 29, 37}}; }
Oid kp_server_auth() { return Oid{{1, 3, 6, 1, 5, 5, 7, 3, 1}}; }
Oid kp_client_auth() { return Oid{{1, 3, 6, 1, 5, 5, 7, 3, 2}}; }

Oid rsa_encryption() { return Oid{{1, 2, 840, 113549, 1, 1, 1}}; }
Oid sha256_with_rsa() { return Oid{{1, 2, 840, 113549, 1, 1, 11}}; }
Oid sim_signature() { return Oid{{1, 3, 6, 1, 4, 1, 99999, 1, 1}}; }

}  // namespace oids

}  // namespace sm::asn1
