#include <cstdio>

#include "asn1/der.h"

namespace sm::asn1 {

namespace {

void append_length(util::Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  std::uint8_t tmp[8];
  int n = 0;
  while (len) {
    tmp[n++] = static_cast<std::uint8_t>(len & 0xff);
    len >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (int i = n - 1; i >= 0; --i) out.push_back(tmp[i]);
}

util::Bytes encode_string(Tag tag, const std::string& s) {
  return encode_tlv(static_cast<std::uint8_t>(tag),
                    util::BytesView(reinterpret_cast<const std::uint8_t*>(
                                        s.data()),
                                    s.size()));
}

}  // namespace

util::Bytes encode_tlv(std::uint8_t tag, util::BytesView content) {
  util::Bytes out;
  out.reserve(content.size() + 6);
  out.push_back(tag);
  append_length(out, content.size());
  util::append(out, content);
  return out;
}

util::Bytes encode_integer(const bignum::BigUint& value) {
  util::Bytes content = value.to_bytes();
  if (content[0] & 0x80) content.insert(content.begin(), 0x00);
  return encode_tlv(static_cast<std::uint8_t>(Tag::kInteger), content);
}

util::Bytes encode_integer(std::int64_t value) {
  // Minimal two's-complement big-endian encoding.
  util::Bytes content;
  bool more = true;
  while (more) {
    const std::uint8_t byte = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
    content.insert(content.begin(), byte);
    more = !((value == 0 && !(byte & 0x80)) ||
             (value == -1 && (byte & 0x80)));
  }
  return encode_tlv(static_cast<std::uint8_t>(Tag::kInteger), content);
}

util::Bytes encode_boolean(bool value) {
  const std::uint8_t v = value ? 0xff : 0x00;
  return encode_tlv(static_cast<std::uint8_t>(Tag::kBoolean),
                    util::BytesView(&v, 1));
}

util::Bytes encode_null() {
  return encode_tlv(static_cast<std::uint8_t>(Tag::kNull), {});
}

util::Bytes encode_oid(const Oid& oid) {
  return encode_tlv(static_cast<std::uint8_t>(Tag::kOid), oid.encode());
}

util::Bytes encode_octet_string(util::BytesView content) {
  return encode_tlv(static_cast<std::uint8_t>(Tag::kOctetString), content);
}

util::Bytes encode_bit_string(util::BytesView content) {
  util::Bytes body;
  body.reserve(content.size() + 1);
  body.push_back(0x00);  // unused bits
  util::append(body, content);
  return encode_tlv(static_cast<std::uint8_t>(Tag::kBitString), body);
}

util::Bytes encode_named_bit_string(std::uint32_t bits, unsigned bit_count) {
  // Find the highest set named bit; DER requires trailing zero bits to be
  // stripped.
  unsigned highest = 0;
  bool any = false;
  for (unsigned i = 0; i < bit_count && i < 32; ++i) {
    if (bits & (1u << i)) {
      highest = i;
      any = true;
    }
  }
  util::Bytes body;
  if (!any) {
    body.push_back(0x00);  // empty bit string
    return encode_tlv(static_cast<std::uint8_t>(Tag::kBitString), body);
  }
  const unsigned octets = highest / 8 + 1;
  const unsigned unused = 7 - (highest % 8);
  body.push_back(static_cast<std::uint8_t>(unused));
  for (unsigned octet = 0; octet < octets; ++octet) {
    std::uint8_t value = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      const unsigned named = octet * 8 + bit;
      if (named < 32 && (bits & (1u << named))) {
        value |= static_cast<std::uint8_t>(0x80 >> bit);
      }
    }
    body.push_back(value);
  }
  return encode_tlv(static_cast<std::uint8_t>(Tag::kBitString), body);
}

util::Bytes encode_utf8_string(const std::string& s) {
  return encode_string(Tag::kUtf8String, s);
}

util::Bytes encode_printable_string(const std::string& s) {
  return encode_string(Tag::kPrintableString, s);
}

util::Bytes encode_ia5_string(const std::string& s) {
  return encode_string(Tag::kIa5String, s);
}

util::Bytes encode_time(util::UnixTime t) {
  util::CivilDateTime c = util::from_unix(t);
  if (c.year > 9999) {
    c = util::CivilDateTime{9999, 12, 31, 23, 59, 59};
  }
  char buf[24];
  if (c.year >= 1950 && c.year <= 2049) {
    std::snprintf(buf, sizeof(buf), "%02d%02u%02u%02u%02u%02uZ", c.year % 100,
                  c.month, c.day, c.hour, c.minute, c.second);
    return encode_string(Tag::kUtcTime, buf);
  }
  const int year = c.year < 0 ? 0 : c.year;
  std::snprintf(buf, sizeof(buf), "%04d%02u%02u%02u%02u%02uZ", year, c.month,
                c.day, c.hour, c.minute, c.second);
  return encode_string(Tag::kGeneralizedTime, buf);
}

util::Bytes encode_sequence(util::BytesView children) {
  return encode_tlv(static_cast<std::uint8_t>(Tag::kSequence), children);
}

util::Bytes encode_set(util::BytesView children) {
  return encode_tlv(static_cast<std::uint8_t>(Tag::kSet), children);
}

util::Bytes encode_context(unsigned n, util::BytesView children) {
  return encode_tlv(context_constructed(n), children);
}

}  // namespace sm::asn1
