// RouterService — the request handler of the notary routing tier. It
// owns no corpus: every lookup is forwarded to an sm_notaryd backend
// serving a fingerprint-prefix slice, over a netio::ClientPool.
//
//  * Routing is by PrefixMap (prefix_map.h): an epoch-versioned list of
//    contiguous first-byte ranges, each naming its replica set. The map
//    is compiled into a byte->entry table and swapped RCU-style (the
//    same std::atomic<std::shared_ptr> pattern as LiveCorpus), so a map
//    update never blocks the data plane: in-flight requests finish
//    against the table they loaded, new requests see the new one.
//  * A kMapUpdate frame with an empty payload answers the serialized
//    current map (kMapInfo); with a payload it parses, validates, and
//    applies the map — refusing any epoch that does not advance — then
//    answers the map now in effect. New endpoints are registered with
//    the pool on the fly (ClientPool::add_backend); backends dropped
//    from the map stop receiving traffic but keep their counters.
//  * Routing a kQuery reads payload byte 0 — a truncated 32-byte
//    SHA-256 keeps its first byte, so both query forms route
//    identically. A kBatchQuery is scattered: entries grouped by map
//    entry, one sub-batch per entry issued concurrently, responses
//    gathered in the original order. An entry that cannot answer turns
//    into per-entry kError statuses; the rest of the batch succeeds.
//  * Each map entry may have replicas. Calls prefer healthy replicas
//    (the pool's kPing prober maintains the health bit) and retry a
//    failed call once per remaining replica before giving up with
//    kError "shard N (prefix LO-HI) unavailable".
//  * kStats renders ROUTER-STATS: router-level counters (including
//    map-epoch and map-swaps), plus per shard and per backend the
//    pool's per-error-class counters since start.
//  * handle() is thread-safe (shared state is the atomic table + the
//    pool) but blocks the calling server worker for up to the pool's
//    request timeout while the backend answers — size the router's
//    worker count to the concurrency you need.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netio/client_pool.h"
#include "netio/frame.h"
#include "notary/prefix_map.h"

namespace sm::notary {

/// One shard: the replicas that all serve the same prefix slice.
struct RouterShard {
  std::vector<netio::Endpoint> replicas;
};

struct RouterConfig {
  /// Initial layout, compiled into the epoch-1 uniform map: shard i
  /// serves [i*256/N, (i+1)*256/N). Later maps arrive via kMapUpdate.
  std::vector<RouterShard> shards;
  netio::ClientPoolConfig pool;
};

class RouterService {
 public:
  explicit RouterService(RouterConfig config);
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// The netio::TcpServer handler: routes/scatters request frames to the
  /// backends and returns the (re)assembled response.
  netio::Frame handle(netio::FrameType type, std::string_view payload);

  /// StreamHandler form: appends the complete encoded response frame to
  /// `out` (the connection's output buffer). kPing echoes the request
  /// payload straight into `out` — no intermediate response string at
  /// all; other frame types encode their assembled response in place.
  void handle_into(netio::FrameType type, std::string_view payload,
                   std::string& out);

  /// Which map entry owns fingerprints starting with `first_byte`, under
  /// the map currently in effect.
  std::size_t shard_of(std::uint8_t first_byte) const;
  std::size_t shard_count() const;
  /// Inclusive first-byte prefix range [lo, hi] served by entry `index`
  /// of the current map.
  std::pair<std::uint8_t, std::uint8_t> shard_range(std::size_t index) const;

  /// The map currently in effect (what an empty kMapUpdate answers).
  PrefixMap current_map() const;
  std::uint64_t map_epoch() const;

  /// Validates and applies a new map, exactly as a kMapUpdate frame
  /// would: the epoch must advance, every endpoint is registered with
  /// the pool, and the compiled table is swapped in atomically. Returns
  /// false and fills `error` without touching the live table on any
  /// validation failure.
  bool apply_map(const PrefixMap& map, std::string& error);

  /// The ROUTER-STATS text (also served for kStats frames).
  std::string render_stats() const;

  /// The underlying pool — health bits and per-backend counters, mainly
  /// for tests and operator tooling.
  const netio::ClientPool& pool() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sm::notary
