// RouterService — the request handler of the notary routing tier. It
// owns no corpus: every lookup is forwarded to one of N sm_notaryd
// backends, each serving a fingerprint-prefix slice (see sm_notaryd
// --shard-prefix), over a netio::ClientPool.
//
//  * Shard i owns first-byte prefixes [i*256/N, (i+1)*256/N). Routing a
//    kQuery reads payload byte 0 — a truncated 32-byte SHA-256 keeps its
//    first byte, so both query forms route identically.
//  * A kBatchQuery is scattered: entries grouped by shard, one sub-batch
//    per shard issued concurrently, responses gathered and reassembled
//    in the original entry order. A shard that cannot answer turns into
//    per-entry kError statuses; the rest of the batch still succeeds.
//  * Each shard may have replicas. Calls prefer healthy replicas (the
//    pool's kPing prober maintains the health bit) and retry a failed
//    call once per remaining replica before giving up with kError
//    "shard N (prefix LO-HI) unavailable".
//  * kStats renders ROUTER-STATS: router-level counters plus, per shard
//    and per backend, the pool's per-error-class counters since start.
//  * handle() is thread-safe (shared state is atomics + the pool) but
//    blocks the calling server worker for up to the pool's request
//    timeout while the backend answers — size the router's worker count
//    to the concurrency you need.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netio/client_pool.h"
#include "netio/frame.h"

namespace sm::notary {

/// One shard: the replicas that all serve the same prefix slice.
struct RouterShard {
  std::vector<netio::Endpoint> replicas;
};

struct RouterConfig {
  std::vector<RouterShard> shards;  ///< shard i serves [i*256/N, (i+1)*256/N)
  netio::ClientPoolConfig pool;
};

class RouterService {
 public:
  explicit RouterService(RouterConfig config);
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// The netio::TcpServer handler: routes/scatters request frames to the
  /// backends and returns the (re)assembled response.
  netio::Frame handle(netio::FrameType type, std::string_view payload);

  /// StreamHandler form: appends the complete encoded response frame to
  /// `out` (the connection's output buffer). kPing echoes the request
  /// payload straight into `out` — no intermediate response string at
  /// all; other frame types encode their assembled response in place.
  void handle_into(netio::FrameType type, std::string_view payload,
                   std::string& out);

  /// Which shard owns fingerprints starting with `first_byte`.
  std::size_t shard_of(std::uint8_t first_byte) const;
  std::size_t shard_count() const;
  /// Inclusive first-byte prefix range [lo, hi] served by shard `index`.
  std::pair<std::uint8_t, std::uint8_t> shard_range(std::size_t index) const;

  /// The ROUTER-STATS text (also served for kStats frames).
  std::string render_stats() const;

  /// The underlying pool — health bits and per-backend counters, mainly
  /// for tests and operator tooling.
  const netio::ClientPool& pool() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sm::notary
