#include "notary/index.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <span>

#include "util/datetime.h"
#include "util/hex.h"
#include "util/thread_pool.h"

namespace sm::notary {

NotaryIndex::NotaryIndex(const corpus::CorpusIndex& corpus,
                         const NotaryIndexOptions& options) {
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::global();
  const scan::ScanArchive& archive = corpus.archive();
  const auto& certs = archive.certs();
  const auto& scans = archive.scans();
  const std::size_t cert_count = certs.size();
  entries_.resize(cert_count);
  scan_count_ = scans.size();
  last_scan_start_ = scans.empty() ? 0 : scans.back().event.start;

  // Key-sharing degree: certificates per SPKI fingerprint — over this
  // archive, unless the caller supplies degrees computed over a larger
  // corpus (the prefix-shard case, where the slice under-counts).
  std::unordered_map<scan::KeyFingerprint, std::uint32_t> local_key_counts;
  const auto* key_counts = options.key_counts;
  if (key_counts == nullptr) {
    local_key_counts.reserve(cert_count);
    for (const scan::CertRecord& cert : certs) {
      ++local_key_counts[cert.key_fingerprint];
    }
    key_counts = &local_key_counts;
  }

  // Per-certificate derivation over the shared spine's CSR and ASN
  // columns: independent index-addressed slots, so the result is identical
  // at every thread count.
  pool.parallel_for(cert_count, 256, [&](std::size_t begin,
                                         std::size_t end) {
    std::vector<std::uint32_t> ips;
    std::vector<std::uint32_t> slash24s;
    std::vector<net::Asn> ases;
    for (std::size_t i = begin; i < end; ++i) {
      const scan::CertRecord& record = certs[i];
      CertKnowledge& k = entries_[i];
      k.fingerprint = record.fingerprint;
      k.valid = record.valid;
      k.transvalid = record.transvalid;
      k.reason = record.invalid_reason;
      k.subject_cn = record.subject_cn;
      k.issuer_cn = record.issuer_cn;
      k.not_before = record.not_before;
      k.not_after = record.not_after;
      k.key_sharing = key_counts->at(record.key_fingerprint);

      const auto id = static_cast<scan::CertId>(i);
      const std::span<const corpus::Obs> obs = corpus.observations(id);
      const std::span<const net::Asn> asns = corpus.asns(id);
      k.observations = obs.size();
      if (obs.empty()) continue;  // interned but never observed
      const corpus::CertStats& stats = corpus.stats(id);
      k.scans_seen = stats.scans_seen;
      k.first_seen = scans[stats.first_scan].event.start;
      k.last_seen = scans[stats.last_scan].event.start;

      ips.clear();
      slash24s.clear();
      ases.clear();
      for (std::size_t o = 0; o < obs.size(); ++o) {
        ips.push_back(obs[o].ip);
        slash24s.push_back(obs[o].ip >> 8);
        // Unroutable observations (ASN 0) don't contribute an AS.
        if (asns[o] != 0) ases.push_back(asns[o]);
      }
      const auto distinct = [](auto& v) {
        std::sort(v.begin(), v.end());
        return static_cast<std::uint32_t>(
            std::unique(v.begin(), v.end()) - v.begin());
      };
      k.distinct_ips = distinct(ips);
      k.distinct_slash24s = distinct(slash24s);
      k.distinct_ases = distinct(ases);
    }
  });

  if (options.device_groups != nullptr) {
    const auto& groups = *options.device_groups;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const scan::CertId cert : groups[g]) {
        entries_[cert].linked_device = static_cast<std::uint32_t>(g);
      }
    }
  }

  // Shard maps: bucket serially (deterministic id order), build the hash
  // tables in parallel — each shard is written by exactly one chunk.
  std::array<std::vector<scan::CertId>, kShards> buckets;
  for (std::size_t i = 0; i < cert_count; ++i) {
    buckets[shard_of(certs[i].fingerprint)].push_back(
        static_cast<scan::CertId>(i));
  }
  pool.parallel_for(kShards, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      shards_[s].reserve(buckets[s].size());
      for (const scan::CertId id : buckets[s]) {
        shards_[s].emplace(certs[id].fingerprint, id);
      }
    }
  });
}

const CertKnowledge* NotaryIndex::lookup(
    const scan::CertFingerprint& fp) const {
  const auto& shard = shards_[shard_of(fp)];
  const auto it = shard.find(fp);
  if (it == shard.end()) return nullptr;
  return &entries_[it->second];
}

std::string render_knowledge(const CertKnowledge& k) {
  std::string out;
  out.reserve(512);
  const auto line = [&out](const char* key, const std::string& value) {
    out += key;
    out += ": ";
    out += value;
    out += '\n';
  };
  const auto num = [&line](const char* key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    line(key, buf);
  };

  line("fingerprint",
       util::hex_encode(util::BytesView(k.fingerprint.data(),
                                        k.fingerprint.size())));
  std::string status;
  if (k.valid) {
    status = k.transvalid ? "valid (transvalid)" : "valid";
  } else {
    status = "invalid (" + pki::to_string(k.reason) + ")";
  }
  line("status", status);
  line("subject-cn", k.subject_cn);
  line("issuer-cn", k.issuer_cn);
  line("not-before", util::format_datetime(k.not_before));
  line("not-after", util::format_datetime(k.not_after));
  if (k.observations == 0) {
    line("first-seen", "never");
    line("last-seen", "never");
  } else {
    line("first-seen", util::format_datetime(k.first_seen));
    line("last-seen", util::format_datetime(k.last_seen));
  }
  num("scans-seen", k.scans_seen);
  num("observations", k.observations);
  num("distinct-ips", k.distinct_ips);
  num("distinct-slash24s", k.distinct_slash24s);
  num("distinct-ases", k.distinct_ases);
  num("key-sharing", k.key_sharing);
  if (k.linked_device == kNoLinkedDevice) {
    line("linked-device", "none");
  } else {
    num("linked-device", k.linked_device);
  }
  return out;
}

}  // namespace sm::notary
