#include "notary/index.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <span>
#include <string_view>

#include "util/datetime.h"
#include "util/thread_pool.h"

namespace sm::notary {

NotaryIndex::NotaryIndex(const corpus::CorpusIndex& corpus,
                         const NotaryIndexOptions& options) {
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::global();
  const scan::ScanArchive& archive = corpus.archive();
  const auto& certs = archive.certs();
  const auto& scans = archive.scans();
  const std::size_t cert_count = certs.size();
  entries_.resize(cert_count);
  scan_count_ = scans.size();
  last_scan_start_ = scans.empty() ? 0 : scans.back().event.start;

  // Key-sharing degree: certificates per SPKI fingerprint — over this
  // archive, unless the caller supplies degrees computed over a larger
  // corpus (the prefix-shard case, where the slice under-counts).
  std::unordered_map<scan::KeyFingerprint, std::uint32_t> local_key_counts;
  const auto* key_counts = options.key_counts;
  if (key_counts == nullptr) {
    local_key_counts.reserve(cert_count);
    for (const scan::CertRecord& cert : certs) {
      ++local_key_counts[cert.key_fingerprint];
    }
    key_counts = &local_key_counts;
  }

  // Per-certificate derivation over the shared spine's CSR and ASN
  // columns: independent index-addressed slots, so the result is identical
  // at every thread count.
  pool.parallel_for(cert_count, 256, [&](std::size_t begin,
                                         std::size_t end) {
    std::vector<std::uint32_t> ips;
    std::vector<std::uint32_t> slash24s;
    std::vector<net::Asn> ases;
    for (std::size_t i = begin; i < end; ++i) {
      const scan::CertRecord& record = certs[i];
      CertKnowledge& k = entries_[i];
      k.fingerprint = record.fingerprint;
      k.valid = record.valid;
      k.transvalid = record.transvalid;
      k.reason = record.invalid_reason;
      k.subject_cn = record.subject_cn;
      k.issuer_cn = record.issuer_cn;
      k.not_before = record.not_before;
      k.not_after = record.not_after;
      k.key_sharing = key_counts->at(record.key_fingerprint);
      if (options.revocation_statuses != nullptr) {
        const auto rev = options.revocation_statuses->find(record.fingerprint);
        if (rev != options.revocation_statuses->end()) {
          k.revocation = rev->second;
        }
      }

      const auto id = static_cast<scan::CertId>(i);
      const std::span<const corpus::Obs> obs = corpus.observations(id);
      const std::span<const net::Asn> asns = corpus.asns(id);
      k.observations = obs.size();
      if (obs.empty()) continue;  // interned but never observed
      const corpus::CertStats& stats = corpus.stats(id);
      k.scans_seen = stats.scans_seen;
      k.first_seen = scans[stats.first_scan].event.start;
      k.last_seen = scans[stats.last_scan].event.start;

      ips.clear();
      slash24s.clear();
      ases.clear();
      for (std::size_t o = 0; o < obs.size(); ++o) {
        ips.push_back(obs[o].ip);
        slash24s.push_back(obs[o].ip >> 8);
        // Unroutable observations (ASN 0) don't contribute an AS.
        if (asns[o] != 0) ases.push_back(asns[o]);
      }
      const auto distinct = [](auto& v) {
        std::sort(v.begin(), v.end());
        return static_cast<std::uint32_t>(
            std::unique(v.begin(), v.end()) - v.begin());
      };
      k.distinct_ips = distinct(ips);
      k.distinct_slash24s = distinct(slash24s);
      k.distinct_ases = distinct(ases);
    }
  });

  if (options.device_groups != nullptr) {
    const auto& groups = *options.device_groups;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const scan::CertId cert : groups[g]) {
        entries_[cert].linked_device = static_cast<std::uint32_t>(g);
      }
    }
  }

  // Shard tables: bucket serially (deterministic id order), build the
  // flat open-addressing arrays in parallel — each shard is written by
  // exactly one chunk, and insertion order (ascending cert id) plus a
  // fixed probe sequence make the table bytes identical at every thread
  // count.
  std::array<std::vector<scan::CertId>, kShards> buckets;
  for (std::size_t i = 0; i < cert_count; ++i) {
    buckets[shard_of(certs[i].fingerprint)].push_back(
        static_cast<scan::CertId>(i));
  }
  pool.parallel_for(kShards, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      Shard& shard = shards_[s];
      const std::size_t n = buckets[s].size();
      if (n == 0) continue;  // empty shard: no table at all
      // Power-of-two capacity at most 70% full, so linear probes stay
      // short; min 8 slots keeps the mask math uniform for tiny shards.
      const std::size_t want = std::max<std::size_t>(8, n + (n * 3) / 7 + 1);
      shard.slots.assign(std::bit_ceil(want), Slot{});
      shard.mask = shard.slots.size() - 1;
      for (const scan::CertId id : buckets[s]) {
        const scan::CertFingerprint& fp = certs[id].fingerprint;
        std::size_t i = static_cast<std::size_t>(probe_hash(fp)) & shard.mask;
        for (;; i = (i + 1) & shard.mask) {
          Slot& slot = shard.slots[i];
          if (slot.id == kEmptySlot) {
            slot.fp = fp;
            slot.id = id;
            ++shard.count;
            break;
          }
          // Duplicate fingerprint (interned archives should not produce
          // one): keep the first id, matching the old map's emplace.
          if (slot.fp == fp) break;
        }
      }
    }
  });
}

const CertKnowledge* NotaryIndex::lookup(
    const scan::CertFingerprint& fp) const {
  const Shard& shard = shards_[shard_of(fp)];
  if (shard.slots.empty()) return nullptr;
  std::size_t i = static_cast<std::size_t>(probe_hash(fp)) & shard.mask;
  for (;; i = (i + 1) & shard.mask) {
    const Slot& slot = shard.slots[i];
    if (slot.id == kEmptySlot) return nullptr;
    if (slot.fp == fp) return &entries_[slot.id];
  }
}

namespace {

// Stack-buffer formatting helpers: the render path appends straight into
// the caller's buffer (a connection outbuf or the response cache arena
// staging) and must not allocate beyond growing that buffer.

void append_datetime(std::string& out, util::UnixTime t) {
  const util::CivilDateTime c = util::from_unix(t);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02u:%02u:%02u", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  out += buf;
}

}  // namespace

void append_hex_fingerprint(std::string& out,
                            const scan::CertFingerprint& fp) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (const std::uint8_t b : fp) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
}

void render_knowledge_into(const CertKnowledge& k, std::string& out) {
  const auto line = [&out](const char* key, std::string_view value) {
    out += key;
    out += ": ";
    out += value;
    out += '\n';
  };
  const auto num = [&line](const char* key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    line(key, buf);
  };
  const auto datetime = [&out](const char* key, util::UnixTime t) {
    out += key;
    out += ": ";
    append_datetime(out, t);
    out += '\n';
  };

  out += "fingerprint: ";
  append_hex_fingerprint(out, k.fingerprint);
  out += '\n';
  if (k.valid) {
    line("status", k.transvalid ? "valid (transvalid)" : "valid");
  } else {
    out += "status: invalid (";
    out += pki::reason_cstr(k.reason);
    out += ")\n";
  }
  line("subject-cn", k.subject_cn);
  line("issuer-cn", k.issuer_cn);
  datetime("not-before", k.not_before);
  datetime("not-after", k.not_after);
  if (k.observations == 0) {
    line("first-seen", "never");
    line("last-seen", "never");
  } else {
    datetime("first-seen", k.first_seen);
    datetime("last-seen", k.last_seen);
  }
  num("scans-seen", k.scans_seen);
  num("observations", k.observations);
  num("distinct-ips", k.distinct_ips);
  num("distinct-slash24s", k.distinct_slash24s);
  num("distinct-ases", k.distinct_ases);
  num("key-sharing", k.key_sharing);
  if (k.linked_device == kNoLinkedDevice) {
    line("linked-device", "none");
  } else {
    num("linked-device", k.linked_device);
  }
}

std::string render_knowledge(const CertKnowledge& k) {
  std::string out;
  out.reserve(512);
  render_knowledge_into(k, out);
  return out;
}

void render_revocation_into(const CertKnowledge& k, std::string& out) {
  out += "fingerprint: ";
  append_hex_fingerprint(out, k.fingerprint);
  out += "\nrevocation: ";
  out += pki::revocation_status_cstr(k.revocation);
  out += '\n';
}

}  // namespace sm::notary
