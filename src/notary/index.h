// NotaryIndex — the immutable, sharded lookup structure behind sm_notaryd.
//
// The paper's closing argument is that invalid certificates are mostly
// *benign device certificates*, and that a client could make an informed
// accept/reject decision at connection time if something answered "what do
// we know about this certificate?" — the certificate-notary / CT-monitor
// delivery shape. This index is that answer, precomputed over a scan
// corpus: for every certificate, its validity classification (as computed
// by pki::BatchVerifier at archive build time and carried on each
// CertRecord), when it was first and last observed, how many scans and
// observations it appeared in, how widely it was hosted (distinct IPs,
// /24s, and — when a routing history is supplied — origin ASes), how many
// certificates share its public key (the Figure 6 key-sharing degree; a
// firmware-family tell), and which linked device identity the §6 linking
// methodology assigned (when linking output is supplied).
//
// Construction is parallel on a util::ThreadPool and deterministic: every
// field and every rendered response is byte-identical at any thread count.
// After construction the index is immutable, so lookups are lock-free and
// safe from any number of server workers.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus_index.h"
#include "net/route_table.h"
#include "scan/archive.h"

namespace sm::util {
class ThreadPool;
}  // namespace sm::util

namespace sm::notary {

/// Sentinel: the certificate was not linked to any device group.
inline constexpr std::uint32_t kNoLinkedDevice = 0xffffffff;

/// Everything the notary knows about one certificate.
struct CertKnowledge {
  scan::CertFingerprint fingerprint{};

  // Validity classification (§4.2 taxonomy, expiry-ignoring).
  bool valid = false;
  bool transvalid = false;
  pki::InvalidReason reason = pki::InvalidReason::kNone;

  // Revocation status (orthogonal to the validity taxonomy), injected at
  // build time from a BatchVerifier revocation pass; kUnknown when the
  // index was built without one.
  pki::RevocationStatus revocation = pki::RevocationStatus::kUnknown;

  // Identity fields a client can cross-check against the presented cert.
  std::string subject_cn;
  std::string issuer_cn;
  util::UnixTime not_before = 0;
  util::UnixTime not_after = 0;

  // Observation history over the corpus.
  util::UnixTime first_seen = 0;  ///< start time of the first scan seen
  util::UnixTime last_seen = 0;   ///< start time of the last scan seen
  std::uint32_t scans_seen = 0;
  std::uint64_t observations = 0;

  // Hosting spread (§5 diversity evidence: a device cert lives on one IP).
  std::uint32_t distinct_ips = 0;
  std::uint32_t distinct_slash24s = 0;
  std::uint32_t distinct_ases = 0;  ///< 0 when built without routing data

  // Key-sharing degree: certificates in the corpus sharing this SPKI
  // (>= 1; large values are the Lancom-style firmware default tell).
  std::uint32_t key_sharing = 1;

  // Linked device id (§6 iterative linking group), kNoLinkedDevice when
  // the index was built without linking output or the cert stayed single.
  std::uint32_t linked_device = kNoLinkedDevice;
};

/// Optional inputs for NotaryIndex construction. AS resolution now comes
/// from the corpus spine's precomputed ASN column: build the spine with a
/// routing history to get distinct-AS counts.
struct NotaryIndexOptions {
  /// §6 linking output as plain cert-id groups (group index becomes the
  /// linked_device id). Kept as PODs so notary does not depend on linking.
  const std::vector<std::vector<scan::CertId>>* device_groups = nullptr;
  /// Pool for the parallel build; null = the process-global pool.
  util::ThreadPool* pool = nullptr;
  /// Key-sharing degrees per SPKI fingerprint, computed over a larger
  /// corpus than this index's archive (borrowed; must cover every key in
  /// the archive). A fingerprint-prefix shard (sm_notaryd --shard-prefix)
  /// must report the FULL corpus's degree — its slice alone under-counts
  /// keys whose other holders live on other shards. Null = count over
  /// the archive being indexed (the single-process case).
  const std::unordered_map<scan::KeyFingerprint, std::uint32_t>* key_counts =
      nullptr;
  /// Revocation statuses per certificate fingerprint (borrowed; e.g.
  /// simworld::WorldResult::revocation.statuses). Fingerprint-keyed for
  /// the same reason as key_counts: prefix slices re-intern with
  /// different cert ids, and a fingerprint survives the slicing.
  /// Fingerprints absent from the map (or a null map) read kUnknown.
  const std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                           scan::FingerprintHash>* revocation_statuses =
      nullptr;
};

/// The immutable index: fingerprint -> CertKnowledge across `kShards`
/// open-addressing hash shards (shard = first fingerprint byte, so the
/// mapping is stable across runs and thread counts).
///
/// Each shard is one contiguous array of {fingerprint, cert id} slots —
/// no per-node heap allocations, no pointer chasing: a lookup hashes
/// fingerprint bytes 8..15, lands on a slot, and probes linearly until it
/// hits the fingerprint or an empty slot. The table is built at most 70%
/// full and never mutated afterwards, so probes are short and the whole
/// structure is read-only (lock-free from any number of workers).
class NotaryIndex {
 public:
  static constexpr std::size_t kShards = 64;

  /// Builds the knowledge table from an already-built corpus spine (which
  /// is only borrowed during construction).
  explicit NotaryIndex(const corpus::CorpusIndex& corpus,
                       const NotaryIndexOptions& options = {});

  /// Fingerprint lookup; nullptr when unknown. Lock-free.
  const CertKnowledge* lookup(const scan::CertFingerprint& fp) const;

  /// Knowledge by archive certificate id.
  const CertKnowledge& knowledge(scan::CertId id) const {
    return entries_[id];
  }

  std::size_t size() const { return entries_.size(); }

  /// Staleness bound for the kSnapshotInfo response: how many scans the
  /// index was built over, and when the newest of them started.
  std::size_t scan_count() const { return scan_count_; }
  util::UnixTime last_scan_start() const { return last_scan_start_; }

  /// The shard a fingerprint hashes to (exposed for the per-shard caches).
  static std::size_t shard_of(const scan::CertFingerprint& fp) {
    return fp[0] % kShards;
  }

  /// Certificates whose fingerprints map to shard `s`. A prefix-sliced
  /// index (sm_notaryd --shard-prefix) leaves most shards empty; the
  /// response cache sizes its per-shard budgets by the populated set.
  std::size_t shard_population(std::size_t s) const {
    return shards_[s].count;
  }

 private:
  /// Sentinel cert id marking an unused table slot (real archives top out
  /// far below 2^32 certificates).
  static constexpr scan::CertId kEmptySlot = 0xffffffff;

  /// One table slot: 20 bytes, so a probe touches at most two cache
  /// lines even when it crosses a slot boundary.
  struct Slot {
    scan::CertFingerprint fp{};
    scan::CertId id = kEmptySlot;
  };

  /// One open-addressing shard: power-of-two slot array, linear probing.
  struct Shard {
    std::vector<Slot> slots;
    std::size_t mask = 0;   ///< slots.size() - 1 (slots is pow2 or empty)
    std::size_t count = 0;  ///< live entries
  };

  /// The fingerprint is itself hash output; bytes 8..15 are already
  /// uniform (byte 0 picks the shard, so use the other half for the
  /// in-shard probe start).
  static std::uint64_t probe_hash(const scan::CertFingerprint& fp) {
    std::uint64_t h = 0;
    std::memcpy(&h, fp.data() + 8, sizeof h);
    return h;
  }

  std::size_t scan_count_ = 0;
  util::UnixTime last_scan_start_ = 0;
  std::vector<CertKnowledge> entries_;  // [cert id]
  std::array<Shard, kShards> shards_;
};

/// Renders one certificate's knowledge as the canonical notary response
/// body — a pure function of the entry (deterministic bytes regardless of
/// thread count or caching; the loopback tests pin this).
std::string render_knowledge(const CertKnowledge& knowledge);

/// The same bytes appended to a caller-supplied buffer (the connection
/// outbuf on the query hot path). Performs no heap allocation beyond
/// growing `out`.
void render_knowledge_into(const CertKnowledge& knowledge, std::string& out);

/// Appends the lowercase-hex fingerprint (the kNotFound body) without
/// allocating — byte-identical to util::hex_encode over the same bytes.
void append_hex_fingerprint(std::string& out, const scan::CertFingerprint& fp);

/// Renders the kRevocationInfo response body — two lines
/// ("fingerprint: <hex>\n" "revocation: <status>\n") appended without
/// heap allocation beyond growing `out`. Kept separate from the kCertInfo
/// rendering so existing clients' parsers never see a new line appear.
void render_revocation_into(const CertKnowledge& knowledge, std::string& out);

}  // namespace sm::notary
