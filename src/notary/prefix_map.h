// PrefixMap — the epoch-versioned routing table of the notary deployment.
//
// The map partitions the 256 possible first fingerprint bytes into
// contiguous, non-overlapping ranges and names, for each range, the set
// of replica endpoints serving that slice. Epochs are the coherence
// mechanism: every map swap increments the epoch, a router refuses to
// apply a map whose epoch does not advance, and ROUTER-STATS reports the
// epoch in effect so an operator can confirm a fleet has converged.
//
// The struct is deliberately plain data. RouterService compiles a map
// into its own lookup table (byte -> entry) and swaps it RCU-style; the
// wire format below (kMapUpdate / kMapInfo payloads) is how maps travel
// between sm_reshard, routers, and operator tooling.
//
// Wire format (all integers little-endian):
//
//   u64  epoch
//   u16  entry count (1..256)
//   per entry:
//     u8   lo          first byte of the inclusive prefix range
//     u8   hi          last byte of the inclusive prefix range
//     u8   replica count (>= 1)
//     per replica:
//       u16  port      (nonzero)
//       u8   host length (nonzero)
//       ..   host bytes
//
// A valid map's entries are sorted, adjacent (entry i+1 starts at
// entry i's hi + 1), and cover [0, 255] exactly — there is no such thing
// as an unrouted fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netio/client_pool.h"

namespace sm::notary {

/// One contiguous prefix range and the replicas serving it.
struct PrefixMapEntry {
  std::uint8_t lo = 0;  ///< inclusive first-byte lower bound
  std::uint8_t hi = 0;  ///< inclusive first-byte upper bound
  std::vector<netio::Endpoint> replicas;
};

struct PrefixMap {
  std::uint64_t epoch = 0;
  std::vector<PrefixMapEntry> entries;
};

/// Structural validation: sorted adjacent entries covering [0, 255], at
/// least one replica per entry, nonempty hosts, nonzero ports. Returns
/// false and fills `error` on the first violation.
bool validate_prefix_map(const PrefixMap& map, std::string& error);

/// The classic i-of-N split as a map: entry i covers
/// [i*256/N, (i+1)*256/N) and serves replica set i. This is how a router
/// started with --backend flags builds its epoch-1 map, so a static
/// deployment and a resharded one describe themselves identically.
PrefixMap uniform_prefix_map(
    const std::vector<std::vector<netio::Endpoint>>& replica_sets,
    std::uint64_t epoch = 1);

/// Index of the entry owning fingerprints that start with `first_byte`.
/// The map must be valid (coverage is total, so this always resolves).
std::size_t prefix_map_entry_of(const PrefixMap& map, std::uint8_t first_byte);

/// Wire codec (kMapUpdate / kMapInfo payloads).
std::string serialize_prefix_map(const PrefixMap& map);
/// Parses AND validates; false + `error` on malformed bytes or an
/// invalid map.
bool parse_prefix_map(std::string_view payload, PrefixMap& out,
                      std::string& error);

/// Human-readable rendering (sm_reshard --show, logs):
///   epoch 4
///   [00-7f] 127.0.0.1:9301 127.0.0.1:9305
///   [80-ff] 127.0.0.1:9302
std::string render_prefix_map(const PrefixMap& map);

/// Splits entry `index`'s range at its midpoint: the lower half keeps the
/// existing replicas, the upper half is served by `new_replicas`, and the
/// epoch advances. Fails (false + `error`) when the range is a single
/// byte or `new_replicas` is empty.
bool split_prefix_map_entry(PrefixMap& map, std::size_t index,
                            std::vector<netio::Endpoint> new_replicas,
                            std::string& error);

/// Merges entry `index` into its right neighbour: the combined range is
/// served by entry index+1's replicas (the side that absorbed the slice),
/// and the epoch advances. Fails when `index` is the last entry.
bool merge_prefix_map_entry(PrefixMap& map, std::size_t index,
                            std::string& error);

}  // namespace sm::notary
