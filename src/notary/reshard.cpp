#include "notary/reshard.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "scan/archive_io.h"

namespace sm::notary {
namespace {

void put_u64le(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = value << 8 | static_cast<unsigned char>(p[i]);
  }
  return value;
}

/// Highest valid RevocationStatus byte on the wire.
constexpr std::uint8_t kMaxStatusByte =
    static_cast<std::uint8_t>(pki::RevocationStatus::kUnknown);

/// A minimal blocking frame-protocol client for the outbound slice
/// stream. One connection, strict request/response — the transfer is a
/// bulk copy, not a latency path, so none of ClientPool's pipelining
/// machinery is warranted here.
class BlockingClient {
 public:
  ~BlockingClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const netio::Endpoint& ep, int connect_timeout_ms,
               int io_timeout_ms, std::string& error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      error = "slice send: socket() failed";
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
      error = "slice send: bad target address " + ep.host;
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      if (errno != EINPROGRESS) {
        error = "slice send: connect to " + ep.host + " failed";
        return false;
      }
      pollfd pfd = {fd_, POLLOUT, 0};
      int err = 0;
      socklen_t len = sizeof err;
      if (::poll(&pfd, 1, connect_timeout_ms) <= 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        error = "slice send: connect to " + ep.host + " timed out/failed";
        return false;
      }
    }
    const int flags = ::fcntl(fd_, F_GETFL);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK) != 0) {
      error = "slice send: fcntl failed";
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    timeval tv{};
    tv.tv_sec = io_timeout_ms / 1000;
    tv.tv_usec = (io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    return true;
  }

  bool call(netio::FrameType type, std::string_view payload,
            netio::Frame& response, std::string& error) {
    const std::string frame = netio::encode_frame(type, payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        error = "slice send: send failed";
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      switch (decoder_.next(response)) {
        case netio::DecodeStatus::kFrame:
          return true;
        case netio::DecodeStatus::kMalformed:
          error = "slice send: malformed response (" + decoder_.error() + ")";
          return false;
        case netio::DecodeStatus::kNeedMore:
          break;
      }
      char buf[64 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        error = "slice send: peer closed or read timed out";
        return false;
      }
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// call() + insist on a kSliceInfo answer (kError payloads become the
  /// error message).
  bool expect_info(netio::FrameType type, std::string_view payload,
                   std::string& info, std::string& error) {
    netio::Frame response;
    if (!call(type, payload, response, error)) return false;
    if (response.type != netio::FrameType::kSliceInfo) {
      error = "slice send: target refused: " + response.payload;
      return false;
    }
    info = std::move(response.payload);
    return true;
  }

 private:
  int fd_ = -1;
  netio::FrameDecoder decoder_{32u << 20};
};

}  // namespace

std::string serialize_slice_sidecar(
    const corpus::KeyCountMap& key_counts,
    const corpus::RevocationStatusMap& statuses) {
  std::string out;
  out.reserve(8 + key_counts.size() * 12 + statuses.size() * 17);
  netio::put_u32le(out, static_cast<std::uint32_t>(key_counts.size()));
  for (const auto& [key, count] : key_counts) {
    put_u64le(out, key);
    netio::put_u32le(out, count);
  }
  netio::put_u32le(out, static_cast<std::uint32_t>(statuses.size()));
  for (const auto& [fp, status] : statuses) {
    out.append(reinterpret_cast<const char*>(fp.data()), fp.size());
    out.push_back(static_cast<char>(status));
  }
  return out;
}

bool parse_slice_sidecar(std::string_view payload,
                         corpus::KeyCountMap& key_counts,
                         corpus::RevocationStatusMap& statuses,
                         std::string& error) {
  const char* p = payload.data();
  std::size_t left = payload.size();
  const auto need = [&](std::size_t n) {
    if (left < n) {
      error = "slice sidecar truncated";
      return false;
    }
    return true;
  };
  if (!need(4)) return false;
  const std::uint32_t nkeys = netio::get_u32le(p);
  p += 4;
  left -= 4;
  if (!need(static_cast<std::size_t>(nkeys) * 12)) return false;
  key_counts.reserve(nkeys);
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    const scan::KeyFingerprint key = get_u64le(p);
    key_counts[key] = netio::get_u32le(p + 8);
    p += 12;
    left -= 12;
  }
  if (!need(4)) return false;
  const std::uint32_t nstatus = netio::get_u32le(p);
  p += 4;
  left -= 4;
  if (!need(static_cast<std::size_t>(nstatus) * 17)) return false;
  statuses.reserve(nstatus);
  for (std::uint32_t i = 0; i < nstatus; ++i) {
    scan::CertFingerprint fp;
    std::memcpy(fp.data(), p, fp.size());
    const std::uint8_t status = static_cast<std::uint8_t>(p[16]);
    if (status > kMaxStatusByte) {
      error = "slice sidecar carries an unknown revocation status byte";
      return false;
    }
    statuses[fp] = static_cast<pki::RevocationStatus>(status);
    p += 17;
    left -= 17;
  }
  if (left != 0) {
    error = "slice sidecar has trailing bytes";
    return false;
  }
  return true;
}

void publish_live_snapshot(const corpus::LiveSnapshot& snap,
                           NotaryService& service, util::ThreadPool* pool) {
  NotaryIndexOptions options;
  options.pool = pool;
  if (snap.key_counts) options.key_counts = snap.key_counts.get();
  if (snap.statuses) options.revocation_statuses = snap.statuses.get();
  service.publish(
      std::make_shared<const NotaryIndex>(*snap.spine, options),
      snap.delta);
}

struct ReshardHost::Impl {
  corpus::LiveCorpus& live;
  NotaryService& service;
  ReshardHostOptions options;

  /// One inbound transfer at a time: the slot is tiny state, the mutex
  /// is held across the kSliceDone merge so a racing kSliceBegin waits
  /// (and then finds the slot free or busy, never half-merged).
  std::mutex transfer_mutex;
  bool transfer_active = false;
  std::uint8_t transfer_lo = 0;
  std::uint8_t transfer_hi = 0;
  std::string transfer_sidecar;
  std::string transfer_smar;

  Impl(corpus::LiveCorpus& l, NotaryService& s, ReshardHostOptions o)
      : live(l), service(s), options(o) {}

  void reply_info(std::string& out, const std::string& text) {
    netio::encode_frame_into(out, netio::FrameType::kSliceInfo, text);
  }

  void reply_error(std::string& out, const std::string& reason) {
    netio::encode_frame_into(out, netio::FrameType::kError, reason);
  }

  void clear_transfer() {
    transfer_active = false;
    transfer_sidecar.clear();
    transfer_sidecar.shrink_to_fit();
    transfer_smar.clear();
    transfer_smar.shrink_to_fit();
  }

  void handle_begin(std::string_view payload, std::string& out) {
    if (payload.size() != 2) {
      reply_error(out, "kSliceBegin payload must be the two range bytes");
      return;
    }
    const std::uint8_t lo = static_cast<std::uint8_t>(payload[0]);
    const std::uint8_t hi = static_cast<std::uint8_t>(payload[1]);
    if (lo > hi) {
      reply_error(out, "kSliceBegin range is inverted");
      return;
    }
    std::lock_guard lock(transfer_mutex);
    if (transfer_active) {
      reply_error(out, "another slice transfer is in progress");
      return;
    }
    transfer_active = true;
    transfer_lo = lo;
    transfer_hi = hi;
    transfer_sidecar.clear();
    transfer_smar.clear();
    reply_info(out, "ready");
  }

  void handle_segment(std::string_view payload, std::string& out) {
    if (payload.empty()) {
      reply_error(out, "kSliceSegment payload must carry a stream id");
      return;
    }
    std::lock_guard lock(transfer_mutex);
    if (!transfer_active) {
      reply_error(out, "no slice transfer in progress");
      return;
    }
    const std::uint8_t stream = static_cast<std::uint8_t>(payload[0]);
    if (stream > 1) {
      clear_transfer();
      reply_error(out, "unknown slice stream id");
      return;
    }
    std::string& buffer = stream == 0 ? transfer_sidecar : transfer_smar;
    if (transfer_sidecar.size() + transfer_smar.size() + payload.size() - 1 >
        options.max_transfer_bytes) {
      clear_transfer();
      reply_error(out, "slice transfer exceeds the size ceiling");
      return;
    }
    buffer.append(payload.data() + 1, payload.size() - 1);
    reply_info(out, "ok");
  }

  void handle_done(std::string& out) {
    std::lock_guard lock(transfer_mutex);
    if (!transfer_active) {
      reply_error(out, "no slice transfer in progress");
      return;
    }
    corpus::KeyCountMap key_counts;
    corpus::RevocationStatusMap statuses;
    std::string error;
    if (!parse_slice_sidecar(transfer_sidecar, key_counts, statuses,
                             error)) {
      clear_transfer();
      reply_error(out, error);
      return;
    }
    std::istringstream smar(std::move(transfer_smar));
    const corpus::AppendResult result =
        live.merge_slice(smar, &key_counts, &statuses);
    const std::uint8_t lo = transfer_lo;
    const std::uint8_t hi = transfer_hi;
    clear_transfer();
    if (!result.ok) {
      reply_error(out, result.error);
      return;
    }
    const auto snap = live.snapshot();
    publish_live_snapshot(*snap, service, options.pool);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "merged %u-%u epoch %" PRIu64 " new-certs %zu "
                  "scans-added %zu observations %zu",
                  lo, hi, snap->epoch, result.new_certs,
                  result.scans_appended, result.observations);
    reply_info(out, buf);
  }

  void handle_retire(std::string_view payload, std::string& out) {
    if (payload.size() != 2) {
      reply_error(out, "kSliceRetire payload must be the two range bytes");
      return;
    }
    const std::uint8_t lo = static_cast<std::uint8_t>(payload[0]);
    const std::uint8_t hi = static_cast<std::uint8_t>(payload[1]);
    if (lo > hi) {
      reply_error(out, "kSliceRetire range is inverted");
      return;
    }
    const corpus::AppendResult result = live.retire_prefix(lo, hi);
    if (!result.ok) {
      reply_error(out, result.error);
      return;
    }
    const auto snap = live.snapshot();
    publish_live_snapshot(*snap, service, options.pool);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "retired %u-%u epoch %" PRIu64 " certs %zu", lo, hi,
                  snap->epoch, snap->archive->certs().size());
    reply_info(out, buf);
  }

  /// Builds the sidecar blob for one outbound round: degrees and
  /// statuses for the range's certificates, from the snapshot's injected
  /// maps when present (a shard) or derived locally (an unsharded corpus
  /// IS the full corpus, so its local degree is the full degree).
  std::string build_sidecar(const corpus::LiveSnapshot& snap,
                            std::uint8_t lo, std::uint8_t hi) {
    corpus::KeyCountMap counts;
    corpus::RevocationStatusMap statuses;
    corpus::KeyCountMap local_degrees;
    if (!snap.key_counts) {
      for (const scan::CertRecord& cert : snap.archive->certs()) {
        ++local_degrees[cert.key_fingerprint];
      }
    }
    for (const scan::CertRecord& cert : snap.archive->certs()) {
      if (cert.fingerprint[0] < lo || cert.fingerprint[0] > hi) continue;
      if (snap.key_counts) {
        const auto it = snap.key_counts->find(cert.key_fingerprint);
        if (it != snap.key_counts->end()) {
          counts[cert.key_fingerprint] = it->second;
        }
      } else {
        counts[cert.key_fingerprint] = local_degrees[cert.key_fingerprint];
      }
      if (snap.statuses) {
        const auto it = snap.statuses->find(cert.fingerprint);
        if (it != snap.statuses->end()) {
          statuses[cert.fingerprint] = it->second;
        }
      }
    }
    return serialize_slice_sidecar(counts, statuses);
  }

  bool stream_chunks(BlockingClient& client, std::uint8_t stream,
                     std::string_view bytes, std::string& error) {
    std::string info;
    std::size_t offset = 0;
    do {
      const std::size_t n =
          std::min(options.chunk_bytes, bytes.size() - offset);
      std::string payload;
      payload.reserve(n + 1);
      payload.push_back(static_cast<char>(stream));
      payload.append(bytes.data() + offset, n);
      if (!client.expect_info(netio::FrameType::kSliceSegment, payload, info,
                              error)) {
        return false;
      }
      offset += n;
    } while (offset < bytes.size());
    return true;
  }

  void handle_send(std::string_view payload, std::string& out) {
    // Payload: u8 lo, u8 hi, u16le port, u8 host length, host bytes.
    if (payload.size() < 5) {
      reply_error(out, "kSliceSend payload truncated");
      return;
    }
    const std::uint8_t lo = static_cast<std::uint8_t>(payload[0]);
    const std::uint8_t hi = static_cast<std::uint8_t>(payload[1]);
    netio::Endpoint target;
    target.port = static_cast<std::uint16_t>(
        static_cast<unsigned char>(payload[2]) |
        static_cast<unsigned char>(payload[3]) << 8);
    const std::size_t host_len = static_cast<unsigned char>(payload[4]);
    if (lo > hi || target.port == 0 || host_len == 0 ||
        payload.size() != 5 + host_len) {
      reply_error(out, "kSliceSend payload malformed");
      return;
    }
    target.host.assign(payload.data() + 5, host_len);

    std::string error;
    BlockingClient client;
    if (!client.connect(target, options.connect_timeout_ms,
                        options.io_timeout_ms, error)) {
      reply_error(out, error);
      return;
    }

    // The catch-up loop: stream a snapshot's worth, then re-snapshot; a
    // round that finds no new scans means the receiver is current.
    const char range[2] = {static_cast<char>(lo), static_cast<char>(hi)};
    std::size_t sent_scans = 0;
    std::size_t sent_certs = 0;
    int rounds = 0;
    std::string last_merge_info;
    for (;;) {
      const auto snap = live.snapshot();
      const std::size_t scan_count = snap->archive->scans().size();
      if (rounds > 0 && scan_count <= sent_scans) break;
      if (rounds >= options.max_rounds) {
        reply_error(out,
                    "slice send: corpus kept growing past the catch-up "
                    "round limit");
        return;
      }
      const scan::ScanArchive slice = corpus::extract_prefix_slice(
          *snap->archive, lo, hi, sent_scans);
      std::ostringstream smar;
      if (!scan::save_archive(slice, smar)) {
        reply_error(out, "slice send: archive serialization failed");
        return;
      }
      const std::string sidecar = build_sidecar(*snap, lo, hi);
      std::string info;
      if (!client.expect_info(netio::FrameType::kSliceBegin,
                              std::string_view(range, 2), info, error) ||
          !stream_chunks(client, 0, sidecar, error) ||
          !stream_chunks(client, 1, smar.view(), error) ||
          !client.expect_info(netio::FrameType::kSliceDone, {},
                              last_merge_info, error)) {
        reply_error(out, error);
        return;
      }
      sent_scans = scan_count;
      sent_certs = slice.certs().size();
      ++rounds;
    }
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "sent %u-%u to %s:%u rounds %d certs %zu scans %zu; "
                  "target: %s",
                  lo, hi, target.host.c_str(), target.port, rounds,
                  sent_certs, sent_scans, last_merge_info.c_str());
    reply_info(out, buf);
  }
};

ReshardHost::ReshardHost(corpus::LiveCorpus& live, NotaryService& service,
                         ReshardHostOptions options)
    : impl_(std::make_unique<Impl>(live, service, options)) {}

ReshardHost::~ReshardHost() = default;

bool ReshardHost::handle(netio::FrameType type, std::string_view payload,
                         std::string& out) {
  switch (type) {
    case netio::FrameType::kSliceBegin:
      impl_->handle_begin(payload, out);
      return true;
    case netio::FrameType::kSliceSegment:
      impl_->handle_segment(payload, out);
      return true;
    case netio::FrameType::kSliceDone:
      impl_->handle_done(out);
      return true;
    case netio::FrameType::kSliceSend:
      impl_->handle_send(payload, out);
      return true;
    case netio::FrameType::kSliceRetire:
      impl_->handle_retire(payload, out);
      return true;
    default:
      return false;
  }
}

}  // namespace sm::notary
