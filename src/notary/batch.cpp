#include "notary/batch.h"

#include <cstring>

namespace sm::notary {
namespace {

constexpr std::size_t kFpSize = sizeof(scan::CertFingerprint);

bool is_response_status(std::uint8_t value) {
  switch (static_cast<netio::FrameType>(value)) {
    case netio::FrameType::kCertInfo:
    case netio::FrameType::kNotFound:
    case netio::FrameType::kRevocationInfo:
    case netio::FrameType::kError:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string encode_batch_query(
    const std::vector<scan::CertFingerprint>& fingerprints) {
  std::string out;
  out.reserve(4 + fingerprints.size() * kFpSize);
  netio::put_u32le(out, static_cast<std::uint32_t>(fingerprints.size()));
  for (const auto& fp : fingerprints) {
    out.append(reinterpret_cast<const char*>(fp.data()), kFpSize);
  }
  return out;
}

bool parse_batch_query(std::string_view payload,
                       std::vector<scan::CertFingerprint>& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t count = netio::get_u32le(payload.data());
  if (count > kMaxBatchEntries) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) * kFpSize) {
    return false;
  }
  out.clear();
  out.reserve(count);
  const char* p = payload.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += kFpSize) {
    scan::CertFingerprint fp;
    std::memcpy(fp.data(), p, kFpSize);
    out.push_back(fp);
  }
  return true;
}

bool BatchQueryView::parse(std::string_view payload) {
  fps_ = nullptr;
  count_ = 0;
  if (payload.size() < 4) return false;
  const std::uint32_t count = netio::get_u32le(payload.data());
  if (count > kMaxBatchEntries) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) * kFpSize) {
    return false;
  }
  fps_ = payload.data() + 4;
  count_ = count;
  return true;
}

std::string encode_batch_info_header(std::uint32_t count) {
  std::string out;
  netio::put_u32le(out, count);
  return out;
}

void append_batch_entry(std::string& payload, netio::FrameType status,
                        std::string_view body) {
  payload.push_back(static_cast<char>(status));
  netio::put_u32le(payload, static_cast<std::uint32_t>(body.size()));
  payload.append(body);
}

std::size_t begin_batch_entry(std::string& payload, netio::FrameType status) {
  payload.push_back(static_cast<char>(status));
  payload.append(4, '\0');  // length, patched by end_batch_entry
  return payload.size();
}

void end_batch_entry(std::string& payload, std::size_t body_start) {
  netio::patch_u32le(payload, body_start - 4,
                     static_cast<std::uint32_t>(payload.size() - body_start));
}

bool parse_batch_info(std::string_view payload, std::vector<BatchEntry>& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t count = netio::get_u32le(payload.data());
  if (count > kMaxBatchEntries) return false;
  out.clear();
  out.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 5) return false;
    const std::uint8_t status = static_cast<std::uint8_t>(payload[off]);
    if (!is_response_status(status)) return false;
    const std::uint32_t len = netio::get_u32le(payload.data() + off + 1);
    off += 5;
    if (payload.size() - off < len) return false;
    BatchEntry entry;
    entry.status = static_cast<netio::FrameType>(status);
    entry.body.assign(payload.data() + off, len);
    out.push_back(std::move(entry));
    off += len;
  }
  return off == payload.size();
}

}  // namespace sm::notary
