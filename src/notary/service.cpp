#include "notary/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "notary/batch.h"
#include "util/datetime.h"
#include "util/hex.h"
#include "util/stats.h"

namespace sm::notary {
namespace {

double bucket_upper_us(std::size_t bucket) {
  return static_cast<double>(std::uint64_t{1} << (bucket + 1)) / 1000.0;
}

}  // namespace

void LatencyHistogram::record(std::uint64_t nanos) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::bit_width(nanos | 1) - 1);
  if (bucket >= kBuckets) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  // Relaxed running maximum: the CAS loop only spins while this sample is
  // the new record, so the hot path is one load.
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::summarize() const {
  std::array<std::uint64_t, kBuckets> counts;
  Summary out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += counts[i];
  }
  out.overflow = overflow_.load(std::memory_order_relaxed);
  out.count += out.overflow;
  if (out.count == 0) return out;
  out.max_us =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
      1000.0;
  const auto percentile = [&](double p) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(out.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      // The true maximum tightens a bucket's upper bound whenever the
      // largest sample landed in (or below) this bucket.
      if (seen >= rank) return std::min(bucket_upper_us(i), out.max_us);
    }
    // The rank falls among overflow samples — past every bucket. The only
    // honest bound left is the exact recorded maximum.
    return out.max_us;
  };
  out.p50_us = percentile(0.50);
  out.p99_us = percentile(0.99);
  return out;
}

NotaryService::NotaryService(const NotaryIndex& index,
                             NotaryServiceConfig config)
    // Aliasing, non-owning shared_ptr: the batch caller owns the index
    // for the service's whole lifetime (the pre-live contract).
    : NotaryService(std::shared_ptr<const NotaryIndex>(
                        std::shared_ptr<const void>(), &index),
                    config) {}

NotaryService::NotaryService(std::shared_ptr<const NotaryIndex> index,
                             NotaryServiceConfig config)
    : config_(config) {
  const std::size_t per_shard = config_.cache_bytes / NotaryIndex::kShards;
  for (CacheShard& shard : cache_) shard.capacity = per_shard;
  auto snap = std::make_shared<Snapshot>();
  snap->index = std::move(index);
  snap->epoch = 0;
  snapshot_.store(std::move(snap), std::memory_order_release);
}

void NotaryService::publish(std::shared_ptr<const NotaryIndex> index,
                            std::span<const scan::CertId> changed) {
  std::lock_guard publish_lock(publish_mutex_);
  auto snap = std::make_shared<Snapshot>();
  snap->index = std::move(index);
  snap->epoch =
      snapshot_.load(std::memory_order_relaxed)->epoch + 1;
  // Order matters: advance the insert-guard epoch first, then swap the
  // snapshot, then invalidate. A render that loaded the old snapshot and
  // is about to cache a changed cert re-reads epoch_ inside the shard
  // mutex — it either inserts before the erase below (and is erased) or
  // sees the new epoch and skips the insert. Either way no stale bytes
  // survive; untouched certs render identically in both epochs, so their
  // cached entries stay byte-correct.
  epoch_.store(snap->epoch, std::memory_order_release);
  snapshot_.store(std::move(snap), std::memory_order_release);
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);

  if (config_.cache_bytes == 0) return;
  std::uint64_t dropped = 0;
  // Per-shard pass under each shard's own mutex: queries touching other
  // shards (and cache hits in this shard before/after the critical
  // section) proceed untouched.
  for (std::size_t s = 0; s < cache_.size(); ++s) {
    CacheShard& shard = cache_[s];
    std::lock_guard lock(shard.mutex);
    for (const scan::CertId id : changed) {
      const auto it = shard.map.find(id);
      if (it == shard.map.end()) continue;
      shard.bytes -= it->second->second.size();
      shard.order.erase(it->second);
      shard.map.erase(it);
      ++dropped;
    }
  }
  cache_invalidations_.fetch_add(dropped, std::memory_order_relaxed);
}

std::string NotaryService::rendered_response(const scan::CertFingerprint& fp,
                                             scan::CertId id,
                                             const CertKnowledge& k,
                                             std::uint64_t epoch) {
  if (config_.cache_bytes == 0) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return render_knowledge(k);
  }
  CacheShard& shard = cache_[NotaryIndex::shard_of(fp)];
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  // Render outside the lock: misses are the slow path, and the entry is
  // immutable within its epoch so two racing renders produce identical
  // bytes.
  std::string rendered = render_knowledge(k);
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(shard.mutex);
  // Epoch guard: if a publish() advanced the epoch since this render
  // began, its invalidation pass may already have swept this shard —
  // inserting now could cache stale bytes for a changed cert. Skip; the
  // next query re-renders against the new epoch.
  if (epoch_.load(std::memory_order_acquire) == epoch &&
      shard.map.find(id) == shard.map.end() &&
      rendered.size() <= shard.capacity) {
    shard.order.emplace_front(id, rendered);
    shard.map.emplace(id, shard.order.begin());
    shard.bytes += rendered.size();
    while (shard.bytes > shard.capacity) {
      const auto& [victim_id, victim] = shard.order.back();
      shard.bytes -= victim.size();
      shard.map.erase(victim_id);
      shard.order.pop_back();
    }
  }
  return rendered;
}

netio::Frame NotaryService::handle(netio::FrameType type,
                                   std::string_view payload) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  netio::Frame response;
  switch (type) {
    case netio::FrameType::kQuery: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (payload.size() != std::tuple_size_v<scan::CertFingerprint> &&
          payload.size() != 32) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        response = {netio::FrameType::kError,
                    "query payload must be a 16-byte fingerprint or a "
                    "32-byte SHA-256"};
        break;
      }
      scan::CertFingerprint fp{};
      std::memcpy(fp.data(), payload.data(), fp.size());
      // The query hot path: one acquire load pins this request's epoch;
      // lookup and render run lock-free against the immutable index
      // (the shared_ptr keeps it alive across a concurrent publish).
      const std::shared_ptr<const Snapshot> snap = snapshot();
      const CertKnowledge* k = snap->index->lookup(fp);
      if (k == nullptr) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        response = {netio::FrameType::kNotFound,
                    util::hex_encode(util::BytesView(fp.data(), fp.size()))};
      } else {
        found_.fetch_add(1, std::memory_order_relaxed);
        const auto id =
            static_cast<scan::CertId>(k - &snap->index->knowledge(0));
        response = {netio::FrameType::kCertInfo,
                    rendered_response(fp, id, *k, snap->epoch)};
      }
      break;
    }
    case netio::FrameType::kBatchQuery: {
      batch_queries_.fetch_add(1, std::memory_order_relaxed);
      std::vector<scan::CertFingerprint> fps;
      if (!parse_batch_query(payload, fps)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        response = {netio::FrameType::kError,
                    "batch query payload must be a u32le count followed "
                    "by that many 16-byte fingerprints"};
        break;
      }
      batch_entries_.fetch_add(fps.size(), std::memory_order_relaxed);
      // One acquire pins a single epoch for the whole batch, so every
      // entry is answered from the same index — and byte-identical to
      // what the same fingerprint would get as a standalone kQuery
      // against that epoch.
      const std::shared_ptr<const Snapshot> snap = snapshot();
      std::string body =
          encode_batch_info_header(static_cast<std::uint32_t>(fps.size()));
      for (const scan::CertFingerprint& fp : fps) {
        const CertKnowledge* k = snap->index->lookup(fp);
        if (k == nullptr) {
          not_found_.fetch_add(1, std::memory_order_relaxed);
          append_batch_entry(
              body, netio::FrameType::kNotFound,
              util::hex_encode(util::BytesView(fp.data(), fp.size())));
        } else {
          found_.fetch_add(1, std::memory_order_relaxed);
          const auto id =
              static_cast<scan::CertId>(k - &snap->index->knowledge(0));
          append_batch_entry(body, netio::FrameType::kCertInfo,
                             rendered_response(fp, id, *k, snap->epoch));
        }
      }
      response = {netio::FrameType::kBatchInfo, std::move(body)};
      break;
    }
    case netio::FrameType::kStats:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      response = {netio::FrameType::kStatsText, render_stats()};
      break;
    case netio::FrameType::kPing:
      pings_.fetch_add(1, std::memory_order_relaxed);
      response = {netio::FrameType::kPong, std::string(payload)};
      break;
    case netio::FrameType::kSnapshot:
      snapshot_requests_.fetch_add(1, std::memory_order_relaxed);
      response = {netio::FrameType::kSnapshotInfo, render_snapshot_info()};
      break;
    default:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      response = {netio::FrameType::kError, "unsupported request frame"};
      break;
  }
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return response;
}

NotaryMetricsSnapshot NotaryService::metrics() const {
  NotaryMetricsSnapshot out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_entries = batch_entries_.load(std::memory_order_relaxed);
  out.found = found_.load(std::memory_order_relaxed);
  out.not_found = not_found_.load(std::memory_order_relaxed);
  out.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  out.pings = pings_.load(std::memory_order_relaxed);
  out.snapshot_requests =
      snapshot_requests_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.epoch = snapshot()->epoch;
  out.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  out.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  out.latency = latency_.summarize();
  return out;
}

std::string NotaryService::render_snapshot_info() const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "epoch: %" PRIu64 "\n"
                "scans: %zu\n"
                "last-scan-start: %s\n"
                "certs: %zu\n",
                snap->epoch, snap->index->scan_count(),
                snap->index->scan_count() == 0
                    ? "never"
                    : util::format_datetime(snap->index->last_scan_start())
                          .c_str(),
                snap->index->size());
  return buf;
}

std::string NotaryService::render_stats() const {
  // One snapshot acquire serves BOTH index-size and snapshot-epoch: a
  // second acquire (the old code took one here and another inside
  // metrics()) could straddle a concurrent publish() and pair epoch N
  // with epoch N+1's size.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const NotaryMetricsSnapshot m = metrics();
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "notary-stats\n"
      "index-size: %zu\n"
      "requests: %" PRIu64 "\n"
      "queries: %" PRIu64 " (found %" PRIu64 ", unknown %" PRIu64 ")\n"
      "batch-queries: %" PRIu64 " (entries %" PRIu64 ")\n"
      "pings: %" PRIu64 "\n"
      "stats-requests: %" PRIu64 "\n"
      "bad-requests: %" PRIu64 "\n"
      "cache: %" PRIu64 " hits, %" PRIu64 " misses (hit rate %s)\n"
      "latency-p50-us: %.3f\n"
      "latency-p99-us: %.3f\n"
      "latency-max-us: %.3f\n"
      "latency-overflow: %" PRIu64 " (samples >= %.3f us)\n"
      "snapshot-epoch: %" PRIu64 "\n"
      "snapshot-swaps: %" PRIu64 "\n"
      "snapshot-requests: %" PRIu64 "\n"
      "cache-invalidations: %" PRIu64 "\n",
      snap->index->size(), m.requests, m.queries, m.found, m.not_found,
      m.batch_queries, m.batch_entries, m.pings, m.stats_requests,
      m.bad_requests, m.cache_hits, m.cache_misses,
      util::percent(m.cache_hit_rate()).c_str(), m.latency.p50_us,
      m.latency.p99_us, m.latency.max_us, m.latency.overflow,
      bucket_upper_us(LatencyHistogram::kBuckets - 1), snap->epoch,
      m.snapshot_swaps, m.snapshot_requests, m.cache_invalidations);
  return buf;
}

}  // namespace sm::notary
